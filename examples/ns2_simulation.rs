//! End-to-end ns-2-style experiment: simulate heavy-tailed on/off
//! sources at packet level with the discrete-event engine, verify the
//! aggregate is self-similar (`H = (3 − α)/2`), push it through a
//! bottleneck, and sample the measured rate process.
//!
//! This is the workload-generation path the paper itself used ("we
//! generate in ns-2 self-similar traffic with Hurst parameter equal to
//! 0.80 using the on-off model"), rebuilt on `selfsim::dess`.
//!
//! ```text
//! cargo run --release --example ns2_simulation
//! ```

use selfsim::dess::{LinkSpec, OnOffScenario};
use selfsim::hurst::{estimate_all, LocalWhittleEstimator};
use selfsim::sampling::{Sampler, SimpleRandomSampler, SystematicSampler};

fn main() {
    // The paper's setup in miniature: α = 1.4 so H = (3 − 1.4)/2 = 0.8.
    let scenario = OnOffScenario::new()
        .sources(32)
        .hurst(0.8)
        .periods(0.4, 0.4)
        .emission(250.0, 200)
        .bin_width(0.05)
        .duration(800.0);
    println!(
        "simulating {} on/off sources for {}s (α = {:.2}, expected H = {:.2})…",
        32,
        800,
        3.0 - 2.0 * scenario.expected_hurst(),
        scenario.expected_hurst()
    );
    let out = scenario.run(2005);
    let offered = &out.offered;
    println!(
        "offered traffic: {} bins of {}s, mean {:.0} B/s (analytic {:.0} B/s)",
        offered.len(),
        offered.dt(),
        offered.mean(),
        scenario.offered_load()
    );

    // 1. Self-similarity check with the estimator battery.
    println!("\nHurst estimates on the simulated aggregate:");
    for est in estimate_all(offered.values()) {
        println!("  {est}");
    }

    // 2. The aggregate through an 85%-utilized bottleneck with a small
    //    drop-tail queue — where LRD burst clustering shows up as loss.
    let capacity = scenario.offered_load() * 8.0 / 0.85;
    let shaped = OnOffScenario::new()
        .sources(32)
        .hurst(0.8)
        .periods(0.4, 0.4)
        .emission(250.0, 200)
        .bin_width(0.05)
        .duration(800.0)
        .bottleneck(LinkSpec {
            capacity_bps: capacity,
            queue_limit: 32,
        })
        .run(2005);
    println!(
        "\nbottleneck at {:.1} Mbps (85% nominal load, 32-packet queue): \
         loss {:.3}%, utilization {:.1}%",
        capacity / 1e6,
        shaped.loss_rate * 100.0,
        shaped.utilization.unwrap_or(0.0) * 100.0
    );
    println!("(burst clustering makes even a sub-capacity LRD aggregate drop packets)");

    // 3. Sample the simulated process, as a monitor would.
    let truth = offered.mean();
    let interval = 40; // rate 2.5e-2 — keeps the sampled process long
                       // enough for spectral H estimation below
    let sys = SystematicSampler::new(interval).sample(offered.values(), 9);
    let ran = SimpleRandomSampler::new(1.0 / interval as f64).sample(offered.values(), 9);
    println!(
        "\nsampling the simulated rate process at rate {:.0e}:",
        1.0 / interval as f64
    );
    println!(
        "  systematic    : mean {:.0} B/s ({:+.2}% vs truth)",
        sys.mean(),
        100.0 * (sys.mean() - truth) / truth
    );
    println!(
        "  simple random : mean {:.0} B/s ({:+.2}% vs truth)",
        ran.mean(),
        100.0 * (ran.mean() - truth) / truth
    );

    // 4. …and confirm the sampled process is still LRD.
    let h_sampled = LocalWhittleEstimator::default()
        .estimate(sys.values())
        .map(|e| e.hurst)
        .unwrap_or(f64::NAN);
    println!(
        "\nH of the systematically sampled process: {h_sampled:.3} \
         (T1: sampling preserves second-order statistics)"
    );
}
