//! Heavy-hitter detection on a packet trace with the related-work
//! baselines: Estan-Varghese sample-and-hold versus plain 1-in-N packet
//! sampling, plus Duffield-Grossglauser trajectory sampling for
//! consistent multi-point observation.
//!
//! The theme is the paper's in miniature: *biased* selection (toward
//! big flows / big values) beats unbiased selection at equal cost when
//! the underlying distribution is heavy-tailed.
//!
//! ```text
//! cargo run --release --example heavy_hitters
//! ```

use selfsim::nettrace::pktsampling::{PacketSampler, SelectionPattern, Trigger};
use selfsim::nettrace::{exact_flow_bytes, SampleAndHold, TraceSynthesizer, TrajectorySampler};
use std::collections::BTreeMap;

fn main() {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(300.0)
        .synthesize(7);
    let exact = exact_flow_bytes(&trace);
    let total_bytes: u64 = exact.values().sum();
    println!(
        "trace: {} packets, {} flows, {:.1} MB over {:.0}s",
        trace.len(),
        exact.len(),
        total_bytes as f64 / 1e6,
        trace.duration()
    );

    // Ground truth: flows above 0.5% of total volume.
    let threshold = total_bytes / 200;
    let mut true_hh: Vec<(u32, u64)> = exact
        .iter()
        .filter(|&(_, &b)| b >= threshold)
        .map(|(&f, &b)| (f, b))
        .collect();
    true_hh.sort_by_key(|&(_, b)| std::cmp::Reverse(b));
    println!(
        "\nground truth: {} flows exceed {} bytes ({}% of volume each)",
        true_hh.len(),
        threshold,
        0.5
    );

    // 1. Sample-and-hold sized for that threshold.
    let sh = SampleAndHold::for_threshold(threshold as f64, 4.0);
    let report = sh.run(&trace, 11);
    let found: Vec<u32> = report
        .heavy_hitters(threshold / 2)
        .iter()
        .map(|&(f, _)| f)
        .collect();
    let caught = true_hh.iter().filter(|(f, _)| found.contains(f)).count();
    println!(
        "\nsample-and-hold (p = {:.2e}/byte): table {} entries ({}% of flows), \
         caught {}/{} true heavy hitters",
        sh.byte_prob(),
        report.table_len(),
        100 * report.table_len() / exact.len().max(1),
        caught,
        true_hh.len()
    );

    // 2. The unbiased strawman: 1-in-N packet sampling with the same
    //    expected sample budget, scaling counts up by N.
    let budget = report.table_len().max(1);
    let every = (trace.len() / budget.max(1)).max(1);
    let sampler = PacketSampler::new(Trigger::EventDriven { every }, SelectionPattern::Random);
    let sampled = sampler.sample(&trace, 11);
    let mut est: BTreeMap<u32, f64> = BTreeMap::new();
    for &i in sampled.indices() {
        let p = trace.packets()[i];
        *est.entry(p.flow).or_insert(0.0) += p.size as f64 * every as f64;
    }
    let mut found_1n: Vec<u32> = est
        .iter()
        .filter(|&(_, &b)| b >= threshold as f64)
        .map(|(&f, _)| f)
        .collect();
    found_1n.sort_unstable();
    let caught_1n = true_hh.iter().filter(|(f, _)| found_1n.contains(f)).count();
    println!(
        "1-in-{every} packet sampling at the same budget: caught {caught_1n}/{} \
         (misses elephants whose packets slipped the sample; false alarms from \
         upscaled mice)",
        true_hh.len()
    );

    // 3. Trajectory sampling: consistent 1% selection across observation
    //    points — what you deploy when you need the *same* packets seen
    //    at every router.
    let tj = TrajectorySampler::new(0.01, 0xBEEF);
    let at_ingress = tj.sample(&trace);
    let at_egress = tj.sample(&trace); // second observation point
    println!(
        "\ntrajectory sampling (1%, shared salt): {} packets selected, \
         ingress/egress agreement: {}",
        at_ingress.len(),
        if at_ingress == at_egress {
            "exact"
        } else {
            "BROKEN"
        }
    );
    println!("(hash-based selection is what makes per-packet trajectories traceable)");
}
