//! Usage accounting on OD flows of a packet trace.
//!
//! The paper's §I motivation: a router cannot keep per-OD counters for
//! every pair, so per-OD usage must be estimated from samples. This
//! example synthesizes a Bell-Labs-like packet trace, picks the busiest
//! OD pairs, and compares per-OD mean-rate estimation error for
//! systematic sampling vs BSS at the same base sampling rate.
//!
//! ```text
//! cargo run --release --example traffic_accounting
//! ```

use selfsim::nettrace::TraceSynthesizer;
use selfsim::sampling::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use selfsim::sampling::{Sampler, SystematicSampler};

fn main() {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(600.0)
        .synthesize(3);
    println!(
        "trace: {} packets, {} OD pairs, {:.3e} bytes over {:.0} s (mean {:.3e} B/s)",
        trace.len(),
        trace.od_pair_count(),
        trace.total_bytes() as f64,
        trace.duration(),
        trace.mean_rate()
    );

    let top: Vec<((u32, u32), u64)> = trace.od_volumes().into_iter().take(5).collect();
    println!("\ntop-5 OD pairs by volume:");
    for (pair, bytes) in &top {
        println!("  {:>3} <-> {:<3} {:>12} bytes", pair.0, pair.1, bytes);
    }

    let dt = 1e-2;
    let interval = 100; // rate 1e-2 over 10 ms bins
    println!("\nper-OD mean-rate estimates at sampling rate 1e-2:");
    println!(
        "{:>11}  {:>12}  {:>12}  {:>8}  {:>12}  {:>8}",
        "OD pair", "true B/s", "systematic", "err%", "BSS", "err%"
    );
    for (pair, _) in &top {
        let series = trace.od_rate_series(*pair, dt);
        let truth = series.mean();
        let sys = SystematicSampler::new(interval)
            .sample(series.values(), 9)
            .mean();
        let bss = BssSampler::new(
            interval,
            ThresholdPolicy::Online(OnlineTuning {
                alpha: 1.71,
                ..OnlineTuning::default()
            }),
        )
        .expect("valid")
        .sample_detailed(series.values(), 9)
        .mean();
        let err = |est: f64| {
            if truth > 0.0 {
                100.0 * (est - truth) / truth
            } else {
                0.0
            }
        };
        println!(
            "{:>4}<->{:<4}  {truth:>12.1}  {sys:>12.1}  {:>7.1}%  {bss:>12.1}  {:>7.1}%",
            pair.0,
            pair.1,
            err(sys),
            err(bss)
        );
    }

    // Aggregate of the top two pairs — the paper's "2 specified OD flows
    // between west coast and east coast" case.
    let (p0, p1) = (top[0].0, top[1].0);
    let agg = trace.to_rate_series_filtered(dt, |k| {
        let pair = k.od_pair();
        pair == p0 || pair == p1
    });
    let truth = agg.mean();
    let sys = SystematicSampler::new(interval)
        .sample(agg.values(), 9)
        .mean();
    let bss = BssSampler::new(
        interval,
        ThresholdPolicy::Online(OnlineTuning {
            alpha: 1.71,
            ..OnlineTuning::default()
        }),
    )
    .expect("valid")
    .sample_detailed(agg.values(), 9)
    .mean();
    println!("\naggregate of the top-2 OD pairs:");
    println!(
        "  true {truth:.1} B/s | systematic {sys:.1} ({:+.1}%) | BSS {bss:.1} ({:+.1}%)",
        100.0 * (sys - truth) / truth,
        100.0 * (bss - truth) / truth
    );
}
