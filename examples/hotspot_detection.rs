//! Hot-spot detection: short-term monitoring with a tight sample budget.
//!
//! A monitor watches a traffic process for sustained high-activity
//! periods (DoS-style hot spots). With plain systematic sampling at a
//! low rate, bursts slip between samples; BSS's threshold-triggered
//! extra samples land inside exactly those bursts. This example measures
//! burst *recall* (fraction of true hot-spot periods touched by at least
//! one sample) and the extra-sample cost.
//!
//! ```text
//! cargo run --release --example hotspot_detection
//! ```

use selfsim::sampling::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use selfsim::sampling::{Sampler, SystematicSampler};
use selfsim::stats::burst::BurstAnalysis;
use selfsim::traffic::SyntheticTraceSpec;

/// Maximal runs above `threshold` lasting at least `min_len` bins.
fn hot_spots(values: &[f64], threshold: f64, min_len: usize) -> Vec<(usize, usize)> {
    let mut spots = Vec::new();
    let mut start = None;
    for (i, &v) in values.iter().enumerate() {
        if v > threshold {
            start.get_or_insert(i);
        } else if let Some(s) = start.take() {
            if i - s >= min_len {
                spots.push((s, i));
            }
        }
    }
    if let Some(s) = start {
        if values.len() - s >= min_len {
            spots.push((s, values.len()));
        }
    }
    spots
}

fn recall(spots: &[(usize, usize)], sampled: &[usize]) -> f64 {
    if spots.is_empty() {
        return 1.0;
    }
    let hit = spots
        .iter()
        .filter(|&&(s, e)| sampled.iter().any(|&i| i >= s && i < e))
        .count();
    hit as f64 / spots.len() as f64
}

fn main() {
    // Strongly clustered traffic, then viewed at a coarser monitoring
    // granularity (activity averaged over 64-bin windows) where hot
    // spots span many bins — the operating point of a flow monitor.
    let raw = SyntheticTraceSpec::new()
        .length(1 << 20)
        .hurst(0.88)
        .pareto_marginal(1.4, 5.68)
        .seed(11)
        .build();
    let trace = raw.aggregate(64);
    let mean = trace.mean();
    let threshold = 1.5 * mean;
    let spots = hot_spots(trace.values(), threshold, 4);
    println!(
        "monitoring series: {} windows, mean {mean:.3}; {} hot spots (≥4 windows above {threshold:.3})",
        trace.len(),
        spots.len()
    );

    println!(
        "\n{:>9}  {:>11}  {:>11}  {:>15}",
        "interval", "sys recall", "bss recall", "bss cost (vs sys)"
    );
    for interval in [64usize, 32, 16, 8] {
        let sys = SystematicSampler::new(interval).sample(trace.values(), 5);
        let bss = BssSampler::new(
            interval,
            ThresholdPolicy::Online(OnlineTuning {
                epsilon: 1.5,
                ..OnlineTuning::default()
            }),
        )
        .expect("valid")
        .with_l(8)
        .sample_detailed(trace.values(), 5);

        let r_sys = recall(&spots, sys.indices());
        let r_bss = recall(&spots, bss.samples.indices());
        println!(
            "{interval:>9}  {r_sys:>11.3}  {r_bss:>11.3}  {:>14.3}x",
            bss.total_kept() as f64 / sys.len().max(1) as f64
        );
    }

    let analysis = BurstAnalysis::at_threshold(trace.values(), threshold);
    println!(
        "\nburst structure: {} bursts, mean length {:.1} windows, heavy-tail fit α = {}",
        analysis.bursts.len(),
        analysis.mean_burst_len(),
        analysis
            .tail_fit
            .map_or("n/a".to_string(), |f| format!("{:.2}", f.alpha)),
    );
}
