//! Flow monitoring from sampled packet exports (NetFlow-style).
//!
//! Routers export 1-in-N sampled packets; the collector must invert the
//! sampling to recover totals and per-flow statistics. This example
//! shows the inversion on a synthesized trace: total volume and packet
//! counts invert cleanly, naive mean-flow-length is biased (short flows
//! vanish), and the Horvitz-Thompson correction recovers it.
//!
//! ```text
//! cargo run --release --example flow_monitoring
//! ```

use selfsim::nettrace::{detection_probability, sample_packets, TraceSynthesizer};
use std::collections::BTreeMap;

fn main() {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(600.0)
        .synthesize(9);
    let mut per_flow: BTreeMap<u32, u64> = BTreeMap::new();
    for p in trace.packets() {
        *per_flow.entry(p.flow).or_insert(0) += 1;
    }
    let true_mean_len = trace.len() as f64 / per_flow.len() as f64;
    println!(
        "trace: {} packets, {} flows, {:.3e} bytes (true mean flow length {:.1} pkts)",
        trace.len(),
        per_flow.len(),
        trace.total_bytes() as f64,
        true_mean_len
    );

    println!(
        "\n{:>8}  {:>12}  {:>12}  {:>10}  {:>10}  {:>10}",
        "rate", "est pkts", "est bytes", "flows seen", "naive len", "HT len"
    );
    for rate in [0.2, 0.05, 0.01] {
        let s = sample_packets(&trace, rate, 7);
        let lens = s.estimated_flow_lengths();
        let naive = if lens.is_empty() {
            f64::NAN
        } else {
            lens.values().sum::<f64>() / lens.len() as f64
        };
        let corrected = s.estimated_mean_flow_length().unwrap_or(f64::NAN);
        println!(
            "{rate:>8}  {:>12.0}  {:>12.3e}  {:>10}  {:>10.1}  {:>10.1}",
            s.estimated_total_packets(),
            s.estimated_total_bytes(),
            lens.len(),
            naive,
            corrected
        );
    }
    println!(
        "\n(true totals: {} pkts, {:.3e} bytes)",
        trace.len(),
        trace.total_bytes() as f64
    );

    println!("\ndetection probability of a flow vs its length at rate 0.01:");
    for len in [1u64, 10, 100, 1000] {
        println!(
            "  {len:>5} packets: {:.4}",
            detection_probability(len, 0.01)
        );
    }
}
