//! Quickstart: generate self-similar traffic, sample it four ways, and
//! compare what each technique reports about the mean and the Hurst
//! parameter.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use selfsim::hurst::{LocalWhittleEstimator, WaveletEstimator};
use selfsim::sampling::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use selfsim::sampling::{Sampler, SimpleRandomSampler, StratifiedSampler, SystematicSampler};
use selfsim::traffic::SyntheticTraceSpec;

fn main() {
    // The paper's synthetic workload: H = 0.8 long-range dependence with
    // a Pareto(α=1.5) marginal of mean 5.68.
    let trace = SyntheticTraceSpec::new()
        .length(1 << 19)
        .hurst(0.8)
        .pareto_marginal(1.5, 5.68)
        .seed(42)
        .build();
    let truth = trace.mean();
    println!("trace: {} points, true mean {truth:.4}", trace.len());

    let interval = 500; // sampling rate 2e-3
    println!("\nsampling at rate {:.1e}:", 1.0 / interval as f64);
    println!(
        "{:>16}  {:>10}  {:>8}  {:>9}",
        "technique", "est. mean", "error%", "#samples"
    );

    let report = |name: &str, mean: f64, n: usize| {
        println!(
            "{name:>16}  {mean:>10.4}  {:>7.2}%  {n:>9}",
            100.0 * (mean - truth) / truth
        );
    };

    let sys = SystematicSampler::new(interval).sample(trace.values(), 7);
    report("systematic", sys.mean(), sys.len());

    let strat = StratifiedSampler::new(interval).sample(trace.values(), 7);
    report("stratified", strat.mean(), strat.len());

    let ran = SimpleRandomSampler::new(1.0 / interval as f64).sample(trace.values(), 7);
    report("simple random", ran.mean(), ran.len());

    let bss = BssSampler::new(interval, ThresholdPolicy::Online(OnlineTuning::default()))
        .expect("valid BSS configuration")
        .sample_detailed(trace.values(), 7);
    report("BSS (proposed)", bss.mean(), bss.total_kept());
    println!(
        "{:>16}  overhead {:.3} qualified samples per normal sample",
        "",
        bss.overhead()
    );

    // Second-order statistics survive sampling. One practical detail:
    // Pareto(α<2) marginals have infinite variance, which biases every
    // variance-based H estimator downward — so, as is standard for
    // heavy-tailed traffic, estimate on log f(t) (a monotone transform
    // keeps the LRD exponent but gives finite variance).
    let log_of = |vals: &[f64]| -> Vec<f64> { vals.iter().map(|&v| v.ln()).collect() };
    let wavelet = WaveletEstimator::default();
    let whittle = LocalWhittleEstimator { bandwidth: 0.5 };
    let orig_log = log_of(trace.values());
    let sampled_log = log_of(sys.values());
    let h_orig = whittle.estimate(&orig_log).expect("long enough").hurst;
    let h_sampled = whittle.estimate(&sampled_log).expect("long enough").hurst;
    let h_wavelet = wavelet.estimate(&orig_log).expect("long enough").hurst;
    println!("\nHurst parameter (target 0.8, estimated on log f(t)):");
    println!("  original trace   : {h_orig:.3} (local Whittle), {h_wavelet:.3} (wavelet)");
    println!("  sampled process  : {h_sampled:.3} (local Whittle on the systematic samples)");
}
