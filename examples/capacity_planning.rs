//! Capacity planning from sampled traffic.
//!
//! Queueing behaviour under self-similar load is governed by the Hurst
//! parameter (buffer overflow decays polynomially, not exponentially),
//! so a provisioning pipeline needs H — and it usually only has *sampled*
//! measurements. This example estimates H from sampled traffic with the
//! full estimator battery and shows the estimate survives sampling, then
//! translates it into an effective-bandwidth-style headroom factor.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use selfsim::hurst::{consensus_hurst, estimate_all};
use selfsim::sampling::{Sampler, SystematicSampler};
use selfsim::traffic::SyntheticTraceSpec;

/// Norros' fractional-Brownian storage dimensioning: the bandwidth
/// headroom factor needed to keep a buffer of size `b` from overflowing
/// (loss target ~e^{-γ}) grows with H through the exponent `1/(2-2H)`.
/// This is a coarse planning heuristic, not a queueing theorem.
fn headroom_factor(h: f64, utilization: f64) -> f64 {
    // Self-similar burstiness premium relative to Poisson provisioning.
    let poisson_premium = 1.0 / (1.0 - utilization);
    poisson_premium.powf(1.0 / (2.0 - 2.0 * h))
}

fn main() {
    let h_true = 0.8;
    let trace = SyntheticTraceSpec::new()
        .length(1 << 19)
        .hurst(h_true)
        .gaussian_marginal(100.0, 20.0) // link utilisation process
        .seed(23)
        .build();
    println!("trace: {} points, target H = {h_true}", trace.len());

    println!("\nestimator battery on the ORIGINAL trace:");
    for est in estimate_all(trace.values()) {
        println!("  {est}   (stderr {:.3})", est.stderr);
    }

    for interval in [4usize, 16, 64] {
        let sampled = SystematicSampler::new(interval).sample(trace.values(), 1);
        let consensus = consensus_hurst(sampled.values()).expect("long enough");
        println!(
            "\nsampled at rate 1/{interval}: {} samples, consensus H = {consensus:.3}",
            sampled.len()
        );
        let headroom = headroom_factor(consensus, 0.7);
        let naive = headroom_factor(0.5, 0.7);
        println!(
            "  headroom at 70% utilisation: {headroom:.2}x (an H=0.5 model would plan {naive:.2}x \
             — {:.0}% under-provisioned)",
            100.0 * (headroom / naive - 1.0)
        );
    }
}
