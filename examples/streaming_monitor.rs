//! A router-style streaming monitor: points arrive one at a time and
//! each sampler must keep or drop them immediately — no lookahead, no
//! second pass. Demonstrates the `sampling::stream` API and attaches an
//! LRD-honest error bar (moving-block bootstrap) to the final estimate.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use selfsim::sampling::bootstrap::moving_block_ci;
use selfsim::sampling::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use selfsim::sampling::stream::{
    StreamSampler, StreamingBss, StreamingSimpleRandom, StreamingSystematic,
};
use selfsim::traffic::SyntheticTraceSpec;

fn main() {
    // The "live" feed: heavy-tailed LRD traffic the monitor will watch.
    let trace = SyntheticTraceSpec::new()
        .length(1 << 19)
        .hurst(0.8)
        .pareto_marginal(1.4, 5.68)
        .seed(99)
        .build();
    let truth = trace.mean();
    println!(
        "streaming {} points (true mean {truth:.4}, known only in hindsight)…",
        trace.len()
    );

    let interval = 500;
    let mut systematic = StreamingSystematic::new(interval, 7).expect("valid");
    let mut random = StreamingSimpleRandom::new(1.0 / interval as f64, 7).expect("valid");
    // The paper's online scheme derives L from the sampling rate via
    // Eq. 35 (η ≈ c·N^{1/α−1}); the streaming sampler takes L up front
    // because a stream cannot know its length — a monitor knows its
    // planned observation window instead.
    let policy = ThresholdPolicy::Online(OnlineTuning {
        epsilon: 1.0,
        alpha: 1.4,
        ..Default::default()
    });
    let planned_l = BssSampler::new(interval, policy)
        .expect("valid")
        .effective_l(trace.len());
    println!("BSS extras budget derived from the rate (Eq. 35): L = {planned_l}");
    let mut bss = StreamingBss::new(interval, policy, planned_l, 7).expect("valid");

    // One pass, one decision per point per sampler — exactly what a
    // line card does.
    let mut kept_sys = Vec::new();
    let mut kept_ran = Vec::new();
    let mut kept_bss = Vec::new();
    for &v in trace.values() {
        if systematic.offer(v).is_kept() {
            kept_sys.push(v);
        }
        if random.offer(v).is_kept() {
            kept_ran.push(v);
        }
        if bss.offer(v).is_kept() {
            kept_bss.push(v);
        }
    }

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let report = |name: &str, xs: &[f64]| {
        let m = mean(xs);
        println!(
            "{name:>22}: mean {m:>8.4} ({:+.2}% vs truth), {} samples kept",
            100.0 * (m - truth) / truth,
            xs.len()
        );
    };
    println!();
    report("streaming systematic", &kept_sys);
    report("streaming random", &kept_ran);
    report("streaming BSS", &kept_bss);
    println!(
        "{:>22}  overhead: {:.3} qualified per normal sample",
        "",
        bss.overhead()
    );

    // An honest error bar: the kept samples are still LRD, so use a
    // moving-block bootstrap (i.i.d. resampling would understate the
    // uncertainty).
    let block = (kept_bss.len() as f64).sqrt().ceil() as usize;
    let ci = moving_block_ci(&kept_bss, block.max(1), 800, 0.95, 3);
    println!(
        "\nBSS estimate with 95% CI: {:.4} [{:.4}, {:.4}] (block {} of {})",
        ci.mean,
        ci.lo,
        ci.hi,
        ci.block_len,
        kept_bss.len()
    );
    println!(
        "truth {truth:.4} is {} the interval",
        if ci.contains(truth) {
            "inside"
        } else {
            "outside"
        }
    );
}
