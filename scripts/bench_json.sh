#!/usr/bin/env bash
# Runs the sampler/experiment criterion benches and writes the results as
# a JSON array to BENCH_samplers.json (or $1), so successive PRs can
# track the performance trajectory.
#
# The workspace's offline criterion harness appends one JSON object per
# benchmark to the file named by $CRITERION_JSON:
#   {"id": "...", "ns_per_iter": ..., "iters": ..., "throughput_elems": ...}
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_samplers.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Keep this bench list in sync with scripts/check_bench_ids.sh, which
# diffs the ids these benches emit against the committed JSON.
CRITERION_JSON="$tmp" cargo bench -p sst-bench \
    --bench samplers --bench sigproc --bench generators --bench experiments \
    --bench monitor

{
    echo '['
    sed '$!s/$/,/' "$tmp"
    echo ']'
} > "$out"

echo "wrote $(grep -c ns_per_iter "$out") benchmark records to $out"
