#!/usr/bin/env bash
# Fails when the benchmark ids recorded in BENCH_samplers.json (or $1)
# drift from the ids the bench harness actually emits — a renamed or
# deleted benchmark would otherwise leave a stale perf record that the
# next PR "tracks" against nothing.
#
# The criterion shim's smoke mode (`-- --test`) runs every benchmark for
# one iteration and still appends its id to $CRITERION_JSON, so the
# enumeration costs seconds, not the full measurement budget.
#
# The monitor bench covers the lifecycle/wire/transport layers too:
# monitor/{compact_4096_streams,wire_roundtrip,evict_churn} plus the
# sketch-tier rows monitor/{sketch_churn,promote_demote} and the
# event-loop transport rows
# monitor/{serve_event_loop_64_sessions,serve_epoll_64_sessions,
# serve_multi_loop_2x,serve_multi_loop_4x,tcp_roundtrip} and the
# differential-wire rows
# monitor/{diff_flush_steady,diff_vs_cumulative_bytes} ride in the
# same --bench monitor harness below.
set -euo pipefail
cd "$(dirname "$0")/.."

ref="${1:-BENCH_samplers.json}"
if [[ ! -f "$ref" ]]; then
    echo "error: no benchmark record at $ref" >&2
    exit 2
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Keep this bench list in sync with scripts/bench_json.sh.
CRITERION_JSON="$tmp" cargo bench -p sst-bench \
    --bench samplers --bench sigproc --bench generators --bench experiments \
    --bench monitor \
    -- --test >/dev/null

ids_of() { grep -o '"id":"[^"]*"' "$1" | sort -u; }

if ! diff <(ids_of "$ref") <(ids_of "$tmp") >/dev/null; then
    echo "benchmark ids drifted between $ref and the bench harness:" >&2
    diff <(ids_of "$ref") <(ids_of "$tmp") >&2 || true
    echo "regenerate the record with scripts/bench_json.sh" >&2
    exit 1
fi
echo "bench ids match $ref ($(ids_of "$ref" | wc -l) benchmarks)"
