#!/usr/bin/env bash
# Runs both sst-analyze passes the way CI does and enforces the
# baseline shrink-only contract.
#
#   scripts/analyze.sh            # full gate: lint --deny --fail-stale,
#                                 # baseline-shrink check, check-sync
#   scripts/analyze.sh lint       # just the linter gate
#   scripts/analyze.sh check-sync # just the interleaving checker
#
# The baseline (analyze-baseline.txt) may only ever SHRINK: a new
# finding must be fixed or pragma-allowed, never appended to the
# baseline; a fixed finding must be pruned from it (--fail-stale
# catches forgetting). The git check below rejects any commit that
# grows the file relative to its parent.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"

run_lint() {
    cargo run -q -p sst-analyze -- lint --deny --fail-stale

    # Shrink-only: the working baseline must not have more entries than
    # the last committed one. With a clean tree (CI), compare against
    # the parent commit instead, so the gate still bites on the commit
    # that grew the file. Skipped when no prior baseline exists (the
    # introducing commit).
    count_lines() { grep -cv -e '^#' -e '^$' - || true; }
    new="$(count_lines < analyze-baseline.txt)"
    ref=""
    if ! git diff --quiet HEAD -- analyze-baseline.txt 2>/dev/null; then
        ref="HEAD" # working tree edited the baseline: diff against HEAD
    elif git cat-file -e 'HEAD^:analyze-baseline.txt' 2>/dev/null; then
        ref="HEAD^"
    fi
    if [[ -n "$ref" ]] && git cat-file -e "$ref:analyze-baseline.txt" 2>/dev/null; then
        old="$(git show "$ref:analyze-baseline.txt" | count_lines)"
        if (( new > old )); then
            echo "error: analyze-baseline.txt grew ($old -> $new entries vs $ref)." >&2
            echo "The baseline only shrinks: fix the new finding or add a" >&2
            echo 'file pragma `// sst-analyze: allow(<rule>) reason="..."`.' >&2
            exit 1
        fi
        echo "baseline: $new entries ($ref had $old) — shrink-only contract holds"
    else
        echo "baseline: $new entries (no prior baseline to compare)"
    fi
}

run_check_sync() {
    cargo run -q -p sst-analyze -- check-sync --min-schedules 10000
}

case "$mode" in
    lint) run_lint ;;
    check-sync) run_check_sync ;;
    all)
        run_lint
        run_check_sync
        ;;
    *)
        echo "usage: scripts/analyze.sh [lint|check-sync]" >&2
        exit 2
        ;;
esac
