//! Cross-crate integration: generator → sampler → estimator pipelines.

use selfsim::hurst::{consensus_hurst, LocalWhittleEstimator};
use selfsim::sampling::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use selfsim::sampling::{
    run_bss_experiment, run_experiment, Sampler, SimpleRandomSampler, StratifiedSampler,
    SystematicSampler,
};
use selfsim::stats::burst::BurstAnalysis;
use selfsim::stats::tailfit::fit_pareto_ccdf;
use selfsim::traffic::{FgnGenerator, SyntheticTraceSpec};

/// The full T3 pipeline: heavy-tailed LRD trace → all four samplers →
/// mean estimates, with BSS closest to the truth.
#[test]
fn end_to_end_mean_estimation() {
    let trace = SyntheticTraceSpec::new().length(1 << 18).seed(99).build();
    let truth = trace.mean();
    let interval = 1000;
    let n_inst = 9;

    let sys = run_experiment(trace.values(), &SystematicSampler::new(interval), n_inst, 5);
    let strat = run_experiment(trace.values(), &StratifiedSampler::new(interval), n_inst, 5);
    let ran = run_experiment(
        trace.values(),
        &SimpleRandomSampler::new(1.0 / interval as f64),
        n_inst,
        5,
    );
    let bss = run_bss_experiment(
        trace.values(),
        &BssSampler::new(interval, ThresholdPolicy::Online(OnlineTuning::default())).unwrap(),
        n_inst,
        5,
    );

    let err = |m: f64| (m - truth).abs() / truth;
    let e_sys = err(sys.median_mean());
    let e_bss = err(bss.median_mean());
    assert!(
        e_bss <= e_sys,
        "BSS err {e_bss:.4} vs systematic {e_sys:.4} (truth {truth:.3})"
    );
    // Plain samplers typically under-estimate here.
    assert!(sys.median_mean() <= truth * 1.05);
    assert!(strat.median_mean() <= truth * 1.1);
    assert!(ran.median_mean() <= truth * 1.2);
    // BSS overhead bounded.
    assert!(
        bss.mean_overhead() < 1.0,
        "overhead {}",
        bss.mean_overhead()
    );
}

/// T1 across crates: fGn → systematic sampling → Hurst estimation; the
/// sampled process keeps the exponent the same estimator sees on the
/// original.
#[test]
fn hurst_preserved_through_sampling() {
    let h = 0.8;
    let vals = FgnGenerator::new(h).unwrap().generate_values(1 << 17, 31);
    let est = LocalWhittleEstimator { bandwidth: 0.5 };
    let h_orig = est.estimate(&vals).unwrap().hurst;
    for interval in [4usize, 16] {
        let sampled = SystematicSampler::new(interval).sample(&vals, 2);
        let h_s = est.estimate(sampled.values()).unwrap().hurst;
        assert!(
            (h_s - h_orig).abs() < 0.08,
            "C={interval}: sampled {h_s:.3} vs original {h_orig:.3}"
        );
    }
}

/// The §V-B observation across crates: synthetic heavy-tailed traffic →
/// exceedance analysis → heavy-tailed burst lengths; and the marginal
/// itself fits a Pareto with the generator's α.
#[test]
fn burst_and_marginal_structure() {
    let trace = SyntheticTraceSpec::new()
        .length(1 << 17)
        .pareto_marginal(1.5, 5.68)
        .seed(3)
        .build();
    let marginal = fit_pareto_ccdf(trace.values(), 0.5).expect("fit");
    assert!(
        (marginal.alpha - 1.5).abs() < 0.3,
        "marginal α={}",
        marginal.alpha
    );

    let bursts = BurstAnalysis::at_relative_threshold(trace.values(), 0.5);
    assert!(bursts.bursts.len() > 100);
    let fit = bursts.tail_fit.expect("burst fit");
    assert!(
        fit.alpha < 3.0,
        "burst tail α={} should be heavy-ish",
        fit.alpha
    );
    // Eq. (18)-(20): persistence grows with τ for heavy-tailed bursts.
    let p1 = bursts.persistence(1).unwrap();
    let p5 = bursts.persistence(5).unwrap_or(1.0);
    assert!(
        p5 >= p1 * 0.8,
        "persistence should not collapse: p1={p1} p5={p5}"
    );
}

/// Generators agree: on/off aggregation, M/G/∞, and fGn+copula all
/// produce LRD traffic whose consensus Hurst is in the LRD band.
#[test]
fn all_generators_are_lrd() {
    use selfsim::traffic::{MgInfModel, OnOffModel};
    let n = 1 << 16;
    let onoff = OnOffModel::for_hurst(0.8, 32).unwrap().generate(n, 1);
    let mginf = MgInfModel::new(2.0, 1.4, 10.0).unwrap().generate(n, 1);
    let copula = SyntheticTraceSpec::new()
        .length(n)
        .gaussian_marginal(10.0, 2.0)
        .seed(1)
        .build();
    for (name, ts) in [("onoff", onoff), ("mginf", mginf), ("copula", copula)] {
        let h = consensus_hurst(ts.values()).expect("estimable");
        assert!(h > 0.6, "{name}: consensus H={h}");
    }
}

/// Determinism end-to-end: the same seeds produce byte-identical
/// experiment results.
#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let trace = SyntheticTraceSpec::new().length(1 << 14).seed(7).build();
        let bss = BssSampler::new(100, ThresholdPolicy::Online(OnlineTuning::default()))
            .unwrap()
            .sample_detailed(trace.values(), 9);
        (trace.mean(), bss.mean(), bss.qualified_count)
    };
    assert_eq!(run(), run());
}
