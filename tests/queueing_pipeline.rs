//! Integration: the paper's downstream use case — queueing analysis from
//! sampled traffic. Dimensioning decisions made from the *sampled*
//! process should match decisions made from the full trace.

use selfsim::hurst::LocalWhittleEstimator;
use selfsim::queue::{norros_overflow, FluidQueue};
use selfsim::sampling::{Sampler, SystematicSampler};
use selfsim::traffic::SyntheticTraceSpec;

#[test]
fn sampled_h_gives_same_dimensioning_as_full_trace() {
    let trace = SyntheticTraceSpec::new()
        .length(1 << 17)
        .hurst(0.8)
        .gaussian_marginal(100.0, 10.0)
        .seed(8)
        .build();
    let est = LocalWhittleEstimator::default();
    let h_full = est.estimate(trace.values()).unwrap().hurst;
    let sampled = SystematicSampler::new(8).sample(trace.values(), 1);
    let h_sampled = est.estimate(sampled.values()).unwrap().hurst;

    // The paper's T1 claim: systematic sampling preserves H, so the
    // Hurst estimate from the thinned trace must agree with the full one.
    assert!(
        (h_sampled - h_full).abs() < 0.06,
        "H diverges under sampling: full {h_full:.3} vs sampled {h_sampled:.3}"
    );
    // The downstream consequence: the Norros buffer-dimensioning exponent
    // 1/(2-2H) amplifies H errors nonlinearly; sampled-vs-full must still
    // land in the same dimensioning regime.
    let exp_full = 1.0 / (2.0 - 2.0 * h_full);
    let exp_sampled = 1.0 / (2.0 - 2.0 * h_sampled);
    assert!(
        (exp_sampled / exp_full - 1.0).abs() < 0.40,
        "dimensioning exponents diverge: full {exp_full:.3} vs sampled {exp_sampled:.3}"
    );
}

#[test]
fn lrd_queue_overflow_decays_slower_than_exponential() {
    let trace = SyntheticTraceSpec::new()
        .length(1 << 17)
        .hurst(0.85)
        .gaussian_marginal(100.0, 10.0)
        .seed(3)
        .build();
    // Small headroom so the buffer actually builds: service ≈ mean/0.95.
    let path = FluidQueue::for_utilization(&trace, 0.95).drive(&trace);
    let curve = path.overflow_curve(24);
    assert!(
        curve.len() >= 10,
        "need a usable overflow curve, got {} pts",
        curve.len()
    );

    // LRD input gives a Weibull occupancy tail, log P(Q>b) ∝ −b^{2−2H}
    // with 2−2H = 0.3 ≪ 1: log-convex in b. Fit an exponential
    // (log-linear) model on the small-buffer half of the curve and
    // extrapolate to the largest observed buffer — the measured tail
    // must sit clearly above the exponential extrapolation.
    let half = curve.len() / 2;
    let (xs, ys): (Vec<f64>, Vec<f64>) = curve[..half].iter().map(|&(b, p)| (b, p.ln())).unzip();
    let fit = selfsim::sigproc::regress::ols(&xs, &ys);
    assert!(
        fit.slope < 0.0,
        "overflow curve must decay, slope {}",
        fit.slope
    );
    let (b_big, p_big) = curve[curve.len() - 2];
    let exp_pred = (fit.intercept + fit.slope * b_big).exp();
    assert!(
        p_big > 3.0 * exp_pred,
        "LRD overflow {p_big:.3e} at b={b_big:.1} should exceed exponential \
         extrapolation {exp_pred:.3e} (slower-than-exponential tail)"
    );
    assert!(p_big < 1.0);

    // The analytic version of the same statement: at large buffers the
    // Norros LRD (H=0.85) formula must predict vastly more overflow than
    // the SRD (H=0.5) exponential. (The two curves cross at small b, so
    // evaluate deep in the tail.)
    let sigma = trace
        .values()
        .iter()
        .map(|x| (x - trace.mean()).powi(2))
        .sum::<f64>()
        / trace.len() as f64;
    let sigma = sigma.sqrt();
    let b_large = 50.0 * sigma;
    let srd = norros_overflow(b_large, 0.5, trace.mean(), sigma, path.service_rate());
    let lrd = norros_overflow(b_large, 0.85, trace.mean(), sigma, path.service_rate());
    assert!(
        lrd > 1e6 * srd,
        "Norros: LRD {lrd:.3e} must dwarf SRD {srd:.3e} at b={b_large:.0}"
    );
}

#[test]
fn queue_fed_by_sampled_reconstruction_is_conservative_check() {
    // Driving the queue with a BSS-sampled summary (per-interval mean of
    // kept samples) should not wildly misstate mean occupancy vs truth.
    // A single instance can be arbitrarily unlucky — one huge qualified
    // sample held across a long gap inflates the reconstruction by
    // orders of magnitude — so the claim is pinned on the *median*
    // instance.
    use selfsim::sampling::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
    let trace = SyntheticTraceSpec::new().length(1 << 16).seed(12).build();
    let service = trace.mean() / 0.7;
    let full = FluidQueue::new(service).drive(&trace);

    let sampler = BssSampler::new(64, ThresholdPolicy::Online(OnlineTuning::default())).unwrap();
    let mut ratios: Vec<f64> = (0..5u64)
        .map(|instance_seed| {
            let bss = sampler.sample_detailed(trace.values(), 2 + 2 * instance_seed);
            // Reconstruct a rate series from the samples
            // (piecewise-constant hold).
            let mut recon = Vec::with_capacity(trace.len());
            let mut cursor = 0usize;
            let idx = bss.samples.indices();
            let vals = bss.samples.values();
            for t in 0..trace.len() {
                while cursor + 1 < idx.len() && idx[cursor + 1] <= t {
                    cursor += 1;
                }
                recon.push(vals[cursor.min(vals.len() - 1)]);
            }
            let recon_ts = selfsim::stats::TimeSeries::from_values(trace.dt(), recon);
            let approx = FluidQueue::new(service).drive(&recon_ts);
            let (a, b) = (
                full.mean_occupancy().max(1e-9),
                approx.mean_occupancy().max(1e-9),
            );
            a.max(b) / a.min(b)
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    // Order-of-magnitude agreement on mean occupancy for the median
    // instance.
    let median = ratios[ratios.len() / 2];
    assert!(
        median < 50.0,
        "median occupancy ratio {median:.1} across instances {ratios:?}"
    );
}
