//! Smoke-level integration for the reproduction harness: every figure
//! runs at quick scale, produces non-empty tables, and renders.

use sst_bench::figures::{run_one, ALL};
use sst_bench::{Ctx, Scale};

#[test]
fn every_figure_runs_and_renders() {
    let ctx = Ctx::new(Scale::Quick, 424242);
    for id in ALL {
        let rep = run_one(id, &ctx).unwrap_or_else(|| panic!("unknown id {id}"));
        assert_eq!(&rep.id, id);
        assert!(!rep.tables.is_empty(), "{id}: no tables");
        for t in &rep.tables {
            assert!(!t.rows.is_empty(), "{id}: empty table '{}'", t.title);
            for row in &t.rows {
                // No empty cells, and every row carries at least one
                // number (label columns are allowed).
                assert!(row.iter().all(|c| !c.is_empty()), "{id}: empty cell");
                assert!(
                    row.iter().any(|c| c.parse::<f64>().is_ok()),
                    "{id}: row without numeric cells: {row:?}"
                );
            }
        }
        let rendered = rep.to_string();
        assert!(rendered.contains(id));
    }
}

#[test]
fn unknown_figure_is_rejected() {
    let ctx = Ctx::new(Scale::Quick, 1);
    assert!(run_one("fig99", &ctx).is_none());
    assert!(run_one("", &ctx).is_none());
}

#[test]
fn different_seeds_change_measured_figures_but_not_analytic_ones() {
    let a = Ctx::new(Scale::Quick, 1);
    let b = Ctx::new(Scale::Quick, 2);
    // fig04 is purely analytic — identical across seeds.
    assert_eq!(
        run_one("fig04", &a).unwrap().to_string(),
        run_one("fig04", &b).unwrap().to_string()
    );
    // fig06 measures traces — differs across seeds.
    assert_ne!(
        run_one("fig06", &a).unwrap().to_string(),
        run_one("fig06", &b).unwrap().to_string()
    );
}
