//! Integration: the discrete-event simulator as workload source for the
//! rest of the stack — sampling, Hurst estimation, queueing, and
//! packet-level capture all driven by the same simulated traffic.

use selfsim::dess::{LinkSpec, OnOffScenario};
use selfsim::hurst::LocalWhittleEstimator;
use selfsim::queue::FluidQueue;
use selfsim::sampling::{Sampler, SystematicSampler};

fn scenario() -> OnOffScenario {
    OnOffScenario::new()
        .sources(16)
        .hurst(0.8)
        .periods(0.3, 0.3)
        .emission(100.0, 400)
        .bin_width(0.05)
        .duration(420.0)
}

#[test]
fn sampling_simulated_traffic_preserves_hurst() {
    let out = scenario().run(77);
    let est = LocalWhittleEstimator::default();
    let h_full = est
        .estimate(out.offered.values())
        .expect("long enough")
        .hurst;
    let sampled = SystematicSampler::new(8).sample(out.offered.values(), 3);
    let h_thin = est.estimate(sampled.values()).expect("long enough").hurst;
    assert!(h_full > 0.6, "aggregate should be LRD, got H = {h_full:.3}");
    assert!(
        (h_full - h_thin).abs() < 0.12,
        "systematic thinning moved H from {h_full:.3} to {h_thin:.3}"
    );
}

#[test]
fn fluid_queue_and_packet_link_agree_on_the_loss_regime() {
    // Drive (a) the packet-level drop-tail bottleneck and (b) the fluid
    // FIFO queue with the same aggregate at the same service rate; both
    // must agree on whether the system is lossy.
    let sc = scenario();
    let capacity_bps = sc.offered_load() * 8.0 / 0.9; // 90% load
    let packet = OnOffScenario::new()
        .sources(16)
        .hurst(0.8)
        .periods(0.3, 0.3)
        .emission(100.0, 400)
        .bin_width(0.05)
        .duration(420.0)
        .bottleneck(LinkSpec {
            capacity_bps,
            queue_limit: 16,
        })
        .run(77);
    assert!(
        packet.loss_rate > 0.0,
        "packet model should drop at 90% load, queue 16"
    );

    let offered = scenario().run(77).offered;
    let fluid = FluidQueue::new(capacity_bps / 8.0).drive(&offered);
    // Buffer worth 16 packets of 400 B: the fluid model must also show
    // occupancy beyond it a nontrivial fraction of the time.
    let p_over = fluid.overflow_probability(16.0 * 400.0);
    assert!(
        p_over > 0.0,
        "fluid model sees no occupancy above the packet queue limit"
    );
}

#[test]
fn lrd_aggregate_needs_bigger_buffers_than_mild_one() {
    // Same offered load, two tail regimes: α = 1.2 (H = 0.9) vs α = 1.9
    // (H = 0.55). The heavy aggregate needs a much larger buffer for the
    // same loss target — the operational consequence of the Hurst
    // parameter the paper's introduction motivates.
    let build = |alpha: f64| {
        OnOffScenario::new()
            .sources(16)
            .alpha(alpha)
            .periods(0.3, 0.3)
            .emission(100.0, 400)
            .bin_width(0.05)
            .duration(420.0)
            .run(5)
            .offered
    };
    let heavy = build(1.2);
    let mild = build(1.9);
    let q_heavy = FluidQueue::for_utilization(&heavy, 0.9).drive(&heavy);
    let q_mild = FluidQueue::for_utilization(&mild, 0.9).drive(&mild);
    let b_heavy = q_heavy.buffer_for_loss(0.05).unwrap_or(f64::INFINITY);
    let b_mild = q_mild.buffer_for_loss(0.05).unwrap_or(f64::INFINITY);
    assert!(
        b_heavy > b_mild,
        "H=0.9 aggregate should need a bigger buffer: {b_heavy:.0} vs {b_mild:.0}"
    );
}

#[test]
fn captured_trace_flows_through_packet_tooling() {
    use selfsim::nettrace::TrajectorySampler;
    let out = OnOffScenario::new()
        .sources(4)
        .emission(50.0, 500)
        .duration(60.0)
        .capture(true)
        .run(3);
    let trace = out.trace.expect("capture requested");
    assert!(!trace.is_empty());
    // Trajectory sampling is consistent on simulator-generated packets.
    let tj = TrajectorySampler::new(0.1, 9);
    assert_eq!(tj.sample(&trace), tj.sample(&trace));
    // Binning the capture reproduces the tap's totals (bytes = Σ rate·dt
    // at each tap's own granularity).
    let series = trace.to_rate_series(0.05);
    let tap_total: f64 = out.offered.values().iter().sum::<f64>() * out.offered.dt();
    let cap_total: f64 = series.values().iter().sum::<f64>() * series.dt();
    assert!(
        (tap_total - cap_total).abs() / tap_total < 1e-9,
        "tap {tap_total} vs capture {cap_total}"
    );
}
