//! Slow tier: paper-scale figure claims, ignored by default.
//!
//! The quick-scale figure tests assert *directional* claims (signs of
//! the bias) because error-magnitude comparisons swing with the trace
//! realization at 2^17/9-instance scale. At `Scale::Paper` (2^21-point
//! traces, 21 instances, the full low-rate grid) the **magnitude**
//! comparisons stabilize; this tier pins the ones that hold across
//! seeds (probed at seeds {1, 7, 424242, 20050607}):
//!
//! * fig16: BSS's |signed bias| is strictly smaller than systematic's —
//!   the deliberate bias *nets out closer to the truth*, not merely on
//!   the other side of it;
//! * fig18: the paper's headline fidelity metric 1−η ranks BSS above
//!   both unbiased baselines;
//! * adaptive ablation: BSS beats systematic on |bias| while rate
//!   adaptation only reaches its accuracy by spending ~10× its nominal
//!   budget (BSS ≈ 1.03×).
//!
//! Run with:
//!
//! ```text
//! cargo test -q --release -- --ignored
//! ```
//!
//! CI runs this as a separate non-blocking job.

use sst_bench::figures::run_one;
use sst_bench::{Ctx, Scale};

fn nums_in(s: &str) -> Vec<f64> {
    s.split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .filter_map(|t| t.parse().ok())
        .collect()
}

fn paper_ctx() -> Ctx {
    // The default reproduction seed, at full scale.
    Ctx::new(Scale::Paper, 20050607)
}

#[test]
#[ignore = "paper-scale; run with -- --ignored"]
fn fig16_bss_bias_magnitude_beats_systematic_at_paper_scale() {
    let rep = run_one("fig16", &paper_ctx()).expect("fig16 exists");
    // notes[1]: "panel (b) signed bias: BSS X vs systematic Y".
    let nums = nums_in(&rep.notes[1]);
    let (bss_bias, sys_bias) = (nums[nums.len() - 2], nums[nums.len() - 1]);
    assert!(
        sys_bias < 0.0,
        "systematic should underestimate: signed bias {sys_bias}"
    );
    assert!(
        bss_bias.abs() < sys_bias.abs(),
        "at paper scale BSS's bias magnitude must beat systematic's: \
         |{bss_bias}| vs |{sys_bias}|"
    );
}

#[test]
#[ignore = "paper-scale; run with -- --ignored"]
fn fig18_fidelity_ordering_at_paper_scale() {
    // The headline evaluation's magnitude ordering on the paper's
    // fidelity metric (paper: 1−η of 0.922 BSS / 0.66 systematic /
    // 0.81 simple). The quick tier asserts BSS ≥ systematic; at paper
    // scale BSS strictly tops *both* unbiased baselines.
    let rep = run_one("fig18", &paper_ctx()).expect("fig18 exists");
    // notes[1]: "average 1−η: BSS X vs systematic Y vs simple Z (…)".
    let nums = nums_in(&rep.notes[1]);
    let (bss, sys, simple) = (nums[0], nums[1], nums[2]);
    assert!(
        bss > sys,
        "1−η ordering: BSS {bss} must strictly beat systematic {sys} at paper scale"
    );
    assert!(
        bss > simple,
        "1−η ordering: BSS {bss} must strictly beat simple random {simple} at paper scale"
    );
}

#[test]
#[ignore = "paper-scale; run with -- --ignored"]
fn adaptive_ablation_magnitudes_at_paper_scale() {
    let rep = run_one("adaptive", &paper_ctx()).expect("adaptive figure exists");
    // notes[2]: "signed bias: systematic A / adaptive B / BSS C".
    let nums = nums_in(&rep.notes[2]);
    let (sys_bias, adapt_bias, bss_bias) = (nums[0], nums[1], nums[2]);
    assert!(
        bss_bias.abs() < sys_bias.abs(),
        "BSS |bias| {bss_bias} must beat systematic {sys_bias} at paper scale"
    );
    assert!(
        adapt_bias < 0.0,
        "adaptive stays biased low even at paper scale: {adapt_bias}"
    );
    // notes[1]: "adaptive spends Ax … BSS spends Cx — … (Figs. 18/20) …".
    let spend = nums_in(&rep.notes[1]);
    let (adapt_spend, bss_spend) = (spend[0], spend[2]);
    assert!(
        adapt_spend > 5.0 * bss_spend,
        "adaptation's accuracy is bought with budget: adaptive {adapt_spend}x \
         vs BSS {bss_spend}x nominal"
    );
    assert!(
        bss_spend < 1.5,
        "BSS stays near its nominal budget: {bss_spend}x"
    );
}
