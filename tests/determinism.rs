//! Determinism contracts for the performance pipeline: the planned /
//! cached / parallel fast paths must be **byte-identical** to the
//! sequential reference algorithms — speed must never change results.

use selfsim::sampling::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use selfsim::sampling::{
    run_bss_experiment, run_experiment, ParallelExperimentRunner, Sampler, SimpleRandomSampler,
    StratifiedSampler, SystematicSampler,
};
use selfsim::sigproc::complex::Complex;
use selfsim::sigproc::fft::{fft_pow2_in_place, next_pow2};
use selfsim::stats::dist::{standard_normal, standard_normal_boxmuller};
use selfsim::stats::model::FgnAcf;
use selfsim::stats::rng::rng_from_seed;
use selfsim::traffic::fgn::{FgnPlan, FgnScratch};
use selfsim::traffic::{FgnGenerator, SyntheticTraceSpec};

/// The original (pre-plan) Davies-Harte generation algorithm, kept
/// verbatim as the reference: derives the circulant eigenvalue spectrum
/// from scratch on every call with Box-Muller Gaussians (the seed's
/// `standard_normal`, now exported as `standard_normal_boxmuller`).
fn reference_davies_harte(hurst: f64, n: usize, seed: u64) -> Vec<f64> {
    assert!(n >= 1);
    if n == 1 {
        let mut rng = rng_from_seed(seed);
        return vec![standard_normal_boxmuller(&mut rng)];
    }
    let big_n = next_pow2(n);
    let m = 2 * big_n;
    let acf = FgnAcf::new(hurst);
    let mut row = vec![Complex::ZERO; m];
    for (k, slot) in row.iter_mut().enumerate().take(big_n + 1) {
        *slot = Complex::from_real(acf.at(k as u64));
    }
    for k in 1..big_n {
        row[m - k] = Complex::from_real(acf.at(k as u64));
    }
    fft_pow2_in_place(&mut row);
    let lambda: Vec<f64> = row.iter().map(|z| z.re.max(0.0)).collect();

    let mut rng = rng_from_seed(seed);
    let mut spec = vec![Complex::ZERO; m];
    spec[0] = Complex::from_real((lambda[0]).sqrt() * standard_normal_boxmuller(&mut rng));
    spec[big_n] = Complex::from_real((lambda[big_n]).sqrt() * standard_normal_boxmuller(&mut rng));
    for k in 1..big_n {
        let g = standard_normal_boxmuller(&mut rng);
        let h = standard_normal_boxmuller(&mut rng);
        let amp = (lambda[k] / 2.0).sqrt();
        spec[k] = Complex::new(amp * g, amp * h);
        spec[m - k] = spec[k].conj();
    }
    fft_pow2_in_place(&mut spec);
    let norm = 1.0 / (m as f64).sqrt();
    spec.into_iter().take(n).map(|z| z.re * norm).collect()
}

/// The fast half-spectrum path, re-derived independently: the same
/// ziggurat draws placed in the full Hermitian spectrum and inverted
/// with the full complex FFT. The production path factors the transform
/// differently (half-size complex FFT + twiddle merge), so agreement is
/// to round-off (≤1e-9), not bit-exact.
fn reference_davies_harte_ziggurat(hurst: f64, n: usize, seed: u64) -> Vec<f64> {
    assert!(n >= 1);
    if n == 1 {
        let mut rng = rng_from_seed(seed);
        return vec![standard_normal(&mut rng)];
    }
    let big_n = next_pow2(n);
    let m = 2 * big_n;
    let acf = FgnAcf::new(hurst);
    let mut row = vec![Complex::ZERO; m];
    for (k, slot) in row.iter_mut().enumerate().take(big_n + 1) {
        *slot = Complex::from_real(acf.at(k as u64));
    }
    for k in 1..big_n {
        row[m - k] = Complex::from_real(acf.at(k as u64));
    }
    fft_pow2_in_place(&mut row);
    let lambda: Vec<f64> = row.iter().map(|z| z.re.max(0.0)).collect();

    let mut rng = rng_from_seed(seed);
    let mut spec = vec![Complex::ZERO; m];
    spec[0] = Complex::from_real((lambda[0]).sqrt() * standard_normal(&mut rng));
    spec[big_n] = Complex::from_real((lambda[big_n]).sqrt() * standard_normal(&mut rng));
    for k in 1..big_n {
        let g = standard_normal(&mut rng);
        let h = standard_normal(&mut rng);
        let amp = (lambda[k] / 2.0).sqrt();
        spec[k] = Complex::new(amp * g, amp * h);
        spec[m - k] = spec[k].conj();
    }
    fft_pow2_in_place(&mut spec);
    let norm = 1.0 / (m as f64).sqrt();
    spec.into_iter().take(n).map(|z| z.re * norm).collect()
}

#[test]
fn fgn_legacy_paths_are_bit_identical_to_reference() {
    // Several (H, n, seed) triples spanning short/long, pow2/non-pow2.
    let cases = [
        (0.55f64, 64usize, 0u64),
        (0.7, 100, 1),
        (0.8, 1 << 12, 42),
        (0.8, 1 << 12, 43),
        (0.92, 1023, 2024),
        (0.6, 1, 7),
    ];
    let mut out = Vec::new();
    let mut scratch = FgnScratch::default();
    for &(h, n, seed) in &cases {
        let want = reference_davies_harte(h, n, seed);
        // Fresh plan, legacy buffer-reuse entry point: must reproduce
        // the seed algorithm bit for bit.
        let plan = FgnPlan::new(h, n).expect("valid");
        plan.generate_values_into_legacy(seed, &mut out, &mut scratch);
        assert_eq!(out, want, "legacy plan: H={h} n={n} seed={seed}");
        assert_eq!(
            plan.generate_values_legacy(seed),
            want,
            "legacy alloc: H={h} n={n} seed={seed}"
        );
    }
}

#[test]
fn fgn_fast_paths_match_full_spectrum_reference() {
    let cases = [
        (0.55f64, 64usize, 0u64),
        (0.7, 100, 1),
        (0.8, 1 << 12, 42),
        (0.92, 1023, 2024),
        (0.6, 1, 7),
    ];
    let mut out = Vec::new();
    let mut scratch = FgnScratch::default();
    for &(h, n, seed) in &cases {
        let want = reference_davies_harte_ziggurat(h, n, seed);
        let max_err = |got: &[f64]| {
            got.iter()
                .zip(&want)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        // Path 1: fresh plan, buffer-reuse entry point.
        let plan = FgnPlan::new(h, n).expect("valid");
        plan.generate_values_into(seed, &mut out, &mut scratch);
        let err = max_err(&out);
        assert!(err <= 1e-9, "fresh plan: H={h} n={n} seed={seed} err={err}");
        // Path 2: the generator facade, which goes through the shared
        // process-wide LRU cache — must be bit-identical to the fresh
        // plan (the cache introduces no numeric drift).
        let cached = FgnGenerator::new(h)
            .expect("valid")
            .generate_values(n, seed);
        assert_eq!(cached, out, "cached plan: H={h} n={n} seed={seed}");
        // Path 3: cache hit on a second call (exercises the LRU reorder).
        let cached_again = FgnGenerator::new(h)
            .expect("valid")
            .generate_values(n, seed);
        assert_eq!(cached_again, out, "cache hit: H={h} n={n} seed={seed}");
    }
}

#[test]
fn synthetic_builds_are_stable_across_cache_states() {
    // The builder's output must not depend on whether the plan cache is
    // cold, warm, or was evicted in between.
    let spec = SyntheticTraceSpec::new().length(1 << 10).hurst(0.8).seed(5);
    let first = spec.build();
    // Thrash the LRU with other (H, n) pairs.
    for i in 0..12u64 {
        let h = 0.6 + 0.02 * i as f64;
        let _ = FgnGenerator::new(h)
            .unwrap()
            .generate_values(128 + i as usize, i);
    }
    assert_eq!(first, spec.build());
}

#[test]
fn parallel_experiment_is_byte_equal_to_sequential() {
    let trace = SyntheticTraceSpec::new().length(1 << 14).seed(77).build();
    let vals = trace.values();
    let samplers: Vec<Box<dyn Sampler + Send + Sync>> = vec![
        Box::new(SystematicSampler::new(64)),
        Box::new(StratifiedSampler::new(64)),
        Box::new(SimpleRandomSampler::new(0.02)),
    ];
    for s in &samplers {
        for &(instances, seed) in &[(1usize, 0u64), (8, 3), (30, 12345)] {
            let seq = run_experiment(vals, s.as_ref(), instances, seed);
            for jobs in [1usize, 3, 16] {
                let par = ParallelExperimentRunner::new().with_jobs(jobs).run(
                    vals,
                    s.as_ref(),
                    instances,
                    seed,
                );
                assert_eq!(
                    par.instances,
                    seq.instances,
                    "{} instances={instances} seed={seed} jobs={jobs}",
                    s.name()
                );
                assert_eq!(par.true_mean.to_bits(), seq.true_mean.to_bits());
            }
        }
    }
}

#[test]
fn parallel_bss_experiment_is_byte_equal_to_sequential() {
    let trace = SyntheticTraceSpec::new().length(1 << 14).seed(9).build();
    let vals = trace.values();
    let bss =
        BssSampler::new(200, ThresholdPolicy::Online(OnlineTuning::default())).expect("valid");
    let seq = run_bss_experiment(vals, &bss, 12, 4);
    let par = ParallelExperimentRunner::new().run_bss(vals, &bss, 12, 4);
    assert_eq!(par.instances, seq.instances);
    assert_eq!(par.sampler, seq.sampler);
}
