//! Compile-time API contracts across the workspace's public types:
//! everything a user holds should be `Send + Sync` (the experiment
//! runner fans instances across threads), `Debug` (C-DEBUG), and
//! `Clone` where it is plain data — the Rust API guidelines' common
//! traits, checked so regressions fail loudly.

fn send_sync<T: Send + Sync>() {}
fn debug<T: std::fmt::Debug>() {}
fn clone<T: Clone>() {}

#[test]
fn samplers_are_thread_safe_plain_data() {
    use selfsim::sampling::adaptive::{AdaptiveConfig, AdaptiveRandomSampler};
    use selfsim::sampling::bss::{BssOutcome, BssSampler};
    use selfsim::sampling::{Samples, SimpleRandomSampler, StratifiedSampler, SystematicSampler};

    send_sync::<SystematicSampler>();
    send_sync::<StratifiedSampler>();
    send_sync::<SimpleRandomSampler>();
    send_sync::<BssSampler>();
    send_sync::<AdaptiveRandomSampler>();
    send_sync::<Samples>();
    send_sync::<BssOutcome>();

    debug::<SystematicSampler>();
    debug::<BssSampler>();
    debug::<AdaptiveConfig>();
    clone::<Samples>();
    clone::<BssOutcome>();
    clone::<AdaptiveConfig>();
}

#[test]
fn streaming_samplers_are_send() {
    use selfsim::sampling::stream::{
        StreamDecision, StreamingBss, StreamingSimpleRandom, StreamingStratified,
        StreamingSystematic,
    };
    // Streaming samplers hold RNG state, so they are Send (movable into
    // a worker thread) — per-point mutation makes &self-sharing moot.
    fn send<T: Send>() {}
    send::<StreamingSystematic>();
    send::<StreamingStratified>();
    send::<StreamingSimpleRandom>();
    send::<StreamingBss>();
    debug::<StreamDecision>();
    clone::<StreamingBss>();
}

#[test]
fn substrates_are_thread_safe() {
    use selfsim::dess::{BottleneckLink, EventQueue, OnOffScenario, ScenarioOutput};
    use selfsim::nettrace::{FlowKey, Packet, PacketTrace, SampleAndHold, TrajectorySampler};
    use selfsim::queue::{FluidQueue, QueuePath};
    use selfsim::stats::{Stable, TimeSeries};
    use selfsim::traffic::SyntheticTraceSpec;

    send_sync::<TimeSeries>();
    send_sync::<PacketTrace>();
    send_sync::<Packet>();
    send_sync::<FlowKey>();
    send_sync::<FluidQueue>();
    send_sync::<QueuePath>();
    send_sync::<EventQueue<u32>>();
    send_sync::<BottleneckLink>();
    send_sync::<OnOffScenario>();
    send_sync::<ScenarioOutput>();
    send_sync::<TrajectorySampler>();
    send_sync::<SampleAndHold>();
    send_sync::<Stable>();
    send_sync::<SyntheticTraceSpec>();

    clone::<TimeSeries>();
    clone::<PacketTrace>();
    clone::<OnOffScenario>();
    debug::<ScenarioOutput>();
}

#[test]
fn errors_are_well_behaved() {
    use selfsim::dess::ScheduleInPastError;
    use selfsim::hurst::EstimateError;
    use selfsim::nettrace::CodecError;
    use selfsim::sampling::adaptive::InvalidAdaptiveConfig;
    use selfsim::sampling::bss::BssConfigError;
    use selfsim::stats::stable::InvalidStableError;

    fn error<T: std::error::Error + Send + Sync + 'static>() {}
    error::<EstimateError>();
    error::<BssConfigError>();
    error::<InvalidAdaptiveConfig>();
    error::<CodecError>();
    error::<ScheduleInPastError>();
    error::<InvalidStableError>();

    // Display messages are lowercase-ish, non-empty, unpunctuated ends
    // (C-GOOD-ERR style).
    let msgs = [
        EstimateError::Degenerate.to_string(),
        ScheduleInPastError { at: 1.0, now: 2.0 }.to_string(),
    ];
    for m in msgs {
        assert!(!m.is_empty());
        assert!(!m.ends_with('.'), "error message ends with period: {m}");
    }
}

#[test]
fn estimators_and_reports_are_copyable_values() {
    use selfsim::hurst::{HurstEstimate, Method};
    fn copy<T: Copy>() {}
    copy::<HurstEstimate>();
    copy::<Method>();
    send_sync::<HurstEstimate>();
}
