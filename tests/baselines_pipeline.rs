//! Integration: the related-work baseline samplers against the paper's
//! own machinery on shared workloads — the "biased beats unbiased on
//! heavy tails" theme, cross-checked at flow level and time-series
//! level.

use selfsim::nettrace::{exact_flow_bytes, SampleAndHold, TraceSynthesizer};
use selfsim::sampling::adaptive::{AdaptiveConfig, AdaptiveRandomSampler};
use selfsim::sampling::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use selfsim::sampling::Sampler;
use selfsim::traffic::SyntheticTraceSpec;

#[test]
fn sample_and_hold_beats_uniform_packet_sampling_on_recall() {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(240.0)
        .synthesize(3);
    let exact = exact_flow_bytes(&trace);
    let total: u64 = exact.values().sum();
    let threshold = total / 100; // 1%-of-volume flows
    let truth: Vec<u32> = exact
        .iter()
        .filter(|&(_, &b)| b >= threshold)
        .map(|(&f, _)| f)
        .collect();
    assert!(!truth.is_empty(), "workload must contain heavy hitters");

    let report = SampleAndHold::for_threshold(threshold as f64, 4.0).run(&trace, 1);
    let caught = truth
        .iter()
        .filter(|f| report.counted_bytes().contains_key(f))
        .count();
    assert!(
        caught * 10 >= truth.len() * 9,
        "sample-and-hold caught {caught}/{} heavy hitters",
        truth.len()
    );
}

#[test]
fn adaptive_spends_more_but_stays_biased_low_where_bss_recovers() {
    // The ablation claim at integration scope: on a heavy-tailed LRD
    // trace, adaptive random sampling adapts its *rate* yet remains an
    // unbiased estimator, so it underestimates like the classical
    // techniques; BSS's deliberate bias lands closer to the truth.
    let trace = SyntheticTraceSpec::new()
        .length(1 << 17)
        .hurst(0.8)
        .pareto_marginal(1.3, 5.68)
        .seed(9)
        .build();
    let truth = trace.mean();
    let rate = 1e-3;
    // Enough instances that the median underestimation claim is stable
    // (with α = 1.3 marginals a 7-instance median occasionally lands
    // above the truth for particular RNG streams).
    let instances = 21u64;

    let adapt = AdaptiveRandomSampler::new(AdaptiveConfig {
        block_len: 8_000,
        initial_rate: rate,
        min_rate: rate / 10.0,
        max_rate: (rate * 10.0).min(1.0),
        ..AdaptiveConfig::default()
    })
    .expect("valid");
    let bss = BssSampler::new(
        (1.0 / rate) as usize,
        ThresholdPolicy::Online(OnlineTuning {
            epsilon: 1.0,
            alpha: 1.3,
            ..OnlineTuning::default()
        }),
    )
    .expect("valid");

    let median = |mut xs: Vec<f64>| {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs[xs.len() / 2]
    };
    let adapt_means: Vec<f64> = (0..instances)
        .map(|s| adapt.sample(trace.values(), s).mean())
        .collect();
    let bss_means: Vec<f64> = (0..instances)
        .map(|s| bss.sample_detailed(trace.values(), s).mean())
        .collect();
    let adapt_med = median(adapt_means);
    let bss_med = median(bss_means);

    assert!(
        adapt_med < truth,
        "adaptive should underestimate the heavy-tailed mean: {adapt_med:.3} vs {truth:.3}"
    );
    // BSS's deliberate bias counteracts the classical underestimation:
    // its median lands on the *other* side of the truth (with ε = 1.0
    // and α = 1.3 it overshoots rather than undershoots) and therefore
    // strictly above the adaptive estimate. The magnitude of the
    // overshoot varies too much across trace seeds to pin down, but the
    // direction of the recovery is stable.
    assert!(
        bss_med > adapt_med,
        "BSS should recover upward from adaptive's underestimate: {bss_med:.3} vs {adapt_med:.3}"
    );
    assert!(
        bss_med > truth * 0.98,
        "BSS should not share the underestimation: {bss_med:.3} vs truth {truth:.3}"
    );
}

#[test]
fn trajectory_sampling_composes_with_flow_accounting() {
    use selfsim::nettrace::TrajectorySampler;
    use std::collections::BTreeMap;
    // Horvitz-Thompson over a consistent 5% trajectory sample estimates
    // total volume within 25%.
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(240.0)
        .synthesize(11);
    let tj = TrajectorySampler::new(0.05, 3);
    let picked = tj.sample(&trace);
    let mut est: BTreeMap<u32, f64> = BTreeMap::new();
    for &i in &picked {
        let p = trace.packets()[i];
        *est.entry(p.flow).or_insert(0.0) += p.size as f64 / 0.05;
    }
    let est_total: f64 = est.values().sum();
    let true_total: f64 = trace.total_bytes() as f64;
    assert!(
        (est_total / true_total - 1.0).abs() < 0.25,
        "HT estimate {est_total:.0} vs truth {true_total:.0}"
    );
}
