//! Integration: packet-trace substrate → binning → sampling → metrics,
//! including serialization round trips at realistic size.

use selfsim::nettrace::{decode, encode, TraceSynthesizer};
use selfsim::sampling::bss::{BssSampler, OnlineTuning, ThresholdPolicy};
use selfsim::sampling::{Sampler, SystematicSampler};

#[test]
fn bell_labs_like_trace_matches_paper_calibration() {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(600.0)
        .synthesize(77);
    // Mean rate in the calibrated band (heavy tails: wide tolerance).
    let rate = trace.mean_rate();
    assert!(
        (rate - 1.21e4).abs() / 1.21e4 < 0.6,
        "mean rate {rate} vs 1.21e4"
    );
    // Hundreds of OD pairs, realistic packet sizes.
    assert!(
        trace.od_pair_count() > 80,
        "pairs={}",
        trace.od_pair_count()
    );
    assert!(trace
        .packets()
        .iter()
        .all(|p| (40..=1500).contains(&p.size)));
}

#[test]
fn binning_granularities_are_consistent() {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(120.0)
        .synthesize(5);
    let fine = trace.to_rate_series(1e-3);
    let coarse = trace.to_rate_series(1e-1);
    // Same byte volume regardless of binning.
    let vol_fine: f64 = fine.values().iter().map(|r| r * fine.dt()).sum();
    let vol_coarse: f64 = coarse.values().iter().map(|r| r * coarse.dt()).sum();
    assert!((vol_fine - vol_coarse).abs() < 1e-6 * vol_fine.max(1.0));
    // And aggregate(100) of the fine series equals the coarse one.
    let agg = fine.aggregate(100);
    for (a, b) in agg.values().iter().zip(coarse.values()) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn sampling_a_packet_trace_underestimates_then_bss_helps() {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(1200.0)
        .synthesize(21);
    let series = trace.to_rate_series(1e-2);
    let truth = series.mean();
    let interval = 200; // rate 5e-3

    // Median over several instances to tame single-offset noise.
    let mut sys_means: Vec<f64> = (0..9)
        .map(|s| {
            SystematicSampler::new(interval)
                .sample(series.values(), s)
                .mean()
        })
        .collect();
    sys_means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sys = sys_means[4];

    let mut bss_means: Vec<f64> = (0..9)
        .map(|s| {
            BssSampler::new(
                interval,
                ThresholdPolicy::Online(OnlineTuning {
                    alpha: 1.71,
                    ..Default::default()
                }),
            )
            .unwrap()
            .sample_detailed(series.values(), s)
            .mean()
        })
        .collect();
    bss_means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let bss = bss_means[4];

    // BSS pulls the estimate toward/above systematic's.
    assert!(bss >= sys * 0.95, "sys={sys} bss={bss} truth={truth}");
    // Both within an order of magnitude of the truth (sanity).
    assert!(sys > truth * 0.2 && sys < truth * 3.0);
    assert!(bss > truth * 0.2 && bss < truth * 4.0);
}

#[test]
fn codec_round_trip_at_scale() {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(300.0)
        .synthesize(13);
    let bytes = encode(&trace);
    let back = decode(&bytes).expect("decode");
    assert_eq!(trace, back);
    assert!(bytes.len() > 1000);
}

#[test]
fn od_filtering_partitions_traffic() {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(120.0)
        .synthesize(2);
    let all = trace.to_rate_series(0.1);
    let volumes = trace.od_volumes();
    let top_pair = volumes[0].0;
    let top = trace.od_rate_series(top_pair, 0.1);
    let rest = trace.to_rate_series_filtered(0.1, |k| k.od_pair() != top_pair);
    for i in 0..all.len() {
        let sum = top.values()[i] + rest.values()[i];
        assert!((sum - all.values()[i]).abs() < 1e-9);
    }
}
