//! Integration: the online monitoring engine against the offline
//! machinery on a shared workload — sampled per-flow streams roll up to
//! link statistics that match what the batch pipeline computes.

use selfsim::monitor::{MonitorConfig, MonitorEngine, SamplerSpec};
use selfsim::nettrace::TraceSynthesizer;
use selfsim::sampling::{Sampler, SystematicSampler};
use selfsim::stats::RunningStats;
use selfsim::traffic::FgnGenerator;

#[test]
fn engine_take_all_reproduces_batch_moments_per_od_pair() {
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(240.0)
        .synthesize(11);
    let points = trace.od_keyed_points();
    let mut engine = MonitorEngine::new(MonitorConfig::default().shards(4).seed(1));
    engine.offer_batch(&points);
    let snap = engine.snapshot();

    // Batch reference: per-key Welford over the same points.
    let mut by_key: std::collections::BTreeMap<u64, RunningStats> = Default::default();
    for &(k, v) in &points {
        by_key.entry(k).or_default().push(v);
    }
    assert_eq!(snap.stream_count(), by_key.len());
    for entry in snap.streams() {
        let want = &by_key[&entry.key];
        assert_eq!(entry.summary.moments.count(), want.count());
        assert!((entry.summary.moments.mean() - want.mean()).abs() < 1e-9);
    }
    // Aggregate totals match the trace.
    let agg = snap.aggregate();
    assert_eq!(agg.moments.count(), points.len() as u64);
    assert!((agg.kept_volume() - trace.total_bytes() as f64).abs() < 1e-3);
}

#[test]
fn sampled_monitoring_mean_matches_offline_sampler_mean() {
    // One LRD stream through the engine's systematic sampler ≡ the
    // offline sampler on the same series (same seed derivation as the
    // streaming equivalence tests, modulo the engine's key-seed mix).
    let vals = FgnGenerator::new(0.8)
        .expect("valid H")
        .generate_values(1 << 14, 5);
    let shifted: Vec<f64> = vals.iter().map(|v| v + 10.0).collect();
    let mut engine = MonitorEngine::new(
        MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 16 })
            .seed(3),
    );
    for &v in &shifted {
        engine.offer(99, v);
    }
    let snap = engine.snapshot();
    let online_mean = snap.streams()[0].summary.moments.mean();
    // Offline reference at the engine's derived stream seed.
    let seed = selfsim::stats::rng::derive_seed(3, 99);
    let offline = SystematicSampler::new(16).sample(&shifted, seed);
    assert_eq!(snap.streams()[0].sampler.kept, offline.len(), "kept counts");
    assert!((online_mean - offline.mean()).abs() < 1e-12);
}
