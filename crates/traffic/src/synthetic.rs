//! High-level synthetic-trace builder reproducing the paper's traces.
//!
//! The paper's synthetic workload is ns-2 on/off traffic with `H = 0.8`
//! whose marginal measures as Pareto with `α ≈ 1.5` and mean
//! `5.68 kB/s` (Figs. 6a, 8a, 18). [`SyntheticTraceSpec`] produces
//! traces with exactly those calibrated properties via the
//! fGn + Gaussian-copula pipeline (the default), or via direct on/off
//! aggregation for cross-validation.

use crate::copula::transform_series;
use crate::fgn::FgnPlan;
use crate::onoff::OnOffModel;
use sst_stats::dist::Pareto;
use sst_stats::TimeSeries;

/// Which construction to use for the synthetic trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeneratorKind {
    /// Davies-Harte fGn pushed through a Gaussian copula to the target
    /// marginal (default; pins both H and the marginal exactly).
    FgnCopula,
    /// Superposition of Pareto on/off sources (ns-2-style); the marginal
    /// is whatever the aggregate produces.
    OnOff {
        /// Number of aggregated sources.
        n_sources: usize,
    },
}

/// Marginal distribution of the trace values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MarginalSpec {
    /// Pareto marginal with the given shape and mean — the heavy-tailed
    /// traffic the paper measures (Fig. 8).
    Pareto {
        /// Tail shape α.
        alpha: f64,
        /// Analytic mean.
        mean: f64,
    },
    /// Keep the Gaussian marginal of the underlying fGn, scaled to the
    /// given mean and standard deviation.
    Gaussian {
        /// Mean level.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
}

/// Builder for reproducible synthetic self-similar traces.
///
/// Defaults reproduce the paper's synthetic workload: `H = 0.8`,
/// Pareto marginal `α = 1.5` with mean `5.68`, length `2^18`, `dt = 1 ms`.
///
/// # Examples
///
/// ```
/// use sst_traffic::SyntheticTraceSpec;
/// let trace = SyntheticTraceSpec::new()
///     .length(1 << 12)
///     .hurst(0.75)
///     .pareto_marginal(1.3, 5.68)
///     .seed(42)
///     .build();
/// assert_eq!(trace.len(), 1 << 12);
/// ```
#[derive(Clone, Debug)]
pub struct SyntheticTraceSpec {
    length: usize,
    hurst: f64,
    marginal: MarginalSpec,
    dt: f64,
    seed: u64,
    kind: GeneratorKind,
}

impl Default for SyntheticTraceSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SyntheticTraceSpec {
    /// The paper-calibrated default spec (see type-level docs).
    pub fn new() -> Self {
        SyntheticTraceSpec {
            length: 1 << 18,
            hurst: 0.8,
            marginal: MarginalSpec::Pareto {
                alpha: 1.5,
                mean: 5.68,
            },
            dt: 1e-3,
            seed: 0,
            kind: GeneratorKind::FgnCopula,
        }
    }

    /// Sets the number of points.
    pub fn length(mut self, n: usize) -> Self {
        self.length = n;
        self
    }

    /// Sets the Hurst parameter (must be in `(1/2, 1)` at build time).
    pub fn hurst(mut self, h: f64) -> Self {
        self.hurst = h;
        self
    }

    /// Sets a Pareto marginal with shape `alpha` and mean `mean`.
    pub fn pareto_marginal(mut self, alpha: f64, mean: f64) -> Self {
        self.marginal = MarginalSpec::Pareto { alpha, mean };
        self
    }

    /// Keeps a Gaussian marginal with the given mean and stddev.
    pub fn gaussian_marginal(mut self, mean: f64, std: f64) -> Self {
        self.marginal = MarginalSpec::Gaussian { mean, std };
        self
    }

    /// Sets the bin width in seconds.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches to the on/off aggregate construction with `n_sources`
    /// sources.
    pub fn on_off(mut self, n_sources: usize) -> Self {
        self.kind = GeneratorKind::OnOff { n_sources };
        self
    }

    /// The configured Hurst parameter.
    pub fn hurst_value(&self) -> f64 {
        self.hurst
    }

    /// The analytic mean implied by the marginal spec.
    pub fn target_mean(&self) -> f64 {
        match self.marginal {
            MarginalSpec::Pareto { alpha, mean } => {
                debug_assert!(alpha > 1.0);
                mean
            }
            MarginalSpec::Gaussian { mean, .. } => mean,
        }
    }

    /// Builds the trace.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (length 0, H outside `(1/2, 1)`,
    /// Pareto shape ≤ 1, non-positive mean/std) — the builder validates
    /// at the single terminal call.
    pub fn build(&self) -> TimeSeries {
        assert!(self.length >= 1, "length must be >= 1");
        assert!(
            self.hurst > 0.5 && self.hurst < 1.0,
            "Hurst must be in (1/2,1), got {}",
            self.hurst
        );
        match self.kind {
            GeneratorKind::FgnCopula => {
                // The plan cache makes repeated builds over the same
                // (H, length) — the Monte-Carlo norm — pay for the
                // Davies-Harte eigenvalue spectrum exactly once.
                let fgn = FgnPlan::cached(self.hurst, self.length)
                    .expect("validated above")
                    .generate_values(self.seed);
                let fgn = TimeSeries::from_values(self.dt, fgn);
                match self.marginal {
                    MarginalSpec::Pareto { alpha, mean } => {
                        assert!(
                            alpha > 1.0,
                            "Pareto marginal needs alpha > 1 for finite mean"
                        );
                        assert!(mean > 0.0, "mean must be positive");
                        let marginal = Pareto::with_mean(alpha, mean);
                        transform_series(&fgn, &marginal)
                    }
                    MarginalSpec::Gaussian { mean, std } => {
                        assert!(std >= 0.0, "stddev must be non-negative");
                        TimeSeries::from_values(
                            self.dt,
                            fgn.values().iter().map(|&x| mean + std * x).collect(),
                        )
                    }
                }
            }
            GeneratorKind::OnOff { n_sources } => {
                let model = OnOffModel::for_hurst(self.hurst, n_sources).expect("validated above");
                let raw = model.generate(self.length, self.seed);
                // Rescale to the requested mean level.
                let target = self.target_mean();
                let actual = raw.mean().max(f64::MIN_POSITIVE);
                let k = target / actual;
                TimeSeries::from_values(self.dt, raw.values().iter().map(|&x| x * k).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_stats::tailfit::fit_pareto_ccdf;

    #[test]
    fn default_reproduces_paper_calibration() {
        let trace = SyntheticTraceSpec::new().length(1 << 16).seed(1).build();
        // Mean near 5.68 — heavy tails converge slowly, accept 20%.
        assert!(
            (trace.mean() - 5.68).abs() / 5.68 < 0.2,
            "mean={}",
            trace.mean()
        );
        // Marginal tail ≈ Pareto(1.5) (Fig. 8a).
        let fit = fit_pareto_ccdf(trace.values(), 0.5).unwrap();
        assert!((fit.alpha - 1.5).abs() < 0.25, "alpha={}", fit.alpha);
        assert_eq!(trace.dt(), 1e-3);
    }

    #[test]
    fn builder_round_trips_parameters() {
        let spec = SyntheticTraceSpec::new()
            .length(100)
            .hurst(0.7)
            .pareto_marginal(1.3, 2.0)
            .dt(0.01)
            .seed(9);
        assert_eq!(spec.hurst_value(), 0.7);
        assert_eq!(spec.target_mean(), 2.0);
        let t = spec.build();
        assert_eq!(t.len(), 100);
        assert_eq!(t.dt(), 0.01);
    }

    #[test]
    fn gaussian_marginal_scales_correctly() {
        let t = SyntheticTraceSpec::new()
            .length(1 << 14)
            .gaussian_marginal(10.0, 2.0)
            .seed(3)
            .build();
        // LRD: std of the sample mean is ≈ std·n^{H-1} ≈ 0.29 here.
        assert!((t.mean() - 10.0).abs() < 1.0, "mean={}", t.mean());
        assert!(
            (t.variance().sqrt() - 2.0).abs() < 0.3,
            "std={}",
            t.variance().sqrt()
        );
    }

    #[test]
    fn on_off_variant_hits_target_mean() {
        let t = SyntheticTraceSpec::new()
            .length(1 << 12)
            .on_off(16)
            .seed(5)
            .build();
        assert!((t.mean() - 5.68).abs() < 1e-9, "rescaled mean={}", t.mean());
    }

    #[test]
    fn determinism_across_builds() {
        let spec = SyntheticTraceSpec::new().length(512).seed(123);
        assert_eq!(spec.build(), spec.build());
    }

    #[test]
    #[should_panic(expected = "Hurst must be in")]
    fn invalid_hurst_panics_at_build() {
        SyntheticTraceSpec::new().hurst(1.5).build();
    }

    #[test]
    #[should_panic(expected = "alpha > 1")]
    fn infinite_mean_marginal_rejected() {
        SyntheticTraceSpec::new()
            .pareto_marginal(0.9, 1.0)
            .length(8)
            .build();
    }
}
