//! Aggregated on/off source traffic — the ns-2 construction the paper
//! cites for its synthetic traces.
//!
//! Each source alternates between ON periods (emitting at a constant
//! rate) and OFF periods (silent), with period lengths drawn from
//! heavy-tailed distributions. By the Taqqu-Willinger-Sherman limit
//! theorem, the superposition of many such sources converges to
//! fractional Gaussian noise with `H = (3 − α)/2` where `α` is the
//! Pareto shape of the period lengths.

use sst_stats::dist::{Distribution, Pareto};
use sst_stats::model::onoff_alpha_from_hurst;
use sst_stats::rng::{derive_seed, rng_from_seed};
use sst_stats::TimeSeries;

/// Configuration for an aggregate of Pareto on/off sources.
///
/// # Examples
///
/// ```
/// use sst_traffic::onoff::OnOffModel;
/// let model = OnOffModel::for_hurst(0.8, 32).expect("valid");
/// let ts = model.generate(4096, 7);
/// assert_eq!(ts.len(), 4096);
/// assert!(ts.mean() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct OnOffModel {
    n_sources: usize,
    on_shape: f64,
    off_shape: f64,
    mean_on: f64,
    mean_off: f64,
    rate_per_source: f64,
}

impl OnOffModel {
    /// Creates a model from explicit parameters.
    ///
    /// `mean_on` / `mean_off` are the mean period lengths in time bins;
    /// `rate_per_source` is the emission level of one active source.
    ///
    /// # Errors
    ///
    /// Returns an error unless shapes are in `(1, 2)` (finite mean,
    /// infinite variance — the self-similar regime), means are positive,
    /// and there is at least one source.
    pub fn new(
        n_sources: usize,
        on_shape: f64,
        off_shape: f64,
        mean_on: f64,
        mean_off: f64,
        rate_per_source: f64,
    ) -> Result<Self, crate::fgn::InvalidParameterError> {
        let bad = |what| Err(crate::fgn::InvalidParameterError::new(what));
        if n_sources == 0 {
            return bad("need at least one on/off source");
        }
        if !(on_shape > 1.0 && on_shape < 2.0 && off_shape > 1.0 && off_shape < 2.0) {
            return bad("on/off shapes must be in (1,2)");
        }
        if !(mean_on > 0.0 && mean_off > 0.0 && rate_per_source > 0.0) {
            return bad("means and rate must be positive");
        }
        Ok(OnOffModel {
            n_sources,
            on_shape,
            off_shape,
            mean_on,
            mean_off,
            rate_per_source,
        })
    }

    /// Model targeting a Hurst parameter `h ∈ (1/2, 1)` via
    /// `α = 3 − 2H`, with unit rate and mean periods of 10 bins.
    ///
    /// # Errors
    ///
    /// Returns an error if `h` is outside `(1/2, 1)`.
    pub fn for_hurst(h: f64, n_sources: usize) -> Result<Self, crate::fgn::InvalidParameterError> {
        if !(h > 0.5 && h < 1.0) {
            return Err(crate::fgn::InvalidParameterError::new(
                "Hurst must be in (1/2,1)",
            ));
        }
        let alpha = onoff_alpha_from_hurst(h);
        OnOffModel::new(n_sources, alpha, alpha, 10.0, 10.0, 1.0)
    }

    /// The on-period Pareto shape α.
    pub fn on_shape(&self) -> f64 {
        self.on_shape
    }

    /// The Hurst parameter this aggregate converges to, `(3 − α)/2`.
    pub fn limit_hurst(&self) -> f64 {
        (3.0 - self.on_shape) / 2.0
    }

    /// Generates `n` bins of aggregate traffic (bin width 1.0, value =
    /// total emission rate of active sources), deterministically from
    /// `seed`. Each source gets an independent derived RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(&self, n: usize, seed: u64) -> TimeSeries {
        let mut bins = Vec::new();
        self.generate_into(n, seed, &mut bins);
        TimeSeries::from_values(1.0, bins)
    }

    /// [`OnOffModel::generate`] into a caller-owned bin buffer (cleared
    /// and refilled), the plan-reuse form for multi-instance loops.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate_into(&self, n: usize, seed: u64, bins: &mut Vec<f64>) {
        assert!(n >= 1, "cannot generate an empty trace");
        let on_dist = Pareto::with_mean(self.on_shape, self.mean_on);
        let off_dist = Pareto::with_mean(self.off_shape, self.mean_off);
        bins.clear();
        bins.resize(n, 0.0f64);
        for s in 0..self.n_sources {
            let mut rng = rng_from_seed(derive_seed(seed, s as u64));
            // Random initial phase: start mid-cycle to avoid synchronized
            // sources at t=0 (stationarity warm-up).
            let mut t = -(on_dist.sample(&mut rng) + off_dist.sample(&mut rng))
                * rand::Rng::gen::<f64>(&mut rng);
            let mut on = s % 2 == 0;
            while t < n as f64 {
                let len = if on {
                    on_dist.sample(&mut rng)
                } else {
                    off_dist.sample(&mut rng)
                };
                if on {
                    // Add rate to every bin overlapped by [t, t+len).
                    let start = t.max(0.0);
                    let end = (t + len).min(n as f64);
                    if end > start {
                        let first = start.floor() as usize;
                        let last = (end.ceil() as usize).min(n);
                        for (b, bin) in bins.iter_mut().enumerate().take(last).skip(first) {
                            let lo = (b as f64).max(start);
                            let hi = ((b + 1) as f64).min(end);
                            if hi > lo {
                                *bin += self.rate_per_source * (hi - lo);
                            }
                        }
                    }
                }
                t += len;
                on = !on;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(OnOffModel::new(0, 1.5, 1.5, 10.0, 10.0, 1.0).is_err());
        assert!(OnOffModel::new(4, 2.5, 1.5, 10.0, 10.0, 1.0).is_err());
        assert!(OnOffModel::new(4, 1.5, 1.5, -1.0, 10.0, 1.0).is_err());
        assert!(OnOffModel::new(4, 1.5, 1.5, 10.0, 10.0, 1.0).is_ok());
        assert!(OnOffModel::for_hurst(0.3, 4).is_err());
    }

    #[test]
    fn hurst_alpha_mapping() {
        let m = OnOffModel::for_hurst(0.8, 8).unwrap();
        assert!((m.on_shape() - 1.4).abs() < 1e-12);
        assert!((m.limit_hurst() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn determinism_and_length() {
        let m = OnOffModel::for_hurst(0.75, 4).unwrap();
        let a = m.generate(512, 5);
        let b = m.generate(512, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 512);
        assert_ne!(a, m.generate(512, 6));
    }

    #[test]
    fn generate_into_reuses_buffer_bit_identically() {
        let m = OnOffModel::for_hurst(0.8, 8).unwrap();
        let mut bins = Vec::new();
        // Prime the buffer with a larger run, then a smaller one: stale
        // tail state must not leak.
        m.generate_into(1024, 1, &mut bins);
        m.generate_into(300, 2, &mut bins);
        assert_eq!(bins.len(), 300);
        assert_eq!(bins, m.generate(300, 2).into_values());
    }

    #[test]
    fn mean_rate_matches_duty_cycle() {
        // Expected rate = n_sources · rate · mean_on/(mean_on+mean_off).
        let m = OnOffModel::new(64, 1.5, 1.5, 10.0, 10.0, 1.0).unwrap();
        let ts = m.generate(1 << 14, 9);
        let expect = 64.0 * 0.5;
        // Heavy-tailed periods converge slowly; accept 20%.
        assert!(
            (ts.mean() - expect).abs() / expect < 0.2,
            "mean={} expect={expect}",
            ts.mean()
        );
    }

    #[test]
    fn values_are_bounded_by_aggregate_capacity() {
        let m = OnOffModel::new(16, 1.4, 1.4, 5.0, 5.0, 2.0).unwrap();
        let ts = m.generate(2048, 3);
        let cap = 16.0 * 2.0 + 1e-9;
        assert!(ts.max().unwrap() <= cap);
        assert!(ts.min().unwrap() >= 0.0);
    }

    #[test]
    fn aggregate_is_long_range_dependent() {
        // Variance-time check: var(f^(m)) should decay much slower than
        // m^-1 (the iid rate) — the self-similarity signature.
        let m = OnOffModel::for_hurst(0.85, 32).unwrap();
        let ts = m.generate(1 << 16, 17);
        let v1 = ts.variance();
        let v64 = ts.aggregate(64).variance();
        let implied_h = 1.0 + ((v64 / v1).ln() / 64f64.ln()) / 2.0;
        assert!(
            implied_h > 0.65,
            "implied H = {implied_h} (iid would be 0.5)"
        );
    }

    #[test]
    fn single_source_is_zero_one_valued() {
        let m = OnOffModel::new(1, 1.5, 1.5, 20.0, 20.0, 1.0).unwrap();
        let ts = m.generate(4096, 2);
        // Interior bins are either fully on (1.0) or fully off (0.0);
        // boundary bins are fractional.
        let interior = ts
            .values()
            .iter()
            .filter(|&&v| v < 1e-12 || (v - 1.0).abs() < 1e-12)
            .count();
        assert!(interior as f64 / ts.len() as f64 > 0.8);
    }
}
