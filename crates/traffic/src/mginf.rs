//! M/G/∞ input traffic — an independent second construction of LRD
//! traffic (listed as an extension in DESIGN.md).
//!
//! Sessions arrive as a Poisson process; each stays active for a
//! heavy-tailed (Pareto) holding time; the traffic value in a bin is the
//! number of active sessions (times a per-session rate). With Pareto(α)
//! holding times, `1 < α < 2`, the count process is long-range dependent
//! with `H = (3 − α)/2` — same limit as the on/off aggregate, via a
//! different mechanism, which makes it a useful cross-check for the
//! Hurst estimators.

use sst_stats::dist::{poisson, Distribution, Pareto};
use sst_stats::rng::rng_from_seed;
use sst_stats::TimeSeries;

/// Configuration for an M/G/∞ session-count traffic generator.
///
/// # Examples
///
/// ```
/// use sst_traffic::mginf::MgInfModel;
/// let m = MgInfModel::new(4.0, 1.4, 10.0).expect("valid");
/// let ts = m.generate(2048, 3);
/// assert_eq!(ts.len(), 2048);
/// ```
#[derive(Clone, Debug)]
pub struct MgInfModel {
    arrival_rate: f64,
    duration_shape: f64,
    mean_duration: f64,
    rate_per_session: f64,
}

impl MgInfModel {
    /// Creates a model with Poisson arrival rate (sessions per bin),
    /// Pareto duration shape `α ∈ (1, 2)`, and mean session duration in
    /// bins. Each active session contributes rate 1.
    ///
    /// # Errors
    ///
    /// Returns an error on non-positive rates/durations or `α ∉ (1, 2)`.
    pub fn new(
        arrival_rate: f64,
        duration_shape: f64,
        mean_duration: f64,
    ) -> Result<Self, crate::fgn::InvalidParameterError> {
        if arrival_rate.is_nan() || arrival_rate <= 0.0 {
            return Err(crate::fgn::InvalidParameterError::new(
                "arrival rate must be positive",
            ));
        }
        if !(duration_shape > 1.0 && duration_shape < 2.0) {
            return Err(crate::fgn::InvalidParameterError::new(
                "duration shape must be in (1,2)",
            ));
        }
        if mean_duration.is_nan() || mean_duration <= 0.0 {
            return Err(crate::fgn::InvalidParameterError::new(
                "mean duration must be positive",
            ));
        }
        Ok(MgInfModel {
            arrival_rate,
            duration_shape,
            mean_duration,
            rate_per_session: 1.0,
        })
    }

    /// Sets the per-session emission rate (builder-style).
    pub fn rate_per_session(mut self, rate: f64) -> Self {
        self.rate_per_session = rate;
        self
    }

    /// The Hurst parameter of the limiting count process, `(3 − α)/2`.
    pub fn limit_hurst(&self) -> f64 {
        (3.0 - self.duration_shape) / 2.0
    }

    /// Expected stationary traffic level `λ · E[D] · rate`.
    pub fn expected_level(&self) -> f64 {
        self.arrival_rate * self.mean_duration * self.rate_per_session
    }

    /// Generates `n` bins of session-count traffic from `seed`.
    ///
    /// A warm-up period of five mean durations is simulated before bin 0
    /// so the count starts near its stationary level.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(&self, n: usize, seed: u64) -> TimeSeries {
        let mut values = Vec::new();
        let mut diff = Vec::new();
        self.generate_into(n, seed, &mut values, &mut diff);
        TimeSeries::from_values(1.0, values)
    }

    /// [`MgInfModel::generate`] into caller-owned buffers (`values` is
    /// the output; `diff` is difference-array scratch), the plan-reuse
    /// form for multi-instance loops.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate_into(&self, n: usize, seed: u64, values: &mut Vec<f64>, diff: &mut Vec<f64>) {
        assert!(n >= 1, "cannot generate an empty trace");
        let dur = Pareto::with_mean(self.duration_shape, self.mean_duration);
        let mut rng = rng_from_seed(seed);
        let warmup = (5.0 * self.mean_duration).ceil() as i64;
        // Difference-array trick: +1 at session start, −1 past its end;
        // prefix sums give the active count per bin.
        diff.clear();
        diff.resize(n + 1, 0.0f64);
        for t in -warmup..n as i64 {
            let arrivals = poisson(&mut rng, self.arrival_rate);
            for _ in 0..arrivals {
                let d = dur.sample(&mut rng);
                let end = t as f64 + d;
                if end <= 0.0 {
                    continue;
                }
                let start = t.max(0) as usize;
                if start >= n {
                    continue;
                }
                let stop = (end.ceil() as usize).min(n);
                diff[start] += self.rate_per_session;
                diff[stop] -= self.rate_per_session;
            }
        }
        let mut acc = 0.0;
        values.clear();
        values.reserve(n);
        values.extend(diff[..n].iter().map(|&d| {
            acc += d;
            acc
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(MgInfModel::new(0.0, 1.5, 10.0).is_err());
        assert!(MgInfModel::new(1.0, 2.5, 10.0).is_err());
        assert!(MgInfModel::new(1.0, 1.5, 0.0).is_err());
        assert!(MgInfModel::new(1.0, 1.5, 10.0).is_ok());
    }

    #[test]
    fn stationary_level_is_reached() {
        let m = MgInfModel::new(2.0, 1.6, 8.0).unwrap();
        let ts = m.generate(1 << 14, 77);
        let expect = m.expected_level();
        assert!(
            (ts.mean() - expect).abs() / expect < 0.25,
            "mean={} expect={expect}",
            ts.mean()
        );
    }

    #[test]
    fn counts_are_non_negative() {
        let m = MgInfModel::new(0.5, 1.3, 5.0).unwrap();
        let ts = m.generate(4096, 5);
        assert!(ts.min().unwrap() >= 0.0);
    }

    #[test]
    fn determinism() {
        let m = MgInfModel::new(1.0, 1.5, 10.0).unwrap();
        assert_eq!(m.generate(256, 9), m.generate(256, 9));
        assert_ne!(m.generate(256, 9), m.generate(256, 10));
    }

    #[test]
    fn generate_into_reuses_buffers_bit_identically() {
        let m = MgInfModel::new(2.0, 1.5, 6.0).unwrap();
        let (mut values, mut diff) = (Vec::new(), Vec::new());
        m.generate_into(2048, 3, &mut values, &mut diff);
        m.generate_into(512, 4, &mut values, &mut diff);
        assert_eq!(values.len(), 512);
        assert_eq!(values, m.generate(512, 4).into_values());
    }

    #[test]
    fn lrd_signature_in_variance_time() {
        let m = MgInfModel::new(3.0, 1.4, 10.0).unwrap();
        let ts = m.generate(1 << 16, 31);
        let v1 = ts.variance();
        let v64 = ts.aggregate(64).variance();
        let implied_h = 1.0 + ((v64 / v1).ln() / 64f64.ln()) / 2.0;
        assert!(implied_h > 0.65, "implied H = {implied_h}");
    }

    #[test]
    fn per_session_rate_scales_level() {
        let base = MgInfModel::new(1.0, 1.5, 6.0).unwrap();
        let scaled = MgInfModel::new(1.0, 1.5, 6.0)
            .unwrap()
            .rate_per_session(3.0);
        let a = base.generate(2048, 4);
        let b = scaled.generate(2048, 4);
        // Same seed, same arrivals: values scale exactly by 3.
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((y - 3.0 * x).abs() < 1e-9);
        }
    }
}
