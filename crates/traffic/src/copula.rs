//! Gaussian-copula marginal transforms.
//!
//! Takes a Gaussian LRD series (fGn) and pushes each point through
//! `Q(Φ(x))` where `Q` is the quantile function of a target marginal.
//! The transform is strictly monotone, so the ordering, the burst
//! structure, and — because the Hermite rank of a monotone transform is
//! 1 — the long-range-dependence exponent of the input are preserved,
//! while the output marginal is *exactly* the target distribution.
//!
//! This is the substitution documented in DESIGN.md for the paper's ns-2
//! traces: the analyses need (a) a chosen Hurst parameter and (b) a
//! heavy-tailed (Pareto) marginal, and the copula construction pins both.

use sst_sigproc::special::normal_cdf;
use sst_stats::dist::Distribution;
use sst_stats::TimeSeries;

/// Clamp for Φ(x) so heavy-tailed quantiles stay finite: with p bounded
/// away from 1 by 1e-14, a Pareto(α=1.2) quantile stays below ~1e12·k.
const P_EPS: f64 = 1e-14;

/// Maps each value of a (nominally standard normal) series through the
/// quantile function of `marginal`, producing a series with that marginal.
pub fn transform_values(gaussian: &[f64], marginal: &dyn Distribution) -> Vec<f64> {
    let mut out = Vec::new();
    transform_values_into(gaussian, marginal, &mut out);
    out
}

/// [`transform_values`] into a caller-owned buffer (cleared first), so
/// per-instance pipelines reuse their allocation.
pub fn transform_values_into(gaussian: &[f64], marginal: &dyn Distribution, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(gaussian.len());
    out.extend(gaussian.iter().map(|&x| {
        let p = normal_cdf(x).clamp(P_EPS, 1.0 - P_EPS);
        marginal.quantile(p)
    }));
}

/// [`transform_values`] on a [`TimeSeries`], preserving the bin width.
pub fn transform_series(gaussian: &TimeSeries, marginal: &dyn Distribution) -> TimeSeries {
    TimeSeries::from_values(gaussian.dt(), transform_values(gaussian.values(), marginal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::FgnGenerator;
    use sst_sigproc::conv::autocorrelation;
    use sst_stats::dist::{Exponential, Pareto};
    use sst_stats::tailfit::fit_pareto_ccdf;

    #[test]
    fn transform_is_monotone() {
        let p = Pareto::new(1.5, 1.0);
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let ys = transform_values(&xs, &p);
        for w in ys.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn output_marginal_matches_target() {
        let p = Pareto::with_mean(1.5, 5.68);
        let g = FgnGenerator::new(0.8).unwrap();
        let gauss = g.generate_values(1 << 16, 31);
        let out = transform_values(&gauss, &p);
        // All above scale.
        assert!(out.iter().all(|&v| v >= p.scale() * (1.0 - 1e-9)));
        // Tail index recovered.
        let fit = fit_pareto_ccdf(&out, 0.5).expect("fit");
        assert!((fit.alpha - 1.5).abs() < 0.2, "alpha={}", fit.alpha);
        // Median matches the analytic median (robust even with α < 2).
        let mut sorted = out.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = sorted[sorted.len() / 2];
        // LRD sample quantiles fluctuate at rate n^{H-1}, far slower than
        // √n — 15% is the right tolerance at this length.
        assert!((med / p.quantile(0.5) - 1.0).abs() < 0.15, "median={med}");
    }

    #[test]
    fn lrd_survives_the_transform() {
        // The autocorrelation of the transformed series still decays like
        // a power law with roughly the same exponent (Hermite rank 1).
        let h = 0.85;
        let g = FgnGenerator::new(h).unwrap();
        let gauss = g.generate_values(1 << 17, 77);
        // Use a *bounded* heavy-tail-free marginal for the correlation
        // check (sample ACF of infinite-variance data is unstable).
        let e = Exponential::new(1.0);
        let out = transform_values(&gauss, &e);
        let rho = autocorrelation(&out, 256);
        let lags: Vec<f64> = (8..256).map(|k| k as f64).collect();
        let vals: Vec<f64> = (8..256).map(|k| rho[k].max(1e-9)).collect();
        let (slope, _, _) = sst_sigproc::regress::power_law_fit(&lags, &vals);
        let beta = 2.0 - 2.0 * h;
        assert!(
            (slope + beta).abs() < 0.15,
            "slope={slope} expected −β={}",
            -beta
        );
    }

    #[test]
    fn extreme_gaussian_inputs_stay_finite() {
        let p = Pareto::new(1.2, 1.0);
        let ys = transform_values(&[-40.0, 40.0], &p);
        assert!(ys.iter().all(|v| v.is_finite()));
        assert!(ys[1] > 1e9); // deep tail reached, but finite
    }

    #[test]
    fn series_transform_preserves_dt() {
        let ts = TimeSeries::from_values(0.001, vec![0.0, 1.0, -1.0]);
        let p = Pareto::new(2.0, 1.0);
        let out = transform_series(&ts, &p);
        assert_eq!(out.dt(), 0.001);
        assert_eq!(out.len(), 3);
    }
}
