//! Exact fractional Gaussian noise via Davies-Harte circulant embedding.
//!
//! fGn is the increment process of fractional Brownian motion; it is the
//! canonical Gaussian self-similar process with Hurst parameter `H` and
//! the backbone of the synthetic traces here: the Gaussian-copula
//! transform ([`crate::copula`]) maps it onto any marginal while keeping
//! its long-range dependence, matching the two properties the paper's
//! synthetic ns-2 traffic was built to have.
//!
//! Davies-Harte embeds the n×n Toeplitz covariance of fGn into a 2N×2N
//! circulant whose eigenvalues are the FFT of the first row; for the fGn
//! ACF those eigenvalues are provably non-negative, so the method is exact
//! (the output has *exactly* the target covariance, not asymptotically).

use sst_sigproc::complex::Complex;
use sst_sigproc::fft::{fft_pow2_in_place, next_pow2};
use sst_stats::dist::standard_normal;
use sst_stats::model::FgnAcf;
use sst_stats::rng::rng_from_seed;
use sst_stats::TimeSeries;

/// Generator of exact fractional Gaussian noise.
///
/// # Examples
///
/// ```
/// use sst_traffic::fgn::FgnGenerator;
/// let fgn = FgnGenerator::new(0.8).expect("valid H");
/// let ts = fgn.generate(4096, 42);
/// assert_eq!(ts.len(), 4096);
/// // Standard-normal marginals: mean ≈ 0, variance ≈ 1.
/// assert!(ts.mean().abs() < 0.15);
/// ```
#[derive(Clone, Debug)]
pub struct FgnGenerator {
    hurst: f64,
}

/// Error for invalid generator parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidParameterError {
    what: &'static str,
}

impl std::fmt::Display for InvalidParameterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid generator parameter: {}", self.what)
    }
}

impl std::error::Error for InvalidParameterError {}

impl InvalidParameterError {
    pub(crate) fn new(what: &'static str) -> Self {
        InvalidParameterError { what }
    }
}

impl FgnGenerator {
    /// Creates a generator for Hurst parameter `h ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `h` is outside `(0, 1)`.
    pub fn new(h: f64) -> Result<Self, InvalidParameterError> {
        if !(h > 0.0 && h < 1.0) {
            return Err(InvalidParameterError { what: "Hurst parameter must be in (0,1)" });
        }
        Ok(FgnGenerator { hurst: h })
    }

    /// The Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.hurst
    }

    /// Generates `n` points of unit-variance fGn with bin width 1.0,
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(&self, n: usize, seed: u64) -> TimeSeries {
        TimeSeries::from_values(1.0, self.generate_values(n, seed))
    }

    /// Raw-value variant of [`FgnGenerator::generate`].
    pub fn generate_values(&self, n: usize, seed: u64) -> Vec<f64> {
        assert!(n >= 1, "cannot generate an empty trace");
        if n == 1 {
            let mut rng = rng_from_seed(seed);
            return vec![standard_normal(&mut rng)];
        }
        let big_n = next_pow2(n);
        let m = 2 * big_n;
        // First row of the circulant: ρ(0..=N), then mirrored ρ(N-1..=1).
        let acf = FgnAcf::new(self.hurst);
        let mut row = vec![Complex::ZERO; m];
        for (k, slot) in row.iter_mut().enumerate().take(big_n + 1) {
            *slot = Complex::from_real(acf.at(k as u64));
        }
        for k in 1..big_n {
            row[m - k] = Complex::from_real(acf.at(k as u64));
        }
        fft_pow2_in_place(&mut row);
        // Eigenvalues are real and non-negative for the fGn ACF; tiny
        // negative round-off is clamped.
        let lambda: Vec<f64> = row.iter().map(|z| z.re.max(0.0)).collect();

        let mut rng = rng_from_seed(seed);
        let mut spec = vec![Complex::ZERO; m];
        spec[0] = Complex::from_real((lambda[0]).sqrt() * standard_normal(&mut rng));
        spec[big_n] = Complex::from_real((lambda[big_n]).sqrt() * standard_normal(&mut rng));
        for k in 1..big_n {
            let g = standard_normal(&mut rng);
            let h = standard_normal(&mut rng);
            let amp = (lambda[k] / 2.0).sqrt();
            spec[k] = Complex::new(amp * g, amp * h);
            spec[m - k] = spec[k].conj();
        }
        fft_pow2_in_place(&mut spec);
        let norm = 1.0 / (m as f64).sqrt();
        spec.into_iter().take(n).map(|z| z.re * norm).collect()
    }

    /// Generates fractional Brownian motion (the running sum of fGn),
    /// starting at 0.
    pub fn generate_fbm(&self, n: usize, seed: u64) -> TimeSeries {
        let fgn = self.generate_values(n, seed);
        let mut acc = 0.0;
        let fbm: Vec<f64> = fgn
            .into_iter()
            .map(|x| {
                acc += x;
                acc
            })
            .collect();
        TimeSeries::from_values(1.0, fbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_sigproc::conv::autocorrelation;

    #[test]
    fn output_length_and_determinism() {
        let g = FgnGenerator::new(0.75).unwrap();
        let a = g.generate_values(1000, 5);
        let b = g.generate_values(1000, 5);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        let c = g.generate_values(1000, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_bad_hurst() {
        assert!(FgnGenerator::new(0.0).is_err());
        assert!(FgnGenerator::new(1.0).is_err());
        assert!(FgnGenerator::new(-0.5).is_err());
        assert!(FgnGenerator::new(f64::NAN).is_err());
    }

    #[test]
    fn unit_variance_and_zero_mean() {
        let g = FgnGenerator::new(0.8).unwrap();
        let ts = g.generate(1 << 16, 11);
        assert!(ts.mean().abs() < 0.1, "mean={}", ts.mean());
        assert!((ts.variance() - 1.0).abs() < 0.15, "var={}", ts.variance());
    }

    #[test]
    fn sample_acf_matches_exact_acf() {
        let h = 0.8;
        let g = FgnGenerator::new(h).unwrap();
        let vals = g.generate_values(1 << 17, 3);
        let sample = autocorrelation(&vals, 8);
        let exact = FgnAcf::new(h);
        for k in 1..=8u64 {
            let want = exact.at(k);
            let got = sample[k as usize];
            assert!((got - want).abs() < 0.05, "lag {k}: got {got}, want {want}");
        }
    }

    #[test]
    fn white_noise_case_has_no_correlation() {
        let g = FgnGenerator::new(0.5).unwrap();
        let vals = g.generate_values(1 << 15, 9);
        let sample = autocorrelation(&vals, 4);
        for k in 1..=4 {
            assert!(sample[k].abs() < 0.03, "lag {k}: {}", sample[k]);
        }
    }

    #[test]
    fn aggregated_variance_scales_like_self_similar() {
        // var(f^(m)) ≈ m^{2H-2} for fGn.
        let h = 0.8;
        let g = FgnGenerator::new(h).unwrap();
        let ts = g.generate(1 << 18, 21);
        let v1 = ts.variance();
        let v64 = ts.aggregate(64).variance();
        let implied_h = 1.0 + ((v64 / v1).ln() / 64f64.ln()) / 2.0;
        assert!((implied_h - h).abs() < 0.05, "implied H = {implied_h}");
    }

    #[test]
    fn fbm_is_cumulative_sum() {
        let g = FgnGenerator::new(0.7).unwrap();
        let fgn = g.generate_values(100, 4);
        let fbm = g.generate_fbm(100, 4);
        let mut acc = 0.0;
        for (i, &x) in fgn.iter().enumerate() {
            acc += x;
            assert!((fbm.values()[i] - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn single_point_trace() {
        let g = FgnGenerator::new(0.6).unwrap();
        assert_eq!(g.generate_values(1, 0).len(), 1);
    }

    #[test]
    fn non_power_of_two_lengths() {
        let g = FgnGenerator::new(0.65).unwrap();
        for n in [3usize, 100, 1023, 1025] {
            assert_eq!(g.generate_values(n, 1).len(), n);
        }
    }
}
