//! Exact fractional Gaussian noise via Davies-Harte circulant embedding.
//!
//! fGn is the increment process of fractional Brownian motion; it is the
//! canonical Gaussian self-similar process with Hurst parameter `H` and
//! the backbone of the synthetic traces here: the Gaussian-copula
//! transform ([`crate::copula`]) maps it onto any marginal while keeping
//! its long-range dependence, matching the two properties the paper's
//! synthetic ns-2 traffic was built to have.
//!
//! Davies-Harte embeds the n×n Toeplitz covariance of fGn into a 2N×2N
//! circulant whose eigenvalues are the FFT of the first row; for the fGn
//! ACF those eigenvalues are provably non-negative, so the method is exact
//! (the output has *exactly* the target covariance, not asymptotically).

use sst_sigproc::complex::Complex;
use sst_sigproc::fft::next_pow2;
use sst_sigproc::plan::{lru_fetch, plan_for, FftPlan};
use sst_sigproc::rfft::{real_plan_for, RealFftPlan};
use sst_stats::dist::{standard_normal, standard_normal_boxmuller};
use sst_stats::fill_standard_normal;
use sst_stats::model::FgnAcf;
use sst_stats::rng::rng_from_seed;
use sst_stats::TimeSeries;
use std::sync::{Arc, Mutex, OnceLock};

/// Generator of exact fractional Gaussian noise.
///
/// # Examples
///
/// ```
/// use sst_traffic::fgn::FgnGenerator;
/// let fgn = FgnGenerator::new(0.8).expect("valid H");
/// let ts = fgn.generate(4096, 42);
/// assert_eq!(ts.len(), 4096);
/// // Standard-normal marginals: mean ≈ 0, variance ≈ 1.
/// assert!(ts.mean().abs() < 0.15);
/// ```
#[derive(Clone, Debug)]
pub struct FgnGenerator {
    hurst: f64,
}

/// Error for invalid generator parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidParameterError {
    what: &'static str,
}

impl std::fmt::Display for InvalidParameterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid generator parameter: {}", self.what)
    }
}

impl std::error::Error for InvalidParameterError {}

impl InvalidParameterError {
    pub(crate) fn new(what: &'static str) -> Self {
        InvalidParameterError { what }
    }
}

impl FgnGenerator {
    /// Creates a generator for Hurst parameter `h ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `h` is outside `(0, 1)`.
    pub fn new(h: f64) -> Result<Self, InvalidParameterError> {
        if !(h > 0.0 && h < 1.0) {
            return Err(InvalidParameterError {
                what: "Hurst parameter must be in (0,1)",
            });
        }
        Ok(FgnGenerator { hurst: h })
    }

    /// The Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.hurst
    }

    /// Generates `n` points of unit-variance fGn with bin width 1.0,
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(&self, n: usize, seed: u64) -> TimeSeries {
        TimeSeries::from_values(1.0, self.generate_values(n, seed))
    }

    /// Raw-value variant of [`FgnGenerator::generate`].
    ///
    /// Internally fetches the shared [`FgnPlan`] for `(H, n)` from the
    /// process-wide cache, so repeated calls (across instance seeds, the
    /// Monte-Carlo hot path) compute the circulant eigenvalue spectrum
    /// once, and runs the Hermitian half-spectrum synthesis (ziggurat
    /// Gaussians + real inverse FFT). Output is bit-identical to a
    /// freshly built plan; the historical Box-Muller/full-FFT value
    /// stream remains available as
    /// [`FgnPlan::generate_values_into_legacy`].
    pub fn generate_values(&self, n: usize, seed: u64) -> Vec<f64> {
        assert!(n >= 1, "cannot generate an empty trace");
        FgnPlan::cached(self.hurst, n)
            .expect("Hurst validated at construction")
            .generate_values(seed)
    }

    /// Generates fractional Brownian motion (the running sum of fGn),
    /// starting at 0.
    pub fn generate_fbm(&self, n: usize, seed: u64) -> TimeSeries {
        let fgn = self.generate_values(n, seed);
        let mut acc = 0.0;
        let fbm: Vec<f64> = fgn
            .into_iter()
            .map(|x| {
                acc += x;
                acc
            })
            .collect();
        TimeSeries::from_values(1.0, fbm)
    }
}

/// Reusable scratch for [`FgnPlan::generate_values_into`]: the complex
/// spectrum buffer plus the Gaussian draw buffer, so per-instance
/// generation performs no allocation after the first call.
#[derive(Clone, Debug, Default)]
pub struct FgnScratch {
    spec: Vec<Complex>,
    gauss: Vec<f64>,
}

/// A precomputed Davies-Harte generation plan for one `(H, n)` pair.
///
/// Construction performs the expensive, seed-independent work once: the
/// fGn autocovariance row, its FFT (the circulant eigenvalues
/// `λ(H, n)`), the clamp, and the per-bin amplitudes
/// `√(λ_k/2)`. [`FgnPlan::generate_values_into`] then needs exactly
/// `2N` ziggurat Gaussian draws plus one **half-size** inverse real FFT
/// per instance: the circulant spectrum is Hermitian by construction,
/// so only the `N+1` non-redundant bins are drawn (into the packed
/// half-spectrum buffer) and inverted through
/// [`sst_sigproc::rfft::RealFftPlan::c2r_prefix`] — roughly halving the
/// FFT cost that dominated the full-spectrum path.
///
/// The historical Box-Muller/full-complex-FFT synthesis is retained
/// verbatim as [`FgnPlan::generate_values_into_legacy`]; the
/// determinism suite pins it bit-for-bit against the seed algorithm.
/// The fast path is validated against the same full-spectrum transform
/// to ≤1e-9 and is distribution-exact, but consumes a different RNG
/// stream, so a given seed yields different (equally exact) traces
/// than the legacy path.
///
/// # Examples
///
/// ```
/// use sst_traffic::fgn::{FgnPlan, FgnScratch};
///
/// let plan = FgnPlan::new(0.8, 4096).expect("valid H");
/// let mut out = Vec::new();
/// let mut scratch = FgnScratch::default();
/// for seed in 0..4 {
///     plan.generate_values_into(seed, &mut out, &mut scratch);
///     assert_eq!(out.len(), 4096);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct FgnPlan {
    hurst: f64,
    n: usize,
    big_n: usize,
    m: usize,
    /// `amp[0] = √λ₀`, `amp[N] = √λ_N`, `amp[k] = √(λ_k/2)` otherwise.
    amp: Vec<f64>,
    /// The amplitudes with the output normalization `1/√m` and the
    /// inverse-transform scale `m` folded in (`amp[k]·√m`), so the fast
    /// path's packed half-spectrum needs no post-scaling pass.
    half_amp: Vec<f64>,
    fft: Arc<FftPlan>,
    rfft: Arc<RealFftPlan>,
}

impl FgnPlan {
    /// Builds the plan for Hurst parameter `h ∈ (0, 1)` and length
    /// `n ≥ 1`, deriving the circulant eigenvalue spectrum once.
    ///
    /// # Errors
    ///
    /// Returns an error if `h` is outside `(0, 1)` or `n == 0`.
    pub fn new(h: f64, n: usize) -> Result<Self, InvalidParameterError> {
        if !(h > 0.0 && h < 1.0) {
            return Err(InvalidParameterError {
                what: "Hurst parameter must be in (0,1)",
            });
        }
        if n == 0 {
            return Err(InvalidParameterError {
                what: "trace length must be >= 1",
            });
        }
        if n == 1 {
            // Degenerate single-point plan: one standard normal draw.
            return Ok(FgnPlan {
                hurst: h,
                n,
                big_n: 0,
                m: 0,
                amp: Vec::new(),
                half_amp: Vec::new(),
                fft: plan_for(1),
                rfft: real_plan_for(1),
            });
        }
        let big_n = next_pow2(n);
        let m = 2 * big_n;
        // First row of the circulant: ρ(0..=N), then mirrored ρ(N-1..=1).
        let acf = FgnAcf::new(h);
        let mut row = vec![Complex::ZERO; m];
        for (k, slot) in row.iter_mut().enumerate().take(big_n + 1) {
            *slot = Complex::from_real(acf.at(k as u64));
        }
        for k in 1..big_n {
            row[m - k] = Complex::from_real(acf.at(k as u64));
        }
        let fft = plan_for(m);
        fft.forward(&mut row);
        // Eigenvalues are real and non-negative for the fGn ACF; tiny
        // negative round-off is clamped. Fold the per-bin amplitude
        // arithmetic in now — the same expressions the generation loop
        // historically evaluated, so the products below are bit-equal.
        let mut amp = Vec::with_capacity(big_n + 1);
        amp.push(row[0].re.max(0.0).sqrt());
        for z in row.iter().take(big_n).skip(1) {
            amp.push((z.re.max(0.0) / 2.0).sqrt());
        }
        amp.push(row[big_n].re.max(0.0).sqrt());
        // Fast-path amplitudes: the normalized inverse real transform
        // divides by m while the target output carries 1/√m, so the
        // packed bins are pre-scaled by m/√m = √m.
        let sqrt_m = (m as f64).sqrt();
        let half_amp: Vec<f64> = amp.iter().map(|a| a * sqrt_m).collect();
        Ok(FgnPlan {
            hurst: h,
            n,
            big_n,
            m,
            amp,
            half_amp,
            fft,
            rfft: real_plan_for(m),
        })
    }

    /// Fetches the shared plan for `(h, n)` from the process-wide LRU
    /// cache (keyed on the exact bits of `h` plus `n`), building it on
    /// first use.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FgnPlan::new`].
    pub fn cached(h: f64, n: usize) -> Result<Arc<FgnPlan>, InvalidParameterError> {
        const CACHE_CAP: usize = 8;
        static CACHE: OnceLock<Mutex<Vec<Arc<FgnPlan>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        lru_fetch(
            cache,
            CACHE_CAP,
            |p| p.hurst.to_bits() == h.to_bits() && p.n == n,
            || FgnPlan::new(h, n),
        )
    }

    /// The Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.hurst
    }

    /// The trace length this plan generates.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan generates zero-length traces (never true; plans
    /// require `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Generates one instance into `out`, reusing `scratch` — zero
    /// allocation after the buffers have grown once.
    ///
    /// This is the fast path: ziggurat Gaussians drawn directly into
    /// the packed `N+1`-bin half-spectrum, inverted with a half-size
    /// real FFT ([`sst_sigproc::rfft::RealFftPlan::c2r_prefix`]). The
    /// draw order matches the legacy path (bin 0, bin N, then the
    /// interior pairs), and the imaginary parts are negated in place so
    /// the packed buffer holds `conj(S)` — the inverse transform of the
    /// conjugate spectrum equals the forward transform of `S`, which is
    /// what Davies-Harte prescribes.
    pub fn generate_values_into(&self, seed: u64, out: &mut Vec<f64>, scratch: &mut FgnScratch) {
        let mut rng = rng_from_seed(seed);
        if self.n == 1 {
            out.clear();
            out.push(standard_normal(&mut rng));
            return;
        }
        let big_n = self.big_n;
        // All 2N Gaussians in one batch fill — bit-identical to the
        // historical per-draw calls (the fill consumes the RNG in the
        // same order: bin 0, bin N, then the interior (g, h) pairs).
        // No clear() first: every slot in [0, 2N) is overwritten by the
        // fill, so resize alone (a no-op at steady state) avoids a dead
        // zero-fill of the whole buffer on each call.
        let gauss = &mut scratch.gauss;
        gauss.resize(2 * big_n, 0.0);
        fill_standard_normal(&mut rng, gauss);
        let spec = &mut scratch.spec;
        spec.clear();
        spec.resize(big_n + 1, Complex::ZERO);
        spec[0] = Complex::from_real(self.half_amp[0] * gauss[0]);
        spec[big_n] = Complex::from_real(self.half_amp[big_n] * gauss[1]);
        for (k, (slot, &amp)) in spec[1..big_n]
            .iter_mut()
            .zip(&self.half_amp[1..big_n])
            .enumerate()
        {
            let g = gauss[2 + 2 * k];
            let h = gauss[3 + 2 * k];
            *slot = Complex::new(amp * g, -(amp * h));
        }
        out.clear();
        out.resize(self.n, 0.0);
        self.rfft.c2r_prefix(spec, out);
    }

    /// Allocating variant of [`FgnPlan::generate_values_into`].
    pub fn generate_values(&self, seed: u64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut scratch = FgnScratch::default();
        self.generate_values_into(seed, &mut out, &mut scratch);
        out
    }

    /// The historical Davies-Harte synthesis, verbatim: Box-Muller
    /// Gaussians into the full `2N`-bin spectrum, inverted with the
    /// full-size complex FFT. Bit-identical to the seed algorithm for
    /// every `(H, n, seed)` — the determinism suite pins this path.
    pub fn generate_values_into_legacy(
        &self,
        seed: u64,
        out: &mut Vec<f64>,
        scratch: &mut FgnScratch,
    ) {
        let mut rng = rng_from_seed(seed);
        if self.n == 1 {
            out.clear();
            out.push(standard_normal_boxmuller(&mut rng));
            return;
        }
        let (big_n, m) = (self.big_n, self.m);
        let spec = &mut scratch.spec;
        spec.clear();
        spec.resize(m, Complex::ZERO);
        spec[0] = Complex::from_real(self.amp[0] * standard_normal_boxmuller(&mut rng));
        spec[big_n] = Complex::from_real(self.amp[big_n] * standard_normal_boxmuller(&mut rng));
        for k in 1..big_n {
            let g = standard_normal_boxmuller(&mut rng);
            let h = standard_normal_boxmuller(&mut rng);
            let amp = self.amp[k];
            spec[k] = Complex::new(amp * g, amp * h);
            spec[m - k] = spec[k].conj();
        }
        self.fft.forward(spec);
        let norm = 1.0 / (m as f64).sqrt();
        out.clear();
        out.reserve(self.n);
        out.extend(spec.iter().take(self.n).map(|z| z.re * norm));
    }

    /// Allocating variant of [`FgnPlan::generate_values_into_legacy`].
    pub fn generate_values_legacy(&self, seed: u64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut scratch = FgnScratch::default();
        self.generate_values_into_legacy(seed, &mut out, &mut scratch);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_sigproc::conv::autocorrelation;

    #[test]
    fn output_length_and_determinism() {
        let g = FgnGenerator::new(0.75).unwrap();
        let a = g.generate_values(1000, 5);
        let b = g.generate_values(1000, 5);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        let c = g.generate_values(1000, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_bad_hurst() {
        assert!(FgnGenerator::new(0.0).is_err());
        assert!(FgnGenerator::new(1.0).is_err());
        assert!(FgnGenerator::new(-0.5).is_err());
        assert!(FgnGenerator::new(f64::NAN).is_err());
    }

    #[test]
    fn unit_variance_and_zero_mean() {
        let g = FgnGenerator::new(0.8).unwrap();
        let ts = g.generate(1 << 16, 11);
        assert!(ts.mean().abs() < 0.1, "mean={}", ts.mean());
        assert!((ts.variance() - 1.0).abs() < 0.15, "var={}", ts.variance());
    }

    #[test]
    fn sample_acf_matches_exact_acf() {
        let h = 0.8;
        let g = FgnGenerator::new(h).unwrap();
        let vals = g.generate_values(1 << 17, 3);
        let sample = autocorrelation(&vals, 8);
        let exact = FgnAcf::new(h);
        for k in 1..=8u64 {
            let want = exact.at(k);
            let got = sample[k as usize];
            assert!((got - want).abs() < 0.05, "lag {k}: got {got}, want {want}");
        }
    }

    #[test]
    fn white_noise_case_has_no_correlation() {
        let g = FgnGenerator::new(0.5).unwrap();
        let vals = g.generate_values(1 << 15, 9);
        let sample = autocorrelation(&vals, 4);
        for (k, rho) in sample.iter().enumerate().skip(1) {
            assert!(rho.abs() < 0.03, "lag {k}: {rho}");
        }
    }

    #[test]
    fn aggregated_variance_scales_like_self_similar() {
        // var(f^(m)) ≈ m^{2H-2} for fGn.
        let h = 0.8;
        let g = FgnGenerator::new(h).unwrap();
        let ts = g.generate(1 << 18, 21);
        let v1 = ts.variance();
        let v64 = ts.aggregate(64).variance();
        let implied_h = 1.0 + ((v64 / v1).ln() / 64f64.ln()) / 2.0;
        assert!((implied_h - h).abs() < 0.05, "implied H = {implied_h}");
    }

    #[test]
    fn fbm_is_cumulative_sum() {
        let g = FgnGenerator::new(0.7).unwrap();
        let fgn = g.generate_values(100, 4);
        let fbm = g.generate_fbm(100, 4);
        let mut acc = 0.0;
        for (i, &x) in fgn.iter().enumerate() {
            acc += x;
            assert!((fbm.values()[i] - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn single_point_trace() {
        let g = FgnGenerator::new(0.6).unwrap();
        assert_eq!(g.generate_values(1, 0).len(), 1);
    }

    #[test]
    fn non_power_of_two_lengths() {
        let g = FgnGenerator::new(0.65).unwrap();
        for n in [3usize, 100, 1023, 1025] {
            assert_eq!(g.generate_values(n, 1).len(), n);
        }
    }

    #[test]
    fn plan_is_bit_identical_to_generator_across_seeds() {
        for &(h, n) in &[(0.55f64, 100usize), (0.8, 1024), (0.92, 777), (0.7, 1)] {
            let plan = FgnPlan::new(h, n).unwrap();
            let g = FgnGenerator::new(h).unwrap();
            let mut out = Vec::new();
            let mut scratch = FgnScratch::default();
            for seed in [0u64, 1, 42, 9999] {
                plan.generate_values_into(seed, &mut out, &mut scratch);
                // The generator goes through the shared cache; the plan
                // here is freshly built. Bit-equality proves the cache
                // introduces no numeric drift.
                assert_eq!(out, g.generate_values(n, seed), "H={h} n={n} seed={seed}");
            }
        }
    }

    /// The fast half-spectrum path against the full-spectrum complex
    /// transform fed with the *same* ziggurat draws: identical
    /// mathematics through a different FFT factorization, so the two
    /// must agree to round-off (≤1e-9), not merely in distribution.
    #[test]
    fn fast_path_matches_full_spectrum_reference() {
        use sst_sigproc::fft::fft_pow2_in_place;
        for &(h, n) in &[
            (0.55f64, 64usize),
            (0.8, 1000),
            (0.8, 4096),
            (0.92, 1 << 14),
        ] {
            let plan = FgnPlan::new(h, n).unwrap();
            let (big_n, m) = (plan.big_n, plan.m);
            for seed in [0u64, 7, 123] {
                // Reference: full Hermitian spectrum + complex FFT,
                // same RNG stream and amplitude tables as the plan.
                let mut rng = rng_from_seed(seed);
                let mut spec = vec![Complex::ZERO; m];
                spec[0] = Complex::from_real(plan.amp[0] * standard_normal(&mut rng));
                spec[big_n] = Complex::from_real(plan.amp[big_n] * standard_normal(&mut rng));
                for k in 1..big_n {
                    let g = standard_normal(&mut rng);
                    let hh = standard_normal(&mut rng);
                    let amp = plan.amp[k];
                    spec[k] = Complex::new(amp * g, amp * hh);
                    spec[m - k] = spec[k].conj();
                }
                fft_pow2_in_place(&mut spec);
                let norm = 1.0 / (m as f64).sqrt();
                let want: Vec<f64> = spec.iter().take(n).map(|z| z.re * norm).collect();
                let got = plan.generate_values(seed);
                let err = got
                    .iter()
                    .zip(&want)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(err <= 1e-9, "H={h} n={n} seed={seed}: max err {err}");
            }
        }
    }

    /// The legacy entry point must keep producing the historical
    /// Box-Muller/full-FFT value stream (spot check against a verbatim
    /// inline copy of the seed algorithm; the cross-crate determinism
    /// suite pins more cases).
    #[test]
    fn legacy_path_is_preserved() {
        use sst_sigproc::fft::fft_pow2_in_place;
        use sst_stats::dist::standard_normal_boxmuller;
        let (h, n, seed) = (0.8f64, 500usize, 11u64);
        let plan = FgnPlan::new(h, n).unwrap();
        let (big_n, m) = (plan.big_n, plan.m);
        let mut rng = rng_from_seed(seed);
        let mut spec = vec![Complex::ZERO; m];
        spec[0] = Complex::from_real(plan.amp[0] * standard_normal_boxmuller(&mut rng));
        spec[big_n] = Complex::from_real(plan.amp[big_n] * standard_normal_boxmuller(&mut rng));
        for k in 1..big_n {
            let g = standard_normal_boxmuller(&mut rng);
            let hh = standard_normal_boxmuller(&mut rng);
            let amp = plan.amp[k];
            spec[k] = Complex::new(amp * g, amp * hh);
            spec[m - k] = spec[k].conj();
        }
        fft_pow2_in_place(&mut spec);
        let norm = 1.0 / (m as f64).sqrt();
        let want: Vec<f64> = spec.iter().take(n).map(|z| z.re * norm).collect();
        assert_eq!(plan.generate_values_legacy(seed), want);
    }

    #[test]
    fn cached_plans_are_shared_and_keyed_exactly() {
        let a = FgnPlan::cached(0.8, 2048).unwrap();
        let b = FgnPlan::cached(0.8, 2048).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same (H, n) must hit the cache");
        let c = FgnPlan::cached(0.8, 4096).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(FgnPlan::cached(1.5, 64).is_err());
        assert!(FgnPlan::cached(0.8, 0).is_err());
    }

    #[test]
    fn scratch_reuse_is_stable_across_lengths() {
        // One scratch serving plans of different sizes must not leak
        // state between instances.
        let small = FgnPlan::new(0.75, 64).unwrap();
        let large = FgnPlan::new(0.75, 4096).unwrap();
        let mut out = Vec::new();
        let mut scratch = FgnScratch::default();
        large.generate_values_into(7, &mut out, &mut scratch);
        small.generate_values_into(7, &mut out, &mut scratch);
        assert_eq!(out, small.generate_values(7));
    }
}
