//! # sst-traffic — self-similar traffic generation
//!
//! Synthetic long-range-dependent traffic for the He & Hou (ICDCS 2005)
//! reproduction. Three constructions:
//!
//! * [`fgn`] — exact fractional Gaussian noise (Davies-Harte circulant
//!   embedding), the Gaussian backbone, with [`fgn::FgnPlan`] caching
//!   the eigenvalue spectrum across instance seeds.
//! * [`onoff`] — aggregated Pareto on/off sources, the ns-2 construction
//!   the paper used (`H = (3 − α)/2`).
//! * [`mginf`] — M/G/∞ session counts with heavy-tailed holding times
//!   (cross-check generator).
//!
//! plus [`copula`], the monotone marginal transform that turns fGn into a
//! process with an exact Pareto marginal and unchanged LRD exponent, and
//! [`synthetic`], the paper-calibrated [`SyntheticTraceSpec`] builder.
//!
//! ## Example
//!
//! ```
//! use sst_traffic::SyntheticTraceSpec;
//!
//! // The paper's synthetic workload: H = 0.8, Pareto(1.5) marginal,
//! // mean 5.68.
//! let trace = SyntheticTraceSpec::new().length(1 << 12).seed(7).build();
//! assert!(trace.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod copula;
pub mod fgn;
pub mod mginf;
pub mod onoff;
pub mod synthetic;

pub use fgn::{FgnGenerator, FgnPlan, FgnScratch};
pub use mginf::MgInfModel;
pub use onoff::OnOffModel;
pub use synthetic::{GeneratorKind, MarginalSpec, SyntheticTraceSpec};

#[cfg(test)]
mod proptests {
    use crate::fgn::FgnGenerator;
    use crate::synthetic::SyntheticTraceSpec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn fgn_any_valid_hurst_and_length(h in 0.51f64..0.99, n in 2usize..2048, seed in 0u64..100) {
            let g = FgnGenerator::new(h).unwrap();
            let v = g.generate_values(n, seed);
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }

        #[test]
        fn synthetic_pareto_values_respect_scale(
            alpha in 1.1f64..1.9,
            mean in 0.5f64..100.0,
            seed in 0u64..50,
        ) {
            let t = SyntheticTraceSpec::new()
                .length(512)
                .pareto_marginal(alpha, mean)
                .seed(seed)
                .build();
            let scale = mean * (alpha - 1.0) / alpha;
            prop_assert!(t.min().unwrap() >= scale * (1.0 - 1e-9));
        }

        #[test]
        fn same_seed_same_trace(seed in 0u64..1000) {
            let a = SyntheticTraceSpec::new().length(128).seed(seed).build();
            let b = SyntheticTraceSpec::new().length(128).seed(seed).build();
            prop_assert_eq!(a, b);
        }
    }
}
