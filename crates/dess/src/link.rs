//! A store-and-forward bottleneck link with a finite drop-tail queue —
//! the minimal router model between traffic sources and a measurement
//! point.
//!
//! Semantics: a packet arriving at time `t` is dropped if the queue
//! (including the packet in service) already holds `queue_limit` packets;
//! otherwise it departs at `max(t, previous departure) + size·8/capacity`.
//! This is the standard single-server FIFO fluid-free packet model, and
//! is exactly what ns-2's `DropTail` queue over a point-to-point link
//! computes.

use std::collections::VecDeque;

/// Outcome of offering one packet to the link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkVerdict {
    /// Packet accepted; it will depart at the contained time.
    Forwarded {
        /// Departure (transmission-complete) time in seconds.
        departs_at: f64,
    },
    /// Packet dropped because the queue was full on arrival.
    Dropped,
}

/// A fixed-capacity link with a drop-tail FIFO queue.
///
/// # Examples
///
/// ```
/// use sst_dess::{BottleneckLink, LinkVerdict};
///
/// // 8000 bit/s link: a 1000-byte packet takes exactly 1 s to serialize.
/// let mut link = BottleneckLink::new(8_000.0, 4);
/// match link.offer(0.0, 1000) {
///     LinkVerdict::Forwarded { departs_at } => assert_eq!(departs_at, 1.0),
///     LinkVerdict::Dropped => unreachable!(),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct BottleneckLink {
    capacity_bps: f64,
    queue_limit: usize,
    /// Departure times of packets still "in the system" (in service or
    /// queued), oldest first.
    in_flight: VecDeque<f64>,
    last_departure: f64,
    forwarded: u64,
    dropped: u64,
    busy_until: f64,
    busy_time: f64,
}

impl BottleneckLink {
    /// Creates a link with `capacity_bps` bits/second and a queue that
    /// holds at most `queue_limit` packets (including the one in
    /// service).
    ///
    /// # Panics
    ///
    /// Panics unless the capacity is positive and `queue_limit >= 1`.
    pub fn new(capacity_bps: f64, queue_limit: usize) -> Self {
        assert!(
            capacity_bps > 0.0 && capacity_bps.is_finite(),
            "capacity must be positive"
        );
        assert!(queue_limit >= 1, "queue must hold at least one packet");
        BottleneckLink {
            capacity_bps,
            queue_limit,
            in_flight: VecDeque::new(),
            last_departure: 0.0,
            forwarded: 0,
            dropped: 0,
            busy_until: 0.0,
            busy_time: 0.0,
        }
    }

    /// Link capacity in bits/second.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Maximum number of packets held (service + queue).
    pub fn queue_limit(&self) -> usize {
        self.queue_limit
    }

    /// Offers a packet of `size` bytes arriving at time `at`.
    ///
    /// Arrival times must be non-decreasing across calls.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not finite, goes backwards, or `size == 0`.
    pub fn offer(&mut self, at: f64, size: u32) -> LinkVerdict {
        assert!(at.is_finite(), "arrival time must be finite");
        assert!(size > 0, "packet size must be positive");
        // Release every packet that has already departed by `at`.
        while let Some(&d) = self.in_flight.front() {
            if d <= at {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        if self.in_flight.len() >= self.queue_limit {
            self.dropped += 1;
            return LinkVerdict::Dropped;
        }
        let tx = size as f64 * 8.0 / self.capacity_bps;
        let start = self.last_departure.max(at);
        let departs_at = start + tx;
        self.last_departure = departs_at;
        self.in_flight.push_back(departs_at);
        self.forwarded += 1;
        self.busy_time += tx;
        self.busy_until = departs_at;
        LinkVerdict::Forwarded { departs_at }
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drop ratio `dropped / offered` (0 when nothing was offered).
    pub fn loss_rate(&self) -> f64 {
        let offered = self.forwarded + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }

    /// Number of packets currently in the system (service + queue),
    /// as of the last offered arrival.
    pub fn backlog(&self) -> usize {
        self.in_flight.len()
    }

    /// Utilization over `[0, horizon]`: total transmission time divided
    /// by the horizon.
    ///
    /// # Panics
    ///
    /// Panics unless `horizon > 0`.
    pub fn utilization(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0, "horizon must be positive");
        (self.busy_time / horizon).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn departure(v: LinkVerdict) -> f64 {
        match v {
            LinkVerdict::Forwarded { departs_at } => departs_at,
            LinkVerdict::Dropped => panic!("expected forwarded"),
        }
    }

    #[test]
    fn serialization_delay_is_size_over_capacity() {
        let mut link = BottleneckLink::new(1e6, 100);
        let d = departure(link.offer(0.0, 1250)); // 10_000 bits @ 1 Mbps
        assert!((d - 0.01).abs() < 1e-12);
    }

    #[test]
    fn back_to_back_packets_queue_up() {
        let mut link = BottleneckLink::new(8e3, 100); // 1000 B = 1 s
        let d1 = departure(link.offer(0.0, 1000));
        let d2 = departure(link.offer(0.0, 1000));
        let d3 = departure(link.offer(0.0, 1000));
        assert_eq!((d1, d2, d3), (1.0, 2.0, 3.0));
        assert_eq!(link.backlog(), 3);
    }

    #[test]
    fn idle_link_restarts_service_at_arrival() {
        let mut link = BottleneckLink::new(8e3, 100);
        let d1 = departure(link.offer(0.0, 1000));
        assert_eq!(d1, 1.0);
        // Arrives long after the first departed: service starts at 5.
        let d2 = departure(link.offer(5.0, 1000));
        assert_eq!(d2, 6.0);
    }

    #[test]
    fn droptail_drops_when_full() {
        let mut link = BottleneckLink::new(8e3, 2);
        assert!(matches!(
            link.offer(0.0, 1000),
            LinkVerdict::Forwarded { .. }
        ));
        assert!(matches!(
            link.offer(0.0, 1000),
            LinkVerdict::Forwarded { .. }
        ));
        assert_eq!(link.offer(0.0, 1000), LinkVerdict::Dropped);
        assert_eq!(link.forwarded(), 2);
        assert_eq!(link.dropped(), 1);
        assert!((link.loss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn queue_frees_as_time_passes() {
        let mut link = BottleneckLink::new(8e3, 2);
        link.offer(0.0, 1000); // departs 1.0
        link.offer(0.0, 1000); // departs 2.0
        assert_eq!(link.offer(0.5, 1000), LinkVerdict::Dropped);
        // By 1.5 the first packet left; room again.
        let d = departure(link.offer(1.5, 1000));
        assert_eq!(d, 3.0, "service resumes behind the in-flight packet");
    }

    #[test]
    fn departures_are_fifo_and_spaced_by_transmission_time() {
        let mut link = BottleneckLink::new(1e6, 1000);
        let mut prev = 0.0;
        for i in 0..100 {
            let d = departure(link.offer(i as f64 * 1e-4, 500));
            let tx = 500.0 * 8.0 / 1e6;
            assert!(d >= prev + tx - 1e-12, "dep {d} too close to {prev}");
            prev = d;
        }
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut link = BottleneckLink::new(8e3, 10);
        link.offer(0.0, 1000); // 1 s of service
        link.offer(4.0, 1000); // 1 s of service
        assert!((link.utilization(10.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn loss_rate_zero_when_idle() {
        let link = BottleneckLink::new(1e6, 4);
        assert_eq!(link.loss_rate(), 0.0);
        assert_eq!(link.forwarded(), 0);
    }

    #[test]
    #[should_panic(expected = "queue must hold at least one packet")]
    fn zero_queue_rejected() {
        BottleneckLink::new(1e6, 0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn conservation_and_fifo(
                gaps in proptest::collection::vec(0.0f64..0.01, 1..300),
                sizes in proptest::collection::vec(40u32..1500, 300),
            ) {
                let mut link = BottleneckLink::new(1e6, 16);
                let mut t = 0.0;
                let mut last_dep = 0.0;
                let mut fwd = 0u64;
                let mut drop = 0u64;
                for (g, &s) in gaps.iter().zip(&sizes) {
                    t += g;
                    match link.offer(t, s) {
                        LinkVerdict::Forwarded { departs_at } => {
                            prop_assert!(departs_at > t, "departure before arrival");
                            prop_assert!(departs_at >= last_dep, "FIFO violated");
                            last_dep = departs_at;
                            fwd += 1;
                        }
                        LinkVerdict::Dropped => drop += 1,
                    }
                }
                prop_assert_eq!(fwd, link.forwarded());
                prop_assert_eq!(drop, link.dropped());
                prop_assert_eq!((fwd + drop) as usize, gaps.len());
                prop_assert!(link.backlog() <= link.queue_limit());
            }
        }
    }
}
