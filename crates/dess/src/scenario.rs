//! Ready-made simulation scenarios: the ns-2 experiment the paper runs
//! ("generate in ns-2 self-similar traffic with Hurst parameter 0.80
//! using the on-off model") as a one-call builder.

use crate::engine::EventQueue;
use crate::link::{BottleneckLink, LinkVerdict};
use crate::monitor::RateMonitor;
use crate::source::{OnOffSource, TrafficSource};
use sst_nettrace::{FlowKey, Packet, PacketTrace, Protocol};
use sst_stats::rng::derive_seed;
use sst_stats::TimeSeries;

/// Bottleneck-link parameters for a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Link capacity in bits/second.
    pub capacity_bps: f64,
    /// Drop-tail queue limit in packets.
    pub queue_limit: usize,
}

/// Builder for an aggregated on/off-source simulation.
///
/// Defaults reproduce the paper's §IV setup in miniature: Pareto on/off
/// sources with shape `α = 1.4` (so `H = (3 − α)/2 = 0.8`), no
/// bottleneck, 10 ms measurement bins.
///
/// # Examples
///
/// ```
/// use sst_dess::OnOffScenario;
///
/// let out = OnOffScenario::new()
///     .sources(4)
///     .duration(20.0)
///     .run(7);
/// assert_eq!(out.offered.len(), 2000); // 20 s at 10 ms bins
/// ```
#[derive(Clone, Debug)]
pub struct OnOffScenario {
    n_sources: usize,
    alpha: f64,
    mean_on: f64,
    mean_off: f64,
    pps_on: f64,
    pkt_size: u32,
    dt: f64,
    duration: f64,
    link: Option<LinkSpec>,
    capture_packets: bool,
}

impl Default for OnOffScenario {
    fn default() -> Self {
        OnOffScenario::new()
    }
}

impl OnOffScenario {
    /// Creates the default scenario (16 sources, α = 1.4, 1 s mean
    /// periods, 100 pkt/s of 1000 B while ON, 10 ms bins, 60 s horizon,
    /// no bottleneck).
    pub fn new() -> Self {
        OnOffScenario {
            n_sources: 16,
            alpha: 1.4,
            mean_on: 1.0,
            mean_off: 1.0,
            pps_on: 100.0,
            pkt_size: 1000,
            dt: 0.01,
            duration: 60.0,
            link: None,
            capture_packets: false,
        }
    }

    /// Number of on/off sources to superpose.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sources(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one source");
        self.n_sources = n;
        self
    }

    /// Pareto shape `α ∈ (1, 2)` of the on/off period lengths. The
    /// aggregate converges to `H = (3 − α)/2`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 < alpha < 2`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha > 1.0 && alpha < 2.0,
            "alpha must lie in (1,2), got {alpha}"
        );
        self.alpha = alpha;
        self
    }

    /// Target Hurst parameter; sets `α = 3 − 2H`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.5 < hurst < 1`.
    pub fn hurst(self, hurst: f64) -> Self {
        assert!(
            hurst > 0.5 && hurst < 1.0,
            "H must lie in (0.5,1), got {hurst}"
        );
        self.alpha(3.0 - 2.0 * hurst)
    }

    /// Mean ON and OFF period lengths in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless both are positive.
    pub fn periods(mut self, mean_on: f64, mean_off: f64) -> Self {
        assert!(
            mean_on > 0.0 && mean_off > 0.0,
            "period means must be positive"
        );
        self.mean_on = mean_on;
        self.mean_off = mean_off;
        self
    }

    /// Per-source emission rate while ON (packets/second) and packet
    /// size (bytes).
    ///
    /// # Panics
    ///
    /// Panics unless `pps > 0` and `size > 0`.
    pub fn emission(mut self, pps: f64, size: u32) -> Self {
        assert!(pps > 0.0, "packet rate must be positive");
        assert!(size > 0, "packet size must be positive");
        self.pps_on = pps;
        self.pkt_size = size;
        self
    }

    /// Measurement bin width in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `dt > 0`.
    pub fn bin_width(mut self, dt: f64) -> Self {
        assert!(dt > 0.0, "bin width must be positive");
        self.dt = dt;
        self
    }

    /// Simulation horizon in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `duration > 0`.
    pub fn duration(mut self, duration: f64) -> Self {
        assert!(duration > 0.0, "duration must be positive");
        self.duration = duration;
        self
    }

    /// Routes the aggregate through a bottleneck link before the
    /// delivered-traffic tap.
    pub fn bottleneck(mut self, spec: LinkSpec) -> Self {
        self.link = Some(spec);
        self
    }

    /// Also returns the packet-level trace (costs memory proportional to
    /// the packet count).
    pub fn capture(mut self, capture: bool) -> Self {
        self.capture_packets = capture;
        self
    }

    /// The Hurst parameter the Taqqu-Willinger-Sherman limit predicts
    /// for this configuration: `H = (3 − α)/2`.
    pub fn expected_hurst(&self) -> f64 {
        (3.0 - self.alpha) / 2.0
    }

    /// Long-run offered load in bytes/second (analytic).
    pub fn offered_load(&self) -> f64 {
        let duty = self.mean_on / (self.mean_on + self.mean_off);
        self.n_sources as f64 * duty * self.pps_on * self.pkt_size as f64
    }

    /// Runs the simulation. All randomness derives from `seed`.
    pub fn run(&self, seed: u64) -> ScenarioOutput {
        let mut sources: Vec<OnOffSource> = (0..self.n_sources)
            .map(|i| {
                OnOffSource::ns2(
                    self.alpha,
                    self.mean_on,
                    self.mean_off,
                    self.pps_on,
                    self.pkt_size,
                    derive_seed(seed, i as u64),
                )
            })
            .collect();

        // Event = source index; the queue merges the per-source streams
        // into one time-ordered arrival process.
        let mut queue = EventQueue::new();
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some(e) = src.next_packet() {
                queue
                    .schedule(e.time, (i, e.size))
                    .expect("first emissions are never in the past");
            }
        }

        let mut offered_mon = RateMonitor::new(self.dt, self.duration);
        let mut delivered_mon = self.link.map(|_| RateMonitor::new(self.dt, self.duration));
        let mut link = self
            .link
            .map(|s| BottleneckLink::new(s.capacity_bps, s.queue_limit));
        let mut packets = Vec::new();

        while let Some((t, (i, size))) = queue.pop_until(self.duration) {
            offered_mon.record(t, size);
            match link.as_mut() {
                Some(l) => {
                    if let LinkVerdict::Forwarded { departs_at } = l.offer(t, size) {
                        if let Some(mon) = delivered_mon.as_mut() {
                            mon.record(departs_at, size);
                        }
                        if self.capture_packets {
                            packets.push(Packet::new(departs_at, size, i as u32));
                        }
                    }
                }
                None => {
                    if self.capture_packets {
                        packets.push(Packet::new(t, size, i as u32));
                    }
                }
            }
            // Refill from the source that fired.
            if let Some(e) = sources[i].next_packet() {
                if e.time <= self.duration {
                    queue
                        .schedule(e.time, (i, e.size))
                        .expect("emissions are monotone");
                }
            }
        }

        let trace = if self.capture_packets {
            // Departure reordering across the link cannot happen (FIFO),
            // but be defensive: PacketTrace requires sorted timestamps.
            packets.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
            let max_t = packets.last().map_or(0.0, |p| p.time);
            let flows: Vec<FlowKey> = (0..self.n_sources)
                .map(|i| FlowKey {
                    src: i as u32,
                    dst: u32::MAX,
                    src_port: 1024,
                    dst_port: 9,
                    proto: Protocol::Udp,
                })
                .collect();
            Some(PacketTrace::new(flows, packets, self.duration.max(max_t)))
        } else {
            None
        };

        ScenarioOutput {
            offered: offered_mon.into_series(),
            delivered: delivered_mon.map(RateMonitor::into_series),
            loss_rate: link.as_ref().map_or(0.0, BottleneckLink::loss_rate),
            utilization: link.as_ref().map(|l| l.utilization(self.duration)),
            trace,
        }
    }
}

/// Everything a scenario run measures.
#[derive(Clone, Debug)]
pub struct ScenarioOutput {
    /// Offered (pre-bottleneck) rate process, bytes/second per bin.
    pub offered: TimeSeries,
    /// Delivered (post-bottleneck) rate process; `None` without a link.
    pub delivered: Option<TimeSeries>,
    /// Fraction of packets dropped at the bottleneck (0 without a link).
    pub loss_rate: f64,
    /// Link utilization over the horizon; `None` without a link.
    pub utilization: Option<f64>,
    /// Packet-level trace, when capture was requested.
    pub trace: Option<PacketTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let sc = OnOffScenario::new().sources(4).duration(10.0);
        let a = sc.run(5);
        let b = sc.run(5);
        assert_eq!(a.offered.values(), b.offered.values());
        let c = sc.run(6);
        assert_ne!(a.offered.values(), c.offered.values());
    }

    #[test]
    fn offered_mean_tracks_analytic_load() {
        let sc = OnOffScenario::new()
            .sources(32)
            .alpha(1.6) // milder tail converges faster
            .periods(0.2, 0.2)
            .emission(200.0, 500)
            .duration(120.0);
        let out = sc.run(11);
        let expect = sc.offered_load();
        let got = out.offered.mean();
        assert!(
            (got / expect - 1.0).abs() < 0.2,
            "offered mean {got:.0} vs analytic {expect:.0}"
        );
    }

    #[test]
    fn no_link_means_no_loss_and_no_delivered_series() {
        let out = OnOffScenario::new().sources(2).duration(5.0).run(1);
        assert_eq!(out.loss_rate, 0.0);
        assert!(out.delivered.is_none());
        assert!(out.utilization.is_none());
    }

    #[test]
    fn tight_bottleneck_drops_and_shapes_traffic() {
        let sc = OnOffScenario::new()
            .sources(16)
            .periods(0.5, 0.5)
            .emission(100.0, 1000)
            .duration(60.0)
            // Offered ≈ 16·0.5·100·1000·8 = 6.4 Mbps; give 2 Mbps.
            .bottleneck(LinkSpec {
                capacity_bps: 2e6,
                queue_limit: 32,
            });
        let out = sc.run(3);
        assert!(out.loss_rate > 0.2, "loss {:.3}", out.loss_rate);
        let delivered = out.delivered.expect("link produces delivered series");
        // Delivered rate can never exceed capacity for long: its mean is
        // below capacity in bytes/s.
        assert!(delivered.mean() <= 2e6 / 8.0 + 1.0);
        assert!(delivered.mean() < out.offered.mean());
        assert!(
            out.utilization.unwrap() > 0.9,
            "saturated link should be busy"
        );
    }

    #[test]
    fn generous_bottleneck_is_lossless() {
        let sc = OnOffScenario::new()
            .sources(4)
            .emission(50.0, 500)
            .duration(30.0)
            .bottleneck(LinkSpec {
                capacity_bps: 1e9,
                queue_limit: 1000,
            });
        let out = sc.run(9);
        assert_eq!(out.loss_rate, 0.0);
        let delivered = out.delivered.unwrap();
        // Byte conservation between taps (departures near the horizon
        // may slip out of the window; allow a sliver).
        let off: f64 = out.offered.values().iter().sum();
        let del: f64 = delivered.values().iter().sum();
        assert!(
            (off - del).abs() / off < 0.01,
            "offered {off} delivered {del}"
        );
    }

    #[test]
    fn capture_produces_consistent_trace() {
        let sc = OnOffScenario::new().sources(3).duration(10.0).capture(true);
        let out = sc.run(2);
        let trace = out.trace.expect("capture was requested");
        assert_eq!(trace.flows().len(), 3);
        assert!(!trace.is_empty());
        // Binning the trace at the monitor's dt reproduces the offered
        // series (no link: tap and trace see identical packets).
        let rebinned = trace.to_rate_series(0.01);
        let n = out.offered.len().min(rebinned.len());
        for i in 0..n {
            assert!(
                (out.offered.values()[i] - rebinned.values()[i]).abs() < 1e-6,
                "bin {i} differs"
            );
        }
    }

    #[test]
    fn expected_hurst_mapping() {
        assert!((OnOffScenario::new().alpha(1.4).expected_hurst() - 0.8).abs() < 1e-12);
        assert!((OnOffScenario::new().hurst(0.9).expected_hurst() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn aggregate_is_long_range_dependent() {
        // The headline property: superposed heavy-tailed on/off sources
        // produce an LRD aggregate with H ≈ (3 − α)/2. Estimate on a
        // moderate run and accept a generous band (slow convergence is
        // the whole point of the paper).
        use sst_hurst::LocalWhittleEstimator;
        let sc = OnOffScenario::new()
            .sources(24)
            .hurst(0.8)
            .periods(0.4, 0.4)
            .emission(250.0, 200)
            .bin_width(0.05)
            .duration(820.0); // 16384 bins
        let out = sc.run(13);
        let est = LocalWhittleEstimator::default()
            .estimate(out.offered.values())
            .expect("long enough");
        assert!(
            est.hurst > 0.65 && est.hurst < 0.98,
            "H estimate {:.3} out of LRD band (expect ≈ 0.8)",
            est.hurst
        );
    }
}
