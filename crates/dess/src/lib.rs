//! # sst-dess — discrete-event network simulation substrate
//!
//! The paper generates its synthetic workload "in ns-2 … using the
//! on-off model, where the on/off periods have heavy-tailed
//! distributions" (§IV). This crate is the ns-2 substitute: a small,
//! deterministic discrete-event simulator with exactly the pieces that
//! experiment needs —
//!
//! * [`EventQueue`] — a time-ordered event core with FIFO tie-breaking;
//! * [`TrafficSource`]s — [`CbrSource`], [`PoissonSource`], and the
//!   heavy-tailed [`OnOffSource`] whose superposition is self-similar
//!   with `H = (3 − α)/2`;
//! * [`BottleneckLink`] — a store-and-forward link with a drop-tail
//!   queue (ns-2's `DropTail` over a point-to-point link);
//! * [`RateMonitor`] — the measurement tap that bins packets into the
//!   rate process `f(t)` the paper samples;
//! * [`OnOffScenario`] — the assembled experiment, one builder call away.
//!
//! Everything is seeded and deterministic: the same `(scenario, seed)`
//! pair reproduces the same trace bit-for-bit, which is what makes the
//! figure harness reproducible.
//!
//! ## Example
//!
//! ```
//! use sst_dess::OnOffScenario;
//!
//! // A miniature version of the paper's ns-2 workload: H = 0.8.
//! let out = OnOffScenario::new()
//!     .sources(8)
//!     .hurst(0.8)
//!     .duration(30.0)
//!     .run(42);
//! assert!(out.offered.mean() > 0.0);
//! ```

pub mod engine;
pub mod link;
pub mod monitor;
pub mod scenario;
pub mod source;

pub use engine::{EventQueue, ScheduleInPastError};
pub use link::{BottleneckLink, LinkVerdict};
pub use monitor::RateMonitor;
pub use scenario::{LinkSpec, OnOffScenario, ScenarioOutput};
pub use source::{CbrSource, Emission, OnOffSource, PoissonSource, TrafficSource};
