//! Packet sources: constant bit rate, Poisson, and the ns-2 style
//! heavy-tailed on/off source whose superposition is self-similar.
//!
//! A source is a pull-based generator of timestamped packet emissions.
//! Each source owns its RNG (seeded at construction), so a scenario with
//! many sources is reproducible from a single root seed regardless of the
//! order in which the event loop interleaves them.

use rand::Rng;
use sst_stats::dist::{Distribution, Exponential, Pareto};
use sst_stats::rng::{derive_seed, rng_from_seed};

/// One packet emission: absolute time and wire size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Emission {
    /// Emission time in seconds from simulation start.
    pub time: f64,
    /// Packet size in bytes.
    pub size: u32,
}

/// A pull-based packet generator with non-decreasing emission times.
///
/// Returning `None` means the source is exhausted (finite sources only;
/// the built-in sources are unbounded and never return `None`).
pub trait TrafficSource {
    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The next emission, with `time` never decreasing across calls.
    fn next_packet(&mut self) -> Option<Emission>;

    /// Long-run offered load in bytes/second (analytic, not measured).
    fn offered_load(&self) -> f64;
}

/// Constant-bit-rate source: packets of fixed size at fixed spacing.
///
/// # Examples
///
/// ```
/// use sst_dess::{CbrSource, TrafficSource};
/// let mut src = CbrSource::new(100.0, 1000, 0.0);
/// let first = src.next_packet().unwrap();
/// let second = src.next_packet().unwrap();
/// assert_eq!(first.time, 0.0);
/// assert!((second.time - 0.01).abs() < 1e-12); // 100 pkt/s
/// assert_eq!(src.offered_load(), 100_000.0);   // bytes/s
/// ```
#[derive(Clone, Debug)]
pub struct CbrSource {
    pps: f64,
    size: u32,
    next_time: f64,
}

impl CbrSource {
    /// Creates a CBR source emitting `pps` packets/second of `size` bytes
    /// starting at `start` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `pps > 0`, `size > 0`, and `start >= 0`.
    pub fn new(pps: f64, size: u32, start: f64) -> Self {
        assert!(pps > 0.0 && pps.is_finite(), "packet rate must be positive");
        assert!(size > 0, "packet size must be positive");
        assert!(
            start >= 0.0 && start.is_finite(),
            "start time must be non-negative"
        );
        CbrSource {
            pps,
            size,
            next_time: start,
        }
    }
}

impl TrafficSource for CbrSource {
    fn name(&self) -> &'static str {
        "cbr"
    }

    fn next_packet(&mut self) -> Option<Emission> {
        let e = Emission {
            time: self.next_time,
            size: self.size,
        };
        self.next_time += 1.0 / self.pps;
        Some(e)
    }

    fn offered_load(&self) -> f64 {
        self.pps * self.size as f64
    }
}

/// Poisson source: exponential inter-packet gaps — the classical
/// short-range-dependent null model the self-similarity literature
/// rejects for real traffic.
#[derive(Debug)]
pub struct PoissonSource {
    gap: Exponential,
    size: u32,
    clock: f64,
    rng: rand::rngs::StdRng,
}

impl PoissonSource {
    /// Creates a Poisson source with mean rate `pps` packets/second of
    /// `size`-byte packets.
    ///
    /// # Panics
    ///
    /// Panics unless `pps > 0` and `size > 0`.
    pub fn new(pps: f64, size: u32, seed: u64) -> Self {
        assert!(pps > 0.0 && pps.is_finite(), "packet rate must be positive");
        assert!(size > 0, "packet size must be positive");
        PoissonSource {
            gap: Exponential::new(pps),
            size,
            clock: 0.0,
            rng: rng_from_seed(derive_seed(seed, 0x7015)),
        }
    }
}

impl TrafficSource for PoissonSource {
    fn name(&self) -> &'static str {
        "poisson"
    }

    fn next_packet(&mut self) -> Option<Emission> {
        self.clock += self.gap.sample(&mut self.rng);
        Some(Emission {
            time: self.clock,
            size: self.size,
        })
    }

    fn offered_load(&self) -> f64 {
        self.gap.mean().recip() * self.size as f64
    }
}

/// Heavy-tailed on/off source — the ns-2 construction behind the paper's
/// synthetic traces (§IV: "self-similar traffic … using the on-off
/// model, where the on/off periods have heavy-tailed distributions").
///
/// During an ON period the source emits fixed-size packets at constant
/// spacing; during OFF it is silent. Period lengths are Pareto with shape
/// `α ∈ (1, 2)`; by Taqqu-Willinger-Sherman, aggregating many such
/// sources yields fractional Gaussian noise with `H = (3 − α)/2`.
#[derive(Debug)]
pub struct OnOffSource {
    on: Pareto,
    off: Pareto,
    pps_on: f64,
    size: u32,
    /// Time at which the current ON period ends.
    on_until: f64,
    /// Next emission instant within the current ON period.
    next_emit: f64,
    rng: rand::rngs::StdRng,
}

impl OnOffSource {
    /// Creates an on/off source.
    ///
    /// * `on`, `off` — Pareto period-length distributions (seconds);
    /// * `pps_on` — emission rate while ON, packets/second;
    /// * `size` — packet size in bytes;
    /// * `seed` — per-source RNG seed.
    ///
    /// # Panics
    ///
    /// Panics unless `pps_on > 0` and `size > 0`.
    pub fn new(on: Pareto, off: Pareto, pps_on: f64, size: u32, seed: u64) -> Self {
        assert!(
            pps_on > 0.0 && pps_on.is_finite(),
            "ON packet rate must be positive"
        );
        assert!(size > 0, "packet size must be positive");
        let mut rng = rng_from_seed(derive_seed(seed, 0x0420));
        // Start in a random phase: with probability duty-cycle begin ON,
        // else begin with a residual OFF period. This removes the "all
        // sources synchronized at t=0" startup transient.
        let duty = on.mean() / (on.mean() + off.mean());
        let start_on = rng.gen::<f64>() < duty;
        let (on_until, next_emit) = if start_on {
            let len = on.sample(&mut rng);
            (len, 0.0)
        } else {
            let gap = off.sample(&mut rng);
            (gap, gap) // placeholder: ON begins at `gap`, fixed below
        };
        let mut src = OnOffSource {
            on,
            off,
            pps_on,
            size,
            on_until,
            next_emit,
            rng,
        };
        if !start_on {
            // Begin the first ON period after the initial OFF gap.
            let start = src.next_emit;
            let len = src.on.sample(&mut src.rng);
            src.on_until = start + len;
            src.next_emit = start;
        }
        src
    }

    /// ns-2's canonical parameterization: equal ON/OFF Pareto shapes `α`
    /// with mean period lengths `mean_on`/`mean_off` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `1 < alpha < 2` and the means are positive.
    pub fn ns2(alpha: f64, mean_on: f64, mean_off: f64, pps_on: f64, size: u32, seed: u64) -> Self {
        assert!(
            alpha > 1.0 && alpha < 2.0,
            "shape must lie in (1,2), got {alpha}"
        );
        assert!(
            mean_on > 0.0 && mean_off > 0.0,
            "period means must be positive"
        );
        OnOffSource::new(
            Pareto::with_mean(alpha, mean_on),
            Pareto::with_mean(alpha, mean_off),
            pps_on,
            size,
            seed,
        )
    }

    /// Fraction of time spent ON (analytic).
    pub fn duty_cycle(&self) -> f64 {
        self.on.mean() / (self.on.mean() + self.off.mean())
    }
}

impl TrafficSource for OnOffSource {
    fn name(&self) -> &'static str {
        "onoff-pareto"
    }

    fn next_packet(&mut self) -> Option<Emission> {
        // Advance over OFF gaps until an emission instant falls inside
        // the current ON period.
        while self.next_emit >= self.on_until {
            let off_gap = self.off.sample(&mut self.rng);
            let on_start = self.on_until + off_gap;
            let on_len = self.on.sample(&mut self.rng);
            self.next_emit = on_start;
            self.on_until = on_start + on_len;
        }
        let e = Emission {
            time: self.next_emit,
            size: self.size,
        };
        self.next_emit += 1.0 / self.pps_on;
        Some(e)
    }

    fn offered_load(&self) -> f64 {
        self.duty_cycle() * self.pps_on * self.size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_until(src: &mut dyn TrafficSource, horizon: f64) -> Vec<Emission> {
        let mut out = Vec::new();
        loop {
            match src.next_packet() {
                Some(e) if e.time <= horizon => out.push(e),
                _ => break,
            }
        }
        out
    }

    #[test]
    fn cbr_is_exact() {
        let mut src = CbrSource::new(10.0, 500, 0.0);
        let pkts = drain_until(&mut src, 1.0);
        // t = 0, 0.1, …, 1.0 inclusive.
        assert_eq!(pkts.len(), 11);
        assert!(pkts
            .windows(2)
            .all(|w| (w[1].time - w[0].time - 0.1).abs() < 1e-9));
        assert!(pkts.iter().all(|p| p.size == 500));
    }

    #[test]
    fn cbr_start_offset() {
        let mut src = CbrSource::new(1.0, 100, 5.0);
        assert_eq!(src.next_packet().unwrap().time, 5.0);
    }

    #[test]
    fn poisson_mean_rate_converges() {
        let mut src = PoissonSource::new(200.0, 100, 42);
        let pkts = drain_until(&mut src, 100.0);
        let rate = pkts.len() as f64 / 100.0;
        assert!((rate - 200.0).abs() < 10.0, "rate {rate}");
        assert!((src.offered_load() - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_gaps_are_memoryless() {
        // Coefficient of variation of exponential gaps is 1.
        let mut src = PoissonSource::new(50.0, 100, 7);
        let pkts = drain_until(&mut src, 2000.0);
        let gaps: Vec<f64> = pkts.windows(2).map(|w| w[1].time - w[0].time).collect();
        let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let v = gaps.iter().map(|g| (g - m).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = v.sqrt() / m;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn onoff_times_non_decreasing() {
        let mut src = OnOffSource::ns2(1.4, 0.5, 0.5, 100.0, 1000, 3);
        let mut prev = 0.0;
        for _ in 0..50_000 {
            let e = src.next_packet().unwrap();
            assert!(e.time >= prev, "time went backwards: {} < {prev}", e.time);
            prev = e.time;
        }
    }

    #[test]
    fn onoff_duty_cycle_matches_emission_fraction() {
        let mut src = OnOffSource::ns2(1.5, 1.0, 3.0, 1000.0, 100, 11);
        assert!((src.duty_cycle() - 0.25).abs() < 1e-12);
        let horizon = 3000.0;
        let pkts = drain_until(&mut src, horizon);
        // Expected packets ≈ duty · pps · horizon. Heavy-tailed periods
        // converge slowly; allow a generous band.
        let expect = 0.25 * 1000.0 * horizon;
        let got = pkts.len() as f64;
        assert!(
            (got / expect - 1.0).abs() < 0.35,
            "got {got} expected ≈ {expect}"
        );
    }

    #[test]
    fn onoff_emits_in_bursts() {
        // Within an ON period gaps are 1/pps; across OFF periods they are
        // much larger. Check the gap distribution is bimodal: most gaps
        // equal the ON spacing, some far exceed it.
        let mut src = OnOffSource::ns2(1.3, 0.2, 0.8, 500.0, 100, 5);
        let pkts: Vec<Emission> = (0..20_000).map(|_| src.next_packet().unwrap()).collect();
        let spacing = 1.0 / 500.0;
        let gaps: Vec<f64> = pkts.windows(2).map(|w| w[1].time - w[0].time).collect();
        let on_gaps = gaps.iter().filter(|&&g| (g - spacing).abs() < 1e-9).count();
        let off_gaps = gaps.iter().filter(|&&g| g > 10.0 * spacing).count();
        assert!(
            on_gaps > gaps.len() / 2,
            "mostly intra-burst gaps, got {on_gaps}"
        );
        assert!(off_gaps > 0, "some inter-burst gaps");
    }

    #[test]
    fn onoff_offered_load() {
        let src = OnOffSource::ns2(1.5, 1.0, 1.0, 100.0, 1000, 1);
        assert!((src.offered_load() - 50_000.0).abs() < 1e-9);
    }

    #[test]
    fn onoff_seeds_give_distinct_streams() {
        let mut a = OnOffSource::ns2(1.4, 0.5, 0.5, 100.0, 100, 1);
        let mut b = OnOffSource::ns2(1.4, 0.5, 0.5, 100.0, 100, 2);
        let ta: Vec<f64> = (0..100).map(|_| a.next_packet().unwrap().time).collect();
        let tb: Vec<f64> = (0..100).map(|_| b.next_packet().unwrap().time).collect();
        assert_ne!(ta, tb);
        // Same seed reproduces exactly.
        let mut a2 = OnOffSource::ns2(1.4, 0.5, 0.5, 100.0, 100, 1);
        let ta2: Vec<f64> = (0..100).map(|_| a2.next_packet().unwrap().time).collect();
        assert_eq!(ta, ta2);
    }

    #[test]
    fn on_period_lengths_are_heavy_tailed() {
        // Reconstruct ON-burst lengths from emission gaps and check the
        // tail is heavier than exponential: max/mean ratio far above
        // what an exponential with the same mean would produce.
        let mut src = OnOffSource::ns2(1.2, 0.5, 0.5, 1000.0, 100, 23);
        let pkts: Vec<Emission> = (0..200_000).map(|_| src.next_packet().unwrap()).collect();
        let spacing = 1.0 / 1000.0;
        let mut bursts = Vec::new();
        let mut burst_start = pkts[0].time;
        for w in pkts.windows(2) {
            if w[1].time - w[0].time > 5.0 * spacing {
                bursts.push(w[0].time - burst_start + spacing);
                burst_start = w[1].time;
            }
        }
        assert!(bursts.len() > 100, "need bursts, got {}", bursts.len());
        let mean = bursts.iter().sum::<f64>() / bursts.len() as f64;
        let max = bursts.iter().cloned().fold(0.0, f64::max);
        // Exponential max/mean ~ ln(n) ≈ 7-9 here; Pareto(1.2) shoots
        // far past that.
        assert!(max / mean > 20.0, "max/mean = {}", max / mean);
    }

    #[test]
    #[should_panic(expected = "shape must lie in (1,2)")]
    fn onoff_rejects_light_tail_shape() {
        OnOffSource::ns2(2.5, 1.0, 1.0, 100.0, 100, 0);
    }
}
