//! The discrete-event core: a time-ordered event queue with a
//! monotonically advancing simulation clock.
//!
//! Events scheduled for the same instant are delivered in FIFO order
//! (insertion order), which is what makes component pipelines such as
//! source → link → monitor deterministic: a packet's arrival at a link is
//! always processed before an event scheduled later at the same time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Error returned when an event is scheduled before the current clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleInPastError {
    /// The requested event time.
    pub at: f64,
    /// The simulation clock when the schedule was attempted.
    pub now: f64,
}

impl fmt::Display for ScheduleInPastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event time {} is before the simulation clock {}",
            self.at, self.now
        )
    }
}

impl Error for ScheduleInPastError {}

/// One pending event: delivery time plus a FIFO tiebreak sequence.
#[derive(Clone, Debug)]
struct Entry<E> {
    at: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the
        // earliest event (lowest time, then lowest sequence) on top.
        // Times are validated finite on insertion, so total order holds.
        other
            .at
            .partial_cmp(&self.at)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue with simulation clock.
///
/// # Examples
///
/// ```
/// use sst_dess::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late").unwrap();
/// q.schedule(1.0, "early").unwrap();
/// q.schedule(1.0, "early-second").unwrap();
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((1.0, "early-second")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// assert_eq!(q.now(), 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// The simulation clock: the delivery time of the last popped event
    /// (0 before any pop).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Delivery time of the next event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.at)
    }

    /// Schedules `event` for absolute time `at`.
    ///
    /// # Errors
    ///
    /// [`ScheduleInPastError`] if `at` precedes the current clock.
    ///
    /// # Panics
    ///
    /// Panics if `at` is NaN or infinite — a non-finite event time would
    /// poison the heap ordering.
    pub fn schedule(&mut self, at: f64, event: E) -> Result<(), ScheduleInPastError> {
        assert!(at.is_finite(), "event time must be finite, got {at}");
        if at < self.now {
            return Err(ScheduleInPastError { at, now: self.now });
        }
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        Ok(())
    }

    /// Schedules `event` at `now() + delay`.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(
            delay >= 0.0 && delay.is_finite(),
            "delay must be non-negative finite"
        );
        self.schedule(self.now + delay, event)
            .expect("now + non-negative delay is never in the past");
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// delivery time. Ties are broken in insertion order.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Pops the next event only if it is due at or before `horizon`;
    /// otherwise leaves the queue untouched (the clock does not advance).
    pub fn pop_until(&mut self, horizon: f64) -> Option<(f64, E)> {
        if self.peek_time()? <= horizon {
            self.pop()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(t, t as u32).unwrap();
        }
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t as u32, e);
            out.push(t);
        }
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(7.0, i).unwrap();
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_and_rejects_past() {
        let mut q = EventQueue::new();
        q.schedule(10.0, ()).unwrap();
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 10.0);
        let err = q.schedule(9.0, ()).unwrap_err();
        assert_eq!(err, ScheduleInPastError { at: 9.0, now: 10.0 });
        // Same-time scheduling is allowed (zero-delay follow-ups).
        q.schedule(10.0, ()).unwrap();
        assert_eq!(q.pop(), Some((10.0, ())));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 1u8).unwrap();
        q.pop();
        q.schedule_in(2.5, 2u8);
        assert_eq!(q.pop(), Some((7.5, 2u8)));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "a").unwrap();
        q.schedule(2.0, "b").unwrap();
        assert_eq!(q.pop_until(1.5), Some((1.0, "a")));
        assert_eq!(q.pop_until(1.5), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.now(),
            1.0,
            "clock must not advance past unharvested events"
        );
        assert_eq!(q.pop_until(2.0), Some((2.0, "b")));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(3.0, ()).unwrap();
        assert_eq!(q.peek_time(), Some(3.0));
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        EventQueue::new().schedule(f64::NAN, ()).unwrap();
    }

    #[test]
    #[should_panic(expected = "delay must be non-negative")]
    fn negative_delay_rejected() {
        EventQueue::<()>::new().schedule_in(-1.0, ());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn pop_sequence_is_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(t, i).unwrap();
                }
                let mut prev = f64::NEG_INFINITY;
                let mut count = 0;
                while let Some((t, _)) = q.pop() {
                    prop_assert!(t >= prev, "out of order: {t} after {prev}");
                    prev = t;
                    count += 1;
                }
                prop_assert_eq!(count, times.len());
            }

            #[test]
            fn equal_time_ties_preserve_insertion(n in 1usize..64) {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule(1.0, i).unwrap();
                }
                let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
                prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
            }
        }
    }
}
