//! Measurement taps: turn packet events into the binned rate process
//! `f(t)` that the paper's samplers consume.

use sst_stats::TimeSeries;

/// Accumulates packet bytes into fixed-width time bins and yields the
/// rate process (bytes/second per bin).
///
/// # Examples
///
/// ```
/// use sst_dess::RateMonitor;
///
/// let mut mon = RateMonitor::new(1.0, 4.0);
/// mon.record(0.5, 100);
/// mon.record(2.2, 300);
/// let ts = mon.into_series();
/// assert_eq!(ts.values(), &[100.0, 0.0, 300.0, 0.0]);
/// ```
#[derive(Clone, Debug)]
pub struct RateMonitor {
    dt: f64,
    bins: Vec<f64>,
    total_bytes: u64,
    packets: u64,
}

impl RateMonitor {
    /// Creates a monitor covering `[0, duration)` at granularity `dt`.
    ///
    /// # Panics
    ///
    /// Panics unless `dt > 0` and `duration >= dt`.
    pub fn new(dt: f64, duration: f64) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "bin width must be positive");
        assert!(
            duration >= dt && duration.is_finite(),
            "duration must cover >= 1 bin"
        );
        let n = (duration / dt).ceil() as usize;
        RateMonitor {
            dt,
            bins: vec![0.0; n],
            total_bytes: 0,
            packets: 0,
        }
    }

    /// Records a packet of `size` bytes observed at time `at`. Packets
    /// outside `[0, duration)` are ignored (the tap only covers its
    /// window).
    pub fn record(&mut self, at: f64, size: u32) {
        if at < 0.0 || !at.is_finite() {
            return;
        }
        let idx = (at / self.dt) as usize;
        if let Some(bin) = self.bins.get_mut(idx) {
            *bin += size as f64;
            self.total_bytes += size as u64;
            self.packets += 1;
        }
    }

    /// Total bytes recorded inside the window.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Packets recorded inside the window.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Consumes the monitor and returns the rate process in
    /// bytes/second at granularity `dt`.
    pub fn into_series(self) -> TimeSeries {
        let dt = self.dt;
        TimeSeries::from_values(dt, self.bins.into_iter().map(|b| b / dt).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate_and_scale_to_rate() {
        let mut m = RateMonitor::new(0.5, 2.0);
        m.record(0.0, 50);
        m.record(0.49, 50);
        m.record(1.6, 200);
        let ts = m.into_series();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.values(), &[200.0, 0.0, 0.0, 400.0]); // bytes / 0.5 s
    }

    #[test]
    fn out_of_window_packets_ignored() {
        let mut m = RateMonitor::new(1.0, 2.0);
        m.record(-0.1, 100);
        m.record(2.0, 100); // exactly at the end: outside [0, 2)
        m.record(99.0, 100);
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.packets(), 0);
    }

    #[test]
    fn byte_conservation() {
        let mut m = RateMonitor::new(0.1, 10.0);
        let mut expect = 0u64;
        for i in 0..1000 {
            let t = i as f64 * 0.009;
            let sz = 40 + (i % 1400) as u32;
            if t < 10.0 {
                expect += sz as u64;
            }
            m.record(t, sz);
        }
        assert_eq!(m.total_bytes(), expect);
        let ts = m.into_series();
        let total_from_series: f64 = ts.values().iter().map(|r| r * 0.1).sum();
        assert!((total_from_series - expect as f64).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "duration must cover")]
    fn too_short_duration_rejected() {
        RateMonitor::new(1.0, 0.5);
    }
}
