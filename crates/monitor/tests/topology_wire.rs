//! The wire-boundary merge-equivalence pins: N collector processes
//! streaming frames to one aggregator reassemble **byte-identical**
//! `EngineSnapshot` output to a single unsharded engine on the same
//! keyed trace — over in-memory pipes and over Unix sockets, with and
//! without eviction in the collectors.

use sst_monitor::topology::{Aggregator, Collector};
use sst_monitor::{encode_snapshot, EngineSnapshot, MonitorConfig, MonitorEngine, SamplerSpec};
use sst_nettrace::TraceSynthesizer;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{Arc, Mutex};

fn trace_points() -> Vec<(u64, f64)> {
    TraceSynthesizer::bell_labs_like()
        .duration(150.0)
        .mean_rate(1.5e5)
        .synthesize(20050607)
        .od_keyed_points()
}

fn config(spec: SamplerSpec) -> MonitorConfig {
    MonitorConfig::default()
        .sampler(spec)
        .seed(42)
        .tail_thresholds(vec![64.0, 576.0, 1400.0])
}

/// Streams a key partition through a collector into `w`, flushing
/// periodically so the wire carries many Delta (and possibly Evicted)
/// frames rather than one blob.
fn drive_collector(
    mut collector: Collector,
    points: &[(u64, f64)],
    part: u64,
    n_parts: u64,
    w: &mut impl Write,
) {
    let mine: Vec<(u64, f64)> = points
        .iter()
        .filter(|&&(k, _)| k % n_parts == part)
        .copied()
        .collect();
    for chunk in mine.chunks(5000) {
        for &(k, v) in chunk {
            collector.offer(k, v);
        }
        collector.flush(w).expect("flush");
    }
    collector.finish(w).expect("finish");
}

#[test]
fn two_collectors_one_aggregator_match_the_unsharded_engine_bytes() {
    let points = trace_points();
    assert!(points.len() > 20_000, "workload too small to mean anything");
    for spec in [
        SamplerSpec::Systematic { interval: 7 },
        SamplerSpec::Bss {
            interval: 11,
            epsilon: 1.0,
            n_pre: 8,
            l: 3,
        },
    ] {
        // The single **unsharded** engine (n_shards = 1).
        let mut reference = MonitorEngine::new(config(spec));
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        // Two collectors (sharded internally — also crossing the shard
        // count) stream to an aggregator over in-memory pipes.
        let mut agg = Aggregator::new();
        for part in 0..2u64 {
            let mut pipe: Vec<u8> = Vec::new();
            drive_collector(
                Collector::new(part, config(spec).shards(2)),
                &points,
                part,
                2,
                &mut pipe,
            );
            agg.ingest_stream(&mut pipe.as_slice(), part)
                .expect("ingest");
        }
        assert!(agg.all_done());
        let assembled = agg.snapshot();
        assert_eq!(assembled, reference.snapshot(), "{spec:?}");
        // Byte-identical, not merely structurally equal.
        assert_eq!(
            encode_snapshot(&assembled),
            encode_snapshot(&reference.snapshot()),
            "{spec:?}: serialized bytes"
        );
    }
}

#[test]
fn topology_over_unix_sockets_matches_the_unsharded_engine() {
    let points = trace_points();
    let spec = SamplerSpec::Systematic { interval: 5 };
    let mut reference = MonitorEngine::new(config(spec));
    for &(k, v) in &points {
        reference.offer(k, v);
    }
    let dir = std::env::temp_dir().join(format!("sst_topology_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let path = dir.join("aggregator.sock");
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).expect("bind");

    let agg = Arc::new(Mutex::new(Aggregator::new()));
    let assembled = std::thread::scope(|scope| {
        // Aggregator side: one thread per accepted connection, feeding
        // the shared state — interleaving across sessions is safe.
        let agg_srv = Arc::clone(&agg);
        let server = scope.spawn(move || {
            let mut conns = Vec::new();
            for part in 0..3 {
                let (stream, _) = listener.accept().expect("accept");
                let agg = Arc::clone(&agg_srv);
                conns.push(std::thread::spawn(move || {
                    // Decode frames off the socket, lock per frame.
                    let mut stream = stream;
                    let mut dec = sst_monitor::FrameDecoder::new();
                    let mut buf = [0u8; 8192];
                    let mut session = part as u64;
                    let mut first = true;
                    loop {
                        use std::io::Read;
                        let n = stream.read(&mut buf).expect("read");
                        if n == 0 {
                            break;
                        }
                        dec.push(&buf[..n]);
                        while let Some(frame) = dec.next_frame().expect("frame") {
                            if first {
                                if let sst_monitor::Frame::Hello { collector_id, .. } = frame {
                                    session = collector_id;
                                }
                                first = false;
                            }
                            agg.lock().unwrap().feed(session, frame).expect("feed");
                        }
                    }
                    assert_eq!(dec.pending_bytes(), 0, "clean EOF");
                }));
            }
            for c in conns {
                c.join().expect("conn thread");
            }
        });
        // Collector side: three concurrent processes-in-miniature.
        let mut clients = Vec::new();
        for part in 0..3u64 {
            let points = &points;
            let path = path.clone();
            clients.push(scope.spawn(move || {
                let mut sock = UnixStream::connect(&path).expect("connect");
                drive_collector(
                    Collector::new(part, config(spec).shards(2)),
                    points,
                    part,
                    3,
                    &mut sock,
                );
            }));
        }
        for c in clients {
            c.join().expect("collector thread");
        }
        server.join().expect("server thread");
        let snap = agg.lock().unwrap().snapshot();
        snap
    });
    let _ = std::fs::remove_file(&path);
    assert_eq!(assembled, reference.snapshot());
    assert_eq!(
        encode_snapshot(&assembled),
        encode_snapshot(&reference.snapshot())
    );
}

#[test]
fn evicting_collectors_reassemble_the_never_evicting_bits() {
    // Burst keys (never reappear): collectors evict aggressively and
    // ship finals as Evicted frames; the aggregator must still hold
    // exactly the bits of a single never-evicting engine.
    let points: Vec<(u64, f64)> = (0..60_000u64)
        .map(|i| (i / 60, 2.0 + (i % 23) as f64))
        .collect();
    let spec = SamplerSpec::Systematic { interval: 4 };
    let mut reference = MonitorEngine::new(config(spec));
    for &(k, v) in &points {
        reference.offer(k, v);
    }
    let mut agg = Aggregator::new();
    for part in 0..2u64 {
        let mut pipe: Vec<u8> = Vec::new();
        drive_collector(
            Collector::new(part, config(spec).evict_idle_after(300).sweep_every(128)),
            &points,
            part,
            2,
            &mut pipe,
        );
        agg.ingest_stream(&mut pipe.as_slice(), part)
            .expect("ingest");
    }
    // Eviction must genuinely have happened for the pin to mean much.
    let frames_have_evictions = {
        let mut pipe: Vec<u8> = Vec::new();
        drive_collector(
            Collector::new(9, config(spec).evict_idle_after(300).sweep_every(128)),
            &points,
            0,
            2,
            &mut pipe,
        );
        sst_monitor::decode_frames(&pipe)
            .unwrap()
            .iter()
            .any(|f| matches!(f, sst_monitor::Frame::Evicted(_)))
    };
    assert!(
        frames_have_evictions,
        "workload must trigger Evicted frames"
    );
    assert_eq!(agg.snapshot(), reference.snapshot());
}

#[test]
fn aggregator_compact_budget_keeps_totals_exact() {
    // A compacting aggregator trades reservoir/Hurst detail for
    // memory but must never lose counts.
    let points = trace_points();
    let spec = SamplerSpec::TakeAll;
    let mut plain = Aggregator::new();
    let mut compacting = Aggregator::new().compact_budget(512);
    for part in 0..2u64 {
        let mut pipe: Vec<u8> = Vec::new();
        drive_collector(
            Collector::new(part, config(spec)),
            &points,
            part,
            2,
            &mut pipe,
        );
        plain.ingest_stream(&mut pipe.as_slice(), part).unwrap();
        compacting
            .ingest_stream(&mut pipe.as_slice(), part)
            .unwrap();
    }
    let a = plain.snapshot();
    let b = compacting.snapshot();
    assert_eq!(a.stream_count(), b.stream_count());
    assert_eq!(a.sampler_totals(), b.sampler_totals());
    assert_eq!(a.aggregate().moments.count(), b.aggregate().moments.count());
    assert_eq!(a.aggregate().tail.total(), b.aggregate().tail.total());
    assert!(compacting.estimated_state_bytes() <= plain.estimated_state_bytes());
}

#[test]
fn legacy_snapshot_files_feed_the_aggregator() {
    // v1 `.ssm` bytes (no Hello) are one implicit FullSnapshot.
    let mut engine = MonitorEngine::new(config(SamplerSpec::TakeAll));
    for i in 0..4000u64 {
        engine.offer(i % 13, (i % 97) as f64);
    }
    let snap = engine.snapshot();
    let v1 = encode_snapshot(&snap);
    let mut agg = Aggregator::new();
    agg.ingest_stream(&mut v1.as_ref(), 7)
        .expect("legacy ingest");
    assert_eq!(agg.snapshot(), snap);
    assert_eq!(
        agg.snapshot(),
        EngineSnapshot::from_streams(snap.streams().to_vec())
    );
}
