//! Acceptance pins for the two-tier (exact + sketch) keyed store:
//!
//! * the default `TierConfig` is the all-exact identity (no sketch
//!   section, exact-path bits unperturbed),
//! * 1.3M+ distinct keys fit a fixed sketch byte budget with
//!   offered/kept totals exact and snapshots byte-identical across
//!   shard counts,
//! * heavy-hitter streams in the exact tier are bit-identical to an
//!   all-exact engine, and the sketched tail's Hurst estimate stays
//!   within tolerance of one,
//! * promotion/demotion is deterministic, eviction frees exact slots,
//!   and the sketch image rides the collector → aggregator topology
//!   byte-identically.

use sst_monitor::topology::{Aggregator, Collector};
use sst_monitor::{encode_snapshot, MonitorConfig, MonitorEngine, SamplerSpec, TierConfig};
use sst_traffic::FgnGenerator;

fn tiered(max_exact: usize) -> MonitorConfig {
    MonitorConfig::default()
        .sampler(SamplerSpec::TakeAll)
        .seed(77)
        .max_exact_keys(max_exact)
        .sketch_bytes(1 << 20)
}

#[test]
fn default_tier_config_is_all_exact_identity() {
    assert!(!TierConfig::default().enabled());
    let mut engine = MonitorEngine::new(MonitorConfig::default().shards(2).seed(3));
    for i in 0..20_000u64 {
        engine.offer(i % 100, (i % 13) as f64);
    }
    let snap = engine.snapshot();
    // No sketch section: the encoded bytes are the legacy v1 layout.
    assert!(snap.sketch().is_none());
    assert!(engine.tier_stats().is_none());
    assert_eq!(snap.sampler_totals().offered, 20_000);
}

#[test]
fn exact_path_unperturbed_below_the_cap() {
    // A tiered engine whose cap is never reached must keep every
    // per-stream state bit-identical to an untiered engine: the tier
    // only ever *routes*, it never touches exact streams.
    let pts: Vec<(u64, f64)> = (0..50_000u64)
        .map(|i| ((i * 2654435761) % 64, (i % 29) as f64))
        .collect();
    let mut plain = MonitorEngine::new(MonitorConfig::default().shards(4).seed(77));
    plain.offer_batch(&pts);
    let mut capped = MonitorEngine::new(tiered(1 << 20).shards(4));
    capped.offer_batch(&pts);
    assert_eq!(plain.snapshot().streams(), capped.snapshot().streams());
    let sk = capped.snapshot();
    let sk = sk.sketch().expect("tiered engine carries a sketch section");
    assert_eq!(sk.sampler.offered, 0, "nothing was sketched");
    let stats = capped.tier_stats().unwrap();
    assert_eq!(stats.exact_keys, 64);
    assert_eq!(stats.promotions + stats.demotions, 0);
}

#[test]
fn churn_1_4m_keys_fixed_budget_exact_totals_and_shard_identity() {
    // ~4.2M points over ~1.4M distinct keys — 10× past the 131k-key
    // scale — against 512 exact slots and a ~1 MiB sketch budget.
    const N: u64 = 1 << 22;
    let mut encodings = Vec::new();
    for shards in [1usize, 8] {
        let config = tiered(512).shards(shards).promote_after(1 << 20);
        let mut engine = MonitorEngine::new(config);
        let pts: Vec<(u64, f64)> = (0..N).map(|i| (i / 3, (i % 17) as f64 + 1.0)).collect();
        for chunk in pts.chunks(1 << 16) {
            engine.offer_batch(chunk);
        }
        engine.maintain();
        assert!(engine.stream_count() <= 512);
        let snap = engine.full_snapshot();
        // Totals are sacred: every point is counted exactly, however
        // many keys overflowed into the sketch.
        let totals = snap.sampler_totals();
        assert_eq!(totals.offered, N as usize);
        assert_eq!(totals.kept, N as usize);
        assert_eq!(snap.aggregate().moments.count(), N);
        // Bounded state: exact tier + fixed sketch structures, far
        // below anything per-key.
        let bytes = engine.estimated_state_bytes();
        assert!(bytes < 8 << 20, "state bytes {bytes} not bounded");
        let stats = engine.tier_stats().unwrap();
        assert!(
            stats.sketched_keys > 100_000,
            "sketch saw the key flood (estimate {})",
            stats.sketched_keys
        );
        encodings.push(encode_snapshot(&snap));
    }
    assert_eq!(encodings[0], encodings[1], "shards 1 vs 8");
}

#[test]
fn heavy_hitter_streams_bit_identical_to_all_exact() {
    // 16 heavy keys admitted first, a sparse tail of thousands beyond
    // the cap: the heavy streams' bits must equal an all-exact run's.
    let mut pts: Vec<(u64, f64)> = (0..16u64).map(|k| (k, 1.0)).collect();
    for i in 0..200_000u64 {
        if i % 4 == 0 {
            pts.push((10_000 + i, 2.0)); // tail: one point per key
        } else {
            pts.push((i % 16, 40.0 + (i % 11) as f64));
        }
    }
    let config = |t: bool| {
        let c = MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 2 })
            .seed(9)
            .shards(2);
        if t {
            c.max_exact_keys(32).sketch_bytes(1 << 16)
        } else {
            c
        }
    };
    let mut exact = MonitorEngine::new(config(false));
    exact.offer_batch(&pts);
    let mut two_tier = MonitorEngine::new(config(true));
    two_tier.offer_batch(&pts);
    let exact_snap = exact.snapshot();
    let tier_snap = two_tier.snapshot();
    for k in 0..16u64 {
        let reference = exact_snap.streams().iter().find(|e| e.key == k).unwrap();
        let tiered_entry = tier_snap.streams().iter().find(|e| e.key == k).unwrap();
        // Bit-for-bit: sampler counters, moments, reservoir, Hurst
        // cascade, tail ladder — a promoted-for-life heavy hitter sees
        // exactly the points an all-exact engine would have fed it.
        assert_eq!(reference, tiered_entry, "heavy key {k}");
        assert_eq!(
            reference.summary.hurst_estimate(),
            tiered_entry.summary.hurst_estimate(),
            "heavy key {k} H"
        );
    }
    assert!(two_tier.tier_stats().unwrap().sketched_keys > 1_000);
}

#[test]
fn promotion_demotes_coldest_deterministically() {
    // 4 exact slots filled first-sight; a sparse sketched tail; then
    // key 99 turns hot and must be promoted, demoting the coldest
    // (fewest kept, then least-recently-touched) exact stream.
    let mut pts: Vec<(u64, f64)> = Vec::new();
    for k in 0..4u64 {
        for _ in 0..(4 + k * 8) {
            pts.push((k, 5.0)); // key 0 is the coldest
        }
    }
    for i in 0..200u64 {
        pts.push((10 + i % 40, 1.0)); // tail noise, never promoted
    }
    for _ in 0..200 {
        pts.push((99, 9.0)); // hot: count-min reaches promote_after
    }
    let mut encodings = Vec::new();
    for shards in [1usize, 8] {
        let mut engine = MonitorEngine::new(
            tiered(4)
                .shards(shards)
                .promote_after(16)
                .sketch_bytes(1 << 14),
        );
        engine.offer_batch(&pts);
        let stats = engine.tier_stats().unwrap();
        assert_eq!(stats.promotions, 1, "exactly key 99 promotes");
        assert_eq!(stats.demotions, 1, "exactly one victim demotes");
        assert!(engine.stream_count() <= 4);
        let snap = engine.full_snapshot();
        // The promoted key is live-exact; the demoted final is in the
        // retired store, so totals stay exact.
        assert!(snap.streams().iter().any(|e| e.key == 99));
        assert!(
            snap.streams().iter().any(|e| e.key == 0),
            "victim's final kept"
        );
        assert_eq!(snap.sampler_totals().offered, pts.len());
        encodings.push(encode_snapshot(&snap));
    }
    assert_eq!(encodings[0], encodings[1], "demotion is shard-independent");
}

#[test]
fn eviction_frees_exact_slots() {
    // Lifecycle eviction empties the live table; tier admission sees
    // the freed slots (membership *is* live-stream presence), so fresh
    // keys go exact again instead of being sketched forever.
    let mut engine = MonitorEngine::new(
        tiered(8)
            .evict_idle_after(64)
            .sweep_every(32)
            .promote_after(1 << 20), // promotion off: only eviction frees slots
    );
    for k in 0..8u64 {
        engine.offer(k, 1.0);
    }
    assert_eq!(engine.stream_count(), 8);
    // A steady flood on one new key: sketched while the table is full,
    // admitted exactly once the idle 8 are swept out.
    for _ in 0..200 {
        engine.offer(1_000, 1.0);
    }
    engine.maintain();
    assert!(engine.stream_count() < 8, "idle exact streams evicted");
    assert!(
        engine.snapshot().streams().iter().any(|e| e.key == 1_000),
        "freed slot admits the flood key exactly"
    );
    // Every point is still counted somewhere.
    let totals = engine.full_snapshot().sampler_totals();
    assert_eq!(totals.offered, 8 + 200);
}

#[test]
fn sketched_tail_hurst_within_tolerance_of_all_exact() {
    // 32 long-range-dependent flows (fGn, H = 0.8) in runs; 8 stay
    // exact, 24 are sketched. The tiered aggregate H and the
    // projection bank's tail H must track the all-exact aggregate H.
    const FLOWS: u64 = 32;
    const RUN: usize = 512;
    const PER_FLOW: usize = 1 << 13;
    let flows: Vec<Vec<f64>> = (0..FLOWS)
        .map(|f| {
            FgnGenerator::new(0.8)
                .unwrap()
                .generate_values(PER_FLOW, 100 + f)
        })
        .collect();
    let mut pts: Vec<(u64, f64)> = Vec::with_capacity(FLOWS as usize * PER_FLOW);
    for start in (0..PER_FLOW).step_by(RUN) {
        for (f, vals) in flows.iter().enumerate() {
            for v in &vals[start..start + RUN] {
                pts.push((f as u64, *v));
            }
        }
    }
    let mut exact = MonitorEngine::new(MonitorConfig::default().seed(77).shards(2));
    exact.offer_batch(&pts);
    let h_exact = exact
        .snapshot()
        .aggregate()
        .hurst_estimate()
        .expect("all-exact aggregate H");
    let mut two_tier = MonitorEngine::new(tiered(8).shards(2));
    two_tier.offer_batch(&pts);
    let tier_snap = two_tier.full_snapshot();
    let h_tiered = tier_snap
        .aggregate()
        .hurst_estimate()
        .expect("tiered aggregate H");
    assert!(
        (h_tiered - h_exact).abs() < 0.15,
        "aggregate H drifted: exact {h_exact:.3}, tiered {h_tiered:.3}"
    );
    let h_tail = tier_snap
        .sketch()
        .unwrap()
        .projected_hurst()
        .expect("projection bank estimable");
    assert!(
        (h_tail - h_exact).abs() < 0.2,
        "tail H drifted: exact {h_exact:.3}, projected {h_tail:.3}"
    );
}

/// Streams `points` through a tiered collector in many flushes and
/// returns the aggregator's assembled snapshot bytes.
fn collect_over_wire(config: MonitorConfig, points: &[(u64, f64)]) -> Vec<u8> {
    let mut collector = Collector::new(7, config);
    let mut wire = Vec::new();
    for chunk in points.chunks(2_000) {
        collector.offer_batch(chunk);
        collector.flush(&mut wire).unwrap();
    }
    collector.finish(&mut wire).unwrap();
    let mut agg = Aggregator::new();
    agg.ingest_stream(&mut wire.as_slice(), 999).unwrap();
    encode_snapshot(&agg.snapshot()).to_vec()
}

#[test]
fn tiered_collector_topology_is_byte_identical() {
    // A single tiered collector's frames reassemble to exactly the
    // standalone engine's full snapshot — sketch section included —
    // for every shard count. (One promotion/demotion event; repeated
    // same-key demotions coalesce per `Evicted` frame by design and
    // are pinned separately below.)
    let mut pts: Vec<(u64, f64)> = (0..16u64).map(|k| (k, 3.0)).collect();
    for i in 0..60_000u64 {
        if i % 2 == 0 {
            pts.push((1_000 + i, 1.0)); // unique sketched tail
        } else {
            pts.push((i % 16, (i % 19) as f64 + 1.0));
        }
        if i == 30_000 {
            // One late heavy hitter: a single promotion, demoting the
            // coldest exact stream exactly once.
            for _ in 0..100 {
                pts.push((999, 8.0));
            }
        }
    }
    let config = tiered(16).sketch_bytes(1 << 16).promote_after(64);
    let mut reference = MonitorEngine::new(config.clone());
    for chunk in pts.chunks(2_000) {
        reference.offer_batch(chunk);
    }
    let stats = reference.tier_stats().unwrap();
    assert_eq!(stats.promotions, 1);
    assert_eq!(stats.demotions, 1);
    let want = encode_snapshot(&reference.full_snapshot()).to_vec();
    for shards in [1usize, 2] {
        let got = collect_over_wire(config.clone().shards(shards), &pts);
        assert_eq!(got, want, "shards {shards}");
    }
}

#[test]
fn tiered_collector_churn_carries_sketch_and_totals() {
    // Hot promote/demote churn: repeated finals of one key coalesce
    // per `Evicted` frame (wire semantics), so exact-tier floats may
    // differ from a standalone fold in the last ulp — but the sketch
    // image is bit-identical through the topology, totals stay exact,
    // and the whole assembled snapshot is byte-identical across the
    // collector's shard counts.
    // Two alternating hot sets of 24 keys (> 16 exact slots) switching
    // every 4 000 points, plus a one-shot long tail: the off-duty set
    // gets demoted while the on-duty set promotes, and both keep
    // accumulating *guaranteed* SpaceSaving counts while sketched — so
    // churn stays heavy under the two-signal promotion gate, which a
    // static hot set no longer triggers (a demoted key's frozen
    // candidate entry can't instantly re-promote on a bare count-min
    // estimate).
    let pts: Vec<(u64, f64)> = (0..120_000u64)
        .map(|i| {
            let key = if i % 3 == 0 {
                1_000_000 + i
            } else {
                24 * ((i / 4_000) % 2) + i % 24
            };
            (key, (i % 19) as f64 + 1.0)
        })
        .collect();
    let config = tiered(16).sketch_bytes(1 << 16).promote_after(32);
    let mut reference = MonitorEngine::new(config.clone());
    for chunk in pts.chunks(2_000) {
        reference.offer_batch(chunk);
    }
    assert!(reference.tier_stats().unwrap().demotions > 100, "churny");
    let want = reference.full_snapshot();

    let mut collector = Collector::new(7, config.clone());
    let mut wire = Vec::new();
    for chunk in pts.chunks(2_000) {
        collector.offer_batch(chunk);
        collector.flush(&mut wire).unwrap();
    }
    collector.finish(&mut wire).unwrap();
    let mut agg = Aggregator::new();
    agg.ingest_stream(&mut wire.as_slice(), 999).unwrap();
    let got = agg.snapshot();

    assert_eq!(got.sketch(), want.sketch(), "sketch bit-identical");
    assert_eq!(got.sampler_totals(), want.sampler_totals());
    assert_eq!(
        got.aggregate().moments.count(),
        want.aggregate().moments.count()
    );
    // Same streams with the same exact per-stream counters.
    assert_eq!(got.stream_count(), want.stream_count());
    for (g, w) in got.streams().iter().zip(want.streams().iter()) {
        assert_eq!(g.key, w.key);
        assert_eq!(g.sampler, w.sampler, "key {}", g.key);
        assert_eq!(
            g.summary.moments.count(),
            w.summary.moments.count(),
            "key {}",
            g.key
        );
    }
    // And the assembled pipeline output itself is shard-independent.
    let one = collect_over_wire(config.clone().shards(1), &pts);
    let two = collect_over_wire(config.shards(2), &pts);
    assert_eq!(one, two, "collector shards 1 vs 2");
}

#[test]
fn serve_side_retired_cap_keeps_totals_exact() {
    // An aggregator bounding its retired store demotes the smallest
    // finals into sketch form: stream count drops, totals don't.
    let pts: Vec<(u64, f64)> = (0..50_000u64).map(|i| (i % 400, 2.0)).collect();
    let drive = |agg: &mut Aggregator| {
        let mut collector = Collector::new(
            3,
            MonitorConfig::default()
                .seed(5)
                .evict_idle_after(300)
                .sweep_every(128),
        );
        let mut wire = Vec::new();
        for chunk in pts.chunks(1_000) {
            collector.offer_batch(chunk);
            collector.flush(&mut wire).unwrap();
        }
        collector.finish(&mut wire).unwrap();
        agg.ingest_stream(&mut wire.as_slice(), 999).unwrap();
    };
    let mut plain = Aggregator::new();
    drive(&mut plain);
    let mut capped = Aggregator::new().max_exact_keys(32).sketch_bytes(1 << 16);
    drive(&mut capped);
    let full = plain.snapshot();
    let tight = capped.snapshot();
    assert!(full.stream_count() > tight.stream_count());
    let sk = tight.sketch().expect("cap overflow built a sketch");
    assert!(sk.demotions > 0);
    // Offered/kept totals and moment counts survive the demotions.
    assert_eq!(full.sampler_totals(), tight.sampler_totals());
    assert_eq!(
        full.aggregate().moments.count(),
        tight.aggregate().moments.count()
    );
    assert!(capped.estimated_state_bytes() < plain.estimated_state_bytes());
}
