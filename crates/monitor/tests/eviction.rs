//! Lifecycle-layer pins: eviction edge cases and the compaction memory
//! bound.
//!
//! * an evicted key that reappears resumes as a *fresh* stream (sampler
//!   re-seeded exactly as on first sight),
//! * final-snapshot-on-evict keeps the full snapshot bit-identical to a
//!   never-evicting engine when keys do not outlive their eviction,
//! * zero-stream snapshots stay merge identities,
//! * compaction bounds steady-state per-stream memory below 1 KB under
//!   a 100k-key churn workload while totals stay exact.

use sst_core::stream::{StreamSampler, StreamingSystematic};
use sst_monitor::{decode_snapshot, encode_snapshot, MonitorConfig, MonitorEngine, SamplerSpec};
use sst_stats::rng::derive_seed;

#[test]
fn evicted_key_resumes_as_a_fresh_stream() {
    let mut engine = MonitorEngine::new(
        MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 5 })
            .seed(9)
            .evict_idle_after(100)
            .sweep_every(50),
    );
    for i in 0..500u64 {
        engine.offer(42, (i % 13) as f64);
    }
    // Advance the clock on another key until 42 is idle, then sweep.
    for i in 0..500u64 {
        engine.offer(7, i as f64);
    }
    engine.maintain();
    let live: Vec<u64> = engine.snapshot().streams().iter().map(|e| e.key).collect();
    assert!(!live.contains(&42), "42 must be evicted, live: {live:?}");
    // retain_evicted defaults on: the final lives in the retired store
    // (served by full_snapshot), and the transport outbox stays empty.
    assert!(engine.drain_evicted().is_empty(), "standalone: no outbox");
    let full = engine.full_snapshot();
    let final42 = full
        .streams()
        .iter()
        .find(|e| e.key == 42)
        .expect("final snapshot retained");
    assert_eq!(final42.sampler.offered, 500);

    // Reappearance: the fresh stream's sampler is seeded from
    // (base_seed, key) exactly as on first sight — pin it against a
    // raw sampler at that seed.
    let mut raw = StreamingSystematic::new(5, derive_seed(9, 42)).unwrap();
    for i in 0..300u64 {
        let v = (i % 7) as f64;
        assert_eq!(engine.offer(42, v), raw.offer(v), "point {i}");
    }
    let snap = engine.snapshot();
    let fresh = snap
        .streams()
        .iter()
        .find(|e| e.key == 42)
        .expect("fresh incarnation is live");
    assert_eq!(fresh.sampler, raw.snapshot(), "fresh sampler state");
    assert_eq!(fresh.sampler.offered, 300, "counts restart from zero");

    // The full snapshot still accounts for both incarnations.
    let full = engine.full_snapshot();
    let merged42 = full.streams().iter().find(|e| e.key == 42).unwrap();
    assert_eq!(merged42.sampler.offered, 800);
}

#[test]
fn transport_mode_routes_finals_to_the_outbox_instead() {
    // retain_evicted(false): finals queue for the wire and the engine
    // holds no retired copy (full_snapshot == live snapshot).
    let mut engine = MonitorEngine::new(
        MonitorConfig::default()
            .seed(9)
            .evict_idle_after(100)
            .sweep_every(50)
            .retain_evicted(false),
    );
    for i in 0..300u64 {
        engine.offer(42, (i % 13) as f64);
    }
    for i in 0..300u64 {
        engine.offer(7, i as f64);
    }
    engine.maintain();
    let finals = engine.drain_evicted();
    let final42 = finals.iter().find(|e| e.key == 42).expect("outbox final");
    assert_eq!(final42.sampler.offered, 300);
    assert!(engine.drain_evicted().is_empty(), "drain takes everything");
    assert_eq!(engine.full_snapshot(), engine.snapshot(), "nothing retired");
}

#[test]
fn final_snapshot_on_evict_merges_identically_to_never_evicting() {
    // Burst workload: each key lives in one contiguous block of points
    // and never reappears, so eviction always happens after a stream's
    // last point — the full snapshot must then be *bit-identical* to a
    // never-evicting engine's (no compaction configured).
    let points: Vec<(u64, f64)> = (0..40_000u64)
        .map(|i| (i / 80, 1.0 + (i % 17) as f64))
        .collect();
    for spec in [
        SamplerSpec::TakeAll,
        SamplerSpec::Systematic { interval: 7 },
        SamplerSpec::Bss {
            interval: 9,
            epsilon: 1.0,
            n_pre: 8,
            l: 3,
        },
    ] {
        let base = MonitorConfig::default().sampler(spec).seed(5).shards(2);
        let mut reference = MonitorEngine::new(base.clone());
        let mut evicting =
            MonitorEngine::new(base.evict_idle_after(200).sweep_every(128).max_streams(64));
        for &(k, v) in &points {
            reference.offer(k, v);
            evicting.offer(k, v);
        }
        evicting.maintain();
        let stats = evicting.lifecycle_stats();
        assert!(
            stats.evicted > 300,
            "{spec:?}: eviction must actually run (evicted {})",
            stats.evicted
        );
        assert!(
            evicting.stream_count() < reference.stream_count(),
            "{spec:?}: live table must shrink"
        );
        assert_eq!(
            evicting.full_snapshot(),
            reference.snapshot(),
            "{spec:?}: finals + live must reassemble the never-evicting bits"
        );
    }
}

#[test]
fn zero_stream_snapshots_stay_merge_identities() {
    let empty = MonitorEngine::new(MonitorConfig::default()).snapshot();
    assert_eq!(empty.stream_count(), 0);
    // Codec round-trips the identity.
    assert_eq!(decode_snapshot(&encode_snapshot(&empty)).unwrap(), empty);

    let mut engine = MonitorEngine::new(
        MonitorConfig::default().sampler(SamplerSpec::Systematic { interval: 3 }),
    );
    for i in 0..5000u64 {
        engine.offer(i % 11, (i % 101) as f64);
    }
    let s = engine.snapshot();
    assert_eq!(empty.clone().merge(s.clone()), s, "left identity");
    assert_eq!(s.clone().merge(empty.clone()), s, "right identity");
    // An evicting engine that saw nothing is the identity too.
    let mut idle = MonitorEngine::new(
        MonitorConfig::default()
            .evict_idle_after(10)
            .max_streams(4)
            .compact_budget(512),
    );
    idle.maintain();
    let idle_snap = idle.full_snapshot();
    assert_eq!(idle_snap.stream_count(), 0);
    assert_eq!(idle_snap.merge(s.clone()), s);
}

#[test]
fn compaction_bounds_per_stream_memory_under_100k_key_churn() {
    // The scale acceptance pin: 2^20 points over ~131k churning keys
    // (each key lives for 8 consecutive points, then never returns).
    // With idle eviction + compaction, total engine state must
    // amortize below 1 KB per distinct key, while the full snapshot
    // keeps aggregate totals exact.
    let n: u64 = 1 << 20;
    let points: Vec<(u64, f64)> = (0..n).map(|i| (i / 8, 40.0 + (i % 1461) as f64)).collect();
    let distinct = (n / 8) as usize;
    assert!(distinct > 100_000, "churn workload must exceed 100k keys");

    let mut engine = MonitorEngine::new(
        MonitorConfig::default()
            .shards(2)
            .seed(3)
            .evict_idle_after(4096)
            .sweep_every(4096)
            .compact_budget(768),
    );
    for chunk in points.chunks(1 << 14) {
        engine.offer_batch(chunk);
    }
    engine.maintain();

    let stats = engine.lifecycle_stats();
    assert!(
        stats.evicted as usize >= distinct - 2048,
        "churned keys must retire (evicted {} of {distinct})",
        stats.evicted
    );
    assert!(
        engine.stream_count() < 2048,
        "live table stays small ({} live)",
        engine.stream_count()
    );

    // Memory bound: total state (live + retired) per distinct key.
    let per_key = engine.estimated_state_bytes() as f64 / distinct as f64;
    assert!(
        per_key < 1024.0,
        "steady-state per-stream state must stay under 1 KB, got {per_key:.0} B"
    );

    // Totals stay exact: every point is accounted for in the full
    // snapshot even though almost every stream was evicted+compacted.
    let full = engine.full_snapshot();
    assert_eq!(full.stream_count(), distinct);
    let totals = full.sampler_totals();
    assert_eq!(totals.offered, n as usize);
    assert_eq!(totals.kept, n as usize, "TakeAll keeps everything");
    let agg = full.aggregate();
    assert_eq!(agg.moments.count(), n);
    assert_eq!(agg.tail.total(), n);
    let exact_sum: f64 = points.iter().map(|&(_, v)| v).sum();
    let vol = agg.kept_volume();
    assert!(
        ((vol - exact_sum) / exact_sum).abs() < 1e-9,
        "kept volume {vol} vs exact {exact_sum}"
    );
}
