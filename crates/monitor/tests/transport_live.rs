//! Live-socket pins for the event-loop transport: real serve loops on
//! Unix **and** TCP listeners — on both readiness backends (`poll`,
//! `epoll`), single-loop and sharded across N loops — with many
//! concurrent collector clients and hostile sessions injected, and the
//! assembled snapshot still byte-identical to one unsharded engine
//! over the same points (the ISSUE 5 acceptance criterion, N ≥ 64
//! mixed transports, extended to the ISSUE 6 backend/loop matrix).
//!
//! Set `SST_BACKEND=poll|epoll` to pin one backend (the CI matrix
//! does); unset, every test runs both.
//!
//! ISSUE 7 adds the robustness half: the same byte-identity invariant
//! with seeded faults injected on the links ([`FaultyLink`]) and
//! `--retry`-style sequenced forwarders ([`SequencedSender`]) riding
//! them out — plus a serve *restart* mid-run survived via
//! full-snapshot resync.

use sst_monitor::fault::{FaultyLink, Front, Target};
use sst_monitor::retry::{Backoff, SequencedSender};
use sst_monitor::topology::{Aggregator, Collector};
use sst_monitor::transport::{
    pump_blocking, BackendKind, EventLoopServer, MultiLoopServer, ServeOptions, SessionStream,
    FALLBACK_ID_BASE,
};
use sst_monitor::{
    encode_frame, encode_snapshot, Frame, MonitorConfig, MonitorEngine, SamplerSpec,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn config(spec: SamplerSpec) -> MonitorConfig {
    MonitorConfig::default()
        .sampler(spec)
        .seed(42)
        .tail_thresholds(vec![64.0, 576.0, 1400.0])
}

/// The backends to exercise: the one `SST_BACKEND` names, or both.
fn backends_under_test() -> Vec<BackendKind> {
    match std::env::var("SST_BACKEND") {
        Ok(v) => vec![v.parse().unwrap_or_else(|e: String| panic!("{e}"))],
        Err(_) => vec![BackendKind::Poll, BackendKind::Epoll],
    }
}

/// A multiplexed keyed workload: enough keys that every one of 64
/// partitions is non-empty, bursty values for non-trivial summaries.
fn keyed_points(n: usize, n_keys: u64) -> Vec<(u64, f64)> {
    (0..n)
        .map(|i| {
            let key = (i as u64).wrapping_mul(2654435761) % n_keys;
            let v = if (i / 53) % 13 == 0 {
                250.0 + (i % 11) as f64
            } else {
                2.0 + (i % 5) as f64
            };
            (key, v)
        })
        .collect()
}

/// Streams partition `part` of `n_parts` through a collector into `w`
/// with several flushes, ignoring write errors past the first (the
/// server may have dropped us — hostile-client threads rely on this).
fn drive_collector(
    mut collector: Collector,
    points: &[(u64, f64)],
    part: u64,
    n_parts: u64,
    w: &mut impl Write,
) {
    let mine: Vec<(u64, f64)> = points
        .iter()
        .filter(|&&(k, _)| k % n_parts == part)
        .copied()
        .collect();
    for chunk in mine.chunks(2500) {
        collector.offer_batch(chunk);
        if collector.flush(w).is_err() {
            return;
        }
    }
    let _ = collector.finish(w);
}

/// Either serve shape under test, so the hostile-client scenario runs
/// unchanged against a single loop or a multi-loop dispatcher.
enum Serve {
    Single(EventLoopServer),
    Multi(MultiLoopServer),
}

impl Serve {
    fn add_unix_listener(&mut self, l: UnixListener) {
        match self {
            Serve::Single(s) => s.add_unix_listener(l).expect("register uds"),
            Serve::Multi(s) => s.add_unix_listener(l).expect("register uds"),
        }
    }

    fn add_tcp_listener(&mut self, l: TcpListener) {
        match self {
            Serve::Single(s) => s.add_tcp_listener(l).expect("register tcp"),
            Serve::Multi(s) => s.add_tcp_listener(l).expect("register tcp"),
        }
    }

    fn run(self) -> (sst_monitor::EngineSnapshot, sst_monitor::ServeReport) {
        match self {
            Serve::Single(s) => {
                let (agg, rep) = s.run().expect("event loop");
                (agg.snapshot(), rep)
            }
            Serve::Multi(s) => {
                let (aggs, rep) = s.run().expect("event loops");
                (aggs.snapshot(), rep)
            }
        }
    }
}

/// The tentpole scenario: `n` collectors — even ids over the Unix
/// socket, odd ids over TCP — plus garbage, mid-frame-disconnect, and
/// connect-and-close clients, against a live serve. The healthy `n`
/// must assemble to the unsharded engine's bytes; the hostiles must be
/// isolated, not fatal.
fn hostile_mixed_scenario(tag: &str, n: u64, points: &[(u64, f64)], mut server: Serve) {
    let spec = SamplerSpec::Systematic { interval: 7 };
    let mut reference = MonitorEngine::new(config(spec));
    for &(k, v) in points {
        reference.offer(k, v);
    }

    let dir = std::env::temp_dir().join(format!("sst_transport_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let uds_path = dir.join("agg.sock");
    let _ = std::fs::remove_file(&uds_path);
    let uds = UnixListener::bind(&uds_path).expect("bind uds");
    let tcp = TcpListener::bind("127.0.0.1:0").expect("bind tcp");
    let tcp_addr = tcp.local_addr().expect("tcp addr");
    server.add_unix_listener(uds);
    server.add_tcp_listener(tcp);

    // Collector 0 holds its whole session back until every hostile
    // client has connected, written, and closed — so the server cannot
    // reach its n-completion target (and stop) before it has seen and
    // judged every hostile session. That makes the report assertions
    // below deterministic, not a race.
    let hostiles_done = std::sync::atomic::AtomicUsize::new(0);
    const N_HOSTILE: usize = 6;

    let (assembled, rep) = std::thread::scope(|scope| {
        let server_thread = scope.spawn(move || server.run());
        let mut clients = Vec::new();
        // Hostile client 1: garbage bytes on TCP.
        let hd = &hostiles_done;
        clients.push(scope.spawn(move || {
            let mut sock = TcpStream::connect(tcp_addr).expect("connect tcp");
            let _ = sock.write_all(b"SSWF but then it all goes wrong \xff\xff\xff");
            drop(sock);
            hd.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }));
        // Hostile client 2: a valid prefix torn off mid-frame (UDS).
        let uds_path2 = uds_path.clone();
        let hd = &hostiles_done;
        clients.push(scope.spawn(move || {
            let mut pipe = Vec::new();
            let mut c = Collector::new(9000, config(spec));
            c.offer_batch(&keyed_points(5000, 16));
            c.finish(&mut pipe).expect("in-memory");
            let mut sock = UnixStream::connect(&uds_path2).expect("connect uds");
            let _ = sock.write_all(&pipe[..pipe.len() - 7]);
            drop(sock);
            hd.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }));
        // Hostile client 3: a lone Hello then a torn Delta on TCP —
        // frames *were* delivered, so the rollback path is exercised.
        let hd = &hostiles_done;
        clients.push(scope.spawn(move || {
            let mut sock = TcpStream::connect(tcp_addr).expect("connect tcp");
            let hello = encode_frame(&Frame::Hello {
                protocol: sst_monitor::WIRE_VERSION,
                collector_id: 9001,
                resume: None,
            });
            let mut engine = MonitorEngine::new(config(spec));
            engine.offer_batch(&keyed_points(3000, 8));
            let delta = encode_frame(&Frame::Delta(engine.snapshot()));
            let _ = sock.write_all(&hello);
            let _ = sock.write_all(&delta[..delta.len() / 2]);
            drop(sock);
            hd.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }));
        // Hostile clients 4–6: connect-and-close probes on both
        // transports — must not consume collector slots.
        for i in 0..3u64 {
            let uds_path = uds_path.clone();
            let hd = &hostiles_done;
            clients.push(scope.spawn(move || {
                if i % 2 == 0 {
                    drop(TcpStream::connect(tcp_addr));
                } else {
                    drop(UnixStream::connect(&uds_path));
                }
                hd.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }));
        }
        // n healthy collectors, mixed transports.
        for part in 0..n {
            let uds_path = uds_path.clone();
            let hd = &hostiles_done;
            clients.push(scope.spawn(move || {
                if part == 0 {
                    while hd.load(std::sync::atomic::Ordering::SeqCst) < N_HOSTILE {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                let collector = Collector::new(part, config(spec).shards(2));
                if part % 2 == 0 {
                    let mut sock = UnixStream::connect(&uds_path).expect("connect uds");
                    drive_collector(collector, points, part, n, &mut sock);
                } else {
                    let mut sock = TcpStream::connect(tcp_addr).expect("connect tcp");
                    drive_collector(collector, points, part, n, &mut sock);
                }
            }));
        }
        for c in clients {
            c.join().expect("client thread");
        }
        server_thread.join().expect("server thread")
    });
    let _ = std::fs::remove_file(&uds_path);

    assert_eq!(
        rep.completed, n as usize,
        "{tag}: all healthy collectors count"
    );
    assert!(!rep.timed_out, "{tag}");
    // Garbage + two torn streams fail; probes may race EOF-vs-reset on
    // TCP (a reset counts as a failure, not a probe), so only bound
    // their split.
    assert!(
        rep.failures.len() >= 3,
        "{tag}: garbage + two torn streams must be recorded: {:?}",
        rep.failures
    );
    assert_eq!(
        rep.failures.len() + rep.probes,
        N_HOSTILE,
        "{tag}: every hostile session ends up logged"
    );
    assert_eq!(
        rep.sessions.len(),
        n as usize,
        "{tag}: one stats entry per completed session"
    );
    assert!(
        rep.sessions.iter().all(|s| s.bytes > 0 && s.frames > 0),
        "{tag}: delivery counters are live"
    );
    assert_eq!(assembled, reference.snapshot(), "{tag}");
    assert_eq!(
        encode_snapshot(&assembled),
        encode_snapshot(&reference.snapshot()),
        "{tag}: byte-identical to the unsharded run"
    );
}

#[test]
fn event_loop_64_mixed_sessions_with_hostile_clients_match_unsharded_bytes() {
    const N: u64 = 64;
    let points = keyed_points(300_000, 512);
    for kind in backends_under_test() {
        let server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: N as usize,
                accept_timeout: Some(Duration::from_secs(60)),
            },
        )
        .with_backend(kind);
        hostile_mixed_scenario(&format!("single_{kind}"), N, &points, Serve::Single(server));
    }
}

#[test]
fn multi_loop_mixed_sessions_with_hostile_clients_match_unsharded_bytes() {
    const N: u64 = 16;
    let points = keyed_points(120_000, 256);
    for kind in backends_under_test() {
        for loops in [2usize, 4] {
            let server = MultiLoopServer::new(
                (0..loops).map(|_| Aggregator::new()).collect(),
                ServeOptions {
                    collectors: N as usize,
                    accept_timeout: Some(Duration::from_secs(60)),
                },
            )
            .with_backend(kind);
            hostile_mixed_scenario(
                &format!("multi_{kind}_x{loops}"),
                N,
                &points,
                Serve::Multi(server),
            );
        }
    }
}

/// Read-budget fairness: a firehose session that *never stops sending*
/// must not starve slow sessions sharing its loop. The serve target is
/// the four slow sessions alone — it is reachable only if their frames
/// land while the firehose is still blasting (the per-round byte
/// budget re-arms the level-triggered backend and hands the loop on).
#[test]
fn slow_sessions_complete_while_a_firehose_is_streaming() {
    for kind in backends_under_test() {
        const SLOW: u64 = 4;
        let spec = SamplerSpec::Systematic { interval: 7 };
        let points = keyed_points(20_000, 64);
        let mut reference = MonitorEngine::new(config(spec));
        for &(k, v) in &points {
            reference.offer(k, v);
        }

        let dir = std::env::temp_dir().join(format!("sst_fair_{kind}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("socket dir");
        let uds_path = dir.join("fair.sock");
        let _ = std::fs::remove_file(&uds_path);
        let uds = UnixListener::bind(&uds_path).expect("bind uds");
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: SLOW as usize,
                // The hang guard: if the firehose *did* starve the
                // slow sessions, this fails the test instead of
                // wedging it.
                accept_timeout: Some(Duration::from_secs(60)),
            },
        )
        .with_backend(kind);
        server.add_unix_listener(uds).expect("register uds");

        let start = Instant::now();
        let (agg, rep) = std::thread::scope(|scope| {
            let server_thread = scope.spawn(move || server.run().expect("event loop"));
            // The firehose: Hello, then an endless stream of large
            // Delta frames until the server hangs up on it.
            let fire_path = uds_path.clone();
            scope.spawn(move || {
                let mut sock = UnixStream::connect(&fire_path).expect("connect firehose");
                let hello = encode_frame(&Frame::Hello {
                    protocol: sst_monitor::WIRE_VERSION,
                    collector_id: 9999,
                    resume: None,
                });
                let mut engine = MonitorEngine::new(config(spec));
                engine.offer_batch(&keyed_points(30_000, 128));
                let delta = encode_frame(&Frame::Delta(engine.snapshot()));
                if sock.write_all(&hello).is_err() {
                    return;
                }
                loop {
                    // Ends with a write error once the serve reaches
                    // its target and closes the socket (Rust ignores
                    // SIGPIPE, so this is Err, not a signal death).
                    if sock.write_all(&delta).is_err() {
                        return;
                    }
                }
            });
            // Give the firehose a head start so it is mid-stream (and
            // has delivered frames) before any slow session arrives.
            std::thread::sleep(Duration::from_millis(50));
            for part in 0..SLOW {
                let points = &points;
                let uds_path = uds_path.clone();
                scope.spawn(move || {
                    let mut sock = UnixStream::connect(&uds_path).expect("connect slow");
                    drive_collector(
                        Collector::new(part, config(spec).shards(2)),
                        points,
                        part,
                        SLOW,
                        &mut sock,
                    );
                });
            }
            server_thread.join().expect("server thread")
        });
        let _ = std::fs::remove_file(&uds_path);

        assert_eq!(
            rep.completed, SLOW as usize,
            "{kind}: every slow session must land despite the firehose"
        );
        assert!(!rep.timed_out, "{kind}: must not need the idle deadline");
        assert_eq!(
            rep.aborted, 1,
            "{kind}: the firehose was still mid-stream at shutdown"
        );
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "{kind}: slow sessions must land within a bounded time, took {:?}",
            start.elapsed()
        );
        assert_eq!(
            agg.snapshot(),
            reference.snapshot(),
            "{kind}: the aborted firehose must leave no trace"
        );
    }
}

/// The two transports share one state machine, so the same sessions
/// must assemble to the same bytes: threaded `pump_blocking` (mutexed
/// aggregator) vs the event loop, over live Unix sockets.
#[test]
fn threaded_and_event_loop_transports_assemble_identical_bytes() {
    let points = keyed_points(60_000, 96);
    let spec = SamplerSpec::Bss {
        interval: 11,
        epsilon: 1.0,
        n_pre: 8,
        l: 3,
    };
    const N: u64 = 4;
    let session_pipes: Vec<Vec<u8>> = (0..N)
        .map(|part| {
            let mut pipe = Vec::new();
            drive_collector(
                Collector::new(part, config(spec).shards(2)),
                &points,
                part,
                N,
                &mut pipe,
            );
            pipe
        })
        .collect();

    // Threaded: N concurrent blocking pumps over a shared mutex.
    let threaded = {
        let agg = Mutex::new(Aggregator::new());
        std::thread::scope(|scope| {
            for (i, pipe) in session_pipes.iter().enumerate() {
                let agg = &agg;
                scope.spawn(move || {
                    let frames =
                        pump_blocking(&mut pipe.as_slice(), agg, FALLBACK_ID_BASE + i as u64)
                            .expect("clean session");
                    assert!(frames > 0);
                });
            }
        });
        agg.into_inner().expect("no poison").snapshot()
    };

    // Event loop: the same byte streams over live sockets.
    let dir = std::env::temp_dir().join(format!("sst_transport_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let uds_path = dir.join("eq.sock");
    let _ = std::fs::remove_file(&uds_path);
    let uds = UnixListener::bind(&uds_path).expect("bind uds");
    let mut server = EventLoopServer::new(
        Aggregator::new(),
        ServeOptions {
            collectors: N as usize,
            accept_timeout: Some(Duration::from_secs(60)),
        },
    );
    server.add_unix_listener(uds).expect("register uds");
    let event_loop = std::thread::scope(|scope| {
        let server_thread = scope.spawn(move || server.run().expect("event loop"));
        for pipe in &session_pipes {
            let uds_path = uds_path.clone();
            scope.spawn(move || {
                let mut sock = UnixStream::connect(&uds_path).expect("connect");
                sock.write_all(pipe).expect("write session");
            });
        }
        let (agg, rep) = server_thread.join().expect("server thread");
        assert_eq!(rep.completed, N as usize);
        agg.snapshot()
    });
    let _ = std::fs::remove_file(dir.join("eq.sock"));

    assert_eq!(threaded, event_loop);
    assert_eq!(encode_snapshot(&threaded), encode_snapshot(&event_loop));
    // And both equal the unsharded engine (partitions cover every key).
    let mut reference = MonitorEngine::new(config(spec));
    for &(k, v) in &points {
        reference.offer(k, v);
    }
    assert_eq!(event_loop, reference.snapshot());
}

/// Streams partition `part` of `n_parts` through a *sequenced* (v3)
/// collector with a generous retry budget — the library equivalent of
/// `monitor_tool forward --retry`. Panics if the budget runs out: the
/// fault plans go clean past a threshold, so a healthy stack always
/// converges.
fn drive_sequenced(
    part: u64,
    n_parts: u64,
    points: &[(u64, f64)],
    spec: SamplerSpec,
    connect: impl FnMut() -> std::io::Result<SessionStream>,
) {
    let mine: Vec<(u64, f64)> = points
        .iter()
        .filter(|&&(k, _)| k % n_parts == part)
        .copied()
        .collect();
    let mut sender = SequencedSender::new(
        Collector::new_sequenced(part, config(spec).shards(2)),
        connect,
        // Small, capped delays keep the test fast; the seed makes each
        // forwarder's schedule distinct but reproducible.
        Backoff::new(2, 40, 0xFA01 ^ part),
        200,
    );
    for chunk in mine.chunks(600) {
        sender.collector_mut().offer_batch(chunk);
        sender.flush().expect("sequenced flush within retry budget");
    }
    sender
        .finish()
        .expect("sequenced finish within retry budget");
}

/// The ISSUE 7 headline run: `n` sequenced collectors — even ids over
/// a Unix-socket fault proxy, odd ids over a TCP fault proxy — with
/// the first `faulted` connections per proxy mangled (drops, mid-frame
/// kills, delays, split writes) by seed-determined plans. Every
/// forwarder must converge through retries, and the assembled snapshot
/// must still be byte-identical to the unsharded engine.
fn faulted_scenario(tag: &str, n: u64, points: &[(u64, f64)], mut server: Serve, seed: u64) {
    let spec = SamplerSpec::Systematic { interval: 7 };
    let mut reference = MonitorEngine::new(config(spec));
    for &(k, v) in points {
        reference.offer(k, v);
    }

    let dir = std::env::temp_dir().join(format!("sst_fault_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let uds_path = dir.join("agg.sock");
    let _ = std::fs::remove_file(&uds_path);
    let uds = UnixListener::bind(&uds_path).expect("bind uds");
    let tcp = TcpListener::bind("127.0.0.1:0").expect("bind tcp");
    let tcp_addr = tcp.local_addr().expect("tcp addr");
    server.add_unix_listener(uds);
    server.add_tcp_listener(tcp);

    // The proxies: every forwarder connects *through* these.
    const FAULTED_PER_PROXY: u64 = 40;
    let proxy_uds_path = dir.join("proxy.sock");
    let _ = std::fs::remove_file(&proxy_uds_path);
    let proxy_uds = FaultyLink::spawn(
        Front::Unix(UnixListener::bind(&proxy_uds_path).expect("bind proxy uds")),
        Target::Unix(uds_path.to_string_lossy().into_owned()),
        seed,
        FAULTED_PER_PROXY,
    )
    .expect("spawn uds proxy");
    let proxy_tcp_listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy tcp");
    let proxy_tcp_front = Front::Tcp(proxy_tcp_listener);
    let proxy_tcp_addr = proxy_tcp_front.tcp_addr().expect("proxy tcp addr");
    let proxy_tcp = FaultyLink::spawn(
        proxy_tcp_front,
        Target::Tcp(tcp_addr.to_string()),
        seed ^ 0x5EED,
        FAULTED_PER_PROXY,
    )
    .expect("spawn tcp proxy");

    let (assembled, rep) = std::thread::scope(|scope| {
        let server_thread = scope.spawn(move || server.run());
        let mut clients = Vec::new();
        for part in 0..n {
            let proxy_uds_path = proxy_uds_path.clone();
            let points = &points;
            clients.push(scope.spawn(move || {
                if part % 2 == 0 {
                    drive_sequenced(part, n, points, spec, move || {
                        UnixStream::connect(&proxy_uds_path).map(SessionStream::from)
                    });
                } else {
                    drive_sequenced(part, n, points, spec, move || {
                        TcpStream::connect(proxy_tcp_addr).map(SessionStream::from)
                    });
                }
            }));
        }
        for c in clients {
            c.join().expect("forwarder thread");
        }
        server_thread.join().expect("server thread")
    });
    let accepted = proxy_uds.accepted() + proxy_tcp.accepted();
    drop(proxy_uds);
    drop(proxy_tcp);
    let _ = std::fs::remove_file(&uds_path);
    let _ = std::fs::remove_file(dir.join("proxy.sock"));

    assert_eq!(rep.completed, n as usize, "{tag}: every collector lands");
    assert!(!rep.timed_out, "{tag}");
    assert!(
        accepted > n,
        "{tag}: faults must have forced retries (accepted {accepted} ≤ {n} connections)"
    );
    assert!(
        !rep.failures.is_empty(),
        "{tag}: killed sessions must be recorded (accepted {accepted})"
    );
    assert_eq!(assembled, reference.snapshot(), "{tag}");
    assert_eq!(
        encode_snapshot(&assembled),
        encode_snapshot(&reference.snapshot()),
        "{tag}: byte-identical to the unsharded run despite injected faults"
    );
    // ISSUE 9: second-and-later flushes ride differential frames, and
    // the injected faults (which force resyncs and re-baselines) must
    // not cost that — nor, per the asserts above, bit-exactness.
    let diff_bytes: u64 = rep.sessions.iter().map(|s| s.diff_bytes).sum();
    assert!(
        diff_bytes > 0,
        "{tag}: faulted sessions must still deliver differential frames"
    );
}

#[test]
fn sequenced_sessions_survive_seeded_faults_single_loop() {
    const N: u64 = 64;
    let points = keyed_points(120_000, 256);
    for kind in backends_under_test() {
        let server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: N as usize,
                accept_timeout: Some(Duration::from_secs(60)),
            },
        )
        .with_backend(kind);
        faulted_scenario(
            &format!("single_{kind}"),
            N,
            &points,
            Serve::Single(server),
            0xC0FFEE,
        );
    }
}

#[test]
fn sequenced_sessions_survive_seeded_faults_multi_loop() {
    const N: u64 = 64;
    let points = keyed_points(120_000, 256);
    for kind in backends_under_test() {
        for loops in [2usize, 4] {
            let server = MultiLoopServer::new(
                (0..loops).map(|_| Aggregator::new()).collect(),
                ServeOptions {
                    collectors: N as usize,
                    accept_timeout: Some(Duration::from_secs(60)),
                },
            )
            .with_backend(kind);
            faulted_scenario(
                &format!("multi_{kind}_x{loops}"),
                N,
                &points,
                Serve::Multi(server),
                0xC0FFEE ^ loops as u64,
            );
        }
    }
}

/// Version negotiation live (satellite 2): unsequenced v2 forwarders
/// and sequenced v3 forwarders share one serve, and the assembled
/// snapshot is still the unsharded engine's bytes — a v2-only binary
/// keeps working unchanged against a v3 aggregator.
#[test]
fn mixed_v2_and_v3_sessions_assemble_identical_bytes() {
    const N: u64 = 8;
    let spec = SamplerSpec::Systematic { interval: 7 };
    let points = keyed_points(60_000, 128);
    let mut reference = MonitorEngine::new(config(spec));
    for &(k, v) in &points {
        reference.offer(k, v);
    }
    for kind in backends_under_test() {
        let dir = std::env::temp_dir().join(format!("sst_mixed_{kind}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("socket dir");
        let uds_path = dir.join("mixed.sock");
        let _ = std::fs::remove_file(&uds_path);
        let uds = UnixListener::bind(&uds_path).expect("bind uds");
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: N as usize,
                accept_timeout: Some(Duration::from_secs(60)),
            },
        )
        .with_backend(kind);
        server.add_unix_listener(uds).expect("register uds");
        let (agg, rep) = std::thread::scope(|scope| {
            let server_thread = scope.spawn(move || server.run().expect("event loop"));
            for part in 0..N {
                let uds_path = uds_path.clone();
                let points = &points;
                scope.spawn(move || {
                    if part % 2 == 0 {
                        // Unsequenced v2 — the pre-ISSUE-7 forward path.
                        let mut sock = UnixStream::connect(&uds_path).expect("connect uds");
                        drive_collector(
                            Collector::new(part, config(spec).shards(2)),
                            points,
                            part,
                            N,
                            &mut sock,
                        );
                    } else {
                        drive_sequenced(part, N, points, spec, move || {
                            UnixStream::connect(&uds_path).map(SessionStream::from)
                        });
                    }
                });
            }
            server_thread.join().expect("server thread")
        });
        let _ = std::fs::remove_file(dir.join("mixed.sock"));
        assert_eq!(rep.completed, N as usize, "{kind}");
        assert!(rep.failures.is_empty(), "{kind}: {:?}", rep.failures);
        assert_eq!(
            encode_snapshot(&agg.snapshot()),
            encode_snapshot(&reference.snapshot()),
            "{kind}: mixed-version serve must still assemble the reference bytes"
        );
    }
}

/// The serve process dies mid-run and a new one takes over the same
/// socket: retrying forwarders must reconnect, be told to resync (the
/// fresh aggregator has no per-collector watermark), re-baseline from
/// a full snapshot, and still assemble the reference bytes. The first
/// serve's teardown also exercises the best-effort `Shutdown` frame.
#[test]
fn serve_restart_mid_run_survived_by_full_snapshot_resync() {
    const N: u64 = 8;
    let spec = SamplerSpec::Systematic { interval: 7 };
    let points = keyed_points(60_000, 128);
    let mut reference = MonitorEngine::new(config(spec));
    for &(k, v) in &points {
        reference.offer(k, v);
    }

    let dir = std::env::temp_dir().join(format!("sst_restart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let uds_path = dir.join("restart.sock");
    let _ = std::fs::remove_file(&uds_path);

    let phase_a_done = AtomicUsize::new(0);
    let serve2_up = AtomicBool::new(false);

    // Serve 1 stops after ONE completed session — the throwaway dummy
    // below — stranding the 8 sequenced forwarders mid-stream.
    let uds1 = UnixListener::bind(&uds_path).expect("bind uds 1");
    let mut serve1 = EventLoopServer::new(
        Aggregator::new(),
        ServeOptions {
            collectors: 1,
            accept_timeout: Some(Duration::from_secs(60)),
        },
    );
    serve1.add_unix_listener(uds1).expect("register uds 1");

    let (agg2, rep2) = std::thread::scope(|scope| {
        let serve1_thread = scope.spawn(move || serve1.run().expect("serve 1"));
        let mut clients = Vec::new();
        for part in 0..N {
            let uds_path = uds_path.clone();
            let points = &points;
            let phase_a_done = &phase_a_done;
            let serve2_up = &serve2_up;
            clients.push(scope.spawn(move || {
                let mine: Vec<(u64, f64)> = points
                    .iter()
                    .filter(|&&(k, _)| k % N == part)
                    .copied()
                    .collect();
                let connect_path = uds_path.clone();
                let mut sender = SequencedSender::new(
                    Collector::new_sequenced(part, config(spec).shards(2)),
                    move || UnixStream::connect(&connect_path).map(SessionStream::from),
                    Backoff::new(2, 40, 0xBEEF ^ part),
                    400,
                );
                let (first, second) = mine.split_at(mine.len() / 2);
                sender.collector_mut().offer_batch(first);
                sender.flush().expect("phase A flush");
                phase_a_done.fetch_add(1, Ordering::SeqCst);
                while !serve2_up.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                sender.collector_mut().offer_batch(second);
                sender.flush().expect("phase B flush");
                sender.finish().expect("finish against serve 2");
            }));
        }
        // Once every forwarder has frames inside serve 1, complete the
        // dummy session so serve 1 reaches its target and tears down.
        while phase_a_done.load(Ordering::SeqCst) < N as usize {
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let mut sock = UnixStream::connect(&uds_path).expect("connect dummy");
            let mut dummy = Collector::new(9000, config(spec));
            dummy.offer_batch(&keyed_points(500, 4));
            dummy.finish(&mut sock).expect("dummy session");
        }
        serve1_thread.join().expect("serve 1 thread");
        // Same path, fresh process state: the restart.
        let _ = std::fs::remove_file(&uds_path);
        let uds2 = UnixListener::bind(&uds_path).expect("bind uds 2");
        let mut serve2 = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: N as usize,
                accept_timeout: Some(Duration::from_secs(60)),
            },
        );
        serve2.add_unix_listener(uds2).expect("register uds 2");
        let serve2_thread = scope.spawn(move || serve2.run().expect("serve 2"));
        serve2_up.store(true, Ordering::SeqCst);
        for c in clients {
            c.join().expect("forwarder thread");
        }
        serve2_thread.join().expect("serve 2 thread")
    });
    let _ = std::fs::remove_file(dir.join("restart.sock"));

    assert_eq!(
        rep2.completed, N as usize,
        "every forwarder must land on the restarted serve"
    );
    assert_eq!(
        encode_snapshot(&agg2.snapshot()),
        encode_snapshot(&reference.snapshot()),
        "restart must be invisible in the assembled bytes (full-snapshot resync)"
    );
}
