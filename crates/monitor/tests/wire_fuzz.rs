//! Decode robustness: snapshot and frame decoding must *reject*
//! malformed input — truncations, length overflows, random byte
//! mutations — with errors, never panics. The proptests below mutate
//! valid encodings at random and drive both the whole-buffer and the
//! incremental decoders.

use proptest::prelude::*;
use sst_monitor::topology::SeqOutcome;
use sst_monitor::{
    decode_frames, decode_snapshot, diff_entry, encode_frame, encode_snapshot, Aggregator,
    EngineSnapshot, Frame, FrameDecoder, MonitorConfig, MonitorEngine, SamplerSpec, StreamDiff,
    WIRE_VERSION,
};
use std::sync::OnceLock;

/// [`valid_stream`] plus the byte offsets at which a truncation still
/// leaves a whole (shorter) frame stream: 0 and every frame end.
fn valid_stream_with_boundaries() -> (Vec<u8>, Vec<usize>) {
    let bytes = valid_stream();
    let mut boundaries = vec![0usize];
    let mut dec = FrameDecoder::new();
    let mut consumed_to = 0usize;
    dec.push(&bytes);
    while dec.next_frame().expect("valid stream").is_some() {
        consumed_to = bytes.len() - dec.pending_bytes();
        boundaries.push(consumed_to);
    }
    assert_eq!(consumed_to, bytes.len(), "whole stream decodes");
    (bytes, boundaries)
}

/// A representative frame stream: Hello, a Delta, an Evicted, a full
/// snapshot, Bye.
fn valid_stream() -> Vec<u8> {
    let mut engine = MonitorEngine::new(
        MonitorConfig::default()
            .sampler(SamplerSpec::Bss {
                interval: 10,
                epsilon: 1.0,
                n_pre: 8,
                l: 4,
            })
            .shards(3)
            .seed(5),
    );
    for i in 0..20_000u64 {
        let key = i % 23;
        let v = if (i / 41) % 9 == 0 { 150.0 } else { 2.0 };
        engine.offer(key, v);
    }
    let snap = engine.snapshot();
    let evicted = snap.streams()[..5].to_vec();
    let mut bytes = Vec::new();
    for frame in [
        Frame::Hello {
            protocol: WIRE_VERSION,
            collector_id: 17,
            resume: None,
        },
        Frame::Delta(snap.clone()),
        Frame::Evicted(evicted),
        Frame::FullSnapshot(snap),
        Frame::Bye,
    ] {
        bytes.extend_from_slice(&encode_frame(&frame));
    }
    bytes
}

/// A representative *tiered* frame stream: the Delta and FullSnapshot
/// payloads carry a populated `SKT1` sketch section (count-min rows,
/// heavy-hitter list, projection cascades, promotion counters).
fn valid_sketch_stream() -> Vec<u8> {
    let mut engine = MonitorEngine::new(
        MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 3 })
            .shards(2)
            .seed(11)
            .max_exact_keys(8)
            .sketch_bytes(1 << 14)
            .promote_after(32),
    );
    for i in 0..30_000u64 {
        let key = if i % 5 == 0 { i % 400 + 100 } else { i % 6 };
        engine.offer(key, (i % 13) as f64 + 1.0);
    }
    let snap = engine.full_snapshot();
    assert!(snap.sketch().is_some(), "sketch section present");
    let evicted = snap.streams()[..3.min(snap.stream_count())].to_vec();
    let mut bytes = Vec::new();
    for frame in [
        Frame::Hello {
            protocol: WIRE_VERSION,
            collector_id: 31,
            resume: None,
        },
        Frame::Delta(snap.clone()),
        Frame::Evicted(evicted),
        Frame::FullSnapshot(snap),
        Frame::Bye,
    ] {
        bytes.extend_from_slice(&encode_frame(&frame));
    }
    bytes
}

/// A representative *sequenced* (v3) bidirectional byte soup: a
/// resume Hello, sequenced data frames, and the three
/// aggregator-originated control frames — everything the v3 decoder
/// can legally meet on one connection, in one buffer.
fn valid_sequenced_stream(first_seq: u64) -> Vec<u8> {
    use sst_monitor::wire::{encode_frame_seq, HelloResume};
    let mut engine = MonitorEngine::new(
        MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 9 })
            .seed(13),
    );
    for i in 0..10_000u64 {
        engine.offer(i % 17, 1.0 + (i % 29) as f64);
    }
    let snap = engine.snapshot();
    let evicted = snap.streams()[..3].to_vec();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&encode_frame(&Frame::Hello {
        protocol: WIRE_VERSION,
        collector_id: 23,
        resume: Some(HelloResume::Replay { first_seq }),
    }));
    let mut seq = first_seq;
    for frame in [
        Frame::Delta(snap.clone()),
        Frame::Evicted(evicted),
        Frame::FullSnapshot(snap),
        Frame::Bye,
    ] {
        bytes.extend_from_slice(&encode_frame_seq(seq, &frame));
        seq += 1;
    }
    for frame in [
        Frame::Ack { through_seq: seq },
        Frame::Resync {
            from_seq: first_seq,
        },
        Frame::Shutdown,
    ] {
        bytes.extend_from_slice(&encode_frame(&frame));
    }
    bytes
}

/// Two growth stages of one engine plus the per-stream diffs between
/// them — the ingredients of a differential (v4) session. Cached:
/// proptest runs hundreds of cases.
fn diff_fixture() -> &'static (EngineSnapshot, EngineSnapshot, Vec<StreamDiff>) {
    static FIXTURE: OnceLock<(EngineSnapshot, EngineSnapshot, Vec<StreamDiff>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mk = |n: u64| {
            let mut engine = MonitorEngine::new(
                MonitorConfig::default()
                    .sampler(SamplerSpec::Systematic { interval: 3 })
                    .seed(19),
            );
            for i in 0..n {
                engine.offer(i % 17, ((i % 41) as f64) - 20.0);
            }
            engine.snapshot()
        };
        let base = mk(8_000);
        let grown = mk(10_000);
        let diffs = base
            .streams()
            .iter()
            .zip(grown.streams())
            .map(|(b, n)| diff_entry(b, n).expect("grown entries diff"))
            .collect();
        (base, grown, diffs)
    })
}

/// A representative *differential* (v4) stream: resume Hello, a
/// sequenced FullSnapshot baseline, a `DeltaDiff`, `Bye`.
fn valid_diff_stream(first_seq: u64) -> Vec<u8> {
    use sst_monitor::wire::{encode_frame_seq, HelloResume};
    let (base, _, diffs) = diff_fixture();
    let mut bytes = encode_frame(&Frame::Hello {
        protocol: WIRE_VERSION,
        collector_id: 29,
        resume: Some(HelloResume::Fresh { first_seq }),
    })
    .to_vec();
    bytes.extend_from_slice(&encode_frame_seq(
        first_seq,
        &Frame::FullSnapshot(base.clone()),
    ));
    bytes.extend_from_slice(&encode_frame_seq(
        first_seq + 1,
        &Frame::DeltaDiff(diffs.clone()),
    ));
    bytes.extend_from_slice(&encode_frame_seq(first_seq + 2, &Frame::Bye));
    bytes
}

/// Decoding must return — Ok or Err, never panic, never hang.
fn decode_every_way(bytes: &[u8]) {
    let _ = decode_frames(bytes);
    let _ = decode_snapshot(bytes);
    // Incremental, in awkward chunk sizes; stop on first error like a
    // real connection handler would.
    let mut dec = FrameDecoder::new();
    'outer: for chunk in bytes.chunks(13) {
        dec.push(chunk);
        loop {
            match dec.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break 'outer,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mutated_frame_streams_never_panic(
        muts in proptest::collection::vec((0usize..1_000_000, 0u8..=255u8), 1..12),
    ) {
        let mut bytes = valid_stream();
        for &(pos, val) in &muts {
            let i = pos % bytes.len();
            bytes[i] = val;
        }
        decode_every_way(&bytes);
    }

    #[test]
    fn random_garbage_never_panics(
        bytes in proptest::collection::vec(0u8..=255u8, 0..4096),
    ) {
        decode_every_way(&bytes);
    }

    #[test]
    fn random_truncations_never_panic(cut in 0usize..1_000_000) {
        let (bytes, boundaries) = valid_stream_with_boundaries();
        let cut = cut % (bytes.len() + 1);
        decode_every_way(&bytes[..cut]);
        if boundaries.contains(&cut) {
            // A cut on a frame boundary is a shorter valid stream.
            prop_assert!(decode_frames(&bytes[..cut]).is_ok());
        } else {
            // A cut inside a frame is incomplete or corrupt, never
            // silently whole.
            prop_assert!(decode_frames(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn mutated_v1_snapshots_never_panic(
        muts in proptest::collection::vec((0usize..1_000_000, 0u8..=255u8), 1..12),
    ) {
        let mut engine = MonitorEngine::new(MonitorConfig::default().seed(2));
        for i in 0..3000u64 {
            engine.offer(i % 7, (i % 31) as f64);
        }
        let mut bytes = encode_snapshot(&engine.snapshot()).to_vec();
        for &(pos, val) in &muts {
            let i = pos % bytes.len();
            bytes[i] = val;
        }
        let _ = decode_snapshot(&bytes);
        let _ = decode_frames(&bytes);
    }

    #[test]
    fn mutated_sketch_streams_never_panic(
        muts in proptest::collection::vec((0usize..1_000_000, 0u8..=255u8), 1..12),
    ) {
        let mut bytes = valid_sketch_stream();
        for &(pos, val) in &muts {
            let i = pos % bytes.len();
            bytes[i] = val;
        }
        decode_every_way(&bytes);
    }

    #[test]
    fn truncated_sketch_streams_never_panic(cut in 0usize..1_000_000) {
        let bytes = valid_sketch_stream();
        let cut = cut % (bytes.len() + 1);
        decode_every_way(&bytes[..cut]);
    }

    #[test]
    fn mutated_v1_sketch_snapshots_never_panic(
        muts in proptest::collection::vec((0usize..1_000_000, 0u8..=255u8), 1..12),
    ) {
        // Mutations inside the trailing SKT1 section (or anywhere
        // before it) must come back as errors or valid decodes, never
        // panics or runaway allocations.
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .seed(2)
                .max_exact_keys(4)
                .sketch_bytes(1 << 12),
        );
        for i in 0..5_000u64 {
            engine.offer(i % 64, (i % 31) as f64);
        }
        let mut bytes = encode_snapshot(&engine.full_snapshot()).to_vec();
        for &(pos, val) in &muts {
            let i = pos % bytes.len();
            bytes[i] = val;
        }
        let _ = decode_snapshot(&bytes);
        let _ = decode_frames(&bytes);
    }

    #[test]
    fn declared_length_overflows_are_rejected_not_allocated(
        kind in 0u8..=8u8,
        len in (1u32 << 28)..=u32::MAX,
    ) {
        // A hostile header declaring a huge payload must fail fast
        // (no allocation, no panic), whatever the kind byte says.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SSWF");
        bytes.push(WIRE_VERSION);
        bytes.push(kind);
        bytes.extend_from_slice(&len.to_le_bytes());
        prop_assert!(decode_frames(&bytes).is_err());
    }

    #[test]
    fn mutated_sequenced_streams_never_panic(
        first_seq in 0u64..1_000,
        muts in proptest::collection::vec((0usize..1_000_000, 0u8..=255u8), 1..12),
    ) {
        let mut bytes = valid_sequenced_stream(first_seq);
        for &(pos, val) in &muts {
            let i = pos % bytes.len();
            bytes[i] = val;
        }
        decode_every_way(&bytes);
    }

    #[test]
    fn truncated_sequenced_streams_never_panic(
        first_seq in 0u64..1_000,
        cut in 0usize..1_000_000,
    ) {
        let bytes = valid_sequenced_stream(first_seq);
        let cut = cut % (bytes.len() + 1);
        decode_every_way(&bytes[..cut]);
    }

    #[test]
    fn sequenced_streams_round_trip_their_seqs(first_seq in 0u64..u64::MAX / 2) {
        // The bidirectional decoder must hand back exactly the seqs
        // the sender stamped — data frames numbered, Hello and
        // control frames seq-less — through arbitrary re-chunking.
        let bytes = valid_sequenced_stream(first_seq);
        let mut dec = FrameDecoder::new();
        let mut seqs = Vec::new();
        for chunk in bytes.chunks(7) {
            dec.push(chunk);
            while let Some(sf) = dec.next_seq_frame().expect("valid stream") {
                seqs.push(sf.seq);
            }
        }
        let expected: Vec<Option<u64>> = std::iter::once(None)
            .chain((0..4).map(|i| Some(first_seq + i)))
            .chain([None, None, None])
            .collect();
        prop_assert_eq!(seqs, expected);
    }

    #[test]
    fn mutated_diff_streams_never_panic(
        first_seq in 0u64..1_000,
        muts in proptest::collection::vec((0usize..1_000_000, 0u8..=255u8), 1..12),
    ) {
        let mut bytes = valid_diff_stream(first_seq);
        for &(pos, val) in &muts {
            let i = pos % bytes.len();
            bytes[i] = val;
        }
        decode_every_way(&bytes);
    }

    #[test]
    fn truncated_diff_streams_never_panic(
        first_seq in 0u64..1_000,
        cut in 0usize..1_000_000,
    ) {
        let bytes = valid_diff_stream(first_seq);
        let cut = cut % (bytes.len() + 1);
        decode_every_way(&bytes[..cut]);
    }

    #[test]
    fn structurally_corrupt_patches_demand_resync_not_wrong_bytes(
        entry in 0usize..1_000,
        field in 0u8..8u8,
        bump in 1u64..1_000_000,
    ) {
        // Whichever guarded integer a corruption lands on — a baseline
        // fingerprint field, a sampler counter delta, a structural
        // length — the aggregator must answer `NeedResync` and latch
        // the session as awaiting resync, never apply the patch. The
        // part-written live view must not advance either: even a valid
        // redelivery of the same seq is ignored until the resync hello.
        let (base, _, diffs) = diff_fixture();
        let entry = entry % diffs.len();
        let mut bad = diffs.clone();
        let d = &mut bad[entry];
        match field {
            0 => d.base.moments_count = d.base.moments_count.wrapping_add(bump),
            1 => d.base.reservoir_seen = d.base.reservoir_seen.wrapping_add(bump),
            2 => d.base.reservoir_len = d.base.reservoir_len.wrapping_add(bump),
            3 => d.base.cascade_count = d.base.cascade_count.wrapping_add(bump),
            4 => d.base.cascade_levels = d.base.cascade_levels.wrapping_add(bump),
            5 => d.base.tail_total = d.base.tail_total.wrapping_add(bump),
            // A kept-count delta outrunning offered breaks the sampler
            // invariant kept ≤ inspected ≤ offered.
            6 => d.sampler_delta.1 = d.sampler_delta.1.saturating_add(1_000_000 + bump),
            _ => {
                if let Some(p) = d.patch.reservoir.as_mut() {
                    p.new_len = p.new_len.saturating_add(100_000 + bump as usize);
                } else {
                    d.base.reservoir_seen = d.base.reservoir_seen.wrapping_add(bump);
                }
            }
        }
        let mut agg = Aggregator::new();
        agg.feed_seq(
            7,
            None,
            Frame::Hello {
                protocol: WIRE_VERSION,
                collector_id: 7,
                resume: Some(sst_monitor::wire::HelloResume::Fresh { first_seq: 0 }),
            },
        )
        .unwrap();
        prop_assert_eq!(
            agg.feed_seq(7, Some(0), Frame::FullSnapshot(base.clone())).unwrap(),
            SeqOutcome::Applied
        );
        prop_assert_eq!(
            agg.feed_seq(7, Some(1), Frame::DeltaDiff(bad)).unwrap(),
            SeqOutcome::NeedResync { from_seq: 1 }
        );
        prop_assert_eq!(
            agg.feed_seq(7, Some(1), Frame::DeltaDiff(diffs.clone())).unwrap(),
            SeqOutcome::Ignored
        );
    }
}
