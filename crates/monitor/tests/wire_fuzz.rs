//! Decode robustness: snapshot and frame decoding must *reject*
//! malformed input — truncations, length overflows, random byte
//! mutations — with errors, never panics. The proptests below mutate
//! valid encodings at random and drive both the whole-buffer and the
//! incremental decoders.

use proptest::prelude::*;
use sst_monitor::{
    decode_frames, decode_snapshot, encode_frame, encode_snapshot, Frame, FrameDecoder,
    MonitorConfig, MonitorEngine, SamplerSpec, WIRE_VERSION,
};

/// [`valid_stream`] plus the byte offsets at which a truncation still
/// leaves a whole (shorter) frame stream: 0 and every frame end.
fn valid_stream_with_boundaries() -> (Vec<u8>, Vec<usize>) {
    let bytes = valid_stream();
    let mut boundaries = vec![0usize];
    let mut dec = FrameDecoder::new();
    let mut consumed_to = 0usize;
    dec.push(&bytes);
    while dec.next_frame().expect("valid stream").is_some() {
        consumed_to = bytes.len() - dec.pending_bytes();
        boundaries.push(consumed_to);
    }
    assert_eq!(consumed_to, bytes.len(), "whole stream decodes");
    (bytes, boundaries)
}

/// A representative frame stream: Hello, a Delta, an Evicted, a full
/// snapshot, Bye.
fn valid_stream() -> Vec<u8> {
    let mut engine = MonitorEngine::new(
        MonitorConfig::default()
            .sampler(SamplerSpec::Bss {
                interval: 10,
                epsilon: 1.0,
                n_pre: 8,
                l: 4,
            })
            .shards(3)
            .seed(5),
    );
    for i in 0..20_000u64 {
        let key = i % 23;
        let v = if (i / 41) % 9 == 0 { 150.0 } else { 2.0 };
        engine.offer(key, v);
    }
    let snap = engine.snapshot();
    let evicted = snap.streams()[..5].to_vec();
    let mut bytes = Vec::new();
    for frame in [
        Frame::Hello {
            protocol: WIRE_VERSION,
            collector_id: 17,
        },
        Frame::Delta(snap.clone()),
        Frame::Evicted(evicted),
        Frame::FullSnapshot(snap),
        Frame::Bye,
    ] {
        bytes.extend_from_slice(&encode_frame(&frame));
    }
    bytes
}

/// Decoding must return — Ok or Err, never panic, never hang.
fn decode_every_way(bytes: &[u8]) {
    let _ = decode_frames(bytes);
    let _ = decode_snapshot(bytes);
    // Incremental, in awkward chunk sizes; stop on first error like a
    // real connection handler would.
    let mut dec = FrameDecoder::new();
    'outer: for chunk in bytes.chunks(13) {
        dec.push(chunk);
        loop {
            match dec.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break 'outer,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mutated_frame_streams_never_panic(
        muts in proptest::collection::vec((0usize..1_000_000, 0u8..=255u8), 1..12),
    ) {
        let mut bytes = valid_stream();
        for &(pos, val) in &muts {
            let i = pos % bytes.len();
            bytes[i] = val;
        }
        decode_every_way(&bytes);
    }

    #[test]
    fn random_garbage_never_panics(
        bytes in proptest::collection::vec(0u8..=255u8, 0..4096),
    ) {
        decode_every_way(&bytes);
    }

    #[test]
    fn random_truncations_never_panic(cut in 0usize..1_000_000) {
        let (bytes, boundaries) = valid_stream_with_boundaries();
        let cut = cut % (bytes.len() + 1);
        decode_every_way(&bytes[..cut]);
        if boundaries.contains(&cut) {
            // A cut on a frame boundary is a shorter valid stream.
            prop_assert!(decode_frames(&bytes[..cut]).is_ok());
        } else {
            // A cut inside a frame is incomplete or corrupt, never
            // silently whole.
            prop_assert!(decode_frames(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn mutated_v1_snapshots_never_panic(
        muts in proptest::collection::vec((0usize..1_000_000, 0u8..=255u8), 1..12),
    ) {
        let mut engine = MonitorEngine::new(MonitorConfig::default().seed(2));
        for i in 0..3000u64 {
            engine.offer(i % 7, (i % 31) as f64);
        }
        let mut bytes = encode_snapshot(&engine.snapshot()).to_vec();
        for &(pos, val) in &muts {
            let i = pos % bytes.len();
            bytes[i] = val;
        }
        let _ = decode_snapshot(&bytes);
        let _ = decode_frames(&bytes);
    }

    #[test]
    fn declared_length_overflows_are_rejected_not_allocated(
        kind in 0u8..=5u8,
        len in (1u32 << 28)..=u32::MAX,
    ) {
        // A hostile header declaring a huge payload must fail fast
        // (no allocation, no panic), whatever the kind byte says.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SSWF");
        bytes.push(WIRE_VERSION);
        bytes.push(kind);
        bytes.extend_from_slice(&len.to_le_bytes());
        prop_assert!(decode_frames(&bytes).is_err());
    }
}
