//! The engine's load-bearing guarantee, pinned end to end: sharded
//! ingest of a deterministic synthesized packet trace is bit-for-bit
//! equivalent to unsharded ingest — kept samples (reservoir), moments,
//! Hurst block accumulators, tail ladders, sampler counters, all of it
//! — and snapshots of disjoint engines merge to the same bits.

use sst_monitor::{
    decode_snapshot, encode_snapshot, EngineSnapshot, MonitorConfig, MonitorEngine, SamplerSpec,
};
use sst_nettrace::TraceSynthesizer;

fn trace_points() -> Vec<(u64, f64)> {
    // The Bell-Labs preset is a sparse measured subset (~14 pkt/s);
    // raise the offered load so the engine sees a dense multiplexed
    // stream worth sharding.
    TraceSynthesizer::bell_labs_like()
        .duration(240.0)
        .mean_rate(2.0e5)
        .synthesize(20050607)
        .od_keyed_points()
}

fn config(spec: SamplerSpec) -> MonitorConfig {
    MonitorConfig::default()
        .sampler(spec)
        .seed(42)
        .tail_thresholds(vec![64.0, 576.0, 1400.0])
}

fn snapshot_with_shards(points: &[(u64, f64)], spec: SamplerSpec, shards: usize) -> EngineSnapshot {
    let mut engine = MonitorEngine::new(config(spec).shards(shards));
    // Mix batch sizes so both the inline and the pool-fanned ingest
    // paths are exercised.
    let (head, tail) = points.split_at(points.len() / 3);
    for &(k, v) in head {
        engine.offer(k, v);
    }
    for chunk in tail.chunks(1 << 14) {
        engine.offer_batch(chunk);
    }
    engine.snapshot()
}

#[test]
fn sharded_ingest_is_bit_identical_for_1_2_8_shards() {
    let points = trace_points();
    assert!(points.len() > 50_000, "workload too small to mean anything");
    for spec in [
        SamplerSpec::Systematic { interval: 7 },
        SamplerSpec::SimpleRandom { rate: 0.2 },
        SamplerSpec::Bss {
            interval: 11,
            epsilon: 1.0,
            n_pre: 8,
            l: 3,
        },
    ] {
        let reference = snapshot_with_shards(&points, spec, 1);
        assert!(reference.stream_count() > 10, "{spec:?}: too few streams");
        for shards in [2usize, 8] {
            let sharded = snapshot_with_shards(&points, spec, shards);
            // Full bitwise equality: every stream entry (kept-sample
            // reservoir, Welford moments, dyadic Hurst blocks, tail
            // ladder, sampler counters) and hence every aggregate.
            assert_eq!(sharded, reference, "{spec:?} with {shards} shards");
            assert_eq!(
                sharded.aggregate(),
                reference.aggregate(),
                "{spec:?} aggregate with {shards} shards"
            );
        }
    }
}

#[test]
fn disjoint_engines_merge_to_the_unsharded_bits() {
    let points = trace_points();
    let spec = SamplerSpec::Systematic { interval: 5 };
    let whole = snapshot_with_shards(&points, spec, 4);
    // Network roll-up: three collectors, each watching a disjoint key
    // slice (as a deployment would partition links).
    let mut parts: Vec<MonitorEngine> = (0..3)
        .map(|_| MonitorEngine::new(config(spec).shards(2)))
        .collect();
    for &(k, v) in &points {
        parts[(k % 3) as usize].offer(k, v);
    }
    let merged = parts
        .iter()
        .map(|e| e.snapshot())
        .fold(EngineSnapshot::default(), |acc, s| acc.merge(s));
    assert_eq!(merged, whole);
    // And the codec carries the roll-up losslessly.
    let back = decode_snapshot(&encode_snapshot(&merged)).expect("decode");
    assert_eq!(back, whole);
}

#[test]
fn engine_online_hurst_tracks_offline_estimate_on_fgn() {
    // Acceptance bound: the engine's per-stream online Hurst agrees
    // with the offline aggregated-variance estimator within 0.02 when
    // the sampler keeps everything.
    use sst_hurst::VarianceTimeEstimator;
    use sst_traffic::FgnGenerator;
    for &h in &[0.6, 0.75, 0.9] {
        let vals = FgnGenerator::new(h)
            .expect("valid H")
            .generate_values(1 << 16, 13);
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::TakeAll)
                .shards(2),
        );
        for &v in &vals {
            engine.offer(7, v);
        }
        let snap = engine.snapshot();
        let online = snap.streams()[0]
            .summary
            .hurst_estimate()
            .expect("enough data");
        let offline = VarianceTimeEstimator::default()
            .estimate(&vals)
            .expect("enough data")
            .hurst;
        assert!(
            (online - offline).abs() < 0.02,
            "H={h}: engine online {online:.4} vs offline {offline:.4}"
        );
    }
}

#[test]
fn sampled_streams_still_recover_mean_and_tail_shape() {
    // The monitoring point of the paper's samplers: at 1-in-7 the kept
    // stream's mean tracks the full stream's mean per OD pair.
    let points = trace_points();
    let full = snapshot_with_shards(&points, SamplerSpec::TakeAll, 2);
    let sampled = snapshot_with_shards(&points, SamplerSpec::Systematic { interval: 7 }, 2);
    let full_mean = full.aggregate().moments.mean();
    let samp_mean = sampled.aggregate().moments.mean();
    assert!(
        (samp_mean - full_mean).abs() / full_mean < 0.1,
        "sampled mean {samp_mean:.1} vs full {full_mean:.1}"
    );
    let kept_ratio = sampled.sampler_totals().kept as f64 / full.sampler_totals().kept as f64;
    assert!(
        (kept_ratio - 1.0 / 7.0).abs() < 0.02,
        "kept ratio {kept_ratio:.4} vs 1/7"
    );
}
