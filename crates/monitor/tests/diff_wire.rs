//! ISSUE 9 integration pins: differential wire frames (`DeltaDiff`,
//! wire v4).
//!
//! * Steady-state flushes of slowly-changing streams ship ≥5× fewer
//!   payload bytes than the cumulative `Delta` path, measured on the
//!   actual sealed wire frames — while the assembled snapshot stays
//!   **bit-for-bit identical** to the unsharded engine.
//! * A corrupt patch (bad fingerprint, impossible reservoir length)
//!   turns into `Resync{from_seq}` recovery, never wrong bytes.
//! * Against an aggregator that compacts live entries server-side
//!   (`compact_budget`), the collector detects the resync storm and
//!   degrades to cumulative frames — correctness never depends on the
//!   peer holding a baseline.

use sst_monitor::topology::SeqOutcome;
use sst_monitor::wire::HelloResume;
use sst_monitor::{
    decode_frames, diff_entry, encode_frame, encode_snapshot, Aggregator, Collector, Frame,
    MonitorConfig, MonitorEngine, SamplerSpec, SessionDriver, StreamDiff, WIRE_VERSION,
};

fn config() -> MonitorConfig {
    MonitorConfig::default()
        .sampler(SamplerSpec::Systematic { interval: 2 })
        .seed(41)
        .reservoir_capacity(256)
}

/// Deterministic per-(key, tick) value with enough variety to touch
/// every summary section.
fn value(key: u64, tick: u64) -> f64 {
    let x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(tick);
    (x % 613) as f64 - 300.0 + if x.is_multiple_of(97) { 5_000.0 } else { 0.0 }
}

/// Ships the collector's sealed window into the driver/aggregator,
/// answering `Ack`s and `Resync`s until the link is quiescent.
/// Returns the wire bytes shipped (window frames only, not hellos).
fn pump(
    collector: &mut Collector,
    sent: &mut u64,
    driver: &mut SessionDriver,
    agg: &mut Aggregator,
) -> u64 {
    let mut shipped = 0u64;
    loop {
        let mut buf = Vec::new();
        for (_seq, bytes) in collector.unsent_window(*sent) {
            buf.extend_from_slice(bytes);
        }
        shipped += buf.len() as u64;
        *sent = collector.next_seq();
        driver.push(&buf, agg).expect("clean in-memory link");
        let out = driver.take_outbound();
        if out.is_empty() {
            return shipped;
        }
        let mut resynced = false;
        for f in decode_frames(&out).expect("well-formed control frames") {
            match f {
                Frame::Ack { through_seq } => collector.ack(through_seq),
                Frame::Resync { from_seq } => {
                    let hello = collector.handle_resync(from_seq);
                    let first = match &hello {
                        Frame::Hello {
                            resume: Some(HelloResume::Resync { first_seq }),
                            ..
                        } => *first_seq,
                        other => panic!("resync answer must be a Resync hello, got {other:?}"),
                    };
                    driver
                        .push(&encode_frame(&hello), agg)
                        .expect("resync hello");
                    *sent = first;
                    resynced = true;
                }
                other => panic!("unexpected server frame {other:?}"),
            }
        }
        if !resynced && collector.unsent_window(*sent).next().is_none() {
            return shipped;
        }
    }
}

fn open_session(
    collector: &Collector,
    driver: &mut SessionDriver,
    agg: &mut Aggregator,
) -> std::result::Result<(), sst_monitor::topology::SessionError> {
    driver.push(&encode_frame(&collector.hello()), agg)
}

const STREAMS: u64 = 1024;
const WARMUP_PER_STREAM: u64 = 600;
const ROUNDS: u64 = 6;
const POINTS_PER_ROUND: u64 = 8;

/// The headline pin: after a warmup that fills every reservoir, each
/// steady-state round adds ≤8 points per stream. The differential
/// session must ship ≥5× fewer bytes for those rounds than an
/// identical session with diffing disabled — and both must assemble
/// to the unsharded engine's exact bytes.
#[test]
fn steady_state_diff_flushes_ship_5x_fewer_bytes_and_identical_bits() {
    let mut reference = MonitorEngine::new(config());
    let mut diffing = Collector::new_sequenced(1, config());
    let mut cumulative = Collector::new_sequenced(1, config()).diff_frames(false);

    let offer_round = |tick0: u64,
                       per_stream: u64,
                       reference: &mut MonitorEngine,
                       a: &mut Collector,
                       b: &mut Collector| {
        for t in 0..per_stream {
            for k in 0..STREAMS {
                let v = value(k, tick0 + t);
                reference.offer(k, v);
                a.offer(k, v);
                b.offer(k, v);
            }
        }
    };

    let mut agg_diff = Aggregator::new();
    let mut drv_diff = SessionDriver::new(900);
    let mut sent_diff = 0u64;
    open_session(&diffing, &mut drv_diff, &mut agg_diff).unwrap();
    let mut agg_cum = Aggregator::new();
    let mut drv_cum = SessionDriver::new(900);
    let mut sent_cum = 0u64;
    open_session(&cumulative, &mut drv_cum, &mut agg_cum).unwrap();

    // Warmup: fill the reservoirs (cap 256, one kept per 2 offered) so
    // steady state is the slowly-changing regime the issue targets.
    offer_round(
        0,
        WARMUP_PER_STREAM,
        &mut reference,
        &mut diffing,
        &mut cumulative,
    );
    diffing.seal_flush();
    cumulative.seal_flush();
    pump(&mut diffing, &mut sent_diff, &mut drv_diff, &mut agg_diff);
    pump(&mut cumulative, &mut sent_cum, &mut drv_cum, &mut agg_cum);

    let mut diff_bytes = 0u64;
    let mut cum_bytes = 0u64;
    for round in 0..ROUNDS {
        offer_round(
            WARMUP_PER_STREAM + round * POINTS_PER_ROUND,
            POINTS_PER_ROUND,
            &mut reference,
            &mut diffing,
            &mut cumulative,
        );
        diffing.seal_flush();
        cumulative.seal_flush();
        diff_bytes += pump(&mut diffing, &mut sent_diff, &mut drv_diff, &mut agg_diff);
        cum_bytes += pump(&mut cumulative, &mut sent_cum, &mut drv_cum, &mut agg_cum);
    }

    diffing.seal_finish();
    cumulative.seal_finish();
    pump(&mut diffing, &mut sent_diff, &mut drv_diff, &mut agg_diff);
    pump(&mut cumulative, &mut sent_cum, &mut drv_cum, &mut agg_cum);

    // Byte pin: the differential path wins by at least 5× in steady
    // state (it is ~10× at these parameters; 5× leaves headroom for
    // codec evolution without masking a regression to parity).
    assert!(
        diff_bytes > 0 && cum_bytes >= 5 * diff_bytes,
        "steady-state rounds: diff path shipped {diff_bytes} B, \
         cumulative path {cum_bytes} B — expected ≥5× reduction"
    );
    assert!(
        drv_diff.diff_bytes() > 0,
        "DeltaDiff frames must have flowed"
    );
    assert_eq!(drv_diff.resyncs(), 0, "clean link: no resyncs");

    // Bit-exactness: both sessions assemble the unsharded engine's
    // exact snapshot bytes.
    let want = reference.snapshot();
    assert_eq!(agg_diff.snapshot(), want);
    assert_eq!(agg_cum.snapshot(), want);
    assert_eq!(
        encode_snapshot(&agg_diff.snapshot()),
        encode_snapshot(&want)
    );
}

/// Builds the per-stream diffs between two growth stages of the same
/// engine (16 keys, all summary sections moving).
fn staged_diffs() -> (
    sst_monitor::EngineSnapshot,
    sst_monitor::EngineSnapshot,
    Vec<StreamDiff>,
) {
    let mk = |n: u64| {
        let mut e = MonitorEngine::new(config());
        for i in 0..n {
            let k = i % 16;
            e.offer(k, value(k, i));
        }
        e.snapshot()
    };
    let base = mk(40_000);
    let grown = mk(44_000);
    let diffs = base
        .streams()
        .iter()
        .zip(grown.streams())
        .map(|(b, n)| diff_entry(b, n).expect("grown entries diff"))
        .collect();
    (base, grown, diffs)
}

fn hello(resume: HelloResume) -> Frame {
    Frame::Hello {
        protocol: WIRE_VERSION,
        collector_id: 1,
        resume: Some(resume),
    }
}

/// A corrupt patch must surface as `NeedResync` — the watermark does
/// not advance, later frames are ignored until the re-baseline, and
/// the re-baselined state is exactly right. Never wrong bytes.
#[test]
fn corrupt_patch_yields_resync_then_exact_rebaseline() {
    let (base, grown, diffs) = staged_diffs();
    for mutate in [
        // A fingerprint that doesn't match the receiver's baseline.
        (|d: &mut StreamDiff| d.base.moments_count += 1) as fn(&mut StreamDiff),
        // A structurally impossible reservoir patch.
        |d: &mut StreamDiff| {
            if let Some(p) = d.patch.reservoir.as_mut() {
                p.new_len += 100_000;
            } else {
                d.base.reservoir_seen += 1;
            }
        },
        // A sampler delta that would break kept ≤ inspected ≤ offered.
        |d: &mut StreamDiff| d.sampler_delta.1 += 1_000_000,
    ] {
        let mut agg = Aggregator::new();
        agg.feed_seq(1, None, hello(HelloResume::Fresh { first_seq: 0 }))
            .unwrap();
        assert_eq!(
            agg.feed_seq(1, Some(0), Frame::FullSnapshot(base.clone()))
                .unwrap(),
            SeqOutcome::Applied
        );
        let mut bad = diffs.clone();
        mutate(&mut bad[3]);
        assert_eq!(
            agg.feed_seq(1, Some(1), Frame::DeltaDiff(bad)).unwrap(),
            SeqOutcome::NeedResync { from_seq: 1 },
            "a corrupt patch must demand a resync at its own seq"
        );
        // Everything until the resync hello is dropped, even a valid
        // retry of the same frame: the live view may be part-written.
        assert_eq!(
            agg.feed_seq(1, Some(1), Frame::DeltaDiff(diffs.clone()))
                .unwrap(),
            SeqOutcome::Ignored
        );
        // Re-baseline exactly as `Collector::handle_resync` would.
        agg.feed_seq(1, None, hello(HelloResume::Resync { first_seq: 1 }))
            .unwrap();
        assert_eq!(
            agg.feed_seq(1, Some(1), Frame::FullSnapshot(grown.clone()))
                .unwrap(),
            SeqOutcome::Applied
        );
        assert_eq!(agg.snapshot(), grown, "re-baseline lands the exact bytes");
    }
}

/// A valid diff stream applies idempotently under the seq watermark:
/// redelivered frames are skipped, and the result is bit-identical to
/// the cumulative path.
#[test]
fn diff_frames_apply_idempotently_under_redelivery() {
    let (base, grown, diffs) = staged_diffs();
    let mut agg = Aggregator::new();
    agg.feed_seq(1, None, hello(HelloResume::Fresh { first_seq: 0 }))
        .unwrap();
    agg.feed_seq(1, Some(0), Frame::FullSnapshot(base)).unwrap();
    assert_eq!(
        agg.feed_seq(1, Some(1), Frame::DeltaDiff(diffs.clone()))
            .unwrap(),
        SeqOutcome::Applied
    );
    // Redelivery (e.g. a replay after reconnect) must be a no-op.
    assert_eq!(
        agg.feed_seq(1, Some(1), Frame::DeltaDiff(diffs)).unwrap(),
        SeqOutcome::Duplicate
    );
    assert_eq!(agg.snapshot(), grown);
}

/// A differential frame needs the sequenced protocol: fed into an
/// unsequenced (v2) session it is a protocol violation, not data.
#[test]
fn diff_frames_are_rejected_in_unsequenced_sessions() {
    let (_, _, diffs) = staged_diffs();
    let mut agg = Aggregator::new();
    agg.feed(
        1,
        Frame::Hello {
            protocol: 2,
            collector_id: 1,
            resume: None,
        },
    )
    .unwrap();
    assert!(agg.feed(1, Frame::DeltaDiff(diffs)).is_err());
}

/// An aggregator that compacts live entries (`compact_budget`) can't
/// hold the collector's baseline: every differential flush costs a
/// resync. The collector must notice (resync counter past the limit),
/// drop to cumulative frames, and converge — with totals exact.
#[test]
fn server_side_compaction_degrades_diffing_to_cumulative() {
    let mut agg = Aggregator::new().compact_budget(256);
    let mut collector = Collector::new_sequenced(7, config());
    let mut driver = SessionDriver::new(900);
    let mut sent = 0u64;
    open_session(&collector, &mut driver, &mut agg).unwrap();

    let mut offered = 0usize;
    let mut offer_round = |c: &mut Collector, tick0: u64| {
        for t in 0..32 {
            for k in 0..64u64 {
                c.offer(k, value(k, tick0 + t));
                offered += 1;
            }
        }
    };
    for round in 0..8u64 {
        offer_round(&mut collector, round * 32);
        collector.seal_flush();
        pump(&mut collector, &mut sent, &mut driver, &mut agg);
    }
    assert!(
        collector.resyncs() >= 1,
        "server-side compaction must have broken at least one diff"
    );
    let resyncs_at_steady = collector.resyncs();

    // Once degraded, cumulative rounds apply cleanly: no new resyncs.
    for round in 8..12u64 {
        offer_round(&mut collector, round * 32);
        collector.seal_flush();
        pump(&mut collector, &mut sent, &mut driver, &mut agg);
    }
    assert_eq!(
        collector.resyncs(),
        resyncs_at_steady,
        "cumulative fallback must not keep resyncing"
    );
    collector.seal_finish();
    pump(&mut collector, &mut sent, &mut driver, &mut agg);
    // Compaction approximates distributions, never totals.
    assert_eq!(agg.snapshot().sampler_totals().offered, offered);
}
