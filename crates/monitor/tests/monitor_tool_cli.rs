//! End-to-end pins for the `monitor_tool` binary: a live `serve`
//! process (event-loop default and `--threaded`) fed by real `forward`
//! processes over Unix sockets and TCP, with hostile clients injected —
//! the shell-level demo of the wire-boundary merge-equivalence
//! guarantee, and the regression test for "one bad session used to
//! kill the aggregator".

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const SEED: &str = "7";
const DURATION: &str = "120";

fn tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_monitor_tool"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sst_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// `run --shards 1` — the single-process reference snapshot.
fn reference_snapshot(dir: &Path) -> Vec<u8> {
    let ref_path = dir.join("ref.ssm");
    let status = tool()
        .args([
            "run",
            "--seed",
            SEED,
            "--duration",
            DURATION,
            "--shards",
            "1",
        ])
        .arg("--snapshot")
        .arg(&ref_path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn run");
    assert!(status.success(), "reference run failed");
    std::fs::read(&ref_path).expect("reference bytes")
}

fn spawn_forward(target: &str, part: u64, n_parts: u64, tcp: bool) -> Child {
    let mut cmd = tool();
    cmd.args(["forward", target]);
    if tcp {
        cmd.arg("--tcp");
    }
    cmd.args([
        "--partition",
        &format!("{part}/{n_parts}"),
        "--seed",
        SEED,
        "--duration",
        DURATION,
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    cmd.spawn().expect("spawn forward")
}

/// Reads serve's stderr until the TCP listener line appears, returning
/// the bound address and a thread draining the rest into a String.
fn tcp_addr_from_stderr(
    stderr: std::process::ChildStderr,
) -> (String, std::thread::JoinHandle<String>) {
    let mut reader = BufReader::new(stderr);
    let mut addr = None;
    let mut seen = String::new();
    for _ in 0..64 {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("serve stderr") == 0 {
            break;
        }
        seen.push_str(&line);
        if let Some(rest) = line.trim().strip_prefix("listening on tcp ") {
            addr = Some(rest.to_string());
            break;
        }
    }
    let addr = addr.unwrap_or_else(|| panic!("no tcp listener line in serve stderr:\n{seen}"));
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("drain stderr");
        seen + &rest
    });
    (addr, drain)
}

#[test]
fn event_loop_serve_with_mixed_transports_and_hostile_clients_matches_run() {
    let dir = scratch_dir("evloop");
    let reference = reference_snapshot(&dir);
    let sock = dir.join("agg.sock");
    let out = dir.join("out.ssm");

    let mut serve = tool()
        .arg("serve")
        .arg(&sock)
        .args(["--tcp", "127.0.0.1:0", "--collectors", "3"])
        .args(["--accept-timeout", "120"])
        .arg("--out")
        .arg(&out)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let (tcp_addr, stderr_thread) = tcp_addr_from_stderr(serve.stderr.take().expect("stderr"));

    // Hostile clients first, fully finished before any forwarder: a
    // garbage UDS session (this used to kill the whole aggregator), a
    // mid-frame TCP cut, and connect-and-close probes on both
    // transports. None may consume a collector slot.
    {
        let mut s = UnixStream::connect(&sock).expect("connect uds");
        s.write_all(b"NOT A FRAME AT ALL").expect("garbage write");
        drop(s);
        let mut s = TcpStream::connect(&tcp_addr).expect("connect tcp");
        // A valid v2 header cut inside its declared payload.
        s.write_all(b"SSWF\x02\x01\xff\x00\x00\x00partial")
            .expect("torn write");
        drop(s);
        drop(UnixStream::connect(&sock).expect("probe uds"));
        drop(TcpStream::connect(&tcp_addr).expect("probe tcp"));
    }

    // Three healthy forwarders: two over UDS, one over TCP.
    let sock_str = sock.to_str().expect("utf8 path");
    let mut forwards = vec![
        spawn_forward(sock_str, 0, 3, false),
        spawn_forward(sock_str, 1, 3, false),
        spawn_forward(&tcp_addr, 2, 3, true),
    ];
    for f in &mut forwards {
        assert!(f.wait().expect("forward exit").success(), "forward failed");
    }
    let status = serve.wait().expect("serve exit");
    let stderr = stderr_thread.join().expect("stderr thread");
    assert!(
        status.success(),
        "serve must survive hostile clients:\n{stderr}"
    );
    assert!(
        stderr.contains("session failed"),
        "hostile sessions should be logged:\n{stderr}"
    );

    let assembled = std::fs::read(&out).expect("assembled bytes");
    assert_eq!(
        assembled, reference,
        "event-loop serve + 3 forwards must reproduce run --shards 1 byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_loop_serve_with_report_sessions_matches_run() {
    let dir = scratch_dir("multiloop");
    let reference = reference_snapshot(&dir);

    // One pass per (backend, loop-count) corner of the serve matrix;
    // byte-identity to `run --shards 1` must hold at every one.
    for (backend, loops) in [("poll", "2"), ("epoll", "4")] {
        let sock = dir.join(format!("agg_{backend}_{loops}.sock"));
        let out = dir.join(format!("out_{backend}_{loops}.ssm"));

        let mut serve = tool()
            .arg("serve")
            .arg(&sock)
            .args(["--tcp", "127.0.0.1:0", "--collectors", "4"])
            .args(["--backend", backend, "--loops", loops])
            .args(["--accept-timeout", "120", "--report-sessions"])
            .arg("--out")
            .arg(&out)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn serve");
        let (tcp_addr, stderr_thread) = tcp_addr_from_stderr(serve.stderr.take().expect("stderr"));

        // Hostiles first: garbage on UDS, a torn frame on TCP, probes
        // on both. The admission table and failure isolation must hold
        // regardless of which loop each lands on.
        {
            let mut s = UnixStream::connect(&sock).expect("connect uds");
            s.write_all(b"NOT A FRAME AT ALL").expect("garbage write");
            drop(s);
            let mut s = TcpStream::connect(&tcp_addr).expect("connect tcp");
            s.write_all(b"SSWF\x02\x01\xff\x00\x00\x00partial")
                .expect("torn write");
            drop(s);
            drop(UnixStream::connect(&sock).expect("probe uds"));
            drop(TcpStream::connect(&tcp_addr).expect("probe tcp"));
        }

        // Four healthy forwarders round-robined across the loops: two
        // over UDS, two over TCP.
        let sock_str = sock.to_str().expect("utf8 path");
        let mut forwards = vec![
            spawn_forward(sock_str, 0, 4, false),
            spawn_forward(&tcp_addr, 1, 4, true),
            spawn_forward(sock_str, 2, 4, false),
            spawn_forward(&tcp_addr, 3, 4, true),
        ];
        for f in &mut forwards {
            assert!(f.wait().expect("forward exit").success(), "forward failed");
        }
        let status = serve.wait().expect("serve exit");
        let stderr = stderr_thread.join().expect("stderr thread");
        assert!(
            status.success(),
            "{backend} x{loops}: serve must survive hostile clients:\n{stderr}"
        );
        assert!(
            stderr.contains(&format!("{loops} event loops, {backend}")),
            "{backend} x{loops}: mode line should name the matrix cell:\n{stderr}"
        );
        assert!(
            stderr.contains("session failed"),
            "{backend} x{loops}: hostile sessions should be logged:\n{stderr}"
        );
        assert_eq!(
            stderr.matches("session delivered:").count(),
            4,
            "{backend} x{loops}: --report-sessions prints one line per delivery:\n{stderr}"
        );

        let assembled = std::fs::read(&out).expect("assembled bytes");
        assert_eq!(
            assembled, reference,
            "{backend} x{loops}: multi-loop serve must reproduce run --shards 1 byte-for-byte"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn threaded_serve_survives_a_bad_session_and_matches_run() {
    let dir = scratch_dir("threaded");
    let reference = reference_snapshot(&dir);
    let sock = dir.join("agg.sock");
    let out = dir.join("out.ssm");

    let mut serve = tool()
        .arg("serve")
        .arg(&sock)
        .args(["--threaded", "--collectors", "2"])
        .args(["--accept-timeout", "120"])
        .arg("--out")
        .arg(&out)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    // Wait until the socket exists before connecting.
    for _ in 0..500 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // The original bug: one bad session called die() inside the
    // accept scope, killing the aggregator and every completed
    // session. Now it must be logged and isolated.
    {
        let mut s = UnixStream::connect(&sock).expect("connect uds");
        s.write_all(b"GARBAGE SESSION").expect("garbage write");
        drop(s);
        // And a probe, which must not consume a collector slot.
        drop(UnixStream::connect(&sock).expect("probe uds"));
    }

    let sock_str = sock.to_str().expect("utf8 path");
    let mut forwards = vec![
        spawn_forward(sock_str, 0, 2, false),
        spawn_forward(sock_str, 1, 2, false),
    ];
    for f in &mut forwards {
        assert!(f.wait().expect("forward exit").success(), "forward failed");
    }
    let mut stderr_pipe = serve.stderr.take().expect("stderr");
    let stderr_thread = std::thread::spawn(move || {
        let mut s = String::new();
        stderr_pipe.read_to_string(&mut s).expect("read stderr");
        s
    });
    let status = serve.wait().expect("serve exit");
    let stderr = stderr_thread.join().expect("stderr thread");
    assert!(status.success(), "threaded serve must survive:\n{stderr}");
    assert!(
        stderr.contains("session failed"),
        "the bad session should be logged:\n{stderr}"
    );

    let assembled = std::fs::read(&out).expect("assembled bytes");
    assert_eq!(
        assembled, reference,
        "threaded serve + 2 forwards must reproduce run --shards 1 byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
