//! Ingest layer: shard routing and per-stream sampler state.
//!
//! This is the bottom of the collector stack — it answers exactly one
//! question: *which shard owns a key, and what happens when a point for
//! that key arrives*. Everything above it (eviction, compaction, wire
//! framing, topology) treats the [`ShardSet`] as a deterministic keyed
//! map of live [`StreamState`]s.
//!
//! ## Determinism contract (inherited by every layer above)
//!
//! Every stream (key) lives on exactly one shard
//! (`splitmix(key) mod n_shards`), its sampler is seeded from
//! `(base_seed, key)` only, and its points are processed in arrival
//! order — so per-stream state is independent of the shard count and of
//! whether points arrived one by one or through a parallel batch (the
//! batch partition preserves each stream's sub-order and shards share
//! no state). The engine's merge-equivalence tests pin this bit-for-bit
//! for shard counts N ∈ {1, 2, 8}.

use crate::engine::MonitorConfig;
use crate::summary::StreamSummary;
use rayon::prelude::*;
use sst_core::bss::{BssConfigError, OnlineTuning, ThresholdPolicy};
use sst_core::stream::{
    StreamDecision, StreamSampler, StreamingBss, StreamingSimpleRandom, StreamingStratified,
    StreamingSystematic,
};
use sst_stats::rng::derive_seed;
use std::collections::HashMap;

/// Domain-separation tag for shard routing.
const SHARD_TAG: u64 = 0x5348_4152;

/// Which streaming sampler each stream runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SamplerSpec {
    /// Keep every point (pure monitoring, no thinning).
    TakeAll,
    /// Systematic 1-in-C ([`StreamingSystematic`]).
    Systematic {
        /// Sampling interval C.
        interval: usize,
    },
    /// Stratified random, one per bucket of C ([`StreamingStratified`]).
    Stratified {
        /// Bucket length C.
        interval: usize,
    },
    /// Bernoulli thinning at `rate` ([`StreamingSimpleRandom`]).
    SimpleRandom {
        /// Per-point keep probability.
        rate: f64,
    },
    /// Online-tuned Biased Systematic Sampling ([`StreamingBss`]).
    Bss {
        /// Sampling interval C.
        interval: usize,
        /// Threshold factor ε (the paper uses 1.0).
        epsilon: f64,
        /// Pre-samples before the online threshold activates.
        n_pre: usize,
        /// Extras budget L per triggered interval.
        l: usize,
    },
}

impl SamplerSpec {
    /// Builds the sampler for one stream.
    ///
    /// # Errors
    ///
    /// Propagates the underlying sampler's configuration validation.
    pub fn build(&self, seed: u64) -> Result<Box<dyn StreamSampler + Send>, BssConfigError> {
        Ok(match *self {
            SamplerSpec::TakeAll => Box::new(StreamingSystematic::new(1, seed)?),
            SamplerSpec::Systematic { interval } => {
                Box::new(StreamingSystematic::new(interval, seed)?)
            }
            SamplerSpec::Stratified { interval } => {
                Box::new(StreamingStratified::new(interval, seed)?)
            }
            SamplerSpec::SimpleRandom { rate } => Box::new(StreamingSimpleRandom::new(rate, seed)?),
            SamplerSpec::Bss {
                interval,
                epsilon,
                n_pre,
                l,
            } => Box::new(StreamingBss::new(
                interval,
                ThresholdPolicy::Online(OnlineTuning {
                    epsilon,
                    n_pre,
                    ..OnlineTuning::default()
                }),
                l,
                seed,
            )?),
        })
    }
}

/// One stream's live state: its sampler, the summary of what the
/// sampler kept, and the lifecycle layer's recency mark.
pub(crate) struct StreamState {
    pub(crate) sampler: Box<dyn StreamSampler + Send>,
    pub(crate) summary: StreamSummary,
    /// Engine tick of the stream's most recent point (drives idle and
    /// LRU eviction; ticks are per-point and unique, so recency is a
    /// total order independent of sharding).
    pub(crate) last_touch: u64,
}

/// One shard: the streams routed to it.
#[derive(Default)]
pub(crate) struct Shard {
    pub(crate) streams: HashMap<u64, StreamState>,
}

impl Shard {
    fn offer(&mut self, config: &MonitorConfig, key: u64, value: f64, tick: u64) -> StreamDecision {
        let state = self.streams.entry(key).or_insert_with(|| {
            let seed = derive_seed(config.base_seed, key);
            StreamState {
                sampler: config
                    .sampler
                    .build(seed)
                    .expect("sampler spec validated at engine construction"),
                summary: StreamSummary::new(&config.summary, seed),
                last_touch: tick,
            }
        });
        state.last_touch = tick;
        let decision = state.sampler.offer(value);
        if decision.is_kept() {
            state.summary.push(value);
        }
        decision
    }
}

/// Points below this batch size are ingested inline — the partition +
/// fan-out bookkeeping costs more than it saves.
const PAR_BATCH_MIN: usize = 4096;

/// A keyed point with its engine tick: `(key, value, tick)`.
type TickedPoint = (u64, f64, u64);

/// The sharded stream table: routing plus per-stream ingest.
pub(crate) struct ShardSet {
    shards: Vec<Shard>,
}

impl ShardSet {
    /// Creates `n` empty shards.
    pub(crate) fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one shard");
        ShardSet {
            shards: (0..n).map(|_| Shard::default()).collect(),
        }
    }

    /// The shard a key routes to.
    pub(crate) fn shard_index(&self, key: u64) -> usize {
        (derive_seed(SHARD_TAG, key) % self.shards.len() as u64) as usize
    }

    /// Offers one point of stream `key` at engine tick `tick`.
    pub(crate) fn offer(
        &mut self,
        config: &MonitorConfig,
        key: u64,
        value: f64,
        tick: u64,
    ) -> StreamDecision {
        let idx = self.shard_index(key);
        self.shards[idx].offer(config, key, value, tick)
    }

    /// Offers a batch of keyed points (point `i` at tick
    /// `first_tick + i`), fanning the shards across the persistent
    /// worker pool. Exactly equivalent to offering the points one by
    /// one in order: the partition preserves each stream's sub-order
    /// (and hence its final `last_touch`) and shards share no state.
    pub(crate) fn offer_batch(
        &mut self,
        config: &MonitorConfig,
        points: &[(u64, f64)],
        first_tick: u64,
    ) {
        if self.shards.len() == 1 || points.len() < PAR_BATCH_MIN {
            for (i, &(k, v)) in points.iter().enumerate() {
                self.offer(config, k, v, first_tick + i as u64);
            }
            return;
        }
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<TickedPoint>> = (0..n).map(|_| Vec::new()).collect();
        for (i, &(k, v)) in points.iter().enumerate() {
            per_shard[self.shard_index(k)].push((k, v, first_tick + i as u64));
        }
        let shards = std::mem::take(&mut self.shards);
        let work: Vec<(Shard, Vec<TickedPoint>)> = shards.into_iter().zip(per_shard).collect();
        self.shards = work
            .into_par_iter()
            .map(|(mut shard, pts)| {
                for (k, v, tick) in pts {
                    shard.offer(config, k, v, tick);
                }
                shard
            })
            .collect();
    }

    /// Streams currently tracked.
    pub(crate) fn stream_count(&self) -> usize {
        self.shards.iter().map(|s| s.streams.len()).sum()
    }

    /// The live state of `key`, if tracked.
    pub(crate) fn get(&self, key: u64) -> Option<&StreamState> {
        self.shards[self.shard_index(key)].streams.get(&key)
    }

    /// Removes and returns the live state of `key` (eviction).
    pub(crate) fn remove(&mut self, key: u64) -> Option<StreamState> {
        let idx = self.shard_index(key);
        self.shards[idx].streams.remove(&key)
    }

    /// Iterates every live `(key, state)` in shard-internal order
    /// (callers needing a canonical order sort by key).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &StreamState)> {
        self.shards
            .iter()
            .flat_map(|s| s.streams.iter().map(|(&k, st)| (k, st)))
    }

    /// Mutable iteration for in-place maintenance (live compaction).
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut StreamState)> {
        self.shards
            .iter_mut()
            .flat_map(|s| s.streams.iter_mut().map(|(&k, st)| (k, st)))
    }
}
