//! The sketch tier: fixed-memory summaries for the long-tail keys an
//! engine cannot afford to track exactly.
//!
//! A [`crate::MonitorEngine`] with [`TierConfig::max_exact_keys`] set
//! becomes a **two-tier keyed store**:
//!
//! * **Exact tier** — up to `max_exact_keys` live streams with the full
//!   per-stream state (sampler, moments, reservoir, Hurst cascade, tail
//!   ladder), exactly as before.
//! * **Sketch tier** — every other key shares one fixed-memory
//!   [`SketchTier`]: a [`CountMinSketch`] for per-key volume, a
//!   [`SpaceSaving`] table for heavy-hitter candidates, one aggregate
//!   [`crate::StreamSummary`] absorbing the sketched points in arrival
//!   order, and a [`ProjectionBank`] of sign-projection dyadic cascades
//!   (Fontugne/Abry/Veitch-style) so the tail still feeds the
//!   `OnlineVarianceTime` Hurst machinery.
//!
//! ## Promotion / demotion (deterministic)
//!
//! A key routes to the exact tier while it has a live stream; a new key
//! is admitted exactly when the live table is below `max_exact_keys`
//! (first-sight admission). Beyond the cap a key is sketched until its
//! count-min estimate (plus the arriving point) reaches
//! [`TierConfig::promote_after`]; it is then **promoted** — the coldest
//! exact stream (minimum `(kept count, last touch, key)`) is *demoted*
//! and the hot key takes the freed exact slot from this point on.
//! A demoted stream's final snapshot retires through the lifecycle
//! layer exactly like an eviction (the retained store, or the
//! `Evicted` outbox in transport mode) — **not** into the sketch — so
//! an aggregator holding the stream's last cumulative `Delta` entry
//! merges the final instead of double-counting it; only the key's
//! *future* points are sketched. Every step depends only on the
//! arrival order and seed-derived hashes, so tiered snapshots stay
//! bit-for-bit identical across shard counts.
//!
//! ## What stays exact
//!
//! Totals are sacred, exactly as in [`Compactable`]: the tier counts
//! every absorbed point in its own sampler counters and aggregate
//! summary, and demotion retires — never drops — a stream's counters.
//! `offered`/`kept` totals, moment counts, and tail ladders of the
//! whole engine are identical to an all-exact run; only *per-key*
//! attribution of tail keys is approximate (count-min overestimates).

use crate::engine::{MonitorConfig, StreamEntry};
use crate::summary::{StreamSummary, SummarySnapshot};
use sst_core::sketch::{CountMinSketch, SpaceSaving};
use sst_core::stream::SamplerSnapshot;
use sst_core::summary::{Compactable, MergeableSummary};
use sst_hurst::ProjectionBank;
use sst_stats::rng::derive_seed;
use std::collections::BTreeMap;

/// Domain-separation tag: the tier's root seed.
const SKETCH_TAG: u64 = 0x534b_4554; // "SKET"
/// Child-seed index for the aggregate summary's reservoir.
const AGG_SEED: u64 = 1;
/// Child-seed index for the projection bank.
const PROJ_SEED: u64 = 2;
/// Sign-projection cascades in the bank.
const PROJECTIONS: usize = 4;
/// Count-min rows.
const CM_DEPTH: usize = 4;

/// Two-tier store configuration. The default (`max_exact_keys: None`)
/// disables the sketch tier entirely — the engine behaves bit-for-bit
/// as an all-exact engine.
#[derive(Clone, Debug, PartialEq)]
pub struct TierConfig {
    /// Live exact streams cap; `None` disables tiering.
    pub max_exact_keys: Option<usize>,
    /// Byte budget for the sketch tier's fixed structures (count-min
    /// cells take ~3/4, the SpaceSaving table the rest).
    pub sketch_bytes: usize,
    /// Count-min estimate at which a sketched key is promoted to the
    /// exact tier (demoting the coldest exact stream).
    pub promote_after: u64,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            max_exact_keys: None,
            sketch_bytes: 1 << 18,
            promote_after: 128,
        }
    }
}

impl TierConfig {
    /// True when the sketch tier is active.
    pub fn enabled(&self) -> bool {
        self.max_exact_keys.is_some()
    }
}

/// Point-in-time tier counters, for `monitor_tool info` and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Live exact streams.
    pub exact_keys: usize,
    /// Linear-counting estimate of distinct sketched keys.
    pub sketched_keys: u64,
    /// Keys promoted from the sketch tier into the exact tier.
    pub promotions: u64,
    /// Exact streams demoted into the sketch aggregate.
    pub demotions: u64,
    /// Approximate bytes held by the sketch tier.
    pub sketch_state_bytes: usize,
}

/// Live sketch-tier state owned by a [`crate::MonitorEngine`].
pub(crate) struct SketchTier {
    max_exact: usize,
    promote_after: u64,
    /// Per-key point counts (promotion driver) — integer cells, so
    /// state is identical however the stream was sharded.
    cm: CountMinSketch,
    /// Heavy-hitter candidate table.
    heavy: SpaceSaving,
    /// Counters of points absorbed by the sketch tier.
    sampler: SamplerSnapshot,
    /// Aggregate summary of sketched points, pushed in arrival order.
    summary: StreamSummary,
    /// Sign-projection Hurst cascades over the sketched tail.
    projections: ProjectionBank,
    promotions: u64,
    demotions: u64,
}

impl SketchTier {
    /// Builds the tier from an enabled config.
    ///
    /// # Panics
    ///
    /// Panics when `config.tier.max_exact_keys` is `None`.
    pub(crate) fn new(config: &MonitorConfig) -> Self {
        let tc = &config.tier;
        let max_exact = tc.max_exact_keys.expect("sketch tier enabled");
        let seed = derive_seed(config.base_seed, SKETCH_TAG);
        let cm_budget = (tc.sketch_bytes.saturating_mul(3) / 4).max(4096);
        // (key, count, err) + the two index entries ≈ 88 bytes/slot.
        let heavy_slots = (tc.sketch_bytes / 4 / 88).max(16);
        SketchTier {
            max_exact,
            promote_after: tc.promote_after.max(2),
            cm: CountMinSketch::with_budget(cm_budget, CM_DEPTH, seed),
            heavy: SpaceSaving::new(heavy_slots),
            sampler: SamplerSnapshot::default(),
            summary: StreamSummary::new(&config.summary, derive_seed(seed, AGG_SEED)),
            projections: ProjectionBank::new(PROJECTIONS, derive_seed(seed, PROJ_SEED)),
            promotions: 0,
            demotions: 0,
        }
    }

    /// The exact-tier live-stream cap.
    pub(crate) fn max_exact(&self) -> usize {
        self.max_exact
    }

    /// Whether the arriving point for an *unadmitted* `key` should
    /// trigger promotion. Two independent signals must agree:
    ///
    /// * the count-min estimate (plus this point) reaches the
    ///   threshold — never under-counts, but hash collisions
    ///   over-count, and
    /// * the SpaceSaving candidate list's *guaranteed* count for the
    ///   key (count minus overestimation error, plus this point) also
    ///   reaches it — a key that truly recurs occupies a slot with low
    ///   error, while a one-shot key riding a count-min collision
    ///   either holds no slot or carries error ≈ count.
    ///
    /// The conjunction keeps count-min's no-false-negative promotion
    /// latency for genuinely hot keys while filtering the collision
    /// promotions that waste exact-tier slots (and force demotions).
    pub(crate) fn would_promote(&self, key: u64) -> bool {
        if self.max_exact == 0 || self.cm.estimate(key).saturating_add(1) < self.promote_after {
            return false;
        }
        let (count, err) = self.heavy.candidate(key).unwrap_or((0, 0));
        count.saturating_sub(err).saturating_add(1) >= self.promote_after
    }

    /// Absorbs one sketched point: exact counters, aggregate summary,
    /// projections, and the per-key frequency structures.
    pub(crate) fn absorb(&mut self, key: u64, value: f64) {
        self.sampler.offered += 1;
        self.sampler.kept += 1;
        self.sampler.inspected += 1;
        self.summary.push(value);
        self.projections.push(key, value);
        self.cm.increment(key, 1);
        self.heavy.offer(key, 1);
    }

    /// Records a demotion (the victim's final retired through the
    /// lifecycle store; see [`crate::MonitorEngine`]).
    pub(crate) fn note_demoted(&mut self) {
        self.demotions += 1;
    }

    /// Records a promotion (the key's future points go exact).
    pub(crate) fn note_promoted(&mut self) {
        self.promotions += 1;
    }

    /// Compacts the tier's variable-size state (the aggregate summary)
    /// toward `budget_bytes`; the fixed sketch structures are already
    /// bounded by [`TierConfig::sketch_bytes`].
    pub(crate) fn compact(&mut self, budget_bytes: usize) {
        self.summary.compact(budget_bytes);
    }

    /// Approximate bytes held by the tier.
    pub(crate) fn estimated_bytes(&self) -> usize {
        self.cm.estimated_bytes()
            + self.heavy.estimated_bytes()
            + self.summary.estimated_bytes()
            + self.projections.estimated_bytes()
            + 64
    }

    /// Point-in-time counters (`exact_keys` is filled by the engine).
    pub(crate) fn stats(&self) -> TierStats {
        TierStats {
            exact_keys: 0,
            sketched_keys: self.cm.distinct_estimate(),
            promotions: self.promotions,
            demotions: self.demotions,
            sketch_state_bytes: self.estimated_bytes(),
        }
    }

    /// The mergeable point-in-time image of the tier.
    pub(crate) fn snapshot(&self) -> SketchSnapshot {
        SketchSnapshot {
            sampler: self.sampler,
            summary: self.summary.snapshot(),
            cm: self.cm.clone(),
            heavy: self.heavy.entries(),
            heavy_capacity: self.heavy.capacity() as u64,
            projections: self.projections.clone(),
            promotions: self.promotions,
            demotions: self.demotions,
        }
    }
}

/// A mergeable point-in-time image of a [`SketchTier`] — what rides in
/// an [`crate::EngineSnapshot`] and across the wire (the `SKT1`
/// trailing section of the snapshot codec).
#[derive(Clone, Debug, PartialEq)]
pub struct SketchSnapshot {
    /// Counters of every point the tier absorbed (plus, for sketches
    /// that absorbed server-side demotions, the folded entry counters).
    pub sampler: SamplerSnapshot,
    /// Aggregate summary of the sketched tail (moments, reservoir,
    /// Hurst cascade, tail ladder) — totals exact.
    pub summary: SummarySnapshot,
    /// Per-key point counts (approximate, never underestimates).
    pub cm: CountMinSketch,
    /// SpaceSaving heavy-hitter candidates `(key, count, err)`,
    /// ascending by key.
    pub heavy: Vec<(u64, u64, u64)>,
    /// Capacity of the SpaceSaving table the entries came from.
    pub heavy_capacity: u64,
    /// Sign-projection Hurst cascades over the sketched tail.
    pub projections: ProjectionBank,
    /// Keys promoted to the exact tier.
    pub promotions: u64,
    /// Exact streams demoted into this sketch.
    pub demotions: u64,
}

impl Default for SketchSnapshot {
    fn default() -> Self {
        SketchSnapshot {
            sampler: SamplerSnapshot::default(),
            summary: SummarySnapshot::default(),
            cm: CountMinSketch::new(CM_DEPTH, 16, 0),
            heavy: Vec::new(),
            heavy_capacity: 0,
            projections: ProjectionBank::new(PROJECTIONS, 0),
            promotions: 0,
            demotions: 0,
        }
    }
}

impl SketchSnapshot {
    /// Linear-counting estimate of distinct sketched keys.
    pub fn distinct_keys(&self) -> u64 {
        self.cm.distinct_estimate()
    }

    /// The `k` heaviest sketched candidates as `(key, count, err)`,
    /// descending by count (key breaks ties — a total order).
    pub fn top_candidates(&self, k: usize) -> Vec<(u64, u64, u64)> {
        let mut ranked = self.heavy.clone();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// The tail's Hurst estimate from the projection cascades (median
    /// over the bank), when estimable.
    pub fn projected_hurst(&self) -> Option<f64> {
        self.projections.estimate().ok().map(|e| e.hurst)
    }

    /// Folds an exact [`StreamEntry`] into the sketch — server-side
    /// demotion (an aggregator bounding its retired store). The entry's
    /// counters and summary merge in full, so totals stay exact; the
    /// count-min cells gain the entry's kept count so the key remains
    /// visible to frequency queries.
    pub fn absorb_entry(&mut self, entry: &StreamEntry) {
        self.sampler.merge_from(&entry.sampler);
        self.summary.merge_from(&entry.summary);
        self.cm.increment(entry.key, entry.summary.moments.count());
        self.demotions += 1;
    }
}

impl MergeableSummary for SketchSnapshot {
    /// Key-less union: counters add, summaries and projection cascades
    /// pool, count-min cells add cell-wise (exact when geometries
    /// match), SpaceSaving entries union-and-truncate. Merging sketches
    /// from engines with the same configuration is deterministic in
    /// the merge order.
    fn merge_from(&mut self, other: &Self) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        self.sampler.merge_from(&other.sampler);
        self.summary.merge_from(&other.summary);
        self.cm.merge_from(&other.cm);
        self.projections.merge_from(&other.projections);
        let cap = self.heavy_capacity.max(other.heavy_capacity).max(4);
        let mut union: BTreeMap<u64, (u64, u64)> =
            self.heavy.iter().map(|&(k, c, e)| (k, (c, e))).collect();
        for &(k, c, e) in &other.heavy {
            let slot = union.entry(k).or_insert((0, 0));
            slot.0 = slot.0.saturating_add(c);
            slot.1 = slot.1.saturating_add(e);
        }
        let mut ranked: Vec<(u64, u64, u64)> =
            union.into_iter().map(|(k, (c, e))| (k, c, e)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(cap as usize);
        ranked.sort_by_key(|&(k, _, _)| k);
        self.heavy = ranked;
        self.heavy_capacity = cap;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
    }

    fn is_empty(&self) -> bool {
        self.sampler.offered == 0
            && self.promotions == 0
            && self.demotions == 0
            && self.cm.is_empty()
    }
}

impl Compactable for SketchSnapshot {
    fn estimated_bytes(&self) -> usize {
        96 + self.cm.estimated_bytes()
            + self.heavy.len() * 24
            + self.summary.estimated_bytes()
            + self.projections.estimated_bytes()
    }

    /// Compacts the aggregate summary toward what remains of
    /// `budget_bytes` after the fixed sketch structures; count-min
    /// cells and projection cascades are left intact (they are already
    /// bounded by configuration). Totals are untouched.
    fn compact(&mut self, budget_bytes: usize) {
        let fixed = self.estimated_bytes() - self.summary.estimated_bytes();
        self.summary.compact(budget_bytes.saturating_sub(fixed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_merge_identity_laws() {
        let mut tier = SketchTier::new(
            &MonitorConfig::default()
                .max_exact_keys(0)
                .sketch_bytes(1 << 14),
        );
        for i in 0..5000u64 {
            tier.absorb(i % 97, (i % 11) as f64 + 1.0);
        }
        let snap = tier.snapshot();
        assert!(!snap.is_empty());
        let mut merged = snap.clone();
        merged.merge_from(&SketchSnapshot::default());
        assert_eq!(merged, snap);
        let mut empty = SketchSnapshot::default();
        empty.merge_from(&snap);
        assert_eq!(empty, snap);
    }

    #[test]
    fn merge_preserves_totals_and_cm_exactness() {
        let config = MonitorConfig::default().max_exact_keys(0).seed(5);
        let mut whole = SketchTier::new(&config);
        let mut a = SketchTier::new(&config);
        let mut b = SketchTier::new(&config);
        for i in 0..20_000u64 {
            let (k, v) = (i % 331, (i % 7) as f64);
            whole.absorb(k, v);
            if k % 2 == 0 {
                a.absorb(k, v);
            } else {
                b.absorb(k, v);
            }
        }
        let mut merged = a.snapshot();
        merged.merge_from(&b.snapshot());
        let whole = whole.snapshot();
        assert_eq!(merged.sampler, whole.sampler);
        // Disjoint key sets: integer cells add to the interleaved run's.
        assert_eq!(merged.cm, whole.cm);
        assert_eq!(
            merged.summary.moments.count(),
            whole.summary.moments.count()
        );
    }

    #[test]
    fn compaction_keeps_totals_sacred() {
        let mut tier = SketchTier::new(
            &MonitorConfig::default()
                .max_exact_keys(0)
                .sketch_bytes(1 << 14),
        );
        for i in 0..50_000u64 {
            tier.absorb(i, 2.0);
        }
        let before = tier.snapshot();
        let mut compacted = before.clone();
        compacted.compact(0);
        assert_eq!(compacted.sampler, before.sampler);
        assert_eq!(
            compacted.summary.moments.count(),
            before.summary.moments.count()
        );
        assert_eq!(compacted.cm, before.cm);
        assert!(compacted.estimated_bytes() <= before.estimated_bytes());
    }
}
