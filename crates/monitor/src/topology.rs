//! Topology layer: N collector processes streaming frames to one
//! aggregator whose merged state is bit-for-bit what a single unsharded
//! engine would hold.
//!
//! A [`Collector`] wraps a [`MonitorEngine`] and speaks the
//! [`crate::wire`] protocol over any `io::Write` (an in-memory buffer,
//! a Unix socket, a file). It tracks the keys touched since the last
//! flush and ships them as cumulative `Delta` frames, plus `Evicted`
//! frames for streams its lifecycle layer retired.
//!
//! An [`Aggregator`] consumes frames from many collectors. Its state is
//! *per collector*: a live view (replaced by `Delta`/`FullSnapshot`
//! entries — they are cumulative) and a retired store (folded from
//! `Evicted` finals). Because each collector's frames are ordered
//! within its own session and state is never shared across collectors,
//! the aggregate is **independent of how sessions interleave** — feed
//! the connections concurrently or one after another, the final
//! snapshot is the same bits.
//!
//! ## The wire-boundary merge-equivalence guarantee
//!
//! For collectors watching disjoint key sets (the deployment shape: a
//! collector per link/tap), [`Aggregator::snapshot`] equals the
//! snapshot of one engine that ingested every collector's points —
//! extending the in-process N ∈ {1, 2, 8} shard pins across the wire.
//! The `topology_wire` integration tests pin this bit-for-bit over both
//! in-memory pipes and Unix sockets.

use crate::engine::{EngineSnapshot, MonitorConfig, MonitorEngine, StreamEntry};
use crate::wire::{read_frames, write_frame, Frame, FrameDecoder, WireError, WIRE_VERSION};
use sst_core::stream::StreamDecision;
use sst_core::summary::{Compactable, MergeableSummary};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::Write;
use std::sync::{Mutex, PoisonError};

/// A monitoring engine that streams its state over the wire protocol.
pub struct Collector {
    id: u64,
    engine: MonitorEngine,
    /// Keys touched since the last flush.
    dirty: BTreeSet<u64>,
    /// Evicted finals drained from the engine but not yet successfully
    /// written — survives a failed flush so totals are never lost.
    pending_evicted: Vec<StreamEntry>,
    hello_sent: bool,
}

/// Target payload per `Delta`/`Evicted` frame, in (estimated) bytes —
/// 16× below [`crate::wire::MAX_FRAME_BYTES`], so even generous
/// estimate error can't reach the wire cap whatever
/// `reservoir_capacity` or ladder the config chose. Splitting is free
/// because entries are cumulative (`Delta`) or per-key finals
/// (`Evicted`).
const TARGET_FRAME_BYTES: usize = 16 << 20;

/// Splits `entries` at [`TARGET_FRAME_BYTES`] boundaries (estimated
/// entry footprint; always at least one entry per chunk).
fn frame_chunks(entries: &[StreamEntry]) -> impl Iterator<Item = &[StreamEntry]> {
    let mut rest = entries;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        let mut bytes = 0usize;
        let mut n = 0usize;
        for e in rest {
            bytes += 64 + e.summary.estimated_bytes();
            if n > 0 && bytes > TARGET_FRAME_BYTES {
                break;
            }
            n += 1;
        }
        let (chunk, tail) = rest.split_at(n);
        rest = tail;
        Some(chunk)
    })
}

impl Collector {
    /// Wraps an engine configuration as a collector with the given id.
    ///
    /// The engine's `retain_evicted` is forced **off**: evicted finals
    /// leave through `Evicted` frames and the aggregator owns them —
    /// holding a second copy here would defeat the memory bound.
    ///
    /// # Panics
    ///
    /// As [`MonitorEngine::new`] (invalid sampler spec or shard count).
    pub fn new(id: u64, config: MonitorConfig) -> Self {
        Collector {
            id,
            engine: MonitorEngine::new(config.retain_evicted(false)),
            dirty: BTreeSet::new(),
            pending_evicted: Vec::new(),
            hello_sent: false,
        }
    }

    /// The collector id (sent in `Hello`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The wrapped engine (snapshots, lifecycle stats).
    pub fn engine(&self) -> &MonitorEngine {
        &self.engine
    }

    /// Offers one point of stream `key`.
    pub fn offer(&mut self, key: u64, value: f64) -> StreamDecision {
        self.dirty.insert(key);
        self.engine.offer(key, value)
    }

    /// Offers a batch of keyed points.
    pub fn offer_batch(&mut self, points: &[(u64, f64)]) {
        self.dirty.extend(points.iter().map(|&(k, _)| k));
        self.engine.offer_batch(points);
    }

    /// Ships everything pending to `w`: a `Hello` on first contact,
    /// `Evicted` frames for streams retired since the last flush, and
    /// `Delta` frames with the cumulative entries of every dirty key
    /// still live (chunked at [`TARGET_FRAME_BYTES`] of estimated
    /// entry footprint so no frame approaches the wire's length cap,
    /// whatever the configured reservoir size). The dirty set is
    /// cleared only once everything was written.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error. Nothing is lost on failure:
    /// undelivered evicted finals are held and re-sent on the next
    /// flush, and the dirty set keeps its keys so their cumulative
    /// entries are rebuilt from the engine then. (A *torn* frame write
    /// corrupts the byte stream itself — callers should drop the
    /// connection and open a fresh session; an at-least-once redelivery
    /// of `Evicted` finals across sessions needs the ack story the
    /// ROADMAP tracks.)
    pub fn flush(&mut self, w: &mut impl Write) -> std::io::Result<()> {
        if !self.hello_sent {
            write_frame(
                w,
                &Frame::Hello {
                    protocol: WIRE_VERSION,
                    collector_id: self.id,
                },
            )?;
            self.hello_sent = true;
        }
        // Evicted keys may sit in the dirty set; their live state is
        // gone (or fresh, in which case the deltas below re-add it).
        self.pending_evicted.extend(self.engine.drain_evicted());
        while !self.pending_evicted.is_empty() {
            let n = frame_chunks(&self.pending_evicted)
                .next()
                .expect("non-empty")
                .len();
            write_frame(w, &Frame::Evicted(self.pending_evicted[..n].to_vec()))?;
            // Drop a chunk only after its frame was fully written.
            self.pending_evicted.drain(..n);
        }
        let entries = self.engine.entries_for(self.dirty.iter().copied());
        for chunk in frame_chunks(&entries) {
            write_frame(
                w,
                &Frame::Delta(EngineSnapshot::from_streams(chunk.to_vec())),
            )?;
        }
        self.dirty.clear();
        Ok(())
    }

    /// Flushes, then closes the session with `Bye`.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn finish(&mut self, w: &mut impl Write) -> std::io::Result<()> {
        self.flush(w)?;
        write_frame(w, &Frame::Bye)
    }
}

/// Per-collector state inside the aggregator.
#[derive(Default)]
struct CollectorState {
    /// Latest cumulative entry per live key (Delta/FullSnapshot
    /// replace).
    live: BTreeMap<u64, StreamEntry>,
    /// Folded evicted finals per key.
    retired: BTreeMap<u64, StreamEntry>,
    done: bool,
}

/// Assembles frames from many collectors into one mergeable state.
#[derive(Default)]
pub struct Aggregator {
    collectors: BTreeMap<u64, CollectorState>,
    /// Optional byte budget applied to incoming summaries.
    compact_budget: Option<usize>,
}

impl Aggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Aggregator::default()
    }

    /// Compacts every incoming summary toward `bytes` (bounds
    /// aggregator memory under huge fan-in; totals stay exact).
    pub fn compact_budget(mut self, bytes: usize) -> Self {
        self.compact_budget = Some(bytes);
        self
    }

    /// Applies one frame from the session of `collector_id` (the id
    /// from that session's `Hello`; transports that already know the
    /// session id may feed data frames directly).
    pub fn feed(&mut self, collector_id: u64, frame: Frame) -> Result<(), WireError> {
        // Validate before touching state: a rejected Hello must not
        // leave a phantom session behind (it would inflate
        // collector_count and wedge all_done forever).
        if let Frame::Hello { protocol, .. } = frame {
            if protocol != WIRE_VERSION {
                return Err(WireError::UnsupportedVersion(protocol));
            }
        }
        let state = self.collectors.entry(collector_id).or_default();
        match frame {
            Frame::Hello { .. } => {
                // A fresh Hello restarts the session's live view (a
                // reconnecting collector re-sends cumulative state);
                // retired finals were real evictions and stay.
                state.live.clear();
                state.done = false;
            }
            Frame::Delta(snap) => {
                for mut e in snap.into_streams() {
                    if let Some(b) = self.compact_budget {
                        e.summary.compact(b);
                    }
                    state.live.insert(e.key, e);
                }
            }
            Frame::FullSnapshot(snap) => {
                state.live.clear();
                for mut e in snap.into_streams() {
                    if let Some(b) = self.compact_budget {
                        e.summary.compact(b);
                    }
                    state.live.insert(e.key, e);
                }
            }
            Frame::Evicted(entries) => {
                for mut e in entries {
                    if let Some(b) = self.compact_budget {
                        e.summary.compact(b);
                    }
                    state.live.remove(&e.key);
                    use std::collections::btree_map::Entry;
                    match state.retired.entry(e.key) {
                        Entry::Vacant(v) => {
                            v.insert(e);
                        }
                        Entry::Occupied(mut o) => {
                            let held = o.get_mut();
                            held.sampler.merge_from(&e.sampler);
                            held.summary.merge_from(&e.summary);
                            if let Some(b) = self.compact_budget {
                                held.summary.compact(b);
                            }
                        }
                    }
                }
            }
            Frame::Bye => state.done = true,
        }
        Ok(())
    }

    /// Runs a whole byte stream (one collector session) into the
    /// aggregator: reads the `Hello`, then feeds every following frame
    /// to that session. Legacy v1 snapshots (no `Hello`) are attributed
    /// to `fallback_id`.
    ///
    /// # Errors
    ///
    /// I/O errors from the reader; protocol errors as `InvalidData`.
    pub fn ingest_stream(
        &mut self,
        r: &mut impl std::io::Read,
        fallback_id: u64,
    ) -> std::io::Result<usize> {
        let mut session = fallback_id;
        let mut first = true;
        let mut result = Ok(());
        let n = read_frames(r, |frame| {
            if result.is_err() {
                return;
            }
            if first {
                if let Frame::Hello { collector_id, .. } = frame {
                    session = collector_id;
                }
                first = false;
            }
            result = self.feed(session, frame);
        })?;
        result.map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(n)
    }

    /// Discards every entry (live *and* retired) fed under
    /// `collector_id`, as if that session had never connected.
    ///
    /// Transports call this when a session fails mid-stream — a
    /// half-delivered cumulative view must not leak into the assembled
    /// snapshot, so the guarantee stays "the snapshot is exactly the
    /// completed sessions". Retired finals the failed session delivered
    /// are lost with it; redelivering them on reconnect needs the
    /// ack story the ROADMAP tracks. (Sessions are trusted to use
    /// distinct ids — a session that claims another's id already stomps
    /// its live view at `Hello` time.)
    pub fn remove_collector(&mut self, collector_id: u64) {
        self.collectors.remove(&collector_id);
    }

    /// Collector sessions seen so far.
    pub fn collector_count(&self) -> usize {
        self.collectors.len()
    }

    /// `true` once every known session has sent `Bye`.
    pub fn all_done(&self) -> bool {
        !self.collectors.is_empty() && self.collectors.values().all(|c| c.done)
    }

    /// The assembled snapshot: for every collector (ascending id),
    /// retired finals then live entries, canonically merged. For
    /// disjoint collectors this is bit-for-bit the single-engine
    /// snapshot ([`MonitorEngine::full_snapshot`] semantics).
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut entries: Vec<StreamEntry> = Vec::new();
        for state in self.collectors.values() {
            entries.extend(state.retired.values().cloned());
            entries.extend(state.live.values().cloned());
        }
        EngineSnapshot::from_streams(entries)
    }

    /// Approximate bytes held across all per-collector state.
    pub fn estimated_state_bytes(&self) -> usize {
        self.collectors
            .values()
            .flat_map(|c| c.live.values().chain(c.retired.values()))
            .map(|e| 64 + e.summary.estimated_bytes())
            .sum()
    }
}

/// Who holds a collector id in the admission registry.
enum IdOwner {
    /// An open session (by its transport-assigned token) is feeding
    /// under this id.
    Open(u64),
    /// A completed session delivered this id's state; nobody may claim
    /// it again within this serve run (a late "reconnect" after a
    /// clean `Bye` is indistinguishable from a spoof).
    Completed,
}

/// Collector-id admission table shared by every serve loop of one run.
///
/// An id already owned by another *open* session, or delivered by a
/// *completed* one, cannot be claimed again — a spoofed `Hello` is
/// rejected before it can reset the real collector's live view. Ids
/// free up again when their session fails, so a collector that crashed
/// mid-stream can reconnect and resend its cumulative state.
///
/// The table is its own type (rather than event-loop-private state, as
/// it originally was) because under multi-loop serving
/// ([`crate::transport::MultiLoopServer`]) sessions land on different
/// loops: admission must be global or a spoofer could dodge it by
/// connecting until the dispatcher hands it a different loop than its
/// victim. It is a small `Mutex`ed map, consulted only on the *first*
/// frame a session sends under each id (the per-session
/// [`SessionDriver`] caches ids it already fed), so cross-loop
/// contention is a handful of lock acquisitions per session, not per
/// frame.
#[derive(Default)]
pub struct AdmissionRegistry {
    owners: Mutex<BTreeMap<u64, IdOwner>>,
}

impl AdmissionRegistry {
    /// An empty registry (wrap it in an `Arc` to share across loops).
    pub fn new() -> Self {
        AdmissionRegistry::default()
    }

    /// Recovers the map even if a panicking loop thread poisoned the
    /// lock: the table holds only small plain data, never mid-mutation
    /// invariants.
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, IdOwner>> {
        self.owners.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Claims `id` on behalf of the session `token`. `true` when the
    /// id is free or already held by this very session; `false` when
    /// another open session owns it or a completed session delivered
    /// it — the caller must then fail the claiming session *before*
    /// the frame touches any aggregator.
    pub fn admit(&self, id: u64, token: u64) -> bool {
        let mut owners = self.lock();
        match owners.get(&id) {
            None => {
                owners.insert(id, IdOwner::Open(token));
                true
            }
            Some(IdOwner::Open(t)) => *t == token,
            Some(IdOwner::Completed) => false,
        }
    }

    /// Marks every id in `ids` as delivered by a completed session:
    /// within this run a later claimant would be a spoof.
    pub fn complete(&self, ids: impl Iterator<Item = u64>) {
        let mut owners = self.lock();
        for id in ids {
            owners.insert(id, IdOwner::Completed);
        }
    }

    /// Frees every id the (failed) session `token` held open, so the
    /// real collector can reconnect and resend cumulative state.
    pub fn release(&self, token: u64) {
        self.lock()
            .retain(|_, o| !matches!(o, IdOwner::Open(t) if *t == token));
    }
}

/// The per-loop aggregators of a multi-loop serve, assembled at
/// snapshot/report time.
///
/// Each serve loop owns a private [`Aggregator`] that its sessions feed
/// lock-free; nothing is shared while bytes flow. Only when the run is
/// over are the per-loop states combined — via
/// [`EngineSnapshot::merge`], whose canonical key-wise form makes the
/// assembled snapshot independent of *which* loop each collector
/// happened to land on. For collectors watching disjoint key sets the
/// result is byte-identical to one unsharded engine (and to a
/// single-loop serve of the same sessions), whatever the dispatcher's
/// placement — pinned by `tests/transport_live.rs` for 1, 2 and 4
/// loops on both readiness backends.
#[derive(Default)]
pub struct AggregatorSet {
    aggs: Vec<Aggregator>,
}

impl AggregatorSet {
    /// Wraps the per-loop aggregators a finished multi-loop run left.
    pub fn new(aggs: Vec<Aggregator>) -> Self {
        AggregatorSet { aggs }
    }

    /// How many per-loop aggregators the set holds.
    pub fn loops(&self) -> usize {
        self.aggs.len()
    }

    /// Completed collector sessions across all loops.
    pub fn collector_count(&self) -> usize {
        self.aggs.iter().map(Aggregator::collector_count).sum()
    }

    /// Approximate bytes held across every loop's per-collector state.
    pub fn estimated_state_bytes(&self) -> usize {
        self.aggs
            .iter()
            .map(Aggregator::estimated_state_bytes)
            .sum()
    }

    /// The assembled snapshot: every loop's snapshot merged
    /// canonically (the empty snapshot is the merge identity, so idle
    /// loops contribute nothing).
    pub fn snapshot(&self) -> EngineSnapshot {
        self.aggs
            .iter()
            .map(Aggregator::snapshot)
            .fold(EngineSnapshot::default(), EngineSnapshot::merge)
    }
}

/// Why a collector session failed.
#[derive(Debug)]
pub enum SessionError {
    /// The byte stream violated the wire protocol (or carried a frame
    /// the aggregator rejected, e.g. an unsupported `Hello` version).
    Wire(WireError),
    /// The connection closed with a partial frame still buffered.
    MidFrameEof,
    /// The session tried to feed under a collector id the transport's
    /// admission policy refused (e.g. an id another session owns).
    IdRejected(u64),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Wire(e) => write!(f, "wire: {e}"),
            SessionError::MidFrameEof => f.write_str("connection closed mid-frame"),
            SessionError::IdRejected(id) => {
                write!(f, "collector id {id} already owned by another session")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// The per-session state machine every transport shares: bytes in,
/// aggregator mutations out.
///
/// A `SessionDriver` owns one connection's [`FrameDecoder`] and session
/// identity. Push bytes as they arrive ([`SessionDriver::push`]), call
/// [`SessionDriver::finish`] at EOF; each completed frame is fed to the
/// [`Aggregator`] under the session's id — the id from the first
/// `Hello`, or `fallback_id` for legacy (Hello-less) `.ssm` streams,
/// whose implicit `FullSnapshot` only decodes once EOF is signalled.
///
/// The driver never touches the aggregator except through
/// [`Aggregator::feed`]/[`Aggregator::remove_collector`], so the same
/// state machine serves the blocking thread-per-connection transport
/// (aggregator behind a mutex, pushed under the lock) and the
/// single-threaded event loop (exclusive aggregator, no lock) — and is
/// unit-testable against in-memory byte slices.
pub struct SessionDriver {
    dec: FrameDecoder,
    session: Option<u64>,
    fallback_id: u64,
    frames: usize,
    /// Every collector id this session fed at least one frame under —
    /// a session that re-`Hello`s under new ids touches several, and
    /// [`SessionDriver::abort`] must roll back all of them.
    fed: BTreeSet<u64>,
}

impl SessionDriver {
    /// A fresh session; data frames arriving before any `Hello` are
    /// attributed to `fallback_id`.
    pub fn new(fallback_id: u64) -> Self {
        SessionDriver {
            dec: FrameDecoder::new(),
            session: None,
            fallback_id,
            frames: 0,
            fed: BTreeSet::new(),
        }
    }

    /// Feeds a chunk of received bytes, applying every frame that
    /// completes. Equivalent to [`SessionDriver::push_admitted`] with
    /// an admit-everything policy — for transports whose peers are
    /// trusted to use distinct ids (in-process pipes, local Unix
    /// sockets).
    ///
    /// # Errors
    ///
    /// [`SessionError::Wire`] on malformed bytes or a rejected frame;
    /// the session is then dead (callers should [`SessionDriver::abort`]
    /// and drop the connection).
    pub fn push(&mut self, bytes: &[u8], agg: &mut Aggregator) -> Result<(), SessionError> {
        self.push_admitted(bytes, agg, &mut |_| true)
    }

    /// As [`SessionDriver::push`], but `admit` is consulted **before**
    /// the first frame under each newly-claimed collector id is
    /// applied — returning `false` fails the session with
    /// [`SessionError::IdRejected`] *before* the frame can touch the
    /// aggregator (a spoofed `Hello` would otherwise clear the real
    /// collector's live view). Network-facing transports use this to
    /// refuse ids already owned by another live or completed session.
    ///
    /// # Errors
    ///
    /// As [`SessionDriver::push`], plus [`SessionError::IdRejected`].
    pub fn push_admitted(
        &mut self,
        bytes: &[u8],
        agg: &mut Aggregator,
        admit: &mut dyn FnMut(u64) -> bool,
    ) -> Result<(), SessionError> {
        self.dec.push(bytes);
        self.drain(agg, admit)
    }

    /// Signals EOF: decodes anything still pending (a legacy snapshot
    /// decodes only now) and verifies the stream ended on a frame
    /// boundary. Admits everything, like [`SessionDriver::push`].
    ///
    /// # Errors
    ///
    /// [`SessionError::MidFrameEof`] if bytes of an incomplete frame
    /// remain; [`SessionError::Wire`] as [`SessionDriver::push`].
    pub fn finish(&mut self, agg: &mut Aggregator) -> Result<(), SessionError> {
        self.finish_admitted(agg, &mut |_| true)
    }

    /// As [`SessionDriver::finish`] with an admission policy (a legacy
    /// stream establishes its fallback id only now, at EOF).
    ///
    /// # Errors
    ///
    /// As [`SessionDriver::finish`], plus [`SessionError::IdRejected`].
    pub fn finish_admitted(
        &mut self,
        agg: &mut Aggregator,
        admit: &mut dyn FnMut(u64) -> bool,
    ) -> Result<(), SessionError> {
        self.dec.finish();
        self.drain(agg, admit)?;
        if self.dec.pending_bytes() != 0 {
            return Err(SessionError::MidFrameEof);
        }
        Ok(())
    }

    /// Rolls the session's contribution back out of the aggregator:
    /// every collector id it fed frames under is removed (no-op if it
    /// never delivered a frame). Call on session failure.
    pub fn abort(&self, agg: &mut Aggregator) {
        for &id in &self.fed {
            agg.remove_collector(id);
        }
    }

    /// Frames successfully fed so far. Transports use `> 0` to tell a
    /// real collector session from a connect-and-probe that must not
    /// consume a collector slot.
    pub fn frames_delivered(&self) -> usize {
        self.frames
    }

    /// The session's established id (`Hello`'s collector id, or the
    /// fallback once a Hello-less data frame arrived).
    pub fn session_id(&self) -> Option<u64> {
        self.session
    }

    /// Every collector id this session has fed frames under (what
    /// [`SessionDriver::abort`] would roll back).
    pub fn fed_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.fed.iter().copied()
    }

    fn drain(
        &mut self,
        agg: &mut Aggregator,
        admit: &mut dyn FnMut(u64) -> bool,
    ) -> Result<(), SessionError> {
        while let Some(frame) = self.dec.next_frame().map_err(SessionError::Wire)? {
            let id = match (&frame, self.session) {
                (Frame::Hello { collector_id, .. }, _) => {
                    self.session = Some(*collector_id);
                    *collector_id
                }
                (_, Some(id)) => id,
                (_, None) => {
                    self.session = Some(self.fallback_id);
                    self.fallback_id
                }
            };
            // Admission runs before the frame is applied: a refused id
            // must leave no trace (not even a `Hello`'s live-view
            // reset).
            if !self.fed.contains(&id) && !admit(id) {
                return Err(SessionError::IdRejected(id));
            }
            agg.feed(id, frame).map_err(SessionError::Wire)?;
            self.frames += 1;
            self.fed.insert(id);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SamplerSpec;

    fn keyed_points(n: usize, n_keys: u64) -> Vec<(u64, f64)> {
        (0..n)
            .map(|i| {
                let key = (i as u64).wrapping_mul(0x9E37_79B9) % n_keys;
                (key, 1.0 + (i % 97) as f64)
            })
            .collect()
    }

    fn config() -> MonitorConfig {
        MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 4 })
            .seed(11)
    }

    #[test]
    fn two_collectors_assemble_to_the_unsharded_bits_over_a_pipe() {
        let points = keyed_points(40_000, 64);
        // Reference: one engine sees everything.
        let mut reference = MonitorEngine::new(config().shards(2));
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        // Two collectors partition the keys; several flushes each.
        let mut pipes = [Vec::new(), Vec::new()];
        let mut collectors = [Collector::new(0, config()), Collector::new(1, config())];
        for (i, chunk) in points.chunks(7000).enumerate() {
            for &(k, v) in chunk {
                collectors[(k % 2) as usize].offer(k, v);
            }
            // Interleave flushes to exercise repeated deltas.
            let c = i % 2;
            collectors[c].flush(&mut pipes[c]).unwrap();
        }
        for c in 0..2 {
            collectors[c].finish(&mut pipes[c]).unwrap();
        }
        let mut agg = Aggregator::new();
        for pipe in &pipes {
            agg.ingest_stream(&mut pipe.as_slice(), 999).unwrap();
        }
        assert!(agg.all_done());
        assert_eq!(agg.collector_count(), 2);
        assert_eq!(agg.snapshot(), reference.snapshot());
    }

    #[test]
    fn interleaving_does_not_change_the_aggregate() {
        let points = keyed_points(20_000, 32);
        let mut pipes = [Vec::new(), Vec::new()];
        let mut collectors = [Collector::new(0, config()), Collector::new(1, config())];
        for chunk in points.chunks(3000) {
            for &(k, v) in chunk {
                collectors[(k % 2) as usize].offer(k, v);
            }
            for c in 0..2 {
                collectors[c].flush(&mut pipes[c]).unwrap();
            }
        }
        for c in 0..2 {
            collectors[c].finish(&mut pipes[c]).unwrap();
        }
        // Sequential sessions vs frame-interleaved sessions.
        let mut seq = Aggregator::new();
        seq.ingest_stream(&mut pipes[0].as_slice(), 0).unwrap();
        seq.ingest_stream(&mut pipes[1].as_slice(), 1).unwrap();
        let mut interleaved = Aggregator::new();
        let decoded: Vec<Vec<Frame>> = pipes
            .iter()
            .map(|p| crate::wire::decode_frames(p).unwrap())
            .collect();
        let max = decoded[0].len().max(decoded[1].len());
        for i in 0..max {
            for (c, frames) in decoded.iter().enumerate() {
                if let Some(f) = frames.get(i) {
                    interleaved.feed(c as u64, f.clone()).unwrap();
                }
            }
        }
        assert_eq!(seq.snapshot(), interleaved.snapshot());
    }

    #[test]
    fn hello_version_mismatch_rejected() {
        let mut agg = Aggregator::new();
        let err = agg.feed(
            0,
            Frame::Hello {
                protocol: 77,
                collector_id: 0,
            },
        );
        assert_eq!(err, Err(WireError::UnsupportedVersion(77)));
    }

    #[test]
    fn session_driver_replays_a_collector_pipe_chunk_by_chunk() {
        let mut collector = Collector::new(5, config());
        collector.offer_batch(&keyed_points(8000, 16));
        let mut pipe = Vec::new();
        collector.finish(&mut pipe).unwrap();
        // Reference: the whole-stream ingest path.
        let mut want = Aggregator::new();
        want.ingest_stream(&mut pipe.as_slice(), 99).unwrap();
        // Driver: awkward chunk sizes, EOF at the end.
        for chunk in [1usize, 13, 4096] {
            let mut agg = Aggregator::new();
            let mut driver = SessionDriver::new(99);
            for piece in pipe.chunks(chunk) {
                driver.push(piece, &mut agg).expect("clean stream");
            }
            driver.finish(&mut agg).expect("clean eof");
            assert_eq!(driver.session_id(), Some(5));
            assert!(driver.frames_delivered() >= 2, "hello + data + bye");
            assert_eq!(agg.snapshot(), want.snapshot(), "chunk size {chunk}");
        }
    }

    #[test]
    fn session_driver_attributes_legacy_streams_to_the_fallback_id() {
        let mut engine = MonitorEngine::new(config());
        engine.offer_batch(&keyed_points(3000, 8));
        let v1 = crate::codec::encode_snapshot(&engine.snapshot());
        let mut agg = Aggregator::new();
        let mut driver = SessionDriver::new(777);
        driver.push(&v1, &mut agg).expect("buffering");
        // A legacy snapshot's length is not declared up front: nothing
        // decodes until EOF says the buffer is whole.
        driver.finish(&mut agg).expect("legacy eof");
        assert_eq!(driver.session_id(), Some(777));
        assert_eq!(driver.frames_delivered(), 1);
        assert_eq!(agg.snapshot(), engine.snapshot());
    }

    #[test]
    fn session_driver_rejects_garbage_without_touching_the_aggregator() {
        let mut agg = Aggregator::new();
        let mut driver = SessionDriver::new(1);
        assert!(matches!(
            driver.push(b"GARBAGE, NOT A FRAME", &mut agg),
            Err(SessionError::Wire(WireError::BadMagic))
        ));
        assert_eq!(driver.frames_delivered(), 0);
        driver.abort(&mut agg);
        assert_eq!(agg.collector_count(), 0);
    }

    #[test]
    fn session_driver_mid_frame_eof_aborts_cleanly() {
        // A session that dies mid-frame must report the failure and be
        // removable, leaving the aggregator as if it never connected.
        let mut collector = Collector::new(8, config());
        collector.offer_batch(&keyed_points(5000, 8));
        let mut pipe = Vec::new();
        collector.finish(&mut pipe).unwrap();
        let mut agg = Aggregator::new();
        let mut driver = SessionDriver::new(1);
        // Cut inside the final frame: earlier frames land, the cut one
        // doesn't.
        driver
            .push(&pipe[..pipe.len() - 3], &mut agg)
            .expect("whole frames are fine");
        assert!(driver.frames_delivered() > 0);
        assert!(matches!(
            driver.finish(&mut agg),
            Err(SessionError::MidFrameEof)
        ));
        assert_eq!(agg.collector_count(), 1, "partial frames were fed");
        driver.abort(&mut agg);
        assert_eq!(agg.collector_count(), 0, "abort rolls the session back");
    }

    #[test]
    fn session_driver_abort_rolls_back_every_id_it_fed() {
        // One connection re-Helloing under a second id before dying:
        // abort must remove *both* ids' state, not just the latest.
        let mut engine = MonitorEngine::new(config());
        engine.offer_batch(&keyed_points(2000, 4));
        let snap = engine.snapshot();
        let mut bytes = Vec::new();
        for f in [
            Frame::Hello {
                protocol: WIRE_VERSION,
                collector_id: 10,
            },
            Frame::Delta(snap.clone()),
            Frame::Hello {
                protocol: WIRE_VERSION,
                collector_id: 11,
            },
            Frame::Delta(snap),
        ] {
            bytes.extend_from_slice(&crate::wire::encode_frame(&f));
        }
        let mut agg = Aggregator::new();
        let mut driver = SessionDriver::new(1);
        driver.push(&bytes, &mut agg).expect("valid frames");
        assert_eq!(agg.collector_count(), 2);
        driver.abort(&mut agg);
        assert_eq!(agg.collector_count(), 0, "both fed ids rolled back");
    }

    #[test]
    fn redelivered_delta_is_idempotent() {
        // Deltas are cumulative: feeding the same one twice must not
        // double-count (replacement, not merge).
        let mut collector = Collector::new(3, config());
        collector.offer_batch(&keyed_points(5000, 8));
        let mut pipe = Vec::new();
        collector.finish(&mut pipe).unwrap();
        let mut once = Aggregator::new();
        once.ingest_stream(&mut pipe.as_slice(), 3).unwrap();
        let mut twice = Aggregator::new();
        twice.ingest_stream(&mut pipe.as_slice(), 3).unwrap();
        twice.ingest_stream(&mut pipe.as_slice(), 3).unwrap();
        assert_eq!(once.snapshot(), twice.snapshot());
    }
}
