//! Topology layer: N collector processes streaming frames to one
//! aggregator whose merged state is bit-for-bit what a single unsharded
//! engine would hold.
//!
//! A [`Collector`] wraps a [`MonitorEngine`] and speaks the
//! [`crate::wire`] protocol over any `io::Write` (an in-memory buffer,
//! a Unix socket, a file). It tracks the keys touched since the last
//! flush and ships them as cumulative `Delta` frames, plus `Evicted`
//! frames for streams its lifecycle layer retired.
//!
//! An [`Aggregator`] consumes frames from many collectors. Its state is
//! *per collector*: a live view (replaced by `Delta`/`FullSnapshot`
//! entries — they are cumulative) and a retired store (folded from
//! `Evicted` finals). Because each collector's frames are ordered
//! within its own session and state is never shared across collectors,
//! the aggregate is **independent of how sessions interleave** — feed
//! the connections concurrently or one after another, the final
//! snapshot is the same bits.
//!
//! ## The wire-boundary merge-equivalence guarantee
//!
//! For collectors watching disjoint key sets (the deployment shape: a
//! collector per link/tap), [`Aggregator::snapshot`] equals the
//! snapshot of one engine that ingested every collector's points —
//! extending the in-process N ∈ {1, 2, 8} shard pins across the wire.
//! The `topology_wire` integration tests pin this bit-for-bit over both
//! in-memory pipes and Unix sockets.

use crate::engine::{EngineSnapshot, MonitorConfig, MonitorEngine, StreamEntry};
use crate::wire::{read_frames, write_frame, Frame, WireError, WIRE_VERSION};
use sst_core::stream::StreamDecision;
use sst_core::summary::{Compactable, MergeableSummary};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;

/// A monitoring engine that streams its state over the wire protocol.
pub struct Collector {
    id: u64,
    engine: MonitorEngine,
    /// Keys touched since the last flush.
    dirty: BTreeSet<u64>,
    /// Evicted finals drained from the engine but not yet successfully
    /// written — survives a failed flush so totals are never lost.
    pending_evicted: Vec<StreamEntry>,
    hello_sent: bool,
}

/// Target payload per `Delta`/`Evicted` frame, in (estimated) bytes —
/// 16× below [`crate::wire::MAX_FRAME_BYTES`], so even generous
/// estimate error can't reach the wire cap whatever
/// `reservoir_capacity` or ladder the config chose. Splitting is free
/// because entries are cumulative (`Delta`) or per-key finals
/// (`Evicted`).
const TARGET_FRAME_BYTES: usize = 16 << 20;

/// Splits `entries` at [`TARGET_FRAME_BYTES`] boundaries (estimated
/// entry footprint; always at least one entry per chunk).
fn frame_chunks(entries: &[StreamEntry]) -> impl Iterator<Item = &[StreamEntry]> {
    let mut rest = entries;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        let mut bytes = 0usize;
        let mut n = 0usize;
        for e in rest {
            bytes += 64 + e.summary.estimated_bytes();
            if n > 0 && bytes > TARGET_FRAME_BYTES {
                break;
            }
            n += 1;
        }
        let (chunk, tail) = rest.split_at(n);
        rest = tail;
        Some(chunk)
    })
}

impl Collector {
    /// Wraps an engine configuration as a collector with the given id.
    ///
    /// The engine's `retain_evicted` is forced **off**: evicted finals
    /// leave through `Evicted` frames and the aggregator owns them —
    /// holding a second copy here would defeat the memory bound.
    ///
    /// # Panics
    ///
    /// As [`MonitorEngine::new`] (invalid sampler spec or shard count).
    pub fn new(id: u64, config: MonitorConfig) -> Self {
        Collector {
            id,
            engine: MonitorEngine::new(config.retain_evicted(false)),
            dirty: BTreeSet::new(),
            pending_evicted: Vec::new(),
            hello_sent: false,
        }
    }

    /// The collector id (sent in `Hello`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The wrapped engine (snapshots, lifecycle stats).
    pub fn engine(&self) -> &MonitorEngine {
        &self.engine
    }

    /// Offers one point of stream `key`.
    pub fn offer(&mut self, key: u64, value: f64) -> StreamDecision {
        self.dirty.insert(key);
        self.engine.offer(key, value)
    }

    /// Offers a batch of keyed points.
    pub fn offer_batch(&mut self, points: &[(u64, f64)]) {
        self.dirty.extend(points.iter().map(|&(k, _)| k));
        self.engine.offer_batch(points);
    }

    /// Ships everything pending to `w`: a `Hello` on first contact,
    /// `Evicted` frames for streams retired since the last flush, and
    /// `Delta` frames with the cumulative entries of every dirty key
    /// still live (chunked at [`TARGET_FRAME_BYTES`] of estimated
    /// entry footprint so no frame approaches the wire's length cap,
    /// whatever the configured reservoir size). The dirty set is
    /// cleared only once everything was written.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error. Nothing is lost on failure:
    /// undelivered evicted finals are held and re-sent on the next
    /// flush, and the dirty set keeps its keys so their cumulative
    /// entries are rebuilt from the engine then. (A *torn* frame write
    /// corrupts the byte stream itself — callers should drop the
    /// connection and open a fresh session; an at-least-once redelivery
    /// of `Evicted` finals across sessions needs the ack story the
    /// ROADMAP tracks.)
    pub fn flush(&mut self, w: &mut impl Write) -> std::io::Result<()> {
        if !self.hello_sent {
            write_frame(
                w,
                &Frame::Hello {
                    protocol: WIRE_VERSION,
                    collector_id: self.id,
                },
            )?;
            self.hello_sent = true;
        }
        // Evicted keys may sit in the dirty set; their live state is
        // gone (or fresh, in which case the deltas below re-add it).
        self.pending_evicted.extend(self.engine.drain_evicted());
        while !self.pending_evicted.is_empty() {
            let n = frame_chunks(&self.pending_evicted)
                .next()
                .expect("non-empty")
                .len();
            write_frame(w, &Frame::Evicted(self.pending_evicted[..n].to_vec()))?;
            // Drop a chunk only after its frame was fully written.
            self.pending_evicted.drain(..n);
        }
        let entries = self.engine.entries_for(self.dirty.iter().copied());
        for chunk in frame_chunks(&entries) {
            write_frame(
                w,
                &Frame::Delta(EngineSnapshot::from_streams(chunk.to_vec())),
            )?;
        }
        self.dirty.clear();
        Ok(())
    }

    /// Flushes, then closes the session with `Bye`.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn finish(&mut self, w: &mut impl Write) -> std::io::Result<()> {
        self.flush(w)?;
        write_frame(w, &Frame::Bye)
    }
}

/// Per-collector state inside the aggregator.
#[derive(Default)]
struct CollectorState {
    /// Latest cumulative entry per live key (Delta/FullSnapshot
    /// replace).
    live: BTreeMap<u64, StreamEntry>,
    /// Folded evicted finals per key.
    retired: BTreeMap<u64, StreamEntry>,
    done: bool,
}

/// Assembles frames from many collectors into one mergeable state.
#[derive(Default)]
pub struct Aggregator {
    collectors: BTreeMap<u64, CollectorState>,
    /// Optional byte budget applied to incoming summaries.
    compact_budget: Option<usize>,
}

impl Aggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Aggregator::default()
    }

    /// Compacts every incoming summary toward `bytes` (bounds
    /// aggregator memory under huge fan-in; totals stay exact).
    pub fn compact_budget(mut self, bytes: usize) -> Self {
        self.compact_budget = Some(bytes);
        self
    }

    /// Applies one frame from the session of `collector_id` (the id
    /// from that session's `Hello`; transports that already know the
    /// session id may feed data frames directly).
    pub fn feed(&mut self, collector_id: u64, frame: Frame) -> Result<(), WireError> {
        // Validate before touching state: a rejected Hello must not
        // leave a phantom session behind (it would inflate
        // collector_count and wedge all_done forever).
        if let Frame::Hello { protocol, .. } = frame {
            if protocol != WIRE_VERSION {
                return Err(WireError::UnsupportedVersion(protocol));
            }
        }
        let state = self.collectors.entry(collector_id).or_default();
        match frame {
            Frame::Hello { .. } => {
                // A fresh Hello restarts the session's live view (a
                // reconnecting collector re-sends cumulative state);
                // retired finals were real evictions and stay.
                state.live.clear();
                state.done = false;
            }
            Frame::Delta(snap) => {
                for mut e in snap.into_streams() {
                    if let Some(b) = self.compact_budget {
                        e.summary.compact(b);
                    }
                    state.live.insert(e.key, e);
                }
            }
            Frame::FullSnapshot(snap) => {
                state.live.clear();
                for mut e in snap.into_streams() {
                    if let Some(b) = self.compact_budget {
                        e.summary.compact(b);
                    }
                    state.live.insert(e.key, e);
                }
            }
            Frame::Evicted(entries) => {
                for mut e in entries {
                    if let Some(b) = self.compact_budget {
                        e.summary.compact(b);
                    }
                    state.live.remove(&e.key);
                    use std::collections::btree_map::Entry;
                    match state.retired.entry(e.key) {
                        Entry::Vacant(v) => {
                            v.insert(e);
                        }
                        Entry::Occupied(mut o) => {
                            let held = o.get_mut();
                            held.sampler.merge_from(&e.sampler);
                            held.summary.merge_from(&e.summary);
                            if let Some(b) = self.compact_budget {
                                held.summary.compact(b);
                            }
                        }
                    }
                }
            }
            Frame::Bye => state.done = true,
        }
        Ok(())
    }

    /// Runs a whole byte stream (one collector session) into the
    /// aggregator: reads the `Hello`, then feeds every following frame
    /// to that session. Legacy v1 snapshots (no `Hello`) are attributed
    /// to `fallback_id`.
    ///
    /// # Errors
    ///
    /// I/O errors from the reader; protocol errors as `InvalidData`.
    pub fn ingest_stream(
        &mut self,
        r: &mut impl std::io::Read,
        fallback_id: u64,
    ) -> std::io::Result<usize> {
        let mut session = fallback_id;
        let mut first = true;
        let mut result = Ok(());
        let n = read_frames(r, |frame| {
            if result.is_err() {
                return;
            }
            if first {
                if let Frame::Hello { collector_id, .. } = frame {
                    session = collector_id;
                }
                first = false;
            }
            result = self.feed(session, frame);
        })?;
        result.map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(n)
    }

    /// Collector sessions seen so far.
    pub fn collector_count(&self) -> usize {
        self.collectors.len()
    }

    /// `true` once every known session has sent `Bye`.
    pub fn all_done(&self) -> bool {
        !self.collectors.is_empty() && self.collectors.values().all(|c| c.done)
    }

    /// The assembled snapshot: for every collector (ascending id),
    /// retired finals then live entries, canonically merged. For
    /// disjoint collectors this is bit-for-bit the single-engine
    /// snapshot ([`MonitorEngine::full_snapshot`] semantics).
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut entries: Vec<StreamEntry> = Vec::new();
        for state in self.collectors.values() {
            entries.extend(state.retired.values().cloned());
            entries.extend(state.live.values().cloned());
        }
        EngineSnapshot::from_streams(entries)
    }

    /// Approximate bytes held across all per-collector state.
    pub fn estimated_state_bytes(&self) -> usize {
        self.collectors
            .values()
            .flat_map(|c| c.live.values().chain(c.retired.values()))
            .map(|e| 64 + e.summary.estimated_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SamplerSpec;

    fn keyed_points(n: usize, n_keys: u64) -> Vec<(u64, f64)> {
        (0..n)
            .map(|i| {
                let key = (i as u64).wrapping_mul(0x9E37_79B9) % n_keys;
                (key, 1.0 + (i % 97) as f64)
            })
            .collect()
    }

    fn config() -> MonitorConfig {
        MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 4 })
            .seed(11)
    }

    #[test]
    fn two_collectors_assemble_to_the_unsharded_bits_over_a_pipe() {
        let points = keyed_points(40_000, 64);
        // Reference: one engine sees everything.
        let mut reference = MonitorEngine::new(config().shards(2));
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        // Two collectors partition the keys; several flushes each.
        let mut pipes = [Vec::new(), Vec::new()];
        let mut collectors = [Collector::new(0, config()), Collector::new(1, config())];
        for (i, chunk) in points.chunks(7000).enumerate() {
            for &(k, v) in chunk {
                collectors[(k % 2) as usize].offer(k, v);
            }
            // Interleave flushes to exercise repeated deltas.
            let c = i % 2;
            collectors[c].flush(&mut pipes[c]).unwrap();
        }
        for c in 0..2 {
            collectors[c].finish(&mut pipes[c]).unwrap();
        }
        let mut agg = Aggregator::new();
        for pipe in &pipes {
            agg.ingest_stream(&mut pipe.as_slice(), 999).unwrap();
        }
        assert!(agg.all_done());
        assert_eq!(agg.collector_count(), 2);
        assert_eq!(agg.snapshot(), reference.snapshot());
    }

    #[test]
    fn interleaving_does_not_change_the_aggregate() {
        let points = keyed_points(20_000, 32);
        let mut pipes = [Vec::new(), Vec::new()];
        let mut collectors = [Collector::new(0, config()), Collector::new(1, config())];
        for chunk in points.chunks(3000) {
            for &(k, v) in chunk {
                collectors[(k % 2) as usize].offer(k, v);
            }
            for c in 0..2 {
                collectors[c].flush(&mut pipes[c]).unwrap();
            }
        }
        for c in 0..2 {
            collectors[c].finish(&mut pipes[c]).unwrap();
        }
        // Sequential sessions vs frame-interleaved sessions.
        let mut seq = Aggregator::new();
        seq.ingest_stream(&mut pipes[0].as_slice(), 0).unwrap();
        seq.ingest_stream(&mut pipes[1].as_slice(), 1).unwrap();
        let mut interleaved = Aggregator::new();
        let decoded: Vec<Vec<Frame>> = pipes
            .iter()
            .map(|p| crate::wire::decode_frames(p).unwrap())
            .collect();
        let max = decoded[0].len().max(decoded[1].len());
        for i in 0..max {
            for (c, frames) in decoded.iter().enumerate() {
                if let Some(f) = frames.get(i) {
                    interleaved.feed(c as u64, f.clone()).unwrap();
                }
            }
        }
        assert_eq!(seq.snapshot(), interleaved.snapshot());
    }

    #[test]
    fn hello_version_mismatch_rejected() {
        let mut agg = Aggregator::new();
        let err = agg.feed(
            0,
            Frame::Hello {
                protocol: 77,
                collector_id: 0,
            },
        );
        assert_eq!(err, Err(WireError::UnsupportedVersion(77)));
    }

    #[test]
    fn redelivered_delta_is_idempotent() {
        // Deltas are cumulative: feeding the same one twice must not
        // double-count (replacement, not merge).
        let mut collector = Collector::new(3, config());
        collector.offer_batch(&keyed_points(5000, 8));
        let mut pipe = Vec::new();
        collector.finish(&mut pipe).unwrap();
        let mut once = Aggregator::new();
        once.ingest_stream(&mut pipe.as_slice(), 3).unwrap();
        let mut twice = Aggregator::new();
        twice.ingest_stream(&mut pipe.as_slice(), 3).unwrap();
        twice.ingest_stream(&mut pipe.as_slice(), 3).unwrap();
        assert_eq!(once.snapshot(), twice.snapshot());
    }
}
