//! Topology layer: N collector processes streaming frames to one
//! aggregator whose merged state is bit-for-bit what a single unsharded
//! engine would hold.
//!
//! A [`Collector`] wraps a [`MonitorEngine`] and speaks the
//! [`crate::wire`] protocol over any `io::Write` (an in-memory buffer,
//! a Unix socket, a file). It tracks the keys touched since the last
//! flush and ships them as cumulative `Delta` frames, plus `Evicted`
//! frames for streams its lifecycle layer retired.
//!
//! An [`Aggregator`] consumes frames from many collectors. Its state is
//! *per collector*: a live view (replaced by `Delta`/`FullSnapshot`
//! entries — they are cumulative) and a retired store (folded from
//! `Evicted` finals). Because each collector's frames are ordered
//! within its own session and state is never shared across collectors,
//! the aggregate is **independent of how sessions interleave** — feed
//! the connections concurrently or one after another, the final
//! snapshot is the same bits.
//!
//! A tiered collector ([`crate::TierConfig`]) additionally ships its
//! cumulative sketch-tier image on the last `Delta` of every flush;
//! the aggregator holds the latest image per collector (replace
//! semantics, like the live view) and folds them into its assembled
//! snapshot. The aggregator can also tier *itself*:
//! [`Aggregator::max_exact_keys`] caps each collector's retired store,
//! demoting the smallest finals into a per-collector sketch.
//!
//! ## The wire-boundary merge-equivalence guarantee
//!
//! For collectors watching disjoint key sets (the deployment shape: a
//! collector per link/tap), [`Aggregator::snapshot`] equals the
//! snapshot of one engine that ingested every collector's points —
//! extending the in-process N ∈ {1, 2, 8} shard pins across the wire.
//! The `topology_wire` integration tests pin this bit-for-bit over both
//! in-memory pipes and Unix sockets.

use crate::codec::{encoded_diff_len, encoded_entry_len};
use crate::diff::{apply_diff, diff_entry, StreamDiff};
use crate::engine::{EngineSnapshot, MonitorConfig, MonitorEngine, StreamEntry};
use crate::sketch::SketchSnapshot;
use crate::wire::{
    encode_frame, encode_frame_seq, read_frames, write_frame, Frame, FrameDecoder, HelloResume,
    WireError, WIRE_VERSION, WIRE_VERSION_FRAMED,
};
use bytes::Bytes;
use sst_core::stream::StreamDecision;
use sst_core::summary::{Compactable, MergeableSummary};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::io::Write;
use std::sync::{Mutex, PoisonError};

/// Sequenced-mode (wire v3) state of a [`Collector`]: the unacked
/// replay window and the eviction log behind resumable sessions.
struct SeqState {
    /// Sequence number the next sealed data frame gets.
    next_seq: u64,
    /// Highest sequence the aggregator has acknowledged.
    last_acked: Option<u64>,
    /// Encoded, unacked v3 data frames, oldest first — replayed
    /// verbatim after a reconnect.
    window: VecDeque<(u64, Bytes)>,
    /// Every evicted final shipped this session, tagged with the seq
    /// of the frame that last carried it. `Evicted` finals *merge* at
    /// the aggregator, so a resync must re-send exactly the tail the
    /// aggregator is missing — never blindly re-send everything. Kept
    /// for the session lifetime: that is what lets a `Resync{from: 0}`
    /// after a full aggregator restart rebuild byte-identical totals.
    evicted_log: Vec<(u64, StreamEntry)>,
    /// A `Bye` has been sealed; a resync must re-seal it after the
    /// re-baseline frames.
    bye_sealed: bool,
    /// Last cumulative entry shipped per live key — what the
    /// aggregator's live view holds under the seq watermark, and the
    /// base every wire-v4 `DeltaDiff` is computed against. Rebuilt
    /// from the `FullSnapshot` on resync; evicted keys drop out.
    baseline: BTreeMap<u64, StreamEntry>,
    /// `Resync` round-trips served this session. Each one says the
    /// aggregator's live view diverged from `baseline` (lost frames, a
    /// restart, or server-side compaction rewriting entries under us).
    resyncs: u32,
    /// Ship differential frames where they are smaller. Auto-cleared
    /// past [`RESYNC_DIFF_LIMIT`]: against a peer that keeps diverging
    /// (e.g. an aggregator compacting its live entries), diffs only
    /// buy resync storms — cumulative `Delta`s are then strictly
    /// better.
    diff_enabled: bool,
}

impl SeqState {
    fn new() -> Self {
        SeqState {
            next_seq: 0,
            last_acked: None,
            window: VecDeque::new(),
            evicted_log: Vec::new(),
            bye_sealed: false,
            baseline: BTreeMap::new(),
            resyncs: 0,
            diff_enabled: true,
        }
    }

    fn seal(&mut self, frame: &Frame) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.window.push_back((seq, encode_frame_seq(seq, frame)));
        seq
    }
}

/// A monitoring engine that streams its state over the wire protocol.
pub struct Collector {
    id: u64,
    engine: MonitorEngine,
    /// Keys touched since the last flush.
    dirty: BTreeSet<u64>,
    /// Evicted finals drained from the engine but not yet successfully
    /// written — survives a failed flush so totals are never lost.
    pending_evicted: Vec<StreamEntry>,
    hello_sent: bool,
    /// `Some` in sequenced (wire v3) mode.
    seq: Option<SeqState>,
}

/// Target payload per `Delta`/`Evicted` frame, in (estimated) bytes —
/// 16× below [`crate::wire::MAX_FRAME_BYTES`], so even generous
/// estimate error can't reach the wire cap whatever
/// `reservoir_capacity` or ladder the config chose. Splitting is free
/// because entries are cumulative (`Delta`) or per-key finals
/// (`Evicted`).
const TARGET_FRAME_BYTES: usize = 16 << 20;

/// Resyncs a sequenced session tolerates before concluding the peer
/// can't hold its baseline (most likely a server-side `compact_budget`
/// rewriting live entries between flushes) and dropping back to
/// cumulative `Delta` frames for the rest of the session. One resync
/// is normal after a fault or aggregator restart; repeated ones mean
/// every differential flush costs a full re-baseline — strictly worse
/// than never diffing.
const RESYNC_DIFF_LIMIT: u32 = 2;

/// Splits `entries` at [`TARGET_FRAME_BYTES`] boundaries (estimated
/// entry footprint; always at least one entry per chunk).
fn frame_chunks(entries: &[StreamEntry]) -> impl Iterator<Item = &[StreamEntry]> {
    let mut rest = entries;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        let mut bytes = 0usize;
        let mut n = 0usize;
        for e in rest {
            bytes += 64 + e.summary.estimated_bytes();
            if n > 0 && bytes > TARGET_FRAME_BYTES {
                break;
            }
            n += 1;
        }
        let (chunk, tail) = rest.split_at(n);
        rest = tail;
        Some(chunk)
    })
}

/// Splits `diffs` at [`TARGET_FRAME_BYTES`] boundaries of exact
/// encoded size (always at least one diff per chunk).
fn diff_chunks(diffs: &[StreamDiff]) -> impl Iterator<Item = &[StreamDiff]> {
    let mut rest = diffs;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        let mut bytes = 0usize;
        let mut n = 0usize;
        for d in rest {
            bytes += encoded_diff_len(d);
            if n > 0 && bytes > TARGET_FRAME_BYTES {
                break;
            }
            n += 1;
        }
        let (chunk, tail) = rest.split_at(n);
        rest = tail;
        Some(chunk)
    })
}

impl Collector {
    /// Wraps an engine configuration as a collector with the given id.
    ///
    /// The engine's `retain_evicted` is forced **off**: evicted finals
    /// leave through `Evicted` frames and the aggregator owns them —
    /// holding a second copy here would defeat the memory bound.
    ///
    /// # Panics
    ///
    /// As [`MonitorEngine::new`] (invalid sampler spec or shard count).
    pub fn new(id: u64, config: MonitorConfig) -> Self {
        Collector {
            id,
            engine: MonitorEngine::new(config.retain_evicted(false)),
            dirty: BTreeSet::new(),
            pending_evicted: Vec::new(),
            hello_sent: false,
            seq: None,
        }
    }

    /// As [`Collector::new`], but in **sequenced** (wire v3) mode: data
    /// frames carry sequence numbers, unacked frames are retained in a
    /// replay window, and evicted finals are logged for the session
    /// lifetime so any suffix of the session can be resynced — the
    /// price of surviving aggregator restarts byte-identically.
    ///
    /// Sequenced collectors seal frames with [`Collector::seal_flush`]
    /// / [`Collector::seal_finish`] and a transport-owned writer (e.g.
    /// [`crate::retry::SequencedSender`]) ships the window; the direct
    /// [`Collector::flush`] path is for unsequenced collectors.
    ///
    /// # Panics
    ///
    /// As [`MonitorEngine::new`].
    pub fn new_sequenced(id: u64, config: MonitorConfig) -> Self {
        let mut c = Collector::new(id, config);
        c.seq = Some(SeqState::new());
        c
    }

    /// `true` when this collector speaks the sequenced (v3) protocol.
    pub fn is_sequenced(&self) -> bool {
        self.seq.is_some()
    }

    /// Enables or disables differential (`DeltaDiff`, wire v4) frames
    /// on a sequenced collector; on by default. Diffing trades memory
    /// for bytes: the collector keeps a baseline copy of every live
    /// entry it shipped (roughly doubling its summary memory) to ship
    /// only the parts that moved — ~10× fewer steady-state bytes for
    /// slowly-changing streams. Disable it for memory-bound collectors
    /// or peers known to compact live entries server-side.
    ///
    /// # Panics
    ///
    /// On an unsequenced collector — differential frames need the seq
    /// watermark and resync path.
    pub fn diff_frames(mut self, enabled: bool) -> Self {
        let st = self.seq.as_mut().expect("sequenced collector");
        st.diff_enabled = enabled;
        if !enabled {
            st.baseline.clear();
        }
        self
    }

    /// `Resync` round-trips this sequenced collector has served.
    ///
    /// # Panics
    ///
    /// On an unsequenced collector.
    pub fn resyncs(&self) -> u32 {
        self.seq.as_ref().expect("sequenced collector").resyncs
    }

    /// The collector id (sent in `Hello`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The wrapped engine (snapshots, lifecycle stats).
    pub fn engine(&self) -> &MonitorEngine {
        &self.engine
    }

    /// Offers one point of stream `key`.
    pub fn offer(&mut self, key: u64, value: f64) -> StreamDecision {
        self.dirty.insert(key);
        self.engine.offer(key, value)
    }

    /// Offers a batch of keyed points.
    pub fn offer_batch(&mut self, points: &[(u64, f64)]) {
        self.dirty.extend(points.iter().map(|&(k, _)| k));
        self.engine.offer_batch(points);
    }

    /// Ships everything pending to `w`: a `Hello` on first contact,
    /// `Evicted` frames for streams retired since the last flush, and
    /// `Delta` frames with the cumulative entries of every dirty key
    /// still live (chunked at [`TARGET_FRAME_BYTES`] of estimated
    /// entry footprint so no frame approaches the wire's length cap,
    /// whatever the configured reservoir size). The dirty set is
    /// cleared only once everything was written.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error. Nothing is lost on failure:
    /// undelivered evicted finals are held and re-sent on the next
    /// flush, and the dirty set keeps its keys so their cumulative
    /// entries are rebuilt from the engine then. (A *torn* frame write
    /// corrupts the byte stream itself — callers should drop the
    /// connection and open a fresh session; an at-least-once redelivery
    /// of `Evicted` finals across sessions needs the ack story the
    /// ROADMAP tracks.)
    pub fn flush(&mut self, w: &mut impl Write) -> std::io::Result<()> {
        assert!(
            self.seq.is_none(),
            "sequenced collectors seal frames (seal_flush) instead of writing directly"
        );
        if !self.hello_sent {
            write_frame(
                w,
                &Frame::Hello {
                    protocol: WIRE_VERSION_FRAMED,
                    collector_id: self.id,
                    resume: None,
                },
            )?;
            self.hello_sent = true;
        }
        // Evicted keys may sit in the dirty set; their live state is
        // gone (or fresh, in which case the deltas below re-add it).
        self.pending_evicted.extend(self.engine.drain_evicted());
        while !self.pending_evicted.is_empty() {
            let n = frame_chunks(&self.pending_evicted)
                .next()
                .expect("non-empty")
                .len();
            write_frame(w, &Frame::Evicted(self.pending_evicted[..n].to_vec()))?;
            // Drop a chunk only after its frame was fully written.
            self.pending_evicted.drain(..n);
        }
        let entries = self.engine.entries_for(self.dirty.iter().copied());
        // A tiered engine's cumulative sketch image rides the *last*
        // Delta of each flush (replace semantics at the aggregator); a
        // flush with no dirty entries ships it on an empty Delta.
        let mut sketch = self.engine.sketch_snapshot();
        let chunks: Vec<&[StreamEntry]> = frame_chunks(&entries).collect();
        let last = chunks.len().saturating_sub(1);
        for (i, chunk) in chunks.iter().enumerate() {
            let mut snap = EngineSnapshot::from_streams(chunk.to_vec());
            if i == last {
                snap = snap.with_sketch(sketch.take());
            }
            write_frame(w, &Frame::Delta(snap))?;
        }
        if let Some(sk) = sketch {
            let snap = EngineSnapshot::from_streams(Vec::new()).with_sketch(Some(sk));
            write_frame(w, &Frame::Delta(snap))?;
        }
        self.dirty.clear();
        Ok(())
    }

    /// Flushes, then closes the session with `Bye`.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn finish(&mut self, w: &mut impl Write) -> std::io::Result<()> {
        self.flush(w)?;
        write_frame(w, &Frame::Bye)
    }

    // ---- sequenced (v3) sealing API -------------------------------

    fn seq_mut(&mut self) -> &mut SeqState {
        self.seq.as_mut().expect("sequenced collector")
    }

    /// Seals everything pending into the replay window as sequenced
    /// frames: `Evicted` frames for streams retired since the last
    /// seal (each final also tagged into the eviction log), then
    /// `DeltaDiff` frames for dirty keys whose differential encoding
    /// beats the cumulative one, then `Delta` frames for the rest.
    /// Nothing is written — a transport writer ships
    /// [`Collector::unsent_window`] and trims it via
    /// [`Collector::ack`].
    ///
    /// A dirty entry ships as a diff only when all of: diffing is
    /// enabled ([`Collector::diff_frames`]), a baseline for the key
    /// exists (it was shipped before and not evicted since), the pair
    /// is structurally diffable (counters only grew, reservoir/cascade
    /// never shrank), and the encoded diff is strictly smaller than
    /// the encoded cumulative entry. Anything else falls back to the
    /// cumulative `Delta` path — correctness never depends on diffing.
    ///
    /// # Panics
    ///
    /// On an unsequenced collector.
    pub fn seal_flush(&mut self) {
        self.pending_evicted.extend(self.engine.drain_evicted());
        let evicted = std::mem::take(&mut self.pending_evicted);
        // An evicted key's baseline is gone on both sides: the
        // aggregator drops it from the live view, so a reappearing key
        // must re-ship cumulatively.
        {
            let st = self.seq.as_mut().expect("sequenced collector");
            for e in &evicted {
                st.baseline.remove(&e.key);
            }
        }
        for chunk in frame_chunks(&evicted) {
            let frame = Frame::Evicted(chunk.to_vec());
            let st = self.seq.as_mut().expect("sequenced collector");
            let seq = st.seal(&frame);
            st.evicted_log
                .extend(chunk.iter().map(|e| (seq, e.clone())));
        }
        let entries = self.engine.entries_for(self.dirty.iter().copied());
        // Partition dirty entries: diff where the differential encoding
        // wins, cumulative otherwise. Either way the new entry becomes
        // the key's baseline for the next flush.
        let mut diffs: Vec<StreamDiff> = Vec::new();
        let mut full: Vec<StreamEntry> = Vec::new();
        {
            let st = self.seq.as_mut().expect("sequenced collector");
            for e in &entries {
                let diff = if st.diff_enabled {
                    st.baseline
                        .get(&e.key)
                        .and_then(|base| diff_entry(base, e))
                        .filter(|d| encoded_diff_len(d) < encoded_entry_len(e))
                } else {
                    None
                };
                match diff {
                    Some(d) => diffs.push(d),
                    None => full.push(e.clone()),
                }
                if st.diff_enabled {
                    st.baseline.insert(e.key, e.clone());
                }
            }
        }
        for chunk in diff_chunks(&diffs) {
            self.seq_mut().seal(&Frame::DeltaDiff(chunk.to_vec()));
        }
        // As in `flush`: the cumulative sketch image rides the last
        // sealed Delta (or an empty one when nothing ships cumulative)
        // — never a DeltaDiff, whose payload is per-stream only.
        let mut sketch = self.engine.sketch_snapshot();
        let chunks: Vec<&[StreamEntry]> = frame_chunks(&full).collect();
        let last = chunks.len().saturating_sub(1);
        for (i, chunk) in chunks.iter().enumerate() {
            let mut snap = EngineSnapshot::from_streams(chunk.to_vec());
            if i == last {
                snap = snap.with_sketch(sketch.take());
            }
            self.seq_mut().seal(&Frame::Delta(snap));
        }
        if let Some(sk) = sketch {
            let snap = EngineSnapshot::from_streams(Vec::new()).with_sketch(Some(sk));
            self.seq_mut().seal(&Frame::Delta(snap));
        }
        self.dirty.clear();
    }

    /// Seals pending state, then a `Bye`. Idempotent across resyncs:
    /// [`Collector::handle_resync`] re-seals the `Bye` after the
    /// re-baseline frames.
    ///
    /// # Panics
    ///
    /// On an unsequenced collector.
    pub fn seal_finish(&mut self) {
        self.seal_flush();
        self.seq_mut().seal(&Frame::Bye);
        self.seq_mut().bye_sealed = true;
    }

    /// The `Hello` opening a sequenced connection: `Fresh` for a
    /// never-connected session, otherwise `Replay` from the oldest
    /// unacked frame (the aggregator skips any seq it already
    /// applied).
    ///
    /// # Panics
    ///
    /// On an unsequenced collector.
    pub fn hello(&self) -> Frame {
        let st = self.seq.as_ref().expect("sequenced collector");
        let resume = if st.next_seq == 0 && st.last_acked.is_none() {
            HelloResume::Fresh { first_seq: 0 }
        } else {
            HelloResume::Replay {
                first_seq: st.window.front().map_or(st.next_seq, |&(s, _)| s),
            }
        };
        Frame::Hello {
            protocol: WIRE_VERSION,
            collector_id: self.id,
            resume: Some(resume),
        }
    }

    /// Records an aggregator `Ack {through_seq}`: acked frames leave
    /// the replay window.
    ///
    /// # Panics
    ///
    /// On an unsequenced collector.
    pub fn ack(&mut self, through_seq: u64) {
        let st = self.seq_mut();
        while st.window.front().is_some_and(|&(s, _)| s <= through_seq) {
            st.window.pop_front();
        }
        if st.last_acked.is_none_or(|a| a < through_seq) {
            st.last_acked = Some(through_seq);
        }
    }

    /// Answers an aggregator `Resync {from_seq}`: the window is
    /// superseded wholesale by a re-baseline — the evicted finals the
    /// aggregator is missing (log entries tagged at or past
    /// `from_seq`, re-sealed under fresh seqs), then a `FullSnapshot`
    /// of the entire live engine state, then the `Bye` again if one
    /// was already sealed. Returns the `Resync`-mode `Hello` to send
    /// before the rebuilt window.
    ///
    /// # Panics
    ///
    /// On an unsequenced collector.
    pub fn handle_resync(&mut self, from_seq: u64) -> Frame {
        // Everything pending joins the baseline: dirty keys are in the
        // full snapshot, pending evictions seal first.
        self.pending_evicted.extend(self.engine.drain_evicted());
        let pending = std::mem::take(&mut self.pending_evicted);
        let st = self.seq.as_mut().expect("sequenced collector");
        st.window.clear();
        let first_seq = st.next_seq;
        // Re-send the evicted tail the aggregator is missing, fresh
        // seqs, and re-tag the log so a *second* resync stays exact.
        let mut resend: Vec<StreamEntry> = Vec::new();
        let mut kept: Vec<(u64, StreamEntry)> = Vec::new();
        for (tag, entry) in std::mem::take(&mut st.evicted_log) {
            if tag >= from_seq {
                resend.push(entry);
            } else {
                kept.push((tag, entry));
            }
        }
        resend.extend(pending);
        st.evicted_log = kept;
        for chunk in frame_chunks(&resend) {
            let frame = Frame::Evicted(chunk.to_vec());
            let st = self.seq.as_mut().expect("sequenced collector");
            let seq = st.seal(&frame);
            st.evicted_log
                .extend(chunk.iter().map(|e| (seq, e.clone())));
        }
        let snap = self.engine.snapshot();
        self.dirty.clear();
        let st = self.seq_mut();
        // The FullSnapshot re-baselines both sides at once: the
        // aggregator's live view becomes exactly these entries, so
        // they are what future diffs must be computed against. Repeated
        // resyncs mean the peer can't hold a baseline (most likely
        // server-side compaction) — give up on diffing for the session.
        st.resyncs += 1;
        if st.resyncs > RESYNC_DIFF_LIMIT {
            st.diff_enabled = false;
        }
        st.baseline.clear();
        if st.diff_enabled {
            st.baseline
                .extend(snap.streams().iter().map(|e| (e.key, e.clone())));
        }
        st.seal(&Frame::FullSnapshot(snap));
        if st.bye_sealed {
            st.seal(&Frame::Bye);
        }
        Frame::Hello {
            protocol: WIRE_VERSION,
            collector_id: self.id,
            resume: Some(HelloResume::Resync { first_seq }),
        }
    }

    /// The unacked window frames at or past `from_seq`, oldest first
    /// (encoded, ready to write).
    pub fn unsent_window(&self, from_seq: u64) -> impl Iterator<Item = (u64, &Bytes)> {
        self.seq
            .as_ref()
            .expect("sequenced collector")
            .window
            .iter()
            .filter(move |&&(s, _)| s >= from_seq)
            .map(|&(s, ref b)| (s, b))
    }

    /// Sequence number the next sealed frame will get.
    pub fn next_seq(&self) -> u64 {
        self.seq.as_ref().expect("sequenced collector").next_seq
    }

    /// `true` once the sealed `Bye` (and everything before it) has
    /// been acknowledged — the session is durably complete.
    pub fn finish_acked(&self) -> bool {
        let st = self.seq.as_ref().expect("sequenced collector");
        st.bye_sealed && st.window.is_empty()
    }
}

/// Per-collector state inside the aggregator.
#[derive(Default)]
struct CollectorState {
    /// Latest cumulative entry per live key (Delta/FullSnapshot
    /// replace).
    live: BTreeMap<u64, StreamEntry>,
    /// Folded evicted finals per key.
    retired: BTreeMap<u64, StreamEntry>,
    /// Latest cumulative sketch-tier image this collector reported
    /// (sketch-bearing `Delta`s and `FullSnapshot`s replace it, like
    /// the live view).
    sketch: Option<SketchSnapshot>,
    /// Retired finals *this aggregator* demoted into sketch form to
    /// honor [`Aggregator::max_exact_keys`] — additive, never replaced
    /// by collector frames (those contributions left the retired map
    /// for good).
    absorbed: Option<SketchSnapshot>,
    done: bool,
    /// Sequenced (v3) session: highest applied data-frame seq. The
    /// watermark is what makes redelivery idempotent — duplicate seqs
    /// are skipped, which matters because `Evicted` finals merge.
    last_seq: Option<u64>,
    /// This id negotiated the sequenced protocol.
    sequenced: bool,
    /// A `Resync` was requested; data frames are ignored until the
    /// `Resync`-mode `Hello` re-baselines the session.
    awaiting_resync: bool,
}

/// A suspended collector's aggregator state, parked in the
/// [`AdmissionRegistry`] between a sequenced session's failure and its
/// resumption (possibly on a different serve loop). Opaque: only
/// [`Aggregator::park_collector`] produces one and only
/// [`Aggregator::restore_collector`] consumes it.
pub struct ParkedCollector(CollectorState);

/// What [`Aggregator::feed_seq`] did with a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqOutcome {
    /// The frame was applied (or was an unsequenced frame).
    Applied,
    /// Duplicate seq — already applied in a prior connection; skipped.
    Duplicate,
    /// Dropped: the session is awaiting a resync re-baseline.
    Ignored,
    /// A gap was detected: the caller should send
    /// `Resync { from_seq }` back to the collector. Data frames are
    /// ignored until the `Resync`-mode `Hello` arrives.
    NeedResync {
        /// First sequence number the aggregator is missing.
        from_seq: u64,
    },
}

/// Assembles frames from many collectors into one mergeable state.
#[derive(Default)]
pub struct Aggregator {
    collectors: BTreeMap<u64, CollectorState>,
    /// Optional byte budget applied to incoming summaries.
    compact_budget: Option<usize>,
    /// Per-collector retired-store cap; overflow entries demote into
    /// the collector's absorbed sketch.
    max_exact_keys: Option<usize>,
    /// Byte budget applied to incoming and absorbed sketch images.
    sketch_budget: Option<usize>,
}

impl Aggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Aggregator::default()
    }

    /// Compacts every incoming summary toward `bytes` (bounds
    /// aggregator memory under huge fan-in; totals stay exact).
    pub fn compact_budget(mut self, bytes: usize) -> Self {
        self.compact_budget = Some(bytes);
        self
    }

    /// Caps each collector's **retired** store at `n` keys: beyond it,
    /// the smallest finals (minimum `(kept count, key)`) demote into a
    /// per-collector sketch — totals stay exact, per-key attribution of
    /// the demoted tail becomes approximate. The *live* view is not
    /// capped here: live entries are cumulative views the collector
    /// replaces wholesale, so dropping one server-side would lose its
    /// totals; a collector bounds its own live table with
    /// [`crate::TierConfig`] / lifecycle eviction.
    pub fn max_exact_keys(mut self, n: usize) -> Self {
        self.max_exact_keys = Some(n);
        self
    }

    /// Compacts every incoming (and server-side absorbed) sketch image
    /// toward `bytes`. Totals stay exact.
    pub fn sketch_bytes(mut self, bytes: usize) -> Self {
        self.sketch_budget = Some(bytes);
        self
    }

    /// Applies one frame from the session of `collector_id` (the id
    /// from that session's `Hello`; transports that already know the
    /// session id may feed data frames directly). Unsequenced entry
    /// point: equivalent to [`Aggregator::feed_seq`] with no sequence
    /// number.
    ///
    /// # Errors
    ///
    /// As [`Aggregator::feed_seq`].
    pub fn feed(&mut self, collector_id: u64, frame: Frame) -> Result<(), WireError> {
        self.feed_seq(collector_id, None, frame).map(|_| ())
    }

    /// Applies one frame with its wire sequence number.
    ///
    /// Protocol-version negotiation happens here: any `Hello` is
    /// accepted, and the session runs at the highest version both
    /// sides speak — `resume: Some` means the sequenced (v3) protocol,
    /// `resume: None` the one-way framed (v2) protocol, whatever the
    /// peer's declared ceiling. A v2 peer is never rejected.
    ///
    /// Sequenced sessions are idempotent across redelivery: `last_seq`
    /// is tracked per collector (and survives re-admission), duplicate
    /// seqs are skipped, and a gap turns into a
    /// [`SeqOutcome::NeedResync`] rather than silent corruption.
    ///
    /// # Errors
    ///
    /// [`WireError::Corrupt`] on protocol violations: aggregator
    /// control frames fed as collector frames, sequenced data frames
    /// without a sequenced `Hello`, or unsequenced data frames inside
    /// a sequenced session.
    pub fn feed_seq(
        &mut self,
        collector_id: u64,
        seq: Option<u64>,
        frame: Frame,
    ) -> Result<SeqOutcome, WireError> {
        if frame.is_control() {
            return Err(WireError::Corrupt(
                "aggregator control frame from a collector",
            ));
        }
        let state = self.collectors.entry(collector_id).or_default();
        if let Frame::Hello { resume, .. } = &frame {
            match resume {
                None => {
                    // A fresh Hello restarts the session's live view (a
                    // reconnecting collector re-sends cumulative state);
                    // retired finals (and server-side absorbed sketches)
                    // were real evictions and stay. The reported sketch
                    // is cumulative like the live view: cleared here,
                    // replaced by the next sketch-bearing frame.
                    state.live.clear();
                    state.sketch = None;
                    state.done = false;
                    state.sequenced = false;
                    state.last_seq = None;
                    state.awaiting_resync = false;
                }
                Some(HelloResume::Fresh { first_seq }) => {
                    state.live.clear();
                    state.sketch = None;
                    state.done = false;
                    state.sequenced = true;
                    state.last_seq = first_seq.checked_sub(1);
                    state.awaiting_resync = false;
                }
                Some(HelloResume::Replay { first_seq }) => {
                    // Keep everything: the whole point of a replay is
                    // that prior state (and its seq watermark) stands.
                    state.done = false;
                    state.sequenced = true;
                    let expected = state.last_seq.map_or(0, |s| s + 1);
                    if *first_seq > expected {
                        state.awaiting_resync = true;
                        return Ok(SeqOutcome::NeedResync { from_seq: expected });
                    }
                    state.awaiting_resync = false;
                }
                Some(HelloResume::Resync { first_seq }) => {
                    // Re-baseline: the live view (and reported sketch)
                    // is rebuilt by the coming FullSnapshot; retired
                    // finals already applied stay (the collector
                    // re-sends only the tail past the seq watermark we
                    // reported).
                    state.live.clear();
                    state.sketch = None;
                    state.done = false;
                    state.sequenced = true;
                    state.last_seq = first_seq.checked_sub(1);
                    state.awaiting_resync = false;
                }
            }
            return Ok(SeqOutcome::Applied);
        }
        // Data frame: sequence bookkeeping before any state change.
        // The watermark advances only *after* the frame applies — a
        // differential frame that fails validation must not count as
        // applied, or the resync would skip it.
        let advance = if state.sequenced {
            let seq = seq.ok_or(WireError::Corrupt(
                "unsequenced data frame in a sequenced session",
            ))?;
            if state.awaiting_resync {
                return Ok(SeqOutcome::Ignored);
            }
            let expected = state.last_seq.map_or(0, |s| s + 1);
            if seq < expected {
                return Ok(SeqOutcome::Duplicate);
            }
            if seq > expected {
                state.awaiting_resync = true;
                return Ok(SeqOutcome::NeedResync { from_seq: expected });
            }
            Some(seq)
        } else {
            if seq.is_some() {
                return Err(WireError::Corrupt(
                    "sequenced data frame without a sequenced hello",
                ));
            }
            None
        };
        match frame {
            Frame::Hello { .. } | Frame::Ack { .. } | Frame::Resync { .. } | Frame::Shutdown => {
                unreachable!("handled above")
            }
            Frame::Delta(snap) => {
                // A sketch-bearing Delta replaces the cumulative sketch
                // view; sketchless Deltas (the non-final chunks of a
                // flush, or any untiered collector's) leave it alone.
                let sketch = snap.sketch().cloned();
                for mut e in snap.into_streams() {
                    if let Some(b) = self.compact_budget {
                        e.summary.compact(b);
                    }
                    state.live.insert(e.key, e);
                }
                if let Some(mut sk) = sketch {
                    if let Some(b) = self.sketch_budget {
                        sk.compact(b);
                    }
                    state.sketch = Some(sk);
                }
            }
            Frame::FullSnapshot(snap) => {
                // A full snapshot is the entire engine image: the
                // sketch view is replaced unconditionally (cleared for
                // an untiered engine).
                let sketch = snap.sketch().cloned();
                state.live.clear();
                for mut e in snap.into_streams() {
                    if let Some(b) = self.compact_budget {
                        e.summary.compact(b);
                    }
                    state.live.insert(e.key, e);
                }
                state.sketch = sketch.map(|mut sk| {
                    if let Some(b) = self.sketch_budget {
                        sk.compact(b);
                    }
                    sk
                });
            }
            Frame::Evicted(entries) => {
                for mut e in entries {
                    if let Some(b) = self.compact_budget {
                        e.summary.compact(b);
                    }
                    state.live.remove(&e.key);
                    use std::collections::btree_map::Entry;
                    match state.retired.entry(e.key) {
                        Entry::Vacant(v) => {
                            v.insert(e);
                        }
                        Entry::Occupied(mut o) => {
                            let held = o.get_mut();
                            held.sampler.merge_from(&e.sampler);
                            held.summary.merge_from(&e.summary);
                            if let Some(b) = self.compact_budget {
                                held.summary.compact(b);
                            }
                        }
                    }
                }
                // Retired-store tiering: beyond the cap, demote the
                // smallest finals — minimum `(kept count, key)`, a
                // deterministic total order — into the per-collector
                // absorbed sketch. Totals stay exact.
                if let Some(cap) = self.max_exact_keys {
                    while state.retired.len() > cap {
                        let victim = state
                            .retired
                            .iter()
                            .map(|(&k, e)| (e.summary.moments.count(), k))
                            .min()
                            .map(|(_, k)| k)
                            .expect("retired store over a non-negative cap is non-empty");
                        let e = state.retired.remove(&victim).expect("victim present");
                        let sk = state.absorbed.get_or_insert_with(SketchSnapshot::default);
                        sk.absorb_entry(&e);
                        if let Some(b) = self.sketch_budget {
                            sk.compact(b);
                        }
                    }
                }
            }
            Frame::DeltaDiff(diffs) => {
                let Some(seq) = advance else {
                    return Err(WireError::Corrupt(
                        "differential frame in an unsequenced session",
                    ));
                };
                // Diffs apply in-place against the live view. Any
                // failure — unknown key, baseline fingerprint mismatch
                // (e.g. our compact_budget rewrote the entry), or a
                // structurally invalid patch — turns into a resync at
                // this frame's seq: the watermark has not advanced, so
                // the collector re-baselines from here. A frame that
                // fails partway may leave earlier entries updated;
                // that's fine, the resync's FullSnapshot replaces the
                // live view wholesale.
                for d in &diffs {
                    let applied = state
                        .live
                        .get_mut(&d.key)
                        .is_some_and(|e| apply_diff(e, d).is_ok());
                    if !applied {
                        state.awaiting_resync = true;
                        return Ok(SeqOutcome::NeedResync { from_seq: seq });
                    }
                    if let Some(b) = self.compact_budget {
                        let e = state.live.get_mut(&d.key).expect("applied above");
                        e.summary.compact(b);
                    }
                }
            }
            Frame::Bye => state.done = true,
        }
        if let Some(seq) = advance {
            state.last_seq = Some(seq);
        }
        Ok(SeqOutcome::Applied)
    }

    /// Highest applied sequence number of `collector_id`'s session
    /// (`None` for unknown ids and unsequenced sessions).
    pub fn last_seq(&self, collector_id: u64) -> Option<u64> {
        self.collectors.get(&collector_id).and_then(|s| s.last_seq)
    }

    /// `true` once `collector_id`'s session has applied its `Bye`.
    pub fn session_done(&self, collector_id: u64) -> bool {
        self.collectors.get(&collector_id).is_some_and(|s| s.done)
    }

    /// `true` while `collector_id` is waiting out a requested resync.
    pub fn awaiting_resync(&self, collector_id: u64) -> bool {
        self.collectors
            .get(&collector_id)
            .is_some_and(|s| s.awaiting_resync)
    }

    /// Extracts `collector_id`'s whole state (live, retired, seq
    /// watermark) for parking in the [`AdmissionRegistry`] while its
    /// session is down. The collector vanishes from this aggregator —
    /// [`Aggregator::restore_collector`] puts the state back wherever
    /// the session resumes.
    pub fn park_collector(&mut self, collector_id: u64) -> Option<ParkedCollector> {
        self.collectors.remove(&collector_id).map(ParkedCollector)
    }

    /// Re-injects state parked by [`Aggregator::park_collector`]
    /// (possibly from another loop's aggregator) ahead of a resumed
    /// session's frames.
    pub fn restore_collector(&mut self, collector_id: u64, parked: ParkedCollector) {
        self.collectors.insert(collector_id, parked.0);
    }

    /// Runs a whole byte stream (one collector session) into the
    /// aggregator: reads the `Hello`, then feeds every following frame
    /// to that session. Legacy v1 snapshots (no `Hello`) are attributed
    /// to `fallback_id`.
    ///
    /// # Errors
    ///
    /// I/O errors from the reader; protocol errors as `InvalidData`.
    pub fn ingest_stream(
        &mut self,
        r: &mut impl std::io::Read,
        fallback_id: u64,
    ) -> std::io::Result<usize> {
        let mut session = fallback_id;
        let mut first = true;
        let mut result = Ok(());
        let n = read_frames(r, |frame| {
            if result.is_err() {
                return;
            }
            if first {
                if let Frame::Hello { collector_id, .. } = frame {
                    session = collector_id;
                }
                first = false;
            }
            result = self.feed(session, frame);
        })?;
        result.map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(n)
    }

    /// Discards every entry (live *and* retired) fed under
    /// `collector_id`, as if that session had never connected.
    ///
    /// Transports call this when a session fails mid-stream — a
    /// half-delivered cumulative view must not leak into the assembled
    /// snapshot, so the guarantee stays "the snapshot is exactly the
    /// completed sessions". Retired finals the failed session delivered
    /// are lost with it; redelivering them on reconnect needs the
    /// ack story the ROADMAP tracks. (Sessions are trusted to use
    /// distinct ids — a session that claims another's id already stomps
    /// its live view at `Hello` time.)
    pub fn remove_collector(&mut self, collector_id: u64) {
        self.collectors.remove(&collector_id);
    }

    /// Collector sessions seen so far.
    pub fn collector_count(&self) -> usize {
        self.collectors.len()
    }

    /// `true` once every known session has sent `Bye`.
    pub fn all_done(&self) -> bool {
        !self.collectors.is_empty() && self.collectors.values().all(|c| c.done)
    }

    /// The assembled snapshot: for every collector (ascending id),
    /// retired finals then live entries, canonically merged, plus the
    /// sketch images (each collector's reported sketch, then its
    /// server-side absorbed one) folded in the same ascending-id order.
    /// For disjoint collectors this is bit-for-bit the single-engine
    /// snapshot ([`MonitorEngine::full_snapshot`] semantics) — sketch
    /// section included for a lone tiered collector.
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut entries: Vec<StreamEntry> = Vec::new();
        let mut sketch: Option<SketchSnapshot> = None;
        for state in self.collectors.values() {
            entries.extend(state.retired.values().cloned());
            entries.extend(state.live.values().cloned());
            for sk in state.sketch.iter().chain(state.absorbed.iter()) {
                match &mut sketch {
                    None => sketch = Some(sk.clone()),
                    Some(acc) => acc.merge_from(sk),
                }
            }
        }
        EngineSnapshot::from_streams(entries).with_sketch(sketch)
    }

    /// Approximate bytes held across all per-collector state, sketch
    /// images included.
    pub fn estimated_state_bytes(&self) -> usize {
        self.collectors
            .values()
            .map(|c| {
                let entries: usize = c
                    .live
                    .values()
                    .chain(c.retired.values())
                    .map(|e| 64 + e.summary.estimated_bytes())
                    .sum();
                let sketches: usize = c
                    .sketch
                    .iter()
                    .chain(c.absorbed.iter())
                    .map(Compactable::estimated_bytes)
                    .sum();
                entries + sketches
            })
            .sum()
    }
}

/// Who holds a collector id in the admission registry.
enum IdOwner {
    /// An open session (by its transport-assigned token) is feeding
    /// under this id.
    Open(u64),
    /// A completed session delivered this id's state; nobody may claim
    /// it again within this serve run (a late "reconnect" after a
    /// clean `Bye` is indistinguishable from a spoof).
    Completed,
    /// A sequenced session failed mid-stream; its aggregator state is
    /// parked here until the collector reconnects and resumes —
    /// idempotently, thanks to the parked seq watermark.
    Suspended(Box<ParkedCollector>),
}

/// Result of [`AdmissionRegistry::claim`].
pub enum Claim {
    /// The id is granted, no prior state.
    New,
    /// The id is granted and carries the parked state of the suspended
    /// session being resumed — restore it into the claiming loop's
    /// aggregator before feeding frames.
    Resumed(Box<ParkedCollector>),
    /// Another open session owns the id, or a completed session
    /// delivered it: the claimant must be failed before the frame
    /// touches any aggregator.
    Rejected,
}

/// Collector-id admission table shared by every serve loop of one run.
///
/// An id already owned by another *open* session, or delivered by a
/// *completed* one, cannot be claimed again — a spoofed `Hello` is
/// rejected before it can reset the real collector's live view. Ids
/// free up again when their session fails, so a collector that crashed
/// mid-stream can reconnect and resend its cumulative state.
///
/// The table is its own type (rather than event-loop-private state, as
/// it originally was) because under multi-loop serving
/// ([`crate::transport::MultiLoopServer`]) sessions land on different
/// loops: admission must be global or a spoofer could dodge it by
/// connecting until the dispatcher hands it a different loop than its
/// victim. It is a small `Mutex`ed map, consulted only on the *first*
/// frame a session sends under each id (the per-session
/// [`SessionDriver`] caches ids it already fed), so cross-loop
/// contention is a handful of lock acquisitions per session, not per
/// frame.
#[derive(Default)]
pub struct AdmissionRegistry {
    owners: Mutex<BTreeMap<u64, IdOwner>>,
}

impl AdmissionRegistry {
    /// An empty registry (wrap it in an `Arc` to share across loops).
    pub fn new() -> Self {
        AdmissionRegistry::default()
    }

    /// Recovers the map even if a panicking loop thread poisoned the
    /// lock: the table holds only small plain data, never mid-mutation
    /// invariants.
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, IdOwner>> {
        self.owners.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Claims `id` on behalf of the session `token`. `true` when the
    /// claim is granted ([`AdmissionRegistry::claim`] for the variant
    /// that also hands back parked state — use that from transports
    /// that support resumption, or the parked state is lost).
    pub fn admit(&self, id: u64, token: u64) -> bool {
        !matches!(self.claim(id, token), Claim::Rejected)
    }

    /// Claims `id` on behalf of the session `token`: grants free ids,
    /// re-grants ids this very session holds, resumes suspended ids
    /// (handing their parked state to the claimant), and rejects ids
    /// owned by another open session or delivered by a completed one —
    /// the caller must then fail the claiming session *before* the
    /// frame touches any aggregator.
    pub fn claim(&self, id: u64, token: u64) -> Claim {
        let mut owners = self.lock();
        match owners.get(&id) {
            None => {
                owners.insert(id, IdOwner::Open(token));
                Claim::New
            }
            Some(IdOwner::Open(t)) if *t == token => Claim::New,
            Some(IdOwner::Open(_)) | Some(IdOwner::Completed) => Claim::Rejected,
            Some(IdOwner::Suspended(_)) => {
                let Some(IdOwner::Suspended(parked)) = owners.insert(id, IdOwner::Open(token))
                else {
                    unreachable!("matched Suspended above")
                };
                Claim::Resumed(parked)
            }
        }
    }

    /// Parks a failed sequenced session's aggregator state under its
    /// id, to be handed to whichever session (on whichever loop)
    /// resumes it.
    pub fn suspend(&self, id: u64, parked: ParkedCollector) {
        self.lock().insert(id, IdOwner::Suspended(Box::new(parked)));
    }

    /// Marks every id in `ids` as delivered by a completed session:
    /// within this run a later claimant would be a spoof.
    pub fn complete(&self, ids: impl Iterator<Item = u64>) {
        let mut owners = self.lock();
        for id in ids {
            owners.insert(id, IdOwner::Completed);
        }
    }

    /// Frees every id the (failed) session `token` held open, so the
    /// real collector can reconnect and resend cumulative state.
    pub fn release(&self, token: u64) {
        self.lock()
            .retain(|_, o| !matches!(o, IdOwner::Open(t) if *t == token));
    }
}

/// The per-loop aggregators of a multi-loop serve, assembled at
/// snapshot/report time.
///
/// Each serve loop owns a private [`Aggregator`] that its sessions feed
/// lock-free; nothing is shared while bytes flow. Only when the run is
/// over are the per-loop states combined — via
/// [`EngineSnapshot::merge`], whose canonical key-wise form makes the
/// assembled snapshot independent of *which* loop each collector
/// happened to land on. For collectors watching disjoint key sets the
/// result is byte-identical to one unsharded engine (and to a
/// single-loop serve of the same sessions), whatever the dispatcher's
/// placement — pinned by `tests/transport_live.rs` for 1, 2 and 4
/// loops on both readiness backends.
#[derive(Default)]
pub struct AggregatorSet {
    aggs: Vec<Aggregator>,
}

impl AggregatorSet {
    /// Wraps the per-loop aggregators a finished multi-loop run left.
    pub fn new(aggs: Vec<Aggregator>) -> Self {
        AggregatorSet { aggs }
    }

    /// How many per-loop aggregators the set holds.
    pub fn loops(&self) -> usize {
        self.aggs.len()
    }

    /// Completed collector sessions across all loops.
    pub fn collector_count(&self) -> usize {
        self.aggs.iter().map(Aggregator::collector_count).sum()
    }

    /// Approximate bytes held across every loop's per-collector state.
    pub fn estimated_state_bytes(&self) -> usize {
        self.aggs
            .iter()
            .map(Aggregator::estimated_state_bytes)
            .sum()
    }

    /// The assembled snapshot: every loop's snapshot merged
    /// canonically (the empty snapshot is the merge identity, so idle
    /// loops contribute nothing).
    pub fn snapshot(&self) -> EngineSnapshot {
        self.aggs
            .iter()
            .map(Aggregator::snapshot)
            .fold(EngineSnapshot::default(), EngineSnapshot::merge)
    }
}

/// Why a collector session failed.
#[derive(Debug)]
pub enum SessionError {
    /// The byte stream violated the wire protocol (or carried a frame
    /// the aggregator rejected, e.g. an unsupported `Hello` version).
    Wire(WireError),
    /// The connection closed with a partial frame still buffered.
    MidFrameEof,
    /// The session tried to feed under a collector id the transport's
    /// admission policy refused (e.g. an id another session owns).
    IdRejected(u64),
    /// A *sequenced* session's connection ended (even on a clean frame
    /// boundary) before its `Bye` was applied. Unsequenced v1/v2
    /// streams complete on EOF; a sequenced collector explicitly ends
    /// with `Bye` and anything less is a torn connection the peer will
    /// resume — completing it would mark the id delivered and reject
    /// the resumption as a spoof.
    SequencedEof(u64),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Wire(e) => write!(f, "wire: {e}"),
            SessionError::MidFrameEof => f.write_str("connection closed mid-frame"),
            SessionError::IdRejected(id) => {
                write!(f, "collector id {id} already owned by another session")
            }
            SessionError::SequencedEof(id) => {
                write!(f, "sequenced session {id} disconnected before its Bye")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// The per-session state machine every transport shares: bytes in,
/// aggregator mutations out.
///
/// A `SessionDriver` owns one connection's [`FrameDecoder`] and session
/// identity. Push bytes as they arrive ([`SessionDriver::push`]), call
/// [`SessionDriver::finish`] at EOF; each completed frame is fed to the
/// [`Aggregator`] under the session's id — the id from the first
/// `Hello`, or `fallback_id` for legacy (Hello-less) `.ssm` streams,
/// whose implicit `FullSnapshot` only decodes once EOF is signalled.
///
/// The driver never touches the aggregator except through
/// [`Aggregator::feed`]/[`Aggregator::remove_collector`], so the same
/// state machine serves the blocking thread-per-connection transport
/// (aggregator behind a mutex, pushed under the lock) and the
/// single-threaded event loop (exclusive aggregator, no lock) — and is
/// unit-testable against in-memory byte slices.
pub struct SessionDriver {
    dec: FrameDecoder,
    session: Option<u64>,
    fallback_id: u64,
    frames: usize,
    /// Every collector id this session fed at least one frame under —
    /// a session that re-`Hello`s under new ids touches several, and
    /// [`SessionDriver::abort`] must roll back all of them.
    fed: BTreeSet<u64>,
    /// The session negotiated the sequenced (v3) protocol.
    sequenced: bool,
    /// Encoded aggregator → collector control frames (`Ack`, `Resync`)
    /// awaiting transport write — the transport drains this via
    /// [`SessionDriver::take_outbound`] and owns partial-write
    /// handling.
    outbound: Vec<u8>,
    /// Highest seq already queued in an `Ack`, so acks fire once per
    /// advance, not once per pushed chunk.
    acked_through: Option<u64>,
    /// Wire bytes (header + payload) received in differential
    /// (`DeltaDiff`) frames.
    diff_bytes: u64,
    /// Wire bytes received in cumulative data frames (`Delta`,
    /// `FullSnapshot`, `Evicted`).
    full_bytes: u64,
    /// `Resync` requests this session has issued.
    resyncs: u64,
}

impl SessionDriver {
    /// A fresh session; data frames arriving before any `Hello` are
    /// attributed to `fallback_id`.
    pub fn new(fallback_id: u64) -> Self {
        SessionDriver {
            dec: FrameDecoder::new(),
            session: None,
            fallback_id,
            frames: 0,
            fed: BTreeSet::new(),
            sequenced: false,
            outbound: Vec::new(),
            acked_through: None,
            diff_bytes: 0,
            full_bytes: 0,
            resyncs: 0,
        }
    }

    /// Feeds a chunk of received bytes, applying every frame that
    /// completes. Equivalent to [`SessionDriver::push_admitted`] with
    /// an admit-everything policy — for transports whose peers are
    /// trusted to use distinct ids (in-process pipes, local Unix
    /// sockets).
    ///
    /// # Errors
    ///
    /// [`SessionError::Wire`] on malformed bytes or a rejected frame;
    /// the session is then dead (callers should [`SessionDriver::abort`]
    /// and drop the connection).
    pub fn push(&mut self, bytes: &[u8], agg: &mut Aggregator) -> Result<(), SessionError> {
        self.push_admitted(bytes, agg, &mut |_, _| true)
    }

    /// As [`SessionDriver::push`], but `admit` is consulted **before**
    /// the first frame under each newly-claimed collector id is
    /// applied — returning `false` fails the session with
    /// [`SessionError::IdRejected`] *before* the frame can touch the
    /// aggregator (a spoofed `Hello` would otherwise clear the real
    /// collector's live view). Network-facing transports use this to
    /// refuse ids already owned by another live or completed session —
    /// and, handed the aggregator, to restore parked state when
    /// admitting a *resumed* session.
    ///
    /// # Errors
    ///
    /// As [`SessionDriver::push`], plus [`SessionError::IdRejected`].
    pub fn push_admitted(
        &mut self,
        bytes: &[u8],
        agg: &mut Aggregator,
        admit: &mut dyn FnMut(u64, &mut Aggregator) -> bool,
    ) -> Result<(), SessionError> {
        self.dec.push(bytes);
        self.drain(agg, admit)
    }

    /// Signals EOF: decodes anything still pending (a legacy snapshot
    /// decodes only now) and verifies the stream ended on a frame
    /// boundary. Admits everything, like [`SessionDriver::push`].
    ///
    /// # Errors
    ///
    /// [`SessionError::MidFrameEof`] if bytes of an incomplete frame
    /// remain; [`SessionError::Wire`] as [`SessionDriver::push`].
    pub fn finish(&mut self, agg: &mut Aggregator) -> Result<(), SessionError> {
        self.finish_admitted(agg, &mut |_, _| true)
    }

    /// As [`SessionDriver::finish`] with an admission policy (a legacy
    /// stream establishes its fallback id only now, at EOF).
    ///
    /// # Errors
    ///
    /// As [`SessionDriver::finish`], plus [`SessionError::IdRejected`].
    pub fn finish_admitted(
        &mut self,
        agg: &mut Aggregator,
        admit: &mut dyn FnMut(u64, &mut Aggregator) -> bool,
    ) -> Result<(), SessionError> {
        self.dec.finish();
        self.drain(agg, admit)?;
        if self.dec.pending_bytes() != 0 {
            return Err(SessionError::MidFrameEof);
        }
        // A sequenced session is complete only once its `Bye` applied:
        // a clean frame-boundary EOF without one is a torn connection
        // whose peer will reconnect and resume — completing it here
        // would mark the id delivered and spoof-reject the resumption.
        if self.sequenced {
            if let Some(id) = self.session {
                if !agg.session_done(id) {
                    return Err(SessionError::SequencedEof(id));
                }
            }
        }
        Ok(())
    }

    /// Rolls the session's contribution back out of the aggregator:
    /// every collector id it fed frames under is removed (no-op if it
    /// never delivered a frame). Call on session failure.
    pub fn abort(&self, agg: &mut Aggregator) {
        for &id in &self.fed {
            agg.remove_collector(id);
        }
    }

    /// Frames successfully fed so far. Transports use `> 0` to tell a
    /// real collector session from a connect-and-probe that must not
    /// consume a collector slot.
    pub fn frames_delivered(&self) -> usize {
        self.frames
    }

    /// Wire bytes received in differential (`DeltaDiff`) frames.
    pub fn diff_bytes(&self) -> u64 {
        self.diff_bytes
    }

    /// Wire bytes received in cumulative data frames (`Delta`,
    /// `FullSnapshot`, `Evicted`).
    pub fn full_bytes(&self) -> u64 {
        self.full_bytes
    }

    /// `Resync` requests this session has issued back to its peer.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// The session's established id (`Hello`'s collector id, or the
    /// fallback once a Hello-less data frame arrived).
    pub fn session_id(&self) -> Option<u64> {
        self.session
    }

    /// Every collector id this session has fed frames under (what
    /// [`SessionDriver::abort`] would roll back).
    pub fn fed_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.fed.iter().copied()
    }

    /// The session negotiated the sequenced (v3) protocol — on
    /// failure, transports park its state for resumption instead of
    /// rolling it back.
    pub fn is_sequenced(&self) -> bool {
        self.sequenced
    }

    /// Drains the encoded aggregator → collector control frames
    /// (`Ack`, `Resync`) queued since the last take. The transport
    /// owns writing them — including partial writes and write-interest
    /// re-arming on nonblocking sockets.
    pub fn take_outbound(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.outbound)
    }

    /// `true` when control frames are queued for the collector.
    pub fn has_outbound(&self) -> bool {
        !self.outbound.is_empty()
    }

    fn drain(
        &mut self,
        agg: &mut Aggregator,
        admit: &mut dyn FnMut(u64, &mut Aggregator) -> bool,
    ) -> Result<(), SessionError> {
        while let Some(sf) = self.dec.next_seq_frame().map_err(SessionError::Wire)? {
            let frame = sf.frame;
            let wire_bytes = self.dec.last_frame_bytes() as u64;
            match &frame {
                Frame::DeltaDiff(_) => self.diff_bytes += wire_bytes,
                Frame::Delta(_) | Frame::FullSnapshot(_) | Frame::Evicted(_) => {
                    self.full_bytes += wire_bytes;
                }
                _ => {}
            }
            let id = match (&frame, self.session) {
                (Frame::Hello { collector_id, .. }, _) => {
                    self.session = Some(*collector_id);
                    *collector_id
                }
                (_, Some(id)) => id,
                (_, None) => {
                    self.session = Some(self.fallback_id);
                    self.fallback_id
                }
            };
            if let Frame::Hello {
                resume: Some(_), ..
            } = &frame
            {
                self.sequenced = true;
            }
            // Admission runs before the frame is applied: a refused id
            // must leave no trace (not even a `Hello`'s live-view
            // reset). A granted resumption restores parked state into
            // `agg` inside the closure, ahead of this frame.
            if !self.fed.contains(&id) && !admit(id, agg) {
                return Err(SessionError::IdRejected(id));
            }
            match agg
                .feed_seq(id, sf.seq, frame)
                .map_err(SessionError::Wire)?
            {
                SeqOutcome::NeedResync { from_seq } => {
                    self.resyncs += 1;
                    self.outbound
                        .extend_from_slice(&encode_frame(&Frame::Resync { from_seq }));
                }
                SeqOutcome::Applied | SeqOutcome::Duplicate | SeqOutcome::Ignored => {}
            }
            self.frames += 1;
            self.fed.insert(id);
        }
        // Ack once per drained batch, and only when the watermark
        // moved — a per-session outbound buffer the transport flushes.
        if self.sequenced {
            if let Some(id) = self.session {
                if let Some(through) = agg.last_seq(id) {
                    if self.acked_through.is_none_or(|a| a < through) {
                        self.acked_through = Some(through);
                        self.outbound.extend_from_slice(&encode_frame(&Frame::Ack {
                            through_seq: through,
                        }));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SamplerSpec;

    fn keyed_points(n: usize, n_keys: u64) -> Vec<(u64, f64)> {
        (0..n)
            .map(|i| {
                let key = (i as u64).wrapping_mul(0x9E37_79B9) % n_keys;
                (key, 1.0 + (i % 97) as f64)
            })
            .collect()
    }

    fn config() -> MonitorConfig {
        MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 4 })
            .seed(11)
    }

    #[test]
    fn two_collectors_assemble_to_the_unsharded_bits_over_a_pipe() {
        let points = keyed_points(40_000, 64);
        // Reference: one engine sees everything.
        let mut reference = MonitorEngine::new(config().shards(2));
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        // Two collectors partition the keys; several flushes each.
        let mut pipes = [Vec::new(), Vec::new()];
        let mut collectors = [Collector::new(0, config()), Collector::new(1, config())];
        for (i, chunk) in points.chunks(7000).enumerate() {
            for &(k, v) in chunk {
                collectors[(k % 2) as usize].offer(k, v);
            }
            // Interleave flushes to exercise repeated deltas.
            let c = i % 2;
            collectors[c].flush(&mut pipes[c]).unwrap();
        }
        for c in 0..2 {
            collectors[c].finish(&mut pipes[c]).unwrap();
        }
        let mut agg = Aggregator::new();
        for pipe in &pipes {
            agg.ingest_stream(&mut pipe.as_slice(), 999).unwrap();
        }
        assert!(agg.all_done());
        assert_eq!(agg.collector_count(), 2);
        assert_eq!(agg.snapshot(), reference.snapshot());
    }

    #[test]
    fn interleaving_does_not_change_the_aggregate() {
        let points = keyed_points(20_000, 32);
        let mut pipes = [Vec::new(), Vec::new()];
        let mut collectors = [Collector::new(0, config()), Collector::new(1, config())];
        for chunk in points.chunks(3000) {
            for &(k, v) in chunk {
                collectors[(k % 2) as usize].offer(k, v);
            }
            for c in 0..2 {
                collectors[c].flush(&mut pipes[c]).unwrap();
            }
        }
        for c in 0..2 {
            collectors[c].finish(&mut pipes[c]).unwrap();
        }
        // Sequential sessions vs frame-interleaved sessions.
        let mut seq = Aggregator::new();
        seq.ingest_stream(&mut pipes[0].as_slice(), 0).unwrap();
        seq.ingest_stream(&mut pipes[1].as_slice(), 1).unwrap();
        let mut interleaved = Aggregator::new();
        let decoded: Vec<Vec<Frame>> = pipes
            .iter()
            .map(|p| crate::wire::decode_frames(p).unwrap())
            .collect();
        let max = decoded[0].len().max(decoded[1].len());
        for i in 0..max {
            for (c, frames) in decoded.iter().enumerate() {
                if let Some(f) = frames.get(i) {
                    interleaved.feed(c as u64, f.clone()).unwrap();
                }
            }
        }
        assert_eq!(seq.snapshot(), interleaved.snapshot());
    }

    #[test]
    fn hello_version_negotiates_down_never_rejects() {
        // A peer declaring any protocol ceiling is accepted; the
        // session simply runs at the highest version both sides speak
        // (resume: None ⇒ the one-way framed protocol).
        let mut agg = Aggregator::new();
        for protocol in [1u8, 2, 3, 77] {
            agg.feed(
                u64::from(protocol),
                Frame::Hello {
                    protocol,
                    collector_id: u64::from(protocol),
                    resume: None,
                },
            )
            .expect("negotiated, not rejected");
        }
        assert_eq!(agg.collector_count(), 4);
    }

    #[test]
    fn sequenced_replay_skips_duplicates_and_gaps_request_resync() {
        let mut engine = MonitorEngine::new(config());
        engine.offer_batch(&keyed_points(2000, 4));
        let snap = engine.snapshot();
        let mut agg = Aggregator::new();
        let hello = |resume| Frame::Hello {
            protocol: WIRE_VERSION,
            collector_id: 9,
            resume: Some(resume),
        };
        agg.feed_seq(9, None, hello(HelloResume::Fresh { first_seq: 0 }))
            .unwrap();
        assert_eq!(
            agg.feed_seq(9, Some(0), Frame::Delta(snap.clone()))
                .unwrap(),
            SeqOutcome::Applied
        );
        assert_eq!(agg.last_seq(9), Some(0));
        // Reconnect replaying from 0: the duplicate is skipped (the
        // watermark protects the non-idempotent Evicted merge), the
        // new frame applies.
        agg.feed_seq(9, None, hello(HelloResume::Replay { first_seq: 0 }))
            .unwrap();
        assert_eq!(
            agg.feed_seq(9, Some(0), Frame::Delta(snap.clone()))
                .unwrap(),
            SeqOutcome::Duplicate
        );
        assert_eq!(
            agg.feed_seq(9, Some(1), Frame::Delta(snap.clone()))
                .unwrap(),
            SeqOutcome::Applied
        );
        // A gap asks for a resync and ignores frames until the
        // re-baseline Hello.
        assert_eq!(
            agg.feed_seq(9, Some(5), Frame::Delta(snap.clone()))
                .unwrap(),
            SeqOutcome::NeedResync { from_seq: 2 }
        );
        assert!(agg.awaiting_resync(9));
        assert_eq!(
            agg.feed_seq(9, Some(6), Frame::Delta(snap.clone()))
                .unwrap(),
            SeqOutcome::Ignored
        );
        agg.feed_seq(9, None, hello(HelloResume::Resync { first_seq: 7 }))
            .unwrap();
        assert_eq!(
            agg.feed_seq(9, Some(7), Frame::FullSnapshot(snap.clone()))
                .unwrap(),
            SeqOutcome::Applied
        );
        assert_eq!(agg.snapshot(), snap);
    }

    #[test]
    fn parked_state_survives_re_admission() {
        let mut engine = MonitorEngine::new(config());
        engine.offer_batch(&keyed_points(2000, 4));
        let snap = engine.snapshot();
        let mut agg_a = Aggregator::new();
        agg_a
            .feed_seq(
                4,
                None,
                Frame::Hello {
                    protocol: WIRE_VERSION,
                    collector_id: 4,
                    resume: Some(HelloResume::Fresh { first_seq: 0 }),
                },
            )
            .unwrap();
        agg_a
            .feed_seq(4, Some(0), Frame::Delta(snap.clone()))
            .unwrap();
        // Session fails: park, hand through the registry, resume on a
        // different loop's aggregator.
        let registry = AdmissionRegistry::new();
        registry.suspend(4, agg_a.park_collector(4).expect("state"));
        assert_eq!(agg_a.collector_count(), 0);
        let Claim::Resumed(parked) = registry.claim(4, 1 << 33) else {
            panic!("suspended id resumes");
        };
        let mut agg_b = Aggregator::new();
        agg_b.restore_collector(4, *parked);
        assert_eq!(agg_b.last_seq(4), Some(0), "seq watermark travels");
        assert_eq!(agg_b.snapshot(), snap);
        // And the id is now open: a second claimant is a spoof.
        assert!(matches!(registry.claim(4, 77), Claim::Rejected));
    }

    #[test]
    fn session_driver_replays_a_collector_pipe_chunk_by_chunk() {
        let mut collector = Collector::new(5, config());
        collector.offer_batch(&keyed_points(8000, 16));
        let mut pipe = Vec::new();
        collector.finish(&mut pipe).unwrap();
        // Reference: the whole-stream ingest path.
        let mut want = Aggregator::new();
        want.ingest_stream(&mut pipe.as_slice(), 99).unwrap();
        // Driver: awkward chunk sizes, EOF at the end.
        for chunk in [1usize, 13, 4096] {
            let mut agg = Aggregator::new();
            let mut driver = SessionDriver::new(99);
            for piece in pipe.chunks(chunk) {
                driver.push(piece, &mut agg).expect("clean stream");
            }
            driver.finish(&mut agg).expect("clean eof");
            assert_eq!(driver.session_id(), Some(5));
            assert!(driver.frames_delivered() >= 2, "hello + data + bye");
            assert_eq!(agg.snapshot(), want.snapshot(), "chunk size {chunk}");
        }
    }

    #[test]
    fn session_driver_attributes_legacy_streams_to_the_fallback_id() {
        let mut engine = MonitorEngine::new(config());
        engine.offer_batch(&keyed_points(3000, 8));
        let v1 = crate::codec::encode_snapshot(&engine.snapshot());
        let mut agg = Aggregator::new();
        let mut driver = SessionDriver::new(777);
        driver.push(&v1, &mut agg).expect("buffering");
        // A legacy snapshot's length is not declared up front: nothing
        // decodes until EOF says the buffer is whole.
        driver.finish(&mut agg).expect("legacy eof");
        assert_eq!(driver.session_id(), Some(777));
        assert_eq!(driver.frames_delivered(), 1);
        assert_eq!(agg.snapshot(), engine.snapshot());
    }

    #[test]
    fn session_driver_rejects_garbage_without_touching_the_aggregator() {
        let mut agg = Aggregator::new();
        let mut driver = SessionDriver::new(1);
        assert!(matches!(
            driver.push(b"GARBAGE, NOT A FRAME", &mut agg),
            Err(SessionError::Wire(WireError::BadMagic))
        ));
        assert_eq!(driver.frames_delivered(), 0);
        driver.abort(&mut agg);
        assert_eq!(agg.collector_count(), 0);
    }

    #[test]
    fn session_driver_mid_frame_eof_aborts_cleanly() {
        // A session that dies mid-frame must report the failure and be
        // removable, leaving the aggregator as if it never connected.
        let mut collector = Collector::new(8, config());
        collector.offer_batch(&keyed_points(5000, 8));
        let mut pipe = Vec::new();
        collector.finish(&mut pipe).unwrap();
        let mut agg = Aggregator::new();
        let mut driver = SessionDriver::new(1);
        // Cut inside the final frame: earlier frames land, the cut one
        // doesn't.
        driver
            .push(&pipe[..pipe.len() - 3], &mut agg)
            .expect("whole frames are fine");
        assert!(driver.frames_delivered() > 0);
        assert!(matches!(
            driver.finish(&mut agg),
            Err(SessionError::MidFrameEof)
        ));
        assert_eq!(agg.collector_count(), 1, "partial frames were fed");
        driver.abort(&mut agg);
        assert_eq!(agg.collector_count(), 0, "abort rolls the session back");
    }

    #[test]
    fn sequenced_eof_without_bye_fails_instead_of_completing() {
        // A sequenced session torn at a frame boundary (clean EOF, no
        // Bye) must fail — its peer will resume; completing it would
        // mark the id delivered and reject the resumption as a spoof.
        let mut collector = Collector::new_sequenced(3, config());
        collector.offer_batch(&keyed_points(2000, 8));
        collector.seal_flush();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(&collector.hello()));
        for (_, b) in collector.unsent_window(0) {
            bytes.extend_from_slice(b);
        }
        let mut agg = Aggregator::new();
        let mut driver = SessionDriver::new(999);
        driver.push(&bytes, &mut agg).expect("whole frames");
        assert!(matches!(
            driver.finish(&mut agg),
            Err(SessionError::SequencedEof(3))
        ));
        // With the Bye replayed on a second connection, it completes.
        collector.seal_finish();
        let mut rest = Vec::new();
        rest.extend_from_slice(&encode_frame(&collector.hello()));
        for (_, b) in collector.unsent_window(0) {
            rest.extend_from_slice(b);
        }
        let mut driver2 = SessionDriver::new(999);
        driver2.push(&rest, &mut agg).expect("replay");
        driver2.finish(&mut agg).expect("bye applied");
        assert!(agg.session_done(3));
    }

    #[test]
    fn session_driver_abort_rolls_back_every_id_it_fed() {
        // One connection re-Helloing under a second id before dying:
        // abort must remove *both* ids' state, not just the latest.
        let mut engine = MonitorEngine::new(config());
        engine.offer_batch(&keyed_points(2000, 4));
        let snap = engine.snapshot();
        let mut bytes = Vec::new();
        for f in [
            Frame::Hello {
                protocol: WIRE_VERSION,
                collector_id: 10,
                resume: None,
            },
            Frame::Delta(snap.clone()),
            Frame::Hello {
                protocol: WIRE_VERSION,
                collector_id: 11,
                resume: None,
            },
            Frame::Delta(snap),
        ] {
            bytes.extend_from_slice(&crate::wire::encode_frame(&f));
        }
        let mut agg = Aggregator::new();
        let mut driver = SessionDriver::new(1);
        driver.push(&bytes, &mut agg).expect("valid frames");
        assert_eq!(agg.collector_count(), 2);
        driver.abort(&mut agg);
        assert_eq!(agg.collector_count(), 0, "both fed ids rolled back");
    }

    #[test]
    fn redelivered_delta_is_idempotent() {
        // Deltas are cumulative: feeding the same one twice must not
        // double-count (replacement, not merge).
        let mut collector = Collector::new(3, config());
        collector.offer_batch(&keyed_points(5000, 8));
        let mut pipe = Vec::new();
        collector.finish(&mut pipe).unwrap();
        let mut once = Aggregator::new();
        once.ingest_stream(&mut pipe.as_slice(), 3).unwrap();
        let mut twice = Aggregator::new();
        twice.ingest_stream(&mut pipe.as_slice(), 3).unwrap();
        twice.ingest_stream(&mut pipe.as_slice(), 3).unwrap();
        assert_eq!(once.snapshot(), twice.snapshot());
    }
}
