//! Deterministic fault injection for transport tests: a seeded
//! man-in-the-middle proxy that mangles collector connections in
//! reproducible ways.
//!
//! [`FaultyLink`] sits between forwarders and a serve socket. Every
//! accepted connection gets a [`FaultPlan`] derived *only* from the
//! proxy seed and the connection's accept index, so a test run with a
//! fixed seed injects the same faults every time:
//!
//! * **drop** — the connection dies before any byte crosses,
//! * **truncate / kill-after-N** — forwarding stops mid-stream (and,
//!   with the byte budget landing inside a frame, mid-frame),
//! * **delay** — each forwarded chunk stalls a few milliseconds,
//! * **split** — writes are sliced into tiny chunks so frame headers
//!   and payloads straddle arbitrary read boundaries.
//!
//! Connections past `clean_after` pass through untouched — the
//! convergence guarantee that lets a test assert *eventual* success:
//! a retrying forwarder needs only finitely many attempts before it
//! gets a clean link. The server→client direction (acks, resyncs) is
//! always shuttled verbatim; a killed connection tears down both
//! directions, which is exactly the torn-session the seq/ack protocol
//! exists to survive.

use crate::transport::SessionStream;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the proxy forwards to — the real serve socket.
#[derive(Clone, Debug)]
pub enum Target {
    /// A Unix-domain socket path.
    Unix(String),
    /// A TCP address (`host:port`).
    Tcp(String),
}

impl Target {
    fn connect(&self) -> io::Result<SessionStream> {
        Ok(match self {
            Target::Unix(path) => SessionStream::Unix(UnixStream::connect(path)?),
            Target::Tcp(addr) => SessionStream::Tcp(TcpStream::connect(addr.as_str())?),
        })
    }
}

/// What the proxy does to one connection's client→server byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Kill both directions after forwarding this many client bytes
    /// (`Some(0)` = drop the connection outright).
    pub kill_after: Option<u64>,
    /// Sleep this long before each forwarded chunk.
    pub delay_ms: u64,
    /// Forward at most this many bytes per write (splits frames).
    pub chunk: usize,
}

impl FaultPlan {
    /// The identity plan: bytes pass through untouched.
    pub fn clean() -> FaultPlan {
        FaultPlan {
            kill_after: None,
            delay_ms: 0,
            chunk: usize::MAX,
        }
    }

    /// The plan for connection number `index` under `seed`:
    /// deterministic, clean at and past `clean_after`. Faulty plans
    /// cycle through drop / early kill (mid-frame truncation) / late
    /// kill / delay / split, with the magnitudes drawn from the seed.
    pub fn for_connection(seed: u64, index: u64, clean_after: u64) -> FaultPlan {
        if index >= clean_after {
            return FaultPlan::clean();
        }
        let mut state = (seed ^ (index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut plan = FaultPlan::clean();
        match next() % 5 {
            0 => plan.kill_after = Some(0),
            // Well inside a session's first frames: tears mid-frame
            // more often than not.
            1 => plan.kill_after = Some(64 + next() % 4096),
            2 => plan.kill_after = Some(4096 + next() % 65_536),
            3 => plan.delay_ms = 1 + next() % 5,
            _ => plan.chunk = 1 + (next() % 7) as usize,
        }
        // Half the delayed/split connections *also* die eventually, so
        // the matrix covers compound failures.
        if plan.kill_after.is_none() && next() % 2 == 0 {
            plan.kill_after = Some(1024 + next() % 32_768);
        }
        plan
    }
}

/// The listening front of a [`FaultyLink`].
pub enum Front {
    /// Accept on a Unix-domain listener.
    Unix(UnixListener),
    /// Accept on a TCP listener.
    Tcp(TcpListener),
}

impl Front {
    /// The bound TCP address, when the front is TCP (tests bind port 0
    /// and need the ephemeral port back).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            Front::Unix(_) => None,
            Front::Tcp(l) => l.local_addr().ok(),
        }
    }

    fn accept(&self) -> io::Result<Option<SessionStream>> {
        let res = match self {
            Front::Unix(l) => l.accept().map(|(s, _)| SessionStream::Unix(s)),
            Front::Tcp(l) => l.accept().map(|(s, _)| SessionStream::Tcp(s)),
        };
        match res {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Front::Unix(l) => l.set_nonblocking(true),
            Front::Tcp(l) => l.set_nonblocking(true),
        }
    }
}

/// A running fault-injection proxy; dropping it stops the accept loop
/// (in-flight shuttles drain on their own).
pub struct FaultyLink {
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultyLink {
    /// Starts proxying `front` → `target` with plans drawn from
    /// `seed`, connections `0..clean_after` faulted, the rest clean.
    ///
    /// # Errors
    ///
    /// Setting the front listener non-blocking.
    pub fn spawn(front: Front, target: Target, seed: u64, clean_after: u64) -> io::Result<Self> {
        front.set_nonblocking()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let t_stop = stop.clone();
        let t_accepted = accepted.clone();
        let thread = std::thread::spawn(move || {
            while !t_stop.load(Ordering::SeqCst) {
                match front.accept() {
                    Ok(Some(client)) => {
                        let index = t_accepted.fetch_add(1, Ordering::SeqCst);
                        let plan = FaultPlan::for_connection(seed, index, clean_after);
                        let target = target.clone();
                        std::thread::spawn(move || {
                            let _ = shuttle(client, &target, plan);
                        });
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        Ok(FaultyLink {
            stop,
            accepted,
            thread: Some(thread),
        })
    }

    /// Connections accepted so far (tests assert faults actually
    /// happened by checking this passed `clean_after`).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }
}

impl Drop for FaultyLink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Shuttles one connection: client→server through the fault plan,
/// server→client verbatim on a second thread. Returns when the
/// faulted direction ends (kill, EOF, or error).
fn shuttle(mut client: SessionStream, target: &Target, plan: FaultPlan) -> io::Result<()> {
    if plan.kill_after == Some(0) {
        let _ = client.shutdown(Shutdown::Both);
        return Ok(());
    }
    let mut upstream = match target.connect() {
        Ok(s) => s,
        Err(_) => {
            // Serve is down (restart window): the client sees a drop
            // and retries — exactly the real-world failure.
            let _ = client.shutdown(Shutdown::Both);
            return Ok(());
        }
    };
    // Back-channel: acks/resyncs flow to the client unmangled.
    let mut back_up = upstream.try_clone()?;
    let back_client = client.try_clone()?;
    std::thread::spawn(move || {
        let mut back_client = back_client;
        let mut buf = [0u8; 4096];
        loop {
            match back_up.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if back_client.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = back_client.shutdown(Shutdown::Write);
    });
    let mut forwarded = 0u64;
    let mut buf = [0u8; 8192];
    loop {
        let n = match client.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let mut off = 0;
        while off < n {
            if let Some(kill) = plan.kill_after {
                if forwarded >= kill {
                    let _ = upstream.shutdown(Shutdown::Both);
                    let _ = client.shutdown(Shutdown::Both);
                    return Ok(());
                }
            }
            let mut take = (n - off).min(plan.chunk);
            if let Some(kill) = plan.kill_after {
                // Land the kill exactly on its byte budget, mid-chunk.
                take = take.min((kill - forwarded) as usize).max(1);
            }
            if plan.delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(plan.delay_ms));
            }
            let Some(chunk) = buf.get(off..off + take) else {
                break; // take is clamped to n - off; nothing to forward
            };
            if upstream.write_all(chunk).is_err() {
                let _ = client.shutdown(Shutdown::Both);
                return Ok(());
            }
            forwarded += take as u64;
            off += take;
        }
    }
    // Clean client EOF: let the server finish and answer.
    let _ = upstream.shutdown(Shutdown::Write);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_eventually_clean() {
        for index in 0..32 {
            assert_eq!(
                FaultPlan::for_connection(11, index, 16),
                FaultPlan::for_connection(11, index, 16),
            );
        }
        for index in 16..64 {
            assert_eq!(
                FaultPlan::for_connection(11, index, 16),
                FaultPlan::clean(),
                "connection {index} past clean_after must be clean"
            );
        }
        let faulted = (0..16)
            .filter(|&i| FaultPlan::for_connection(11, i, 16) != FaultPlan::clean())
            .count();
        assert_eq!(faulted, 16, "every pre-threshold connection is faulted");
    }
}
