//! The engine facade: configuration, snapshots, and the public ingest
//! API over the layered collector stack.
//!
//! The actual machinery lives one layer down each: shard routing and
//! per-stream samplers in [`crate::ingest`], eviction/compaction in
//! [`crate::lifecycle`], framing in [`crate::wire`], and multi-process
//! assembly in [`crate::topology`]. This module keeps the original
//! single-process API ([`MonitorEngine::offer`] / `offer_batch` /
//! `snapshot`) source-compatible while exposing the lifecycle surface
//! (`full_snapshot`, `drain_evicted`, `maintain`).
//!
//! ## Determinism / merge-equivalence contract
//!
//! Every stream (key) lives on exactly one shard
//! (`splitmix(key) mod n_shards`), its sampler is seeded from
//! `(base_seed, key)` only, and its points are processed in arrival
//! order — so per-stream state is independent of the shard count and of
//! whether points arrived through [`MonitorEngine::offer`] or a
//! parallel [`MonitorEngine::offer_batch`]. Snapshots list streams in
//! sorted key order and aggregate by folding in that order, which makes
//! the whole [`EngineSnapshot`] **bit-for-bit identical** across shard
//! counts (the `merge_equivalence` integration tests pin N ∈ {1, 2, 8}),
//! and makes [`EngineSnapshot::merge`] associative for combining
//! engines that watched disjoint key sets (link → network roll-ups).
//! Lifecycle sweeps are driven by the tick sequence alone, so the
//! contract survives eviction and compaction too.

use crate::ingest::ShardSet;
use crate::lifecycle::{LifecycleConfig, LifecycleState, LifecycleStats};
use crate::sketch::{SketchSnapshot, SketchTier, TierConfig, TierStats};
use crate::summary::{SummaryConfig, SummarySnapshot};
use sst_core::stream::{SamplerSnapshot, StreamDecision};
use sst_core::summary::{Compactable, MergeableSummary};

pub use crate::ingest::SamplerSpec;

/// Engine configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct MonitorConfig {
    /// Sampler deployed on every stream.
    pub sampler: SamplerSpec,
    /// Shard count (≥ 1); streams are routed by key hash.
    pub n_shards: usize,
    /// Base seed; stream `key` gets `derive_seed(base_seed, key)`.
    pub base_seed: u64,
    /// Per-stream summary configuration.
    pub summary: SummaryConfig,
    /// Eviction / compaction policy (default: disabled).
    pub lifecycle: LifecycleConfig,
    /// Two-tier (exact + sketch) policy (default: all-exact).
    pub tier: TierConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            sampler: SamplerSpec::TakeAll,
            n_shards: 1,
            base_seed: 0,
            summary: SummaryConfig::default(),
            lifecycle: LifecycleConfig::default(),
            tier: TierConfig::default(),
        }
    }
}

impl MonitorConfig {
    /// Sets the sampler spec.
    pub fn sampler(mut self, s: SamplerSpec) -> Self {
        self.sampler = s;
        self
    }

    /// Sets the shard count.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one shard");
        self.n_shards = n;
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.base_seed = s;
        self
    }

    /// Sets the per-stream reservoir capacity.
    pub fn reservoir_capacity(mut self, cap: usize) -> Self {
        self.summary.reservoir_capacity = cap;
        self
    }

    /// Sets the tail-exceedance threshold ladder (ascending).
    pub fn tail_thresholds(mut self, t: Vec<f64>) -> Self {
        self.summary.tail_thresholds = t;
        self
    }

    /// Replaces the whole lifecycle policy.
    pub fn lifecycle(mut self, l: LifecycleConfig) -> Self {
        self.lifecycle = l;
        self
    }

    /// Evicts streams idle for at least `ticks` points.
    pub fn evict_idle_after(mut self, ticks: u64) -> Self {
        self.lifecycle.idle_after = Some(ticks);
        self
    }

    /// Caps the live stream table (LRU eviction beyond `n`).
    pub fn max_streams(mut self, n: usize) -> Self {
        self.lifecycle.max_streams = Some(n);
        self
    }

    /// Compacts every summary toward `bytes` at each sweep.
    pub fn compact_budget(mut self, bytes: usize) -> Self {
        self.lifecycle.compact_budget = Some(bytes);
        self
    }

    /// Sets the maintenance sweep period in ticks.
    pub fn sweep_every(mut self, ticks: u64) -> Self {
        self.lifecycle.sweep_every = ticks.max(1);
        self
    }

    /// Controls whether evicted finals are retained locally (see
    /// [`LifecycleConfig::retain_evicted`]).
    pub fn retain_evicted(mut self, keep: bool) -> Self {
        self.lifecycle.retain_evicted = keep;
        self
    }

    /// Enables the sketch tier: at most `n` exact live streams, every
    /// further key absorbed by the fixed-memory sketch tier (see
    /// [`crate::sketch`]).
    pub fn max_exact_keys(mut self, n: usize) -> Self {
        self.tier.max_exact_keys = Some(n);
        self
    }

    /// Byte budget for the sketch tier's fixed structures.
    pub fn sketch_bytes(mut self, bytes: usize) -> Self {
        self.tier.sketch_bytes = bytes;
        self
    }

    /// Count-min estimate at which a sketched key is promoted to the
    /// exact tier.
    pub fn promote_after(mut self, count: u64) -> Self {
        self.tier.promote_after = count;
        self
    }

    /// Replaces the whole tier policy.
    pub fn tier(mut self, t: TierConfig) -> Self {
        self.tier = t;
        self
    }
}

/// The sharded online monitoring engine.
///
/// # Examples
///
/// ```
/// use sst_monitor::{MonitorConfig, MonitorEngine, SamplerSpec};
///
/// let mut engine = MonitorEngine::new(
///     MonitorConfig::default()
///         .sampler(SamplerSpec::Systematic { interval: 10 })
///         .shards(4),
/// );
/// for i in 0..10_000u64 {
///     engine.offer(i % 7, (i % 100) as f64); // 7 streams
/// }
/// let snap = engine.snapshot();
/// assert_eq!(snap.stream_count(), 7);
/// assert!(snap.aggregate().moments.count() > 0);
/// ```
pub struct MonitorEngine {
    config: MonitorConfig,
    shards: ShardSet,
    lifecycle: LifecycleState,
    /// Present iff `config.tier` is enabled — the long-tail sketch
    /// store below the exact shard table.
    tier: Option<SketchTier>,
}

/// Where a point goes in a tiered engine.
enum Route {
    /// The key has (or just earned) an exact live stream.
    Exact,
    /// Absorbed by the sketch tier.
    Sketched,
}

impl MonitorEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the sampler spec is invalid (zero interval, rate
    /// outside `(0, 1]`) or `n_shards == 0`.
    pub fn new(config: MonitorConfig) -> Self {
        assert!(config.n_shards >= 1, "need at least one shard");
        config
            .sampler
            .build(0)
            .expect("invalid sampler specification");
        let shards = ShardSet::new(config.n_shards);
        let tier = config.tier.enabled().then(|| SketchTier::new(&config));
        MonitorEngine {
            config,
            shards,
            lifecycle: LifecycleState::default(),
            tier,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Offers one point of stream `key`.
    pub fn offer(&mut self, key: u64, value: f64) -> StreamDecision {
        let tick = self.lifecycle.next_tick();
        let decision = self.offer_at_tick(key, value, tick);
        if self.lifecycle.sweep_due(&self.config.lifecycle) {
            self.sweep_now();
        }
        decision
    }

    /// Offers a batch of keyed points, fanning the shards across the
    /// persistent worker pool. Exactly equivalent to offering the
    /// points one by one in order (lifecycle sweeps excepted: a batch
    /// runs at most one sweep, at its end — see [`crate::lifecycle`]).
    ///
    /// With the sketch tier enabled the batch is ingested serially:
    /// the tier's aggregate state is a single arrival-order fold, and
    /// keeping that order is what makes tiered snapshots bit-for-bit
    /// reproducible across shard counts.
    pub fn offer_batch(&mut self, points: &[(u64, f64)]) {
        let first_tick = self.lifecycle.advance(points.len() as u64);
        if self.tier.is_some() {
            for (i, &(k, v)) in points.iter().enumerate() {
                self.offer_at_tick(k, v, first_tick + i as u64);
            }
        } else {
            self.shards.offer_batch(&self.config, points, first_tick);
        }
        if self.lifecycle.sweep_due(&self.config.lifecycle) {
            self.sweep_now();
        }
    }

    /// Routes one ticked point through the tier (when enabled) and the
    /// shard table.
    fn offer_at_tick(&mut self, key: u64, value: f64, tick: u64) -> StreamDecision {
        let route = match &mut self.tier {
            None => Route::Exact,
            Some(tier) => {
                if self.shards.get(key).is_some() {
                    // Live exact stream: stays exact.
                    Route::Exact
                } else if self.shards.stream_count() < tier.max_exact() {
                    // First-sight admission below the cap.
                    Route::Exact
                } else if tier.would_promote(key) {
                    tier.note_promoted();
                    Route::Exact
                } else {
                    tier.absorb(key, value);
                    Route::Sketched
                }
            }
        };
        match route {
            Route::Exact => {
                // Promotion may have left the table at the cap: demote
                // the coldest stream to free the slot first.
                if let Some(tier) = &self.tier {
                    let cap = tier.max_exact();
                    if self.shards.get(key).is_none() && self.shards.stream_count() >= cap {
                        self.demote_coldest();
                    }
                }
                self.shards.offer(&self.config, key, value, tick)
            }
            Route::Sketched => StreamDecision::KeepNormal,
        }
    }

    /// Demotes the coldest exact stream — minimum `(kept count, last
    /// touch, key)`, a deterministic total order — retiring its final
    /// snapshot through the lifecycle store, exactly like an eviction.
    ///
    /// Demotion finals take the eviction path (retired store, or the
    /// `Evicted` outbox in transport mode) rather than folding into the
    /// sketch, so an aggregator that already holds the stream's last
    /// cumulative `Delta` entry replaces it instead of double-counting;
    /// the key's *future* points are what the sketch absorbs.
    fn demote_coldest(&mut self) {
        let victim = self
            .shards
            .iter()
            .map(|(k, st)| (st.summary.count(), st.last_touch, k))
            .min();
        if let Some((_, _, key)) = victim {
            if let Some(state) = self.shards.remove(key) {
                let entry = StreamEntry {
                    key,
                    sampler: state.sampler.snapshot(),
                    summary: state.summary.snapshot(),
                };
                self.lifecycle.retire(entry, &self.config.lifecycle);
                self.tier
                    .as_mut()
                    .expect("demotion implies tiering")
                    .note_demoted();
            }
        }
    }

    /// Runs a maintenance sweep now, regardless of the sweep schedule
    /// (eviction deadlines still apply — only streams actually idle or
    /// over the LRU cap are evicted).
    pub fn maintain(&mut self) {
        self.sweep_now();
    }

    /// One sweep: lifecycle eviction/compaction over the exact tier,
    /// then sketch-tier compaction under the same budget — the sweep
    /// sees both tiers' memory.
    fn sweep_now(&mut self) {
        self.lifecycle
            .sweep(&self.config.lifecycle, &mut self.shards);
        if let (Some(tier), Some(budget)) = (&mut self.tier, self.config.lifecycle.compact_budget) {
            tier.compact(budget);
        }
    }

    /// Streams currently tracked (live only; retired streams are not
    /// counted).
    pub fn stream_count(&self) -> usize {
        self.shards.stream_count()
    }

    /// Lifecycle counters: ticks, evictions, retired keys, sweeps.
    pub fn lifecycle_stats(&self) -> LifecycleStats {
        self.lifecycle.stats()
    }

    /// Takes the final snapshots of streams evicted since the last
    /// drain (transport collectors frame these as `Evicted`). Only
    /// populated when `retain_evicted` is **off**; with it on (the
    /// default) finals live in the retired store and are served by
    /// [`MonitorEngine::full_snapshot`] instead.
    pub fn drain_evicted(&mut self) -> Vec<StreamEntry> {
        self.lifecycle.drain_evicted()
    }

    /// Approximate bytes held per tracked stream state — live summaries
    /// (plus sampler overhead) and the retired store. The compaction
    /// acceptance tests bound `estimated_state_bytes / keys_seen`.
    pub fn estimated_state_bytes(&self) -> usize {
        let live: usize = self
            .shards
            .iter()
            // Box + sampler struct (ChaCha RNG dominates) + table slot.
            .map(|(_, st)| st.summary.estimated_bytes() + 384 + 48)
            .sum();
        let sketch = self.tier.as_ref().map_or(0, |t| t.estimated_bytes());
        live + self.lifecycle.retired_bytes() + sketch
    }

    /// The sketch tier's current image (`None` when the engine runs
    /// all-exact). Collectors attach this to their `Delta` flushes so
    /// the tier state rides the wire without a new frame kind.
    pub fn sketch_snapshot(&self) -> Option<SketchSnapshot> {
        self.tier.as_ref().map(|t| t.snapshot())
    }

    /// Tier counters (exact/sketched key counts, promotions,
    /// demotions, sketch bytes), when the sketch tier is enabled.
    pub fn tier_stats(&self) -> Option<TierStats> {
        self.tier.as_ref().map(|t| TierStats {
            exact_keys: self.shards.stream_count(),
            ..t.stats()
        })
    }

    /// Cumulative entries for the given keys, ascending by key —
    /// live streams only; unknown keys are skipped. This is the delta
    /// extraction a transport collector uses for its dirty set.
    pub fn entries_for(&self, keys: impl IntoIterator<Item = u64>) -> Vec<StreamEntry> {
        let mut out: Vec<StreamEntry> = keys
            .into_iter()
            .filter_map(|key| {
                self.shards.get(key).map(|state| StreamEntry {
                    key,
                    sampler: state.sampler.snapshot(),
                    summary: state.summary.snapshot(),
                })
            })
            .collect();
        out.sort_by_key(|e| e.key);
        out.dedup_by_key(|e| e.key);
        out
    }

    /// A point-in-time snapshot of the **live** streams, in sorted key
    /// order. Bit-for-bit independent of the shard count. Retired
    /// (evicted) streams are excluded — see
    /// [`MonitorEngine::full_snapshot`].
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut streams: Vec<StreamEntry> = self
            .shards
            .iter()
            .map(|(key, state)| StreamEntry {
                key,
                sampler: state.sampler.snapshot(),
                summary: state.summary.snapshot(),
            })
            .collect();
        streams.sort_by_key(|e| e.key);
        EngineSnapshot {
            streams,
            sketch: self.tier.as_ref().map(|t| t.snapshot()),
        }
    }

    /// The live snapshot plus every retained evicted final, merged
    /// per key (retired state first, then the live reincarnation).
    /// With `retain_evicted` on, totals — offered/kept counters, tail
    /// totals, moment counts — are exactly what a never-evicting engine
    /// would report.
    pub fn full_snapshot(&self) -> EngineSnapshot {
        let live = self.snapshot();
        let mut entries: Vec<StreamEntry> = self.lifecycle.retired().cloned().collect();
        let sketch = live.sketch.clone();
        entries.extend(live.streams);
        EngineSnapshot::from_streams(entries).with_sketch(sketch)
    }
}

/// One stream's snapshot inside an [`EngineSnapshot`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamEntry {
    /// The stream key (e.g. packed OD pair).
    pub key: u64,
    /// Sampler counters (offered/kept/inspected).
    pub sampler: SamplerSnapshot,
    /// Summary of the kept samples.
    pub summary: SummarySnapshot,
}

/// A mergeable point-in-time image of a whole engine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineSnapshot {
    /// Per-stream entries, strictly ascending by key.
    streams: Vec<StreamEntry>,
    /// The sketch-tier image, when the engine ran tiered.
    sketch: Option<SketchSnapshot>,
}

impl EngineSnapshot {
    /// Builds a snapshot from per-stream entries (sorted internally;
    /// duplicate keys are merged in input order — the sort is stable).
    /// The sketch section starts empty; see
    /// [`EngineSnapshot::with_sketch`].
    pub fn from_streams(mut streams: Vec<StreamEntry>) -> Self {
        streams.sort_by_key(|e| e.key);
        let mut out: Vec<StreamEntry> = Vec::with_capacity(streams.len());
        for e in streams {
            match out.last_mut() {
                Some(last) if last.key == e.key => {
                    last.sampler.merge_from(&e.sampler);
                    last.summary.merge_from(&e.summary);
                }
                _ => out.push(e),
            }
        }
        EngineSnapshot {
            streams: out,
            sketch: None,
        }
    }

    /// Attaches (or clears) the sketch-tier section.
    pub fn with_sketch(mut self, sketch: Option<SketchSnapshot>) -> Self {
        self.sketch = sketch;
        self
    }

    /// The sketch-tier image, when present.
    pub fn sketch(&self) -> Option<&SketchSnapshot> {
        self.sketch.as_ref()
    }

    /// The per-stream entries, ascending by key.
    pub fn streams(&self) -> &[StreamEntry] {
        &self.streams
    }

    /// Consumes the snapshot into its entries (ascending by key) —
    /// lets frame consumers move reservoirs/ladders instead of cloning
    /// them. Any sketch section is discarded (`Evicted` frames carry
    /// per-stream finals only).
    pub fn into_streams(self) -> Vec<StreamEntry> {
        self.streams
    }

    /// Number of streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Compacts every entry's summary toward `budget_bytes` — what an
    /// aggregator does to bound its own memory when holding snapshots
    /// of very many streams. Totals are untouched.
    pub fn compact(&mut self, budget_bytes: usize) {
        for e in &mut self.streams {
            e.summary.compact(budget_bytes);
        }
        if let Some(sk) = &mut self.sketch {
            sk.compact(budget_bytes);
        }
    }

    /// Link-level summary: every stream's summary folded in key order,
    /// then the sketch tier's aggregate — deterministic for a given
    /// stream set, however it was sharded. Totals cover **both** tiers.
    pub fn aggregate(&self) -> SummarySnapshot {
        let mut acc = SummarySnapshot::default();
        for e in &self.streams {
            acc.merge_from(&e.summary);
        }
        if let Some(sk) = &self.sketch {
            acc.merge_from(&sk.summary);
        }
        acc
    }

    /// Total sampler counters across streams plus the sketch tier.
    pub fn sampler_totals(&self) -> SamplerSnapshot {
        let mut acc = SamplerSnapshot::default();
        for e in &self.streams {
            acc.merge_from(&e.sampler);
        }
        if let Some(sk) = &self.sketch {
            acc.merge_from(&sk.sampler);
        }
        acc
    }

    /// The `k` heaviest streams by kept volume (descending; key breaks
    /// ties so the order is total). The ranking stays a total order
    /// even if a decoded snapshot carries NaN moments — inspection
    /// tools must not panic on hostile input, and a stream whose
    /// volume is unknowable ranks last, not first.
    pub fn top_streams(&self, k: usize) -> Vec<&StreamEntry> {
        fn volume(e: &StreamEntry) -> f64 {
            let v = e.summary.kept_volume();
            if v.is_nan() {
                f64::NEG_INFINITY
            } else {
                v
            }
        }
        let mut ranked: Vec<&StreamEntry> = self.streams.iter().collect();
        ranked.sort_by(|a, b| volume(b).total_cmp(&volume(a)).then(a.key.cmp(&b.key)));
        ranked.truncate(k);
        ranked
    }

    /// Merges another snapshot (an engine over a further set of
    /// streams) into this one: key-wise union, summaries of shared keys
    /// merged, order re-canonicalized. Sketch sections merge via
    /// [`MergeableSummary`] (an absent section is the identity).
    /// Associative, so shard → link → network roll-ups compose.
    pub fn merge(self, other: EngineSnapshot) -> EngineSnapshot {
        let mut all = self.streams;
        all.extend(other.streams);
        let sketch = match (self.sketch, other.sketch) {
            (None, s) | (s, None) => s,
            (Some(mut a), Some(b)) => {
                a.merge_from(&b);
                Some(a)
            }
        };
        EngineSnapshot::from_streams(all).with_sketch(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_core::stream::{StreamSampler, StreamingSystematic};
    use sst_stats::rng::derive_seed;

    fn points(n: usize, n_keys: u64) -> Vec<(u64, f64)> {
        // Deterministic bursty multiplexed workload.
        (0..n)
            .map(|i| {
                let key = (i as u64 * 2654435761) % n_keys;
                let v = if (i / 37) % 11 == 0 {
                    120.0 + (i % 7) as f64
                } else {
                    1.0 + (i % 3) as f64
                };
                (key, v)
            })
            .collect()
    }

    #[test]
    fn single_stream_matches_raw_sampler() {
        // Engine with one stream ≡ driving the sampler directly.
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::Systematic { interval: 5 })
                .seed(9),
        );
        let mut raw = StreamingSystematic::new(5, derive_seed(9, 42)).unwrap();
        let mut kept = Vec::new();
        for i in 0..1000 {
            let v = (i % 13) as f64;
            let d = engine.offer(42, v);
            assert_eq!(d, raw.offer(v), "point {i}");
            if d.is_kept() {
                kept.push(v);
            }
        }
        let snap = engine.snapshot();
        assert_eq!(snap.stream_count(), 1);
        let e = &snap.streams()[0];
        assert_eq!(e.sampler, raw.snapshot());
        assert_eq!(e.summary.moments.count(), kept.len() as u64);
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        assert!((e.summary.moments.mean() - mean).abs() < 1e-12);
    }

    #[test]
    fn batch_equals_pointwise() {
        let pts = points(50_000, 64);
        let config = MonitorConfig::default()
            .sampler(SamplerSpec::SimpleRandom { rate: 0.2 })
            .shards(4)
            .seed(3);
        let mut one = MonitorEngine::new(config.clone());
        for &(k, v) in &pts {
            one.offer(k, v);
        }
        let mut batched = MonitorEngine::new(config);
        batched.offer_batch(&pts);
        assert_eq!(one.snapshot(), batched.snapshot());
    }

    #[test]
    fn all_sampler_specs_run() {
        for spec in [
            SamplerSpec::TakeAll,
            SamplerSpec::Systematic { interval: 10 },
            SamplerSpec::Stratified { interval: 10 },
            SamplerSpec::SimpleRandom { rate: 0.1 },
            SamplerSpec::Bss {
                interval: 10,
                epsilon: 1.0,
                n_pre: 8,
                l: 4,
            },
        ] {
            let mut engine = MonitorEngine::new(MonitorConfig::default().sampler(spec).shards(2));
            engine.offer_batch(&points(20_000, 16));
            let snap = engine.snapshot();
            assert_eq!(snap.stream_count(), 16, "{spec:?}");
            let totals = snap.sampler_totals();
            assert_eq!(totals.offered, 20_000, "{spec:?}");
            assert!(totals.kept > 0, "{spec:?}");
            assert!(totals.kept <= totals.inspected, "{spec:?}");
            assert_eq!(
                snap.aggregate().moments.count(),
                totals.kept as u64,
                "{spec:?}"
            );
        }
    }

    #[test]
    fn top_streams_rank_by_kept_volume() {
        let mut engine = MonitorEngine::new(MonitorConfig::default());
        // Stream 1 carries 10x the volume of stream 2, stream 3 tiny.
        for _ in 0..1000 {
            engine.offer(1, 100.0);
        }
        for _ in 0..1000 {
            engine.offer(2, 10.0);
        }
        engine.offer(3, 1.0);
        let snap = engine.snapshot();
        let top: Vec<u64> = snap.top_streams(2).iter().map(|e| e.key).collect();
        assert_eq!(top, vec![1, 2]);
    }

    #[test]
    fn snapshot_merge_is_key_union() {
        let pts = points(30_000, 32);
        let config = MonitorConfig::default().sampler(SamplerSpec::Systematic { interval: 3 });
        // Split streams across two engines by key parity.
        let mut even = MonitorEngine::new(config.clone());
        let mut odd = MonitorEngine::new(config.clone());
        let mut whole = MonitorEngine::new(config);
        for &(k, v) in &pts {
            if k % 2 == 0 {
                even.offer(k, v);
            } else {
                odd.offer(k, v);
            }
            whole.offer(k, v);
        }
        let merged = even.snapshot().merge(odd.snapshot());
        assert_eq!(merged, whole.snapshot());
        // Associativity the other way around.
        let merged_rev = odd.snapshot().merge(even.snapshot());
        assert_eq!(merged_rev, whole.snapshot());
    }

    #[test]
    fn top_streams_tolerates_nan_values() {
        // Inspection paths must stay total-ordered even when a stream
        // carried NaN (hostile snapshot or broken feed).
        let mut engine = MonitorEngine::new(MonitorConfig::default());
        engine.offer(1, f64::NAN);
        engine.offer(2, 5.0);
        engine.offer(3, 9.0);
        let snap = engine.snapshot();
        let top: Vec<u64> = snap.top_streams(3).iter().map(|e| e.key).collect();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], 3, "finite volumes rank ahead of NaN");
    }

    #[test]
    #[should_panic(expected = "invalid sampler")]
    fn invalid_spec_panics_at_construction() {
        MonitorEngine::new(
            MonitorConfig::default().sampler(SamplerSpec::Systematic { interval: 0 }),
        );
    }

    #[test]
    fn lifecycle_disabled_is_the_identity() {
        // Default lifecycle must not perturb anything: same bits as an
        // engine that never heard of sweeps, even when forced.
        let pts = points(20_000, 32);
        let mut plain = MonitorEngine::new(MonitorConfig::default().shards(2));
        plain.offer_batch(&pts);
        let mut swept = MonitorEngine::new(MonitorConfig::default().shards(2));
        swept.offer_batch(&pts);
        swept.maintain();
        assert_eq!(plain.snapshot(), swept.snapshot());
        assert_eq!(swept.snapshot(), swept.full_snapshot());
        assert_eq!(swept.lifecycle_stats().evicted, 0);
    }
}
