//! The sharded monitoring engine: many concurrent keyed streams, each
//! behind its own streaming sampler, summarized with bounded memory.
//!
//! ## Determinism / merge-equivalence contract
//!
//! Every stream (key) lives on exactly one shard
//! (`splitmix(key) mod n_shards`), its sampler is seeded from
//! `(base_seed, key)` only, and its points are processed in arrival
//! order — so per-stream state is independent of the shard count and of
//! whether points arrived through [`MonitorEngine::offer`] or a
//! parallel [`MonitorEngine::offer_batch`]. Snapshots list streams in
//! sorted key order and aggregate by folding in that order, which makes
//! the whole [`EngineSnapshot`] **bit-for-bit identical** across shard
//! counts (the `merge_equivalence` integration tests pin N ∈ {1, 2, 8}),
//! and makes [`EngineSnapshot::merge`] associative for combining
//! engines that watched disjoint key sets (link → network roll-ups).

use crate::summary::{StreamSummary, SummaryConfig, SummarySnapshot};
use rayon::prelude::*;
use sst_core::bss::{BssConfigError, OnlineTuning, ThresholdPolicy};
use sst_core::stream::{
    SamplerSnapshot, StreamDecision, StreamSampler, StreamingBss, StreamingSimpleRandom,
    StreamingStratified, StreamingSystematic,
};
use sst_core::summary::MergeableSummary;
use sst_stats::rng::derive_seed;
use std::collections::HashMap;

/// Domain-separation tag for shard routing.
const SHARD_TAG: u64 = 0x5348_4152;

/// Which streaming sampler each stream runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SamplerSpec {
    /// Keep every point (pure monitoring, no thinning).
    TakeAll,
    /// Systematic 1-in-C ([`StreamingSystematic`]).
    Systematic {
        /// Sampling interval C.
        interval: usize,
    },
    /// Stratified random, one per bucket of C ([`StreamingStratified`]).
    Stratified {
        /// Bucket length C.
        interval: usize,
    },
    /// Bernoulli thinning at `rate` ([`StreamingSimpleRandom`]).
    SimpleRandom {
        /// Per-point keep probability.
        rate: f64,
    },
    /// Online-tuned Biased Systematic Sampling ([`StreamingBss`]).
    Bss {
        /// Sampling interval C.
        interval: usize,
        /// Threshold factor ε (the paper uses 1.0).
        epsilon: f64,
        /// Pre-samples before the online threshold activates.
        n_pre: usize,
        /// Extras budget L per triggered interval.
        l: usize,
    },
}

impl SamplerSpec {
    /// Builds the sampler for one stream.
    ///
    /// # Errors
    ///
    /// Propagates the underlying sampler's configuration validation.
    pub fn build(&self, seed: u64) -> Result<Box<dyn StreamSampler + Send>, BssConfigError> {
        Ok(match *self {
            SamplerSpec::TakeAll => Box::new(StreamingSystematic::new(1, seed)?),
            SamplerSpec::Systematic { interval } => {
                Box::new(StreamingSystematic::new(interval, seed)?)
            }
            SamplerSpec::Stratified { interval } => {
                Box::new(StreamingStratified::new(interval, seed)?)
            }
            SamplerSpec::SimpleRandom { rate } => Box::new(StreamingSimpleRandom::new(rate, seed)?),
            SamplerSpec::Bss {
                interval,
                epsilon,
                n_pre,
                l,
            } => Box::new(StreamingBss::new(
                interval,
                ThresholdPolicy::Online(OnlineTuning {
                    epsilon,
                    n_pre,
                    ..OnlineTuning::default()
                }),
                l,
                seed,
            )?),
        })
    }
}

/// Engine configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct MonitorConfig {
    /// Sampler deployed on every stream.
    pub sampler: SamplerSpec,
    /// Shard count (≥ 1); streams are routed by key hash.
    pub n_shards: usize,
    /// Base seed; stream `key` gets `derive_seed(base_seed, key)`.
    pub base_seed: u64,
    /// Per-stream summary configuration.
    pub summary: SummaryConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            sampler: SamplerSpec::TakeAll,
            n_shards: 1,
            base_seed: 0,
            summary: SummaryConfig::default(),
        }
    }
}

impl MonitorConfig {
    /// Sets the sampler spec.
    pub fn sampler(mut self, s: SamplerSpec) -> Self {
        self.sampler = s;
        self
    }

    /// Sets the shard count.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one shard");
        self.n_shards = n;
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.base_seed = s;
        self
    }

    /// Sets the per-stream reservoir capacity.
    pub fn reservoir_capacity(mut self, cap: usize) -> Self {
        self.summary.reservoir_capacity = cap;
        self
    }

    /// Sets the tail-exceedance threshold ladder (ascending).
    pub fn tail_thresholds(mut self, t: Vec<f64>) -> Self {
        self.summary.tail_thresholds = t;
        self
    }
}

/// One stream's live state: its sampler plus the summary of what the
/// sampler kept.
struct StreamState {
    sampler: Box<dyn StreamSampler + Send>,
    summary: StreamSummary,
}

/// One shard: the streams routed to it.
#[derive(Default)]
struct Shard {
    streams: HashMap<u64, StreamState>,
}

impl Shard {
    fn offer(&mut self, config: &MonitorConfig, key: u64, value: f64) -> StreamDecision {
        let state = self.streams.entry(key).or_insert_with(|| {
            let seed = derive_seed(config.base_seed, key);
            StreamState {
                sampler: config
                    .sampler
                    .build(seed)
                    .expect("sampler spec validated at engine construction"),
                summary: StreamSummary::new(&config.summary, seed),
            }
        });
        let decision = state.sampler.offer(value);
        if decision.is_kept() {
            state.summary.push(value);
        }
        decision
    }
}

/// Points below this batch size are ingested inline — the partition +
/// fan-out bookkeeping costs more than it saves.
const PAR_BATCH_MIN: usize = 4096;

/// The sharded online monitoring engine.
///
/// # Examples
///
/// ```
/// use sst_monitor::{MonitorConfig, MonitorEngine, SamplerSpec};
///
/// let mut engine = MonitorEngine::new(
///     MonitorConfig::default()
///         .sampler(SamplerSpec::Systematic { interval: 10 })
///         .shards(4),
/// );
/// for i in 0..10_000u64 {
///     engine.offer(i % 7, (i % 100) as f64); // 7 streams
/// }
/// let snap = engine.snapshot();
/// assert_eq!(snap.stream_count(), 7);
/// assert!(snap.aggregate().moments.count() > 0);
/// ```
pub struct MonitorEngine {
    config: MonitorConfig,
    shards: Vec<Shard>,
}

impl MonitorEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the sampler spec is invalid (zero interval, rate
    /// outside `(0, 1]`) or `n_shards == 0`.
    pub fn new(config: MonitorConfig) -> Self {
        assert!(config.n_shards >= 1, "need at least one shard");
        config
            .sampler
            .build(0)
            .expect("invalid sampler specification");
        let shards = (0..config.n_shards).map(|_| Shard::default()).collect();
        MonitorEngine { config, shards }
    }

    /// The engine configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The shard a key routes to.
    fn shard_index(&self, key: u64) -> usize {
        (derive_seed(SHARD_TAG, key) % self.config.n_shards as u64) as usize
    }

    /// Offers one point of stream `key`.
    pub fn offer(&mut self, key: u64, value: f64) -> StreamDecision {
        let idx = self.shard_index(key);
        self.shards[idx].offer(&self.config, key, value)
    }

    /// Offers a batch of keyed points, fanning the shards across the
    /// persistent worker pool. Exactly equivalent to offering the
    /// points one by one in order: the partition preserves each
    /// stream's sub-order and shards share no state.
    pub fn offer_batch(&mut self, points: &[(u64, f64)]) {
        if self.config.n_shards == 1 || points.len() < PAR_BATCH_MIN {
            for &(k, v) in points {
                self.offer(k, v);
            }
            return;
        }
        let n = self.config.n_shards;
        let mut per_shard: Vec<Vec<(u64, f64)>> = (0..n).map(|_| Vec::new()).collect();
        for &(k, v) in points {
            per_shard[self.shard_index(k)].push((k, v));
        }
        let shards = std::mem::take(&mut self.shards);
        let config = &self.config;
        let work: Vec<(Shard, Vec<(u64, f64)>)> = shards.into_iter().zip(per_shard).collect();
        self.shards = work
            .into_par_iter()
            .map(|(mut shard, pts)| {
                for (k, v) in pts {
                    shard.offer(config, k, v);
                }
                shard
            })
            .collect();
    }

    /// Streams currently tracked.
    pub fn stream_count(&self) -> usize {
        self.shards.iter().map(|s| s.streams.len()).sum()
    }

    /// A point-in-time snapshot: per-stream summaries in sorted key
    /// order. Bit-for-bit independent of the shard count.
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut streams: Vec<StreamEntry> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard.streams.iter().map(|(&key, state)| StreamEntry {
                    key,
                    sampler: state.sampler.snapshot(),
                    summary: state.summary.snapshot(),
                })
            })
            .collect();
        streams.sort_by_key(|e| e.key);
        EngineSnapshot { streams }
    }
}

/// One stream's snapshot inside an [`EngineSnapshot`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamEntry {
    /// The stream key (e.g. packed OD pair).
    pub key: u64,
    /// Sampler counters (offered/kept/inspected).
    pub sampler: SamplerSnapshot,
    /// Summary of the kept samples.
    pub summary: SummarySnapshot,
}

/// A mergeable point-in-time image of a whole engine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineSnapshot {
    /// Per-stream entries, strictly ascending by key.
    streams: Vec<StreamEntry>,
}

impl EngineSnapshot {
    /// Builds a snapshot from per-stream entries (sorted internally;
    /// duplicate keys are merged).
    pub fn from_streams(mut streams: Vec<StreamEntry>) -> Self {
        streams.sort_by_key(|e| e.key);
        let mut out: Vec<StreamEntry> = Vec::with_capacity(streams.len());
        for e in streams {
            match out.last_mut() {
                Some(last) if last.key == e.key => {
                    last.sampler.merge_from(&e.sampler);
                    last.summary.merge_from(&e.summary);
                }
                _ => out.push(e),
            }
        }
        EngineSnapshot { streams: out }
    }

    /// The per-stream entries, ascending by key.
    pub fn streams(&self) -> &[StreamEntry] {
        &self.streams
    }

    /// Number of streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Link-level summary: every stream's summary folded in key order —
    /// deterministic for a given stream set, however it was sharded.
    pub fn aggregate(&self) -> SummarySnapshot {
        let mut acc = SummarySnapshot::default();
        for e in &self.streams {
            acc.merge_from(&e.summary);
        }
        acc
    }

    /// Total sampler counters across streams.
    pub fn sampler_totals(&self) -> SamplerSnapshot {
        let mut acc = SamplerSnapshot::default();
        for e in &self.streams {
            acc.merge_from(&e.sampler);
        }
        acc
    }

    /// The `k` heaviest streams by kept volume (descending; key breaks
    /// ties so the order is total). The ranking stays a total order
    /// even if a decoded snapshot carries NaN moments — inspection
    /// tools must not panic on hostile input, and a stream whose
    /// volume is unknowable ranks last, not first.
    pub fn top_streams(&self, k: usize) -> Vec<&StreamEntry> {
        fn volume(e: &StreamEntry) -> f64 {
            let v = e.summary.kept_volume();
            if v.is_nan() {
                f64::NEG_INFINITY
            } else {
                v
            }
        }
        let mut ranked: Vec<&StreamEntry> = self.streams.iter().collect();
        ranked.sort_by(|a, b| volume(b).total_cmp(&volume(a)).then(a.key.cmp(&b.key)));
        ranked.truncate(k);
        ranked
    }

    /// Merges another snapshot (an engine over a further set of
    /// streams) into this one: key-wise union, summaries of shared keys
    /// merged, order re-canonicalized. Associative, so shard → link →
    /// network roll-ups compose.
    pub fn merge(self, other: EngineSnapshot) -> EngineSnapshot {
        let mut all = self.streams;
        all.extend(other.streams);
        EngineSnapshot::from_streams(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize, n_keys: u64) -> Vec<(u64, f64)> {
        // Deterministic bursty multiplexed workload.
        (0..n)
            .map(|i| {
                let key = (i as u64 * 2654435761) % n_keys;
                let v = if (i / 37) % 11 == 0 {
                    120.0 + (i % 7) as f64
                } else {
                    1.0 + (i % 3) as f64
                };
                (key, v)
            })
            .collect()
    }

    #[test]
    fn single_stream_matches_raw_sampler() {
        // Engine with one stream ≡ driving the sampler directly.
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::Systematic { interval: 5 })
                .seed(9),
        );
        let mut raw = StreamingSystematic::new(5, derive_seed(9, 42)).unwrap();
        let mut kept = Vec::new();
        for i in 0..1000 {
            let v = (i % 13) as f64;
            let d = engine.offer(42, v);
            assert_eq!(d, raw.offer(v), "point {i}");
            if d.is_kept() {
                kept.push(v);
            }
        }
        let snap = engine.snapshot();
        assert_eq!(snap.stream_count(), 1);
        let e = &snap.streams()[0];
        assert_eq!(e.sampler, raw.snapshot());
        assert_eq!(e.summary.moments.count(), kept.len() as u64);
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        assert!((e.summary.moments.mean() - mean).abs() < 1e-12);
    }

    #[test]
    fn batch_equals_pointwise() {
        let pts = points(50_000, 64);
        let config = MonitorConfig::default()
            .sampler(SamplerSpec::SimpleRandom { rate: 0.2 })
            .shards(4)
            .seed(3);
        let mut one = MonitorEngine::new(config.clone());
        for &(k, v) in &pts {
            one.offer(k, v);
        }
        let mut batched = MonitorEngine::new(config);
        batched.offer_batch(&pts);
        assert_eq!(one.snapshot(), batched.snapshot());
    }

    #[test]
    fn all_sampler_specs_run() {
        for spec in [
            SamplerSpec::TakeAll,
            SamplerSpec::Systematic { interval: 10 },
            SamplerSpec::Stratified { interval: 10 },
            SamplerSpec::SimpleRandom { rate: 0.1 },
            SamplerSpec::Bss {
                interval: 10,
                epsilon: 1.0,
                n_pre: 8,
                l: 4,
            },
        ] {
            let mut engine = MonitorEngine::new(MonitorConfig::default().sampler(spec).shards(2));
            engine.offer_batch(&points(20_000, 16));
            let snap = engine.snapshot();
            assert_eq!(snap.stream_count(), 16, "{spec:?}");
            let totals = snap.sampler_totals();
            assert_eq!(totals.offered, 20_000, "{spec:?}");
            assert!(totals.kept > 0, "{spec:?}");
            assert!(totals.kept <= totals.inspected, "{spec:?}");
            assert_eq!(
                snap.aggregate().moments.count(),
                totals.kept as u64,
                "{spec:?}"
            );
        }
    }

    #[test]
    fn top_streams_rank_by_kept_volume() {
        let mut engine = MonitorEngine::new(MonitorConfig::default());
        // Stream 1 carries 10x the volume of stream 2, stream 3 tiny.
        for _ in 0..1000 {
            engine.offer(1, 100.0);
        }
        for _ in 0..1000 {
            engine.offer(2, 10.0);
        }
        engine.offer(3, 1.0);
        let snap = engine.snapshot();
        let top: Vec<u64> = snap.top_streams(2).iter().map(|e| e.key).collect();
        assert_eq!(top, vec![1, 2]);
    }

    #[test]
    fn snapshot_merge_is_key_union() {
        let pts = points(30_000, 32);
        let config = MonitorConfig::default().sampler(SamplerSpec::Systematic { interval: 3 });
        // Split streams across two engines by key parity.
        let mut even = MonitorEngine::new(config.clone());
        let mut odd = MonitorEngine::new(config.clone());
        let mut whole = MonitorEngine::new(config);
        for &(k, v) in &pts {
            if k % 2 == 0 {
                even.offer(k, v);
            } else {
                odd.offer(k, v);
            }
            whole.offer(k, v);
        }
        let merged = even.snapshot().merge(odd.snapshot());
        assert_eq!(merged, whole.snapshot());
        // Associativity the other way around.
        let merged_rev = odd.snapshot().merge(even.snapshot());
        assert_eq!(merged_rev, whole.snapshot());
    }

    #[test]
    fn top_streams_tolerates_nan_values() {
        // Inspection paths must stay total-ordered even when a stream
        // carried NaN (hostile snapshot or broken feed).
        let mut engine = MonitorEngine::new(MonitorConfig::default());
        engine.offer(1, f64::NAN);
        engine.offer(2, 5.0);
        engine.offer(3, 9.0);
        let snap = engine.snapshot();
        let top: Vec<u64> = snap.top_streams(3).iter().map(|e| e.key).collect();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], 3, "finite volumes rank ahead of NaN");
    }

    #[test]
    #[should_panic(expected = "invalid sampler")]
    fn invalid_spec_panics_at_construction() {
        MonitorEngine::new(
            MonitorConfig::default().sampler(SamplerSpec::Systematic { interval: 0 }),
        );
    }
}
