//! Transport layer: a versioned, length-prefixed frame protocol for
//! collector → aggregator streams, generalizing the v1 snapshot codec.
//!
//! ## Frame format (protocol v2)
//!
//! ```text
//! frame   := magic "SSWF" | version u8 | kind u8 | len u32le | payload[len]
//! ```
//!
//! | kind | frame          | payload                                     |
//! |-----:|----------------|---------------------------------------------|
//! | 0    | `Hello`        | protocol u8, collector id u64le              |
//! | 1    | `FullSnapshot` | v1 snapshot bytes (`SSMON1…`) — all live     |
//! | 2    | `Delta`        | v1 snapshot bytes — changed streams, cumulative |
//! | 3    | `Evicted`      | v1 snapshot bytes — final entries of retired streams |
//! | 4    | `Bye`          | empty                                        |
//!
//! Snapshot-bearing payloads reuse [`crate::codec`] verbatim, so a
//! frame round-trip is exactly as lossless as the snapshot codec
//! (bit-exact). `Delta` and `FullSnapshot` entries are **cumulative**
//! per stream — the receiver *replaces* its copy of those keys rather
//! than merging, which is what keeps a re-sent delta idempotent.
//!
//! ## Backward compatibility (v1)
//!
//! A byte stream that begins with the v1 snapshot magic (`SSMON1`) is
//! decoded as a single implicit [`Frame::FullSnapshot`] — existing
//! `.ssm` files written by `monitor_tool` keep working against every
//! frame consumer ([`FrameDecoder`] buffers until the legacy snapshot
//! decodes whole).
//!
//! ## Robustness
//!
//! Decoding never panics on untrusted input: truncated buffers report
//! incompleteness (`Ok(None)` from the incremental decoder, an error
//! from the whole-buffer entry points), declared lengths are capped at
//! [`MAX_FRAME_BYTES`] before any allocation, and payloads are
//! validated by the v1 codec's structural checks. The `wire_fuzz`
//! proptest drives random byte mutations through both decoders.

use crate::codec::{decode_snapshot, encode_snapshot, SnapshotCodecError};
use crate::engine::{EngineSnapshot, StreamEntry};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{Read, Write};

/// Magic bytes opening every v2 frame.
pub const FRAME_MAGIC: &[u8; 4] = b"SSWF";

/// Current wire protocol version (v1 is the bare snapshot codec).
pub const WIRE_VERSION: u8 = 2;

/// Hard cap on a declared frame payload length — rejects
/// length-overflow attacks before any allocation happens. 256 MiB is
/// ~1M streams at worst-case entry size, far beyond a sane frame.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// The v1 snapshot magic (re-checked here for legacy detection).
const V1_MAGIC: &[u8; 6] = b"SSMON1";

const KIND_HELLO: u8 = 0;
const KIND_FULL: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_EVICTED: u8 = 3;
const KIND_BYE: u8 = 4;

/// Wire decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer starts with neither the frame magic nor the v1
    /// snapshot magic.
    BadMagic,
    /// The frame declares a protocol version this decoder cannot read.
    UnsupportedVersion(u8),
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversize(u64),
    /// The buffer ended before the declared frame (whole-buffer entry
    /// points only; the incremental decoder reports `Ok(None)`).
    Truncated,
    /// A snapshot payload failed the v1 codec's validation.
    Snapshot(SnapshotCodecError),
    /// A fixed-layout payload held an invalid value.
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => f.write_str("not a wire frame (bad magic)"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire protocol v{v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(n) => write!(f, "frame length {n} exceeds cap"),
            WireError::Truncated => f.write_str("frame buffer truncated"),
            WireError::Snapshot(e) => write!(f, "snapshot payload: {e}"),
            WireError::Corrupt(what) => write!(f, "corrupt frame field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<SnapshotCodecError> for WireError {
    fn from(e: SnapshotCodecError) -> Self {
        WireError::Snapshot(e)
    }
}

/// One protocol frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Opens a collector session: protocol version + collector id.
    Hello {
        /// Protocol version the sender speaks.
        protocol: u8,
        /// Stable id of the sending collector.
        collector_id: u64,
    },
    /// Every live stream of the sender, cumulative (receiver replaces
    /// its whole live view of this collector).
    FullSnapshot(EngineSnapshot),
    /// Streams changed since the last flush, cumulative (receiver
    /// replaces those keys).
    Delta(EngineSnapshot),
    /// Final snapshots of evicted streams (receiver retires those
    /// keys; successive finals for a reappearing key merge).
    Evicted(Vec<StreamEntry>),
    /// Clean end of a collector session.
    Bye,
}

impl Frame {
    /// Short human name of the frame kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::FullSnapshot(_) => "FullSnapshot",
            Frame::Delta(_) => "Delta",
            Frame::Evicted(_) => "Evicted",
            Frame::Bye => "Bye",
        }
    }
}

/// Serializes one frame.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_FRAME_BYTES`] — such a frame
/// could never be decoded (and past `u32::MAX` its length field would
/// silently truncate), so refusing loudly at the writer beats shipping
/// bytes every receiver must reject. [`topology::Collector`] never
/// gets here: it splits large snapshots across frames at a byte
/// target 16× below the cap, which callers encoding their own
/// `Delta`/`FullSnapshot` frames should mirror.
///
/// [`topology::Collector`]: crate::topology::Collector
pub fn encode_frame(frame: &Frame) -> Bytes {
    let (kind, payload): (u8, Bytes) = match frame {
        Frame::Hello {
            protocol,
            collector_id,
        } => {
            let mut b = BytesMut::with_capacity(9);
            b.put_u8(*protocol);
            b.put_u64_le(*collector_id);
            (KIND_HELLO, b.freeze())
        }
        Frame::FullSnapshot(snap) => (KIND_FULL, encode_snapshot(snap)),
        Frame::Delta(snap) => (KIND_DELTA, encode_snapshot(snap)),
        Frame::Evicted(entries) => (
            KIND_EVICTED,
            encode_snapshot(&EngineSnapshot::from_streams(entries.clone())),
        ),
        Frame::Bye => (KIND_BYE, Bytes::new()),
    };
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "frame payload {} exceeds the {} B wire cap — chunk the snapshot across frames",
        payload.len(),
        MAX_FRAME_BYTES
    );
    let mut buf = BytesMut::with_capacity(FRAME_MAGIC.len() + 6 + payload.len());
    buf.put_slice(FRAME_MAGIC);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(kind);
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(&payload);
    buf.freeze()
}

/// Writes one frame to a byte sink.
///
/// # Errors
///
/// Propagates the sink's I/O error.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
    match kind {
        KIND_HELLO => {
            if payload.len() != 9 {
                return Err(WireError::Corrupt("hello payload length"));
            }
            let mut p = payload;
            let protocol = p.get_u8();
            let collector_id = p.get_u64_le();
            Ok(Frame::Hello {
                protocol,
                collector_id,
            })
        }
        KIND_FULL => Ok(Frame::FullSnapshot(decode_snapshot(payload)?)),
        KIND_DELTA => Ok(Frame::Delta(decode_snapshot(payload)?)),
        KIND_EVICTED => Ok(Frame::Evicted(decode_snapshot(payload)?.into_streams())),
        KIND_BYE => {
            if !payload.is_empty() {
                return Err(WireError::Corrupt("bye payload not empty"));
            }
            Ok(Frame::Bye)
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

/// Incremental frame decoder: push bytes in as they arrive, pop frames
/// out as they complete. Handles the v1 legacy form (a bare snapshot)
/// by buffering until the whole snapshot decodes.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Set once the stream is known to be a v1 legacy snapshot.
    legacy: bool,
    /// The legacy snapshot was emitted; only EOF may follow.
    legacy_done: bool,
    /// Buffer length at which the next legacy decode attempt runs —
    /// doubled after every failed (truncated) attempt, so an N-byte
    /// legacy stream costs O(N) total parse work instead of a full
    /// re-parse per pushed chunk (quadratic).
    legacy_retry_at: usize,
    /// The transport reported end-of-input ([`FrameDecoder::finish`]):
    /// attempt the legacy decode regardless of the retry threshold.
    eof: bool,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Tells the decoder no more bytes are coming (EOF). Only needed
    /// for v1 legacy streams, whose length isn't declared up front:
    /// it forces the final decode attempt regardless of the
    /// amortization threshold. Frames already buffered whole are
    /// unaffected.
    pub fn finish(&mut self) {
        self.eof = true;
    }

    /// Bytes buffered but not yet consumed by a completed frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next completed frame, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed input; the decoder is then poisoned
    /// for that stream (callers should drop the connection).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if self.legacy_done {
            return if self.buf.is_empty() {
                Ok(None)
            } else {
                Err(WireError::Corrupt("bytes after legacy snapshot"))
            };
        }
        if self.legacy {
            return self.try_legacy();
        }
        if self.buf.len() < 4 {
            // Could still become either form; wait, unless the prefix
            // already mismatches both magics.
            if !FRAME_MAGIC.starts_with(&self.buf[..self.buf.len().min(4)])
                && !V1_MAGIC.starts_with(&self.buf[..self.buf.len().min(6)])
            {
                return Err(WireError::BadMagic);
            }
            return Ok(None);
        }
        if &self.buf[..4] == FRAME_MAGIC {
            return self.try_v2();
        }
        if self.buf.len() < V1_MAGIC.len() {
            return if V1_MAGIC.starts_with(&self.buf[..self.buf.len()]) {
                Ok(None)
            } else {
                Err(WireError::BadMagic)
            };
        }
        if &self.buf[..V1_MAGIC.len()] == V1_MAGIC {
            self.legacy = true;
            return self.try_legacy();
        }
        Err(WireError::BadMagic)
    }

    fn try_legacy(&mut self) -> Result<Option<Frame>, WireError> {
        if !self.eof && self.buf.len() < self.legacy_retry_at {
            return Ok(None);
        }
        match decode_snapshot(&self.buf) {
            Ok(snap) => {
                self.buf.clear();
                self.legacy_done = true;
                Ok(Some(Frame::FullSnapshot(snap)))
            }
            Err(SnapshotCodecError::Truncated) => {
                // Geometric back-off: don't re-parse the whole prefix
                // until the buffer has roughly doubled.
                self.legacy_retry_at = self.buf.len().saturating_mul(2).max(4096);
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn try_v2(&mut self) -> Result<Option<Frame>, WireError> {
        const HEADER: usize = 4 + 1 + 1 + 4;
        if self.buf.len() < HEADER {
            return Ok(None);
        }
        let version = self.buf[4];
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let kind = self.buf[5];
        let len = u32::from_le_bytes([self.buf[6], self.buf[7], self.buf[8], self.buf[9]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Oversize(len as u64));
        }
        if self.buf.len() < HEADER + len {
            return Ok(None);
        }
        let frame = decode_payload(kind, &self.buf[HEADER..HEADER + len])?;
        self.buf.drain(..HEADER + len);
        Ok(Some(frame))
    }
}

/// Decodes a complete buffer into its frames. Accepts both the v2
/// frame stream and a bare v1 snapshot (one implicit `FullSnapshot`).
///
/// # Errors
///
/// [`WireError::Truncated`] if the buffer ends mid-frame, plus every
/// structural error the incremental decoder reports.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<Frame>, WireError> {
    let mut dec = FrameDecoder::new();
    dec.push(bytes);
    dec.finish();
    let mut frames = Vec::new();
    loop {
        match dec.next_frame()? {
            Some(f) => frames.push(f),
            None => {
                return if dec.pending_bytes() == 0 {
                    Ok(frames)
                } else {
                    Err(WireError::Truncated)
                };
            }
        }
    }
}

/// Reads frames from a blocking byte source (socket, file) until EOF,
/// handing each to `sink`. Returns the frame count.
///
/// # Errors
///
/// I/O errors from the source; decode errors surface as
/// `InvalidData`.
pub fn read_frames(r: &mut impl Read, mut sink: impl FnMut(Frame)) -> std::io::Result<usize> {
    let mut dec = FrameDecoder::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut count = 0usize;
    loop {
        let n = r.read(&mut chunk)?;
        if n == 0 {
            // EOF: a clean stream has nothing buffered (or a legacy
            // snapshot that only now decodes whole).
            dec.finish();
            while let Some(f) = decode_err(&mut dec)? {
                count += 1;
                sink(f);
            }
            if dec.pending_bytes() != 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    WireError::Truncated,
                ));
            }
            return Ok(count);
        }
        dec.push(&chunk[..n]);
        while let Some(f) = decode_err(&mut dec)? {
            count += 1;
            sink(f);
        }
    }
}

fn decode_err(dec: &mut FrameDecoder) -> std::io::Result<Option<Frame>> {
    dec.next_frame()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MonitorConfig, MonitorEngine, SamplerSpec};

    fn sample_snapshot(seed: u64) -> EngineSnapshot {
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::Systematic { interval: 3 })
                .shards(2)
                .seed(seed),
        );
        for i in 0..5000u64 {
            engine.offer(i % 17, (i % 251) as f64);
        }
        engine.snapshot()
    }

    fn roundtrip(frames: &[Frame]) -> Vec<Frame> {
        let mut bytes = Vec::new();
        for f in frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        decode_frames(&bytes).expect("decode")
    }

    #[test]
    fn frame_stream_round_trips_bit_exact() {
        let snap = sample_snapshot(5);
        let evicted: Vec<StreamEntry> = snap.streams()[..3].to_vec();
        let frames = vec![
            Frame::Hello {
                protocol: WIRE_VERSION,
                collector_id: 42,
            },
            Frame::Delta(sample_snapshot(9)),
            Frame::Evicted(evicted),
            Frame::FullSnapshot(snap),
            Frame::Bye,
        ];
        assert_eq!(roundtrip(&frames), frames);
    }

    #[test]
    fn incremental_decode_across_arbitrary_chunking() {
        let frames = vec![
            Frame::Hello {
                protocol: WIRE_VERSION,
                collector_id: 7,
            },
            Frame::Delta(sample_snapshot(1)),
            Frame::Bye,
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        for chunk in [1usize, 3, 7, 64, 1021] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in bytes.chunks(chunk) {
                dec.push(piece);
                while let Some(f) = dec.next_frame().expect("clean stream") {
                    got.push(f);
                }
            }
            assert_eq!(got, frames, "chunk size {chunk}");
            assert_eq!(dec.pending_bytes(), 0);
        }
    }

    #[test]
    fn legacy_v1_snapshot_decodes_as_full_snapshot() {
        let snap = sample_snapshot(3);
        let v1 = encode_snapshot(&snap);
        let frames = decode_frames(&v1).expect("legacy decode");
        assert_eq!(frames, vec![Frame::FullSnapshot(snap)]);
        // Incrementally too, in awkward chunks.
        let mut dec = FrameDecoder::new();
        let (a, b) = v1.split_at(v1.len() / 2);
        dec.push(a);
        assert_eq!(dec.next_frame().expect("partial"), None);
        dec.push(b);
        assert!(matches!(
            dec.next_frame().expect("whole"),
            Some(Frame::FullSnapshot(_))
        ));
    }

    #[test]
    fn oversize_length_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(FRAME_MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.push(1); // FullSnapshot
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frames(&bytes),
            Err(WireError::Oversize(u32::MAX as u64))
        );
    }

    #[test]
    fn unknown_kind_and_version_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(FRAME_MAGIC);
        bytes.push(99);
        bytes.push(0);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            decode_frames(&bytes),
            Err(WireError::UnsupportedVersion(99))
        );

        let mut bytes = Vec::new();
        bytes.extend_from_slice(FRAME_MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.push(200);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_frames(&bytes), Err(WireError::UnknownKind(200)));
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let bytes = encode_frame(&Frame::Delta(sample_snapshot(2)));
        for cut in [1usize, 4, 5, 9, 10, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                decode_frames(&bytes[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected_early() {
        assert_eq!(decode_frames(b"GARBAGE!"), Err(WireError::BadMagic));
        assert_eq!(decode_frames(b"SS"), Err(WireError::Truncated));
    }
}
