//! Transport layer: a versioned, length-prefixed frame protocol for
//! collector ⇄ aggregator streams, generalizing the v1 snapshot codec.
//!
//! ## Frame format (protocols v2–v4)
//!
//! ```text
//! frame   := magic "SSWF" | version u8 | kind u8 | len u32le | payload[len]
//! ```
//!
//! | kind | frame          | v2 payload                                  | v3+ payload |
//! |-----:|----------------|---------------------------------------------|------------|
//! | 0    | `Hello`        | protocol u8, collector id u64le              | + mode u8, first_seq u64le |
//! | 1    | `FullSnapshot` | v1 snapshot bytes (`SSMON1…`) — all live     | seq u64le, then as v2 |
//! | 2    | `Delta`        | v1 snapshot bytes — changed streams, cumulative | seq u64le, then as v2 |
//! | 3    | `Evicted`      | v1 snapshot bytes — final entries of retired streams | seq u64le, then as v2 |
//! | 4    | `Bye`          | empty                                        | seq u64le |
//! | 5    | `Ack`          | — (v3+ only)                                 | through_seq u64le |
//! | 6    | `Resync`       | — (v3+ only)                                 | from_seq u64le |
//! | 7    | `Shutdown`     | — (v3+ only)                                 | empty |
//! | 8    | `DeltaDiff`    | — (v4 only)                                  | seq u64le, `SSDF…` diff payload |
//!
//! Version 2 is the original **one-way** framed protocol. Version 3
//! makes sessions **sequenced and acknowledged**: every
//! collector-originated data frame carries a `u64` sequence number
//! (the `Hello` carries the first sequence the connection will send,
//! plus a resume mode — see [`HelloResume`]), and three
//! aggregator-originated frames flow back on the same connection:
//! `Ack` (frames through `through_seq` are applied — the sender may
//! drop them from its replay window), `Resync` (the aggregator is
//! missing frames from `from_seq` on and wants a full-snapshot
//! re-baseline), and `Shutdown` (graceful drain on serve teardown).
//! Version 4 adds the `DeltaDiff` frame: per-stream **differential**
//! payloads ([`crate::diff::StreamDiff`]) applied against the
//! receiver's live view under the seq watermark, with `Resync` as the
//! recovery path whenever a patch fails validation — the steady-state
//! bytes win the ROADMAP's delta-diff item calls for. Every version
//! decodes through the same [`FrameDecoder`]; `Hello` negotiation
//! picks the highest common version, so v2 and v3 peers are accepted
//! verbatim by a v4 aggregator.
//!
//! Snapshot-bearing payloads reuse [`crate::codec`] verbatim, so a
//! frame round-trip is exactly as lossless as the snapshot codec
//! (bit-exact). `Delta` and `FullSnapshot` entries are **cumulative**
//! per stream — the receiver *replaces* its copy of those keys rather
//! than merging, which is what keeps a re-sent delta idempotent.
//! `Evicted` finals *merge* — which is why their redelivery is guarded
//! by the v3 sequence watermark, never by blind re-application.
//!
//! ## Backward compatibility (v1)
//!
//! A byte stream that begins with the v1 snapshot magic (`SSMON1`) is
//! decoded as a single implicit [`Frame::FullSnapshot`] — existing
//! `.ssm` files written by `monitor_tool` keep working against every
//! frame consumer ([`FrameDecoder`] buffers until the legacy snapshot
//! decodes whole).
//!
//! ## Robustness
//!
//! Decoding never panics on untrusted input: truncated buffers report
//! incompleteness (`Ok(None)` from the incremental decoder, an error
//! from the whole-buffer entry points), declared lengths are capped at
//! [`MAX_FRAME_BYTES`] before any allocation, and payloads are
//! validated by the v1 codec's structural checks. The `wire_fuzz`
//! proptest drives random byte mutations through both decoders and
//! both protocol versions.

use crate::codec::{
    decode_diff_payload, decode_snapshot, encode_diff_payload, encode_snapshot, SnapshotCodecError,
};
use crate::diff::StreamDiff;
use crate::engine::{EngineSnapshot, StreamEntry};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{Read, Write};

/// Magic bytes opening every framed (v2/v3) frame.
pub const FRAME_MAGIC: &[u8; 4] = b"SSWF";

/// Current wire protocol version: sequenced, acknowledged sessions
/// with differential (`DeltaDiff`) data frames. (v1 is the bare
/// snapshot codec, v2 the one-way framed protocol, v3 sequenced
/// sessions without diffs.)
pub const WIRE_VERSION: u8 = 4;

/// The first sequenced protocol version: any frame tagged at or above
/// this carries the v3 session machinery (data seqs, resume-mode
/// `Hello`s, control frames). v3 streams — what every pre-diff sender
/// emits — decode unchanged.
pub const WIRE_VERSION_SEQUENCED: u8 = 3;

/// The one-way framed protocol version — still fully accepted; what
/// unsequenced senders (pipes, `.ssm` frame files) emit.
pub const WIRE_VERSION_FRAMED: u8 = 2;

/// Hard cap on a declared frame payload length — rejects
/// length-overflow attacks before any allocation happens. 256 MiB is
/// ~1M streams at worst-case entry size, far beyond a sane frame.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// The v1 snapshot magic (re-checked here for legacy detection).
const V1_MAGIC: &[u8; 6] = b"SSMON1";

const KIND_HELLO: u8 = 0;
const KIND_FULL: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_EVICTED: u8 = 3;
const KIND_BYE: u8 = 4;
const KIND_ACK: u8 = 5;
const KIND_RESYNC: u8 = 6;
const KIND_SHUTDOWN: u8 = 7;
const KIND_DELTA_DIFF: u8 = 8;

/// Wire decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer starts with neither the frame magic nor the v1
    /// snapshot magic.
    BadMagic,
    /// The frame declares a protocol version this decoder cannot read.
    UnsupportedVersion(u8),
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversize(u64),
    /// The buffer ended before the declared frame (whole-buffer entry
    /// points only; the incremental decoder reports `Ok(None)`).
    Truncated,
    /// A snapshot payload failed the v1 codec's validation.
    Snapshot(SnapshotCodecError),
    /// A fixed-layout payload held an invalid value.
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => f.write_str("not a wire frame (bad magic)"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire protocol v{v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(n) => write!(f, "frame length {n} exceeds cap"),
            WireError::Truncated => f.write_str("frame buffer truncated"),
            WireError::Snapshot(e) => write!(f, "snapshot payload: {e}"),
            WireError::Corrupt(what) => write!(f, "corrupt frame field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<SnapshotCodecError> for WireError {
    fn from(e: SnapshotCodecError) -> Self {
        WireError::Snapshot(e)
    }
}

/// How a v3 (sequenced) `Hello` relates this connection to the
/// collector's prior sessions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HelloResume {
    /// A brand-new session; data seqs start at `first_seq` (normally
    /// 0).
    Fresh {
        /// Sequence number of the first data frame to follow.
        first_seq: u64,
    },
    /// A reconnect that will replay its unacked window verbatim,
    /// starting at `first_seq`. The aggregator skips any seq it
    /// already applied.
    Replay {
        /// Sequence number of the first replayed frame.
        first_seq: u64,
    },
    /// The answer to an aggregator `Resync` request: the live view is
    /// about to be re-baselined by a `FullSnapshot`, with fresh seqs
    /// starting at `first_seq`.
    Resync {
        /// Sequence number of the first re-baseline frame.
        first_seq: u64,
    },
}

impl HelloResume {
    fn mode_byte(self) -> u8 {
        match self {
            HelloResume::Fresh { .. } => 0,
            HelloResume::Replay { .. } => 1,
            HelloResume::Resync { .. } => 2,
        }
    }

    /// Sequence number of the first data frame this connection sends.
    pub fn first_seq(self) -> u64 {
        match self {
            HelloResume::Fresh { first_seq }
            | HelloResume::Replay { first_seq }
            | HelloResume::Resync { first_seq } => first_seq,
        }
    }
}

/// One protocol frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Opens a collector session: protocol version + collector id.
    Hello {
        /// Protocol version the sender speaks.
        protocol: u8,
        /// Stable id of the sending collector.
        collector_id: u64,
        /// `Some` on a sequenced (v3) session: how this connection
        /// resumes prior state. `None` on unsequenced (v2) sessions.
        resume: Option<HelloResume>,
    },
    /// Every live stream of the sender, cumulative (receiver replaces
    /// its whole live view of this collector).
    FullSnapshot(EngineSnapshot),
    /// Streams changed since the last flush, cumulative (receiver
    /// replaces those keys).
    Delta(EngineSnapshot),
    /// Final snapshots of evicted streams (receiver retires those
    /// keys; successive finals for a reappearing key merge).
    Evicted(Vec<StreamEntry>),
    /// Per-stream differential payloads (v4, sequenced only): each
    /// diff advances the receiver's live entry for its key from the
    /// acked baseline — bit-exactly — or fails validation, turning
    /// into a `Resync` re-baseline. Never merged, never applied out of
    /// order: the seq watermark makes redelivery idempotent
    /// (duplicates skip) and gaps explicit.
    DeltaDiff(Vec<StreamDiff>),
    /// Clean end of a collector session.
    Bye,
    /// Aggregator → collector: every frame through `through_seq` is
    /// applied; the sender may drop them from its replay window.
    Ack {
        /// Highest contiguous applied sequence number.
        through_seq: u64,
    },
    /// Aggregator → collector: frames from `from_seq` on are missing —
    /// re-baseline with a `Resync`-mode `Hello`, the unacked evicted
    /// finals, and a `FullSnapshot`.
    Resync {
        /// First sequence number the aggregator does not hold.
        from_seq: u64,
    },
    /// Aggregator → collector: the serve is draining; reconnect later.
    Shutdown,
}

impl Frame {
    /// Short human name of the frame kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::FullSnapshot(_) => "FullSnapshot",
            Frame::Delta(_) => "Delta",
            Frame::Evicted(_) => "Evicted",
            Frame::DeltaDiff(_) => "DeltaDiff",
            Frame::Bye => "Bye",
            Frame::Ack { .. } => "Ack",
            Frame::Resync { .. } => "Resync",
            Frame::Shutdown => "Shutdown",
        }
    }

    /// `true` for the aggregator-originated control frames (`Ack`,
    /// `Resync`, `Shutdown`) that only exist at protocol v3.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Frame::Ack { .. } | Frame::Resync { .. } | Frame::Shutdown
        )
    }
}

/// A decoded frame together with the v3 sequence number its envelope
/// carried (`None` for v2/legacy frames, `Hello`s and control frames).
#[derive(Clone, Debug, PartialEq)]
pub struct SeqFrame {
    /// The v3 data-frame sequence number, if any.
    pub seq: Option<u64>,
    /// The frame itself.
    pub frame: Frame,
}

/// Serializes one frame.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_FRAME_BYTES`] — such a frame
/// could never be decoded (and past `u32::MAX` its length field would
/// silently truncate), so refusing loudly at the writer beats shipping
/// bytes every receiver must reject. [`topology::Collector`] never
/// gets here: it splits large snapshots across frames at a byte
/// target 16× below the cap, which callers encoding their own
/// `Delta`/`FullSnapshot` frames should mirror.
///
/// [`topology::Collector`]: crate::topology::Collector
pub fn encode_frame(frame: &Frame) -> Bytes {
    let (version, kind, payload): (u8, u8, Bytes) = match frame {
        Frame::Hello {
            protocol,
            collector_id,
            resume: None,
        } => {
            let mut b = BytesMut::with_capacity(9);
            b.put_u8(*protocol);
            b.put_u64_le(*collector_id);
            (WIRE_VERSION_FRAMED, KIND_HELLO, b.freeze())
        }
        Frame::Hello {
            protocol,
            collector_id,
            resume: Some(resume),
        } => {
            let mut b = BytesMut::with_capacity(18);
            b.put_u8(*protocol);
            b.put_u64_le(*collector_id);
            b.put_u8(resume.mode_byte());
            b.put_u64_le(resume.first_seq());
            (WIRE_VERSION, KIND_HELLO, b.freeze())
        }
        Frame::FullSnapshot(snap) => (WIRE_VERSION_FRAMED, KIND_FULL, encode_snapshot(snap)),
        Frame::Delta(snap) => (WIRE_VERSION_FRAMED, KIND_DELTA, encode_snapshot(snap)),
        Frame::Evicted(entries) => (
            WIRE_VERSION_FRAMED,
            KIND_EVICTED,
            encode_snapshot(&EngineSnapshot::from_streams(entries.clone())),
        ),
        Frame::DeltaDiff(_) => {
            panic!("DeltaDiff frames are sequenced; use encode_frame_seq")
        }
        Frame::Bye => (WIRE_VERSION_FRAMED, KIND_BYE, Bytes::new()),
        Frame::Ack { through_seq } => (
            WIRE_VERSION,
            KIND_ACK,
            Bytes::copy_from_slice(&through_seq.to_le_bytes()),
        ),
        Frame::Resync { from_seq } => (
            WIRE_VERSION,
            KIND_RESYNC,
            Bytes::copy_from_slice(&from_seq.to_le_bytes()),
        ),
        Frame::Shutdown => (WIRE_VERSION, KIND_SHUTDOWN, Bytes::new()),
    };
    assemble(version, kind, &payload, None)
}

/// Serializes one **data** frame (`FullSnapshot`, `Delta`, `Evicted`,
/// `DeltaDiff`, `Bye`) at the current protocol version with the given
/// sequence number.
///
/// # Panics
///
/// As [`encode_frame`] on oversize payloads, and on frames that do not
/// carry a data sequence number (`Hello` encodes its resume info via
/// [`encode_frame`]; control frames are unsequenced).
pub fn encode_frame_seq(seq: u64, frame: &Frame) -> Bytes {
    let (kind, payload): (u8, Bytes) = match frame {
        Frame::FullSnapshot(snap) => (KIND_FULL, encode_snapshot(snap)),
        Frame::Delta(snap) => (KIND_DELTA, encode_snapshot(snap)),
        Frame::Evicted(entries) => (
            KIND_EVICTED,
            encode_snapshot(&EngineSnapshot::from_streams(entries.clone())),
        ),
        Frame::DeltaDiff(diffs) => (KIND_DELTA_DIFF, encode_diff_payload(diffs)),
        Frame::Bye => (KIND_BYE, Bytes::new()),
        other => panic!("{} frames do not carry a data seq", other.kind_name()),
    };
    assemble(WIRE_VERSION, kind, &payload, Some(seq))
}

fn assemble(version: u8, kind: u8, payload: &[u8], seq: Option<u64>) -> Bytes {
    let seq_len = if seq.is_some() { 8 } else { 0 };
    assert!(
        payload.len() + seq_len <= MAX_FRAME_BYTES,
        "frame payload {} exceeds the {} B wire cap — chunk the snapshot across frames",
        payload.len(),
        MAX_FRAME_BYTES
    );
    let mut buf = BytesMut::with_capacity(FRAME_MAGIC.len() + 6 + seq_len + payload.len());
    buf.put_slice(FRAME_MAGIC);
    buf.put_u8(version);
    buf.put_u8(kind);
    let len = u32::try_from(payload.len() + seq_len)
        .expect("frame length fits u32: capped at MAX_FRAME_BYTES by the assert above");
    buf.put_u32_le(len);
    if let Some(s) = seq {
        buf.put_u64_le(s);
    }
    buf.put_slice(payload);
    buf.freeze()
}

/// Writes one frame to a byte sink.
///
/// # Errors
///
/// Propagates the sink's I/O error.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Reads an exactly-8-byte little-endian `u64` field without a panic
/// path: short or long slices are wire corruption, not programmer bugs.
fn le_u64(bytes: &[u8]) -> Result<u64, WireError> {
    let arr: [u8; 8] = bytes
        .try_into()
        .map_err(|_| WireError::Corrupt("u64 field length"))?;
    Ok(u64::from_le_bytes(arr))
}

fn decode_payload(version: u8, kind: u8, payload: &[u8]) -> Result<SeqFrame, WireError> {
    let sequenced = version >= WIRE_VERSION_SEQUENCED;
    // Sequenced data frames open with their seq; everything else
    // carries none.
    let (seq, payload) = if sequenced
        && matches!(
            kind,
            KIND_FULL | KIND_DELTA | KIND_EVICTED | KIND_BYE | KIND_DELTA_DIFF
        ) {
        if payload.len() < 8 {
            return Err(WireError::Corrupt("missing data seq"));
        }
        let (s, rest) = payload.split_at(8);
        (Some(le_u64(s)?), rest)
    } else {
        (None, payload)
    };
    let frame = match kind {
        KIND_HELLO => {
            let want = if sequenced { 18 } else { 9 };
            if payload.len() != want {
                return Err(WireError::Corrupt("hello payload length"));
            }
            let mut p = payload;
            let protocol = p.get_u8();
            let collector_id = p.get_u64_le();
            let resume = if sequenced {
                let mode = p.get_u8();
                let first_seq = p.get_u64_le();
                Some(match mode {
                    0 => HelloResume::Fresh { first_seq },
                    1 => HelloResume::Replay { first_seq },
                    2 => HelloResume::Resync { first_seq },
                    _ => return Err(WireError::Corrupt("hello resume mode")),
                })
            } else {
                None
            };
            Frame::Hello {
                protocol,
                collector_id,
                resume,
            }
        }
        KIND_FULL => Frame::FullSnapshot(decode_snapshot(payload)?),
        KIND_DELTA => Frame::Delta(decode_snapshot(payload)?),
        KIND_EVICTED => Frame::Evicted(decode_snapshot(payload)?.into_streams()),
        KIND_DELTA_DIFF => {
            if version < WIRE_VERSION {
                return Err(WireError::Corrupt("differential frame below protocol v4"));
            }
            Frame::DeltaDiff(decode_diff_payload(payload)?)
        }
        KIND_BYE => {
            if !payload.is_empty() {
                return Err(WireError::Corrupt("bye payload not empty"));
            }
            Frame::Bye
        }
        KIND_ACK | KIND_RESYNC if !sequenced => {
            return Err(WireError::Corrupt("control frame below protocol v3"));
        }
        KIND_ACK => {
            if payload.len() != 8 {
                return Err(WireError::Corrupt("ack payload length"));
            }
            Frame::Ack {
                through_seq: le_u64(payload)?,
            }
        }
        KIND_RESYNC => {
            if payload.len() != 8 {
                return Err(WireError::Corrupt("resync payload length"));
            }
            Frame::Resync {
                from_seq: le_u64(payload)?,
            }
        }
        KIND_SHUTDOWN => {
            if !sequenced {
                return Err(WireError::Corrupt("control frame below protocol v3"));
            }
            if !payload.is_empty() {
                return Err(WireError::Corrupt("shutdown payload not empty"));
            }
            Frame::Shutdown
        }
        other => return Err(WireError::UnknownKind(other)),
    };
    Ok(SeqFrame { seq, frame })
}

/// Incremental frame decoder: push bytes in as they arrive, pop frames
/// out as they complete. Handles the v1 legacy form (a bare snapshot)
/// by buffering until the whole snapshot decodes.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Set once the stream is known to be a v1 legacy snapshot.
    legacy: bool,
    /// The legacy snapshot was emitted; only EOF may follow.
    legacy_done: bool,
    /// Buffer length at which the next legacy decode attempt runs —
    /// doubled after every failed (truncated) attempt, so an N-byte
    /// legacy stream costs O(N) total parse work instead of a full
    /// re-parse per pushed chunk (quadratic).
    legacy_retry_at: usize,
    /// The transport reported end-of-input ([`FrameDecoder::finish`]):
    /// attempt the legacy decode regardless of the retry threshold.
    eof: bool,
    /// On-the-wire size (header + payload) of the last frame returned
    /// by [`FrameDecoder::next_seq_frame`], for byte accounting.
    last_frame_bytes: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Tells the decoder no more bytes are coming (EOF). Only needed
    /// for v1 legacy streams, whose length isn't declared up front:
    /// it forces the final decode attempt regardless of the
    /// amortization threshold. Frames already buffered whole are
    /// unaffected.
    pub fn finish(&mut self) {
        self.eof = true;
    }

    /// Bytes buffered but not yet consumed by a completed frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// On-the-wire size (header + payload) of the most recent frame
    /// returned by [`FrameDecoder::next_frame`] /
    /// [`FrameDecoder::next_seq_frame`]; 0 before the first frame.
    /// Lets receivers attribute transport bytes to frame kinds.
    pub fn last_frame_bytes(&self) -> usize {
        self.last_frame_bytes
    }

    /// Pops the next completed frame, `Ok(None)` when more bytes are
    /// needed. Drops the v3 sequence number — sequenced consumers use
    /// [`FrameDecoder::next_seq_frame`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed input; the decoder is then poisoned
    /// for that stream (callers should drop the connection).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        Ok(self.next_seq_frame()?.map(|sf| sf.frame))
    }

    /// Pops the next completed frame with its v3 sequence number
    /// (`None` seq for v2/legacy frames, `Hello`s and control frames).
    ///
    /// # Errors
    ///
    /// As [`FrameDecoder::next_frame`].
    pub fn next_seq_frame(&mut self) -> Result<Option<SeqFrame>, WireError> {
        if self.legacy_done {
            return if self.buf.is_empty() {
                Ok(None)
            } else {
                Err(WireError::Corrupt("bytes after legacy snapshot"))
            };
        }
        if self.legacy {
            return self.try_legacy();
        }
        if self.buf.len() < 4 {
            // Could still become either form; wait, unless the prefix
            // already mismatches both magics.
            if !FRAME_MAGIC.starts_with(&self.buf[..self.buf.len().min(4)])
                && !V1_MAGIC.starts_with(&self.buf[..self.buf.len().min(6)])
            {
                return Err(WireError::BadMagic);
            }
            return Ok(None);
        }
        if &self.buf[..4] == FRAME_MAGIC {
            return self.try_v2();
        }
        if self.buf.len() < V1_MAGIC.len() {
            return if V1_MAGIC.starts_with(&self.buf[..self.buf.len()]) {
                Ok(None)
            } else {
                Err(WireError::BadMagic)
            };
        }
        if &self.buf[..V1_MAGIC.len()] == V1_MAGIC {
            self.legacy = true;
            return self.try_legacy();
        }
        Err(WireError::BadMagic)
    }

    fn try_legacy(&mut self) -> Result<Option<SeqFrame>, WireError> {
        if !self.eof && self.buf.len() < self.legacy_retry_at {
            return Ok(None);
        }
        match decode_snapshot(&self.buf) {
            Ok(snap) => {
                self.last_frame_bytes = self.buf.len();
                self.buf.clear();
                self.legacy_done = true;
                Ok(Some(SeqFrame {
                    seq: None,
                    frame: Frame::FullSnapshot(snap),
                }))
            }
            Err(SnapshotCodecError::Truncated) => {
                // Geometric back-off: don't re-parse the whole prefix
                // until the buffer has roughly doubled.
                self.legacy_retry_at = self.buf.len().saturating_mul(2).max(4096);
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn try_v2(&mut self) -> Result<Option<SeqFrame>, WireError> {
        const HEADER: usize = 4 + 1 + 1 + 4;
        if self.buf.len() < HEADER {
            return Ok(None);
        }
        let version = self.buf[4];
        if !(WIRE_VERSION_FRAMED..=WIRE_VERSION).contains(&version) {
            return Err(WireError::UnsupportedVersion(version));
        }
        let kind = self.buf[5];
        let len = u32::from_le_bytes([self.buf[6], self.buf[7], self.buf[8], self.buf[9]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Oversize(len as u64));
        }
        if self.buf.len() < HEADER + len {
            return Ok(None);
        }
        let frame = decode_payload(version, kind, &self.buf[HEADER..HEADER + len])?;
        self.buf.drain(..HEADER + len);
        self.last_frame_bytes = HEADER + len;
        Ok(Some(frame))
    }
}

/// Decodes a complete buffer into its frames. Accepts both the v2
/// frame stream and a bare v1 snapshot (one implicit `FullSnapshot`).
///
/// # Errors
///
/// [`WireError::Truncated`] if the buffer ends mid-frame, plus every
/// structural error the incremental decoder reports.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<Frame>, WireError> {
    let mut dec = FrameDecoder::new();
    dec.push(bytes);
    dec.finish();
    let mut frames = Vec::new();
    loop {
        match dec.next_frame()? {
            Some(f) => frames.push(f),
            None => {
                return if dec.pending_bytes() == 0 {
                    Ok(frames)
                } else {
                    Err(WireError::Truncated)
                };
            }
        }
    }
}

/// Reads frames from a blocking byte source (socket, file) until EOF,
/// handing each to `sink`. Returns the frame count.
///
/// # Errors
///
/// I/O errors from the source; decode errors surface as
/// `InvalidData`.
pub fn read_frames(r: &mut impl Read, mut sink: impl FnMut(Frame)) -> std::io::Result<usize> {
    let mut dec = FrameDecoder::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut count = 0usize;
    loop {
        let n = r.read(&mut chunk)?;
        if n == 0 {
            // EOF: a clean stream has nothing buffered (or a legacy
            // snapshot that only now decodes whole).
            dec.finish();
            while let Some(f) = decode_err(&mut dec)? {
                count += 1;
                sink(f);
            }
            if dec.pending_bytes() != 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    WireError::Truncated,
                ));
            }
            return Ok(count);
        }
        dec.push(&chunk[..n]);
        while let Some(f) = decode_err(&mut dec)? {
            count += 1;
            sink(f);
        }
    }
}

fn decode_err(dec: &mut FrameDecoder) -> std::io::Result<Option<Frame>> {
    dec.next_frame()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MonitorConfig, MonitorEngine, SamplerSpec};

    fn sample_snapshot(seed: u64) -> EngineSnapshot {
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::Systematic { interval: 3 })
                .shards(2)
                .seed(seed),
        );
        for i in 0..5000u64 {
            engine.offer(i % 17, (i % 251) as f64);
        }
        engine.snapshot()
    }

    fn roundtrip(frames: &[Frame]) -> Vec<Frame> {
        let mut bytes = Vec::new();
        for f in frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        decode_frames(&bytes).expect("decode")
    }

    #[test]
    fn frame_stream_round_trips_bit_exact() {
        let snap = sample_snapshot(5);
        let evicted: Vec<StreamEntry> = snap.streams()[..3].to_vec();
        let frames = vec![
            Frame::Hello {
                protocol: WIRE_VERSION,
                collector_id: 42,
                resume: None,
            },
            Frame::Delta(sample_snapshot(9)),
            Frame::Evicted(evicted),
            Frame::FullSnapshot(snap),
            Frame::Bye,
        ];
        assert_eq!(roundtrip(&frames), frames);
    }

    #[test]
    fn sequenced_v3_frames_round_trip_with_their_seqs() {
        let snap = sample_snapshot(5);
        let evicted: Vec<StreamEntry> = snap.streams()[..2].to_vec();
        let hello = Frame::Hello {
            protocol: WIRE_VERSION,
            collector_id: 42,
            resume: Some(HelloResume::Replay { first_seq: 17 }),
        };
        let data = [
            Frame::Evicted(evicted),
            Frame::Delta(sample_snapshot(9)),
            Frame::FullSnapshot(snap),
            Frame::Bye,
        ];
        let controls = [
            Frame::Ack { through_seq: 20 },
            Frame::Resync { from_seq: 18 },
            Frame::Shutdown,
        ];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(&hello));
        for (i, f) in data.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame_seq(17 + i as u64, f));
        }
        for f in &controls {
            bytes.extend_from_slice(&encode_frame(f));
        }
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        dec.finish();
        let mut got = Vec::new();
        while let Some(sf) = dec.next_seq_frame().expect("clean stream") {
            got.push(sf);
        }
        assert_eq!(
            got[0],
            SeqFrame {
                seq: None,
                frame: hello
            }
        );
        for (i, f) in data.iter().enumerate() {
            assert_eq!(
                got[1 + i],
                SeqFrame {
                    seq: Some(17 + i as u64),
                    frame: f.clone()
                }
            );
        }
        for (i, f) in controls.iter().enumerate() {
            assert_eq!(
                got[1 + data.len() + i],
                SeqFrame {
                    seq: None,
                    frame: f.clone()
                }
            );
        }
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn hello_resume_modes_round_trip() {
        for resume in [
            HelloResume::Fresh { first_seq: 0 },
            HelloResume::Replay { first_seq: 914 },
            HelloResume::Resync {
                first_seq: u64::MAX,
            },
        ] {
            let hello = Frame::Hello {
                protocol: WIRE_VERSION,
                collector_id: 3,
                resume: Some(resume),
            };
            assert_eq!(roundtrip(std::slice::from_ref(&hello)), vec![hello]);
        }
    }

    #[test]
    fn control_frames_below_v3_are_rejected() {
        // Hand-craft an Ack inside a v2 envelope: structurally framed,
        // semantically impossible (v2 is one-way).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(FRAME_MAGIC);
        bytes.push(WIRE_VERSION_FRAMED);
        bytes.push(5); // Ack
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(
            decode_frames(&bytes),
            Err(WireError::Corrupt("control frame below protocol v3"))
        );
    }

    #[test]
    fn incremental_decode_across_arbitrary_chunking() {
        let frames = vec![
            Frame::Hello {
                protocol: WIRE_VERSION,
                collector_id: 7,
                resume: None,
            },
            Frame::Delta(sample_snapshot(1)),
            Frame::Bye,
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        for chunk in [1usize, 3, 7, 64, 1021] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in bytes.chunks(chunk) {
                dec.push(piece);
                while let Some(f) = dec.next_frame().expect("clean stream") {
                    got.push(f);
                }
            }
            assert_eq!(got, frames, "chunk size {chunk}");
            assert_eq!(dec.pending_bytes(), 0);
        }
    }

    #[test]
    fn legacy_v1_snapshot_decodes_as_full_snapshot() {
        let snap = sample_snapshot(3);
        let v1 = encode_snapshot(&snap);
        let frames = decode_frames(&v1).expect("legacy decode");
        assert_eq!(frames, vec![Frame::FullSnapshot(snap)]);
        // Incrementally too, in awkward chunks.
        let mut dec = FrameDecoder::new();
        let (a, b) = v1.split_at(v1.len() / 2);
        dec.push(a);
        assert_eq!(dec.next_frame().expect("partial"), None);
        dec.push(b);
        assert!(matches!(
            dec.next_frame().expect("whole"),
            Some(Frame::FullSnapshot(_))
        ));
    }

    #[test]
    fn oversize_length_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(FRAME_MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.push(1); // FullSnapshot
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frames(&bytes),
            Err(WireError::Oversize(u32::MAX as u64))
        );
    }

    #[test]
    fn unknown_kind_and_version_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(FRAME_MAGIC);
        bytes.push(99);
        bytes.push(0);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            decode_frames(&bytes),
            Err(WireError::UnsupportedVersion(99))
        );

        let mut bytes = Vec::new();
        bytes.extend_from_slice(FRAME_MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.push(200);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_frames(&bytes), Err(WireError::UnknownKind(200)));
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let bytes = encode_frame(&Frame::Delta(sample_snapshot(2)));
        for cut in [1usize, 4, 5, 9, 10, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                decode_frames(&bytes[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected_early() {
        assert_eq!(decode_frames(b"GARBAGE!"), Err(WireError::BadMagic));
        assert_eq!(decode_frames(b"SS"), Err(WireError::Truncated));
    }
}
