//! # sst-monitor — layered online monitoring with mergeable summaries
//!
//! Everything downstream of `sst-core::stream` used to be offline
//! batch; this crate is the deployable counterpart: a push-based engine
//! that multiplexes thousands of concurrent keyed streams (OD flows,
//! link ids, 5-tuples) over the existing
//! [`sst_core::stream::StreamSampler`] implementations and keeps, per
//! stream and with bounded memory, Welford moments, a mergeable
//! reservoir, online dyadic variance-time Hurst state, and
//! tail-exceedance counters.
//!
//! ## Collector topology — the five layers
//!
//! ```text
//!            keyed points (k, v)
//!                  │
//!  ┌───────────────▼───────────────┐
//!  │ ingest    shard routing,      │  SamplerSpec, ShardSet
//!  │           per-stream samplers │
//!  ├───────────────────────────────┤
//!  │ lifecycle eviction (idle/LRU) │  LifecycleConfig, Compactable
//!  │           + compaction        │  final snapshots on evict
//!  ├───────────────────────────────┤
//!  │ wire      versioned frames    │  Hello/Delta/FullSnapshot/
//!  │           (length-prefixed)   │  Evicted/Bye, v1 compat
//!  ├───────────────────────────────┤
//!  │ topology  Collector ⇒         │  N processes ⇒ one merged
//!  │           Aggregator          │  state, interleaving-proof,
//!  │           SessionDriver       │  per-session state machine
//!  ├───────────────────────────────┤
//!  │ transport event loops (epoll  │  UDS + TCP listeners, hostile
//!  │           or poll backend),   │  sessions isolated, no mutex;
//!  │           1 loop or 1/core    │  per-loop aggs merge at the end
//!  └───────────────────────────────┘
//! ```
//!
//! [`MonitorEngine`] (in [`engine`]) is the facade over the top two
//! layers and keeps the original single-process API; [`wire`] and
//! [`topology`] extend it across process boundaries, and [`transport`]
//! puts it on real sockets: an event loop
//! ([`transport::EventLoopServer`]) over a pluggable readiness backend
//! ([`transport::BackendKind`]: `epoll(7)` by default on Linux,
//! `poll(2)` as the portable baseline) multiplexing any number of
//! Unix-domain and TCP collector sessions — one bad session is rolled
//! back and logged, never fatal. [`transport::MultiLoopServer`] shards
//! sessions across one loop per core behind an accept dispatcher
//! (per-loop [`topology::Aggregator`]s merge at snapshot time via
//! [`topology::AggregatorSet`]; spoof rejection stays global through
//! the shared [`topology::AdmissionRegistry`]), and a blocking
//! [`transport::pump_blocking`] serves thread-per-connection callers.
//!
//! ## The merge-equivalence guarantee
//!
//! Streams are routed to shards by key hash and every per-stream
//! computation depends only on `(base_seed, key)` and that stream's
//! point order, so:
//!
//! * an [`MonitorEngine`] snapshot is **bit-for-bit identical** for any
//!   shard count (N ∈ {1, 2, 8} pinned by the integration tests),
//! * [`EngineSnapshot::merge`] combines engines watching disjoint key
//!   sets associatively — shard → link → network roll-ups all yield the
//!   bits a single unsharded engine would have produced, and
//! * the same holds **across the wire**: collectors streaming frames to
//!   an [`topology::Aggregator`] assemble to the single-engine bits
//!   (pinned over in-memory pipes and Unix sockets).
//!
//! Eviction emits a final snapshot per retired stream, so bounded
//! memory never costs totals; compaction ([`sst_core::summary::Compactable`])
//! prunes reservoirs and coarse Hurst levels toward a per-stream byte
//! budget.
//!
//! ## Example
//!
//! ```
//! use sst_monitor::{MonitorConfig, MonitorEngine, SamplerSpec};
//!
//! let mut engine = MonitorEngine::new(
//!     MonitorConfig::default()
//!         .sampler(SamplerSpec::Bss { interval: 20, epsilon: 1.0, n_pre: 16, l: 4 })
//!         .shards(8)
//!         .seed(7)
//!         .max_streams(64)        // LRU-evict beyond 64 live streams
//!         .compact_budget(1024),  // keep each summary under ~1 KB
//! );
//! // 100 concurrent streams, multiplexed arrivals.
//! for i in 0..200_000u64 {
//!     let key = i % 100;
//!     let value = if i % 970 < 30 { 900.0 } else { 10.0 };
//!     engine.offer(key, value);
//! }
//! // Live streams are LRU-bounded; evicted finals keep totals exact.
//! engine.maintain();
//! assert!(engine.stream_count() <= 64);
//! let full = engine.full_snapshot();
//! assert_eq!(full.sampler_totals().offered, 200_000);
//! // Snapshots serialize losslessly for collectors.
//! let bytes = sst_monitor::encode_snapshot(&engine.snapshot());
//! assert_eq!(
//!     sst_monitor::decode_snapshot(&bytes).unwrap(),
//!     engine.snapshot()
//! );
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// minimal `poll(2)`/`epoll(7)` FFI in `transport::sys`, which carries
// its own narrowly-scoped `#[allow(unsafe_code)]` and safety comments.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod diff;
pub mod engine;
pub mod fault;
pub mod ingest;
pub mod lifecycle;
pub mod retry;
pub mod sketch;
pub mod summary;
pub mod topology;
pub mod transport;
pub mod wire;

pub use codec::{decode_snapshot, encode_snapshot, SnapshotCodecError};
pub use diff::{apply_diff, diff_entry, BaseFingerprint, StreamDiff};
pub use engine::{EngineSnapshot, MonitorConfig, MonitorEngine, SamplerSpec, StreamEntry};
pub use fault::{FaultPlan, FaultyLink};
pub use lifecycle::{LifecycleConfig, LifecycleStats};
pub use retry::{Backoff, SequencedSender};
pub use sketch::{SketchSnapshot, TierConfig, TierStats};
pub use summary::{StreamSummary, SummaryConfig, SummarySnapshot};
pub use topology::{
    AdmissionRegistry, Aggregator, AggregatorSet, Collector, SessionDriver, SessionError,
};
pub use transport::{
    BackendKind, EventLoopServer, MultiLoopServer, ServeOptions, ServeReport, SessionStats,
    SessionStream,
};
pub use wire::{
    decode_frames, encode_frame, Frame, FrameDecoder, WireError, WIRE_VERSION,
    WIRE_VERSION_SEQUENCED,
};
