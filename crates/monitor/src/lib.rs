//! # sst-monitor — sharded online monitoring with mergeable summaries
//!
//! Everything downstream of `sst-core::stream` used to be offline
//! batch; this crate is the deployable counterpart: a push-based engine
//! that multiplexes thousands of concurrent keyed streams (OD flows,
//! link ids) over the existing [`sst_core::stream::StreamSampler`]
//! implementations and keeps, per stream and with bounded memory:
//!
//! * **Welford moments** of the kept samples ([`sst_stats::RunningStats`]),
//! * a **mergeable reservoir** of kept samples ([`summary::Reservoir`]),
//! * **online aggregated-variance Hurst state** with dyadic block
//!   accumulators ([`sst_hurst::online::OnlineVarianceTime`], validated
//!   within 0.02 of the offline estimator on fGn fixtures),
//! * **tail-exceedance counters** over a threshold ladder
//!   ([`summary::TailCounter`]).
//!
//! ## The merge-equivalence guarantee
//!
//! Streams are routed to shards by key hash and every per-stream
//! computation depends only on `(base_seed, key)` and that stream's
//! point order, so:
//!
//! * an [`MonitorEngine`] snapshot is **bit-for-bit identical** for any
//!   shard count (N ∈ {1, 2, 8} pinned by the integration tests), and
//! * [`EngineSnapshot::merge`] combines engines watching disjoint key
//!   sets associatively — shard → link → network roll-ups all yield the
//!   bits a single unsharded engine would have produced.
//!
//! Batch ingestion ([`MonitorEngine::offer_batch`]) fans shards across
//! the persistent worker pool behind the workspace's rayon stand-in.
//!
//! ## Example
//!
//! ```
//! use sst_monitor::{MonitorConfig, MonitorEngine, SamplerSpec};
//!
//! let mut engine = MonitorEngine::new(
//!     MonitorConfig::default()
//!         .sampler(SamplerSpec::Bss { interval: 20, epsilon: 1.0, n_pre: 16, l: 4 })
//!         .shards(8)
//!         .seed(7),
//! );
//! // 100 concurrent streams, multiplexed arrivals.
//! for i in 0..200_000u64 {
//!     let key = i % 100;
//!     let value = if i % 970 < 30 { 900.0 } else { 10.0 };
//!     engine.offer(key, value);
//! }
//! let snap = engine.snapshot();
//! assert_eq!(snap.stream_count(), 100);
//! let link = snap.aggregate();
//! assert!(link.moments.mean() > 0.0);
//! // Snapshots serialize losslessly for collectors.
//! let bytes = sst_monitor::encode_snapshot(&snap);
//! assert_eq!(sst_monitor::decode_snapshot(&bytes).unwrap(), snap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod engine;
pub mod summary;

pub use codec::{decode_snapshot, encode_snapshot, SnapshotCodecError};
pub use engine::{EngineSnapshot, MonitorConfig, MonitorEngine, SamplerSpec, StreamEntry};
pub use summary::{StreamSummary, SummaryConfig, SummarySnapshot};
