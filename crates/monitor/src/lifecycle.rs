//! Lifecycle layer: stream eviction (idle timeout + LRU capacity) with
//! final-snapshot emission, and periodic summary compaction.
//!
//! The ingest layer keeps every stream it has ever seen; under
//! per-5-tuple keys that is an unbounded table. This layer bounds it:
//!
//! * **Idle eviction** retires a stream whose last point is at least
//!   `idle_after` engine ticks old (a tick is one offered point, so
//!   idleness is measured in stream progress, not wall time — the same
//!   workload always evicts identically).
//! * **LRU eviction** retires least-recently-touched streams whenever
//!   the live table exceeds `max_streams`.
//! * **Compaction** prunes each summary (reservoir items, coarse dyadic
//!   Hurst levels — [`Compactable`]) toward `compact_budget` bytes so
//!   steady-state per-stream memory amortizes below the budget.
//!
//! An evicted stream emits a **final snapshot** — its cumulative
//! [`StreamEntry`] at the moment of eviction. With `retain_evicted` on
//! (the default, for standalone engines) finals fold into the local
//! *retired* store that [`crate::MonitorEngine::full_snapshot`] serves
//! back; with it off (transport mode) they queue in the *outbox* for a
//! [`crate::topology::Collector`] to drain as `Evicted` frames —
//! exactly one of the two holds each final, so neither standalone nor
//! collector engines double-store and an engine nobody drains never
//! grows its outbox. Either way eviction never loses totals: offered/kept counters,
//! tail totals, and moment counts of the full snapshot stay exactly
//! what a never-evicting engine would report. A key that reappears
//! after eviction resumes as a **fresh stream** (sampler re-seeded from
//! `(base_seed, key)` as on first sight); its new incarnation and its
//! retired finals are distinct summaries that merge deterministically
//! at snapshot time.
//!
//! Sweeps run every `sweep_every` ticks, checked after each point (or
//! after each batch — a batch may overshoot the boundary and sweep once
//! at its end, so point-wise and batched ingest of the same workload
//! agree whenever sweeps land on the same ticks, e.g. when batch sizes
//! divide `sweep_every`). All eviction and compaction decisions are
//! pure functions of the tick sequence and per-stream state, so a
//! lifecycle-enabled engine is still deterministic across shard counts.

use crate::engine::StreamEntry;
use crate::ingest::ShardSet;
use sst_core::summary::{Compactable, MergeableSummary};
use std::collections::BTreeMap;

/// Eviction and compaction policy. The default disables everything —
/// streams live forever and nothing is pruned — which preserves the
/// pre-lifecycle engine behavior bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub struct LifecycleConfig {
    /// Evict a stream once `tick - last_touch >= idle_after`.
    pub idle_after: Option<u64>,
    /// Evict least-recently-touched streams beyond this live count.
    pub max_streams: Option<usize>,
    /// Per-summary byte budget; sweeps compact live and retired
    /// summaries toward it ([`Compactable`]).
    pub compact_budget: Option<usize>,
    /// Ticks between maintenance sweeps (≥ 1).
    pub sweep_every: u64,
    /// Keep evicted finals in the engine's retired store (so
    /// `full_snapshot` stays total-exact). Collectors that forward
    /// finals over the wire turn this off to avoid holding state the
    /// aggregator already owns.
    pub retain_evicted: bool,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            idle_after: None,
            max_streams: None,
            compact_budget: None,
            sweep_every: 4096,
            retain_evicted: true,
        }
    }
}

impl LifecycleConfig {
    /// `true` when any policy is active (the engine skips sweeps
    /// entirely otherwise).
    pub fn enabled(&self) -> bool {
        self.idle_after.is_some() || self.max_streams.is_some() || self.compact_budget.is_some()
    }
}

/// Counters describing what the lifecycle layer has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Points offered to the engine (the logical clock).
    pub ticks: u64,
    /// Streams evicted so far (idle + LRU).
    pub evicted: u64,
    /// Retired keys currently held (`retain_evicted` store).
    pub retired: usize,
    /// Maintenance sweeps run.
    pub sweeps: u64,
}

/// Mutable lifecycle state owned by the engine facade.
#[derive(Default)]
pub(crate) struct LifecycleState {
    tick: u64,
    last_sweep: u64,
    sweeps: u64,
    evicted: u64,
    /// Evicted finals awaiting [`drain`](LifecycleState::drain_evicted)
    /// (ascending key order within each sweep). Populated only when
    /// `retain_evicted` is off — the transport mode, where a collector
    /// drains between flushes, keeping this bounded.
    outbox: Vec<StreamEntry>,
    /// Evicted finals folded per key (`retain_evicted`); reappearing
    /// keys merge their successive finals in eviction order.
    retired: BTreeMap<u64, StreamEntry>,
}

impl LifecycleState {
    /// Advances the logical clock by one point, returning its tick.
    pub(crate) fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Advances the clock by `n` points, returning the first tick of
    /// the batch.
    pub(crate) fn advance(&mut self, n: u64) -> u64 {
        let first = self.tick + 1;
        self.tick += n;
        first
    }

    /// Whether a maintenance sweep is due.
    pub(crate) fn sweep_due(&self, config: &LifecycleConfig) -> bool {
        config.enabled() && self.tick - self.last_sweep >= config.sweep_every.max(1)
    }

    /// Runs one maintenance sweep: idle eviction, LRU eviction, then
    /// compaction of the surviving live summaries and the retired
    /// store. Deterministic: decisions depend only on ticks and
    /// per-stream state, never on shard layout or iteration order
    /// (eviction candidates are canonically sorted before removal).
    pub(crate) fn sweep(&mut self, config: &LifecycleConfig, shards: &mut ShardSet) {
        self.sweeps += 1;
        self.last_sweep = self.tick;
        let mut victims: Vec<(u64, u64)> = Vec::new(); // (last_touch, key)
        if let Some(idle_after) = config.idle_after {
            for (key, state) in shards.iter() {
                if self.tick.saturating_sub(state.last_touch) >= idle_after {
                    victims.push((state.last_touch, key));
                }
            }
        }
        if let Some(max) = config.max_streams {
            let live = shards.stream_count() - victims.len();
            if live > max {
                let idle_cut: std::collections::HashSet<u64> =
                    victims.iter().map(|&(_, k)| k).collect();
                let mut by_age: Vec<(u64, u64)> = shards
                    .iter()
                    .filter(|(k, _)| !idle_cut.contains(k))
                    .map(|(k, st)| (st.last_touch, k))
                    .collect();
                by_age.sort_unstable();
                victims.extend(by_age.into_iter().take(live - max));
            }
        }
        // Canonical eviction order: ascending key, so the outbox and
        // the retired-store fold are shard-layout-independent.
        victims.sort_unstable_by_key(|&(_, k)| k);
        victims.dedup_by_key(|&mut (_, k)| k);
        for (_, key) in victims {
            let state = shards.remove(key).expect("victim key is live");
            let mut summary = state.summary.snapshot();
            if let Some(budget) = config.compact_budget {
                summary.compact(budget);
            }
            let entry = StreamEntry {
                key,
                sampler: state.sampler.snapshot(),
                summary,
            };
            self.evicted += 1;
            if config.retain_evicted {
                // Standalone engine: the retired store *is* the record
                // (served by full_snapshot); nothing goes to the
                // outbox, so an engine nobody drains cannot grow it.
                self.absorb_retired(entry, config.compact_budget);
            } else {
                // Transport mode: a collector drains these as Evicted
                // frames; the aggregator owns the retired state.
                self.outbox.push(entry);
            }
        }
        if let Some(budget) = config.compact_budget {
            for (_, state) in shards.iter_mut() {
                if state.summary.estimated_bytes() > budget {
                    state.summary.compact(budget);
                }
            }
        }
    }

    fn absorb_retired(&mut self, entry: StreamEntry, budget: Option<usize>) {
        use std::collections::btree_map::Entry;
        match self.retired.entry(entry.key) {
            Entry::Vacant(v) => {
                v.insert(entry);
            }
            Entry::Occupied(mut o) => {
                let held = o.get_mut();
                held.sampler.merge_from(&entry.sampler);
                held.summary.merge_from(&entry.summary);
                if let Some(budget) = budget {
                    held.summary.compact(budget);
                }
            }
        }
    }

    /// Retires one stream's final outside a sweep — the sketch tier
    /// demotes an exact stream to free its slot for a promoted key.
    /// Bookkeeping is identical to a sweep eviction (compaction budget,
    /// retained store vs. outbox), so demotion finals flow through the
    /// same `Evicted` wire path and never double-count downstream; only
    /// the `evicted` counter is left to the tier's own `demotions`.
    pub(crate) fn retire(&mut self, mut entry: StreamEntry, config: &LifecycleConfig) {
        if let Some(budget) = config.compact_budget {
            entry.summary.compact(budget);
        }
        if config.retain_evicted {
            self.absorb_retired(entry, config.compact_budget);
        } else {
            self.outbox.push(entry);
        }
    }

    /// Takes the evicted finals accumulated since the last drain.
    pub(crate) fn drain_evicted(&mut self) -> Vec<StreamEntry> {
        std::mem::take(&mut self.outbox)
    }

    /// The retired store, ascending by key.
    pub(crate) fn retired(&self) -> impl Iterator<Item = &StreamEntry> {
        self.retired.values()
    }

    /// Lifecycle counters.
    pub(crate) fn stats(&self) -> LifecycleStats {
        LifecycleStats {
            ticks: self.tick,
            evicted: self.evicted,
            retired: self.retired.len(),
            sweeps: self.sweeps,
        }
    }

    /// Approximate footprint of the retired store and any undrained
    /// outbox entries.
    pub(crate) fn retired_bytes(&self) -> usize {
        self.retired
            .values()
            .chain(self.outbox.iter())
            // Key + sampler counters + BTree node overhead, plus the
            // summary itself.
            .map(|e| 64 + e.summary.estimated_bytes())
            .sum()
    }
}
