//! `monitor-tool` — drive the layered monitoring stack over synthetic
//! packet traces: run a standalone engine, inspect/merge snapshots, or
//! assemble a collector → aggregator topology over Unix sockets.
//!
//! ```text
//! monitor-tool run [--seed N] [--duration SECS] [--shards N]
//!                  [--interval C] [--snapshot OUT.ssm]
//!                  [--evict-idle TICKS] [--max-streams N] [--compact BYTES]
//!     synthesize a Bell-Labs-like trace, ingest it as per-OD-pair
//!     streams (batched through the worker pool), print the link report,
//!     optionally write the snapshot
//! monitor-tool info IN.ssm          # decode a snapshot, print the report
//! monitor-tool merge OUT.ssm IN.ssm [IN.ssm …]
//!     merge snapshots (disjoint or overlapping key sets) into one
//! monitor-tool serve SOCKET --collectors N [--out OUT.ssm]
//!     bind a Unix socket, accept N collector sessions (concurrently),
//!     assemble their frames, print the merged report
//! monitor-tool forward SOCKET [--id K] [--partition I/N] [--seed N]
//!                  [--duration SECS] [--interval C] [--flush-every P]
//!                  [--evict-idle TICKS] [--compact BYTES]
//!     synthesize the shared trace, keep only keys hashing to partition
//!     I of N, and stream Hello/Delta/Evicted/Bye frames to the socket
//! ```
//!
//! With the default (no-eviction) configuration, `serve` + N×`forward`
//! on the same seed reproduce, byte for byte, the snapshot `run`
//! computes single-process — the wire-boundary merge-equivalence
//! guarantee, demoable from the shell. With `--evict-idle` the clocks
//! differ (each forwarder counts only its partition's points, `run`
//! counts all), so a key that reappears after eviction restarts its
//! sampler at different logical times: *totals* stay exact, but kept
//! sample sets — and hence the bytes — can diverge from `run`'s.

use sst_monitor::topology::{Aggregator, Collector};
use sst_monitor::{
    decode_snapshot, encode_snapshot, EngineSnapshot, Frame, FrameDecoder, MonitorConfig,
    MonitorEngine, SamplerSpec,
};
use sst_nettrace::TraceSynthesizer;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{Arc, Mutex};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("run") => run(it.collect()),
        Some("info") => {
            let path = it
                .next()
                .unwrap_or_else(|| die("info needs a snapshot path"));
            report(&load(&path));
        }
        Some("merge") => {
            let out = it
                .next()
                .unwrap_or_else(|| die("merge needs an output path"));
            let inputs: Vec<String> = it.collect();
            if inputs.is_empty() {
                die("merge needs at least one input snapshot");
            }
            let mut merged = EngineSnapshot::default();
            for p in &inputs {
                merged = merged.merge(load(p));
            }
            let bytes = encode_snapshot(&merged);
            std::fs::write(&out, &bytes).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
            eprintln!(
                "merged {} snapshots into {out}: {} streams, {} bytes",
                inputs.len(),
                merged.stream_count(),
                bytes.len()
            );
            report(&merged);
        }
        Some("serve") => serve(it.collect()),
        Some("forward") => forward(it.collect()),
        _ => die("usage: monitor-tool run|info|merge|serve|forward …  (see the module docs)"),
    }
}

/// Shared trace + engine shape so `run` and N×`forward` agree.
struct Workload {
    seed: u64,
    duration: f64,
    interval: usize,
    evict_idle: Option<u64>,
    max_streams: Option<usize>,
    compact: Option<usize>,
}

impl Workload {
    fn points(&self) -> Vec<(u64, f64)> {
        let trace = TraceSynthesizer::bell_labs_like()
            .duration(self.duration)
            .synthesize(self.seed);
        eprintln!(
            "trace: {} packets over {} OD pairs, {:.0}s",
            trace.len(),
            trace.od_pair_count(),
            trace.duration()
        );
        trace.od_keyed_points()
    }

    fn config(&self, shards: usize) -> MonitorConfig {
        let mut config = MonitorConfig::default()
            .sampler(if self.interval <= 1 {
                SamplerSpec::TakeAll
            } else {
                SamplerSpec::Bss {
                    interval: self.interval,
                    epsilon: 1.0,
                    n_pre: 16,
                    l: 4,
                }
            })
            .shards(shards)
            .seed(self.seed)
            // Packet sizes are 40..1500 bytes: a ladder on that scale.
            .tail_thresholds(vec![64.0, 256.0, 576.0, 1024.0, 1400.0]);
        if let Some(t) = self.evict_idle {
            config = config.evict_idle_after(t);
        }
        if let Some(n) = self.max_streams {
            config = config.max_streams(n);
        }
        if let Some(b) = self.compact {
            config = config.compact_budget(b);
        }
        config
    }
}

fn run(rest: Vec<String>) {
    let mut w = Workload {
        seed: 1,
        duration: 120.0,
        interval: 10,
        evict_idle: None,
        max_streams: None,
        compact: None,
    };
    let mut shards = 4usize;
    let mut snapshot_path: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--seed" => w.seed = parse(&num("--seed"), "--seed"),
            "--duration" => w.duration = parse(&num("--duration"), "--duration"),
            "--shards" => shards = parse(&num("--shards"), "--shards"),
            "--interval" => w.interval = parse(&num("--interval"), "--interval"),
            "--snapshot" => snapshot_path = Some(num("--snapshot")),
            "--evict-idle" => w.evict_idle = Some(parse(&num("--evict-idle"), "--evict-idle")),
            "--max-streams" => {
                w.max_streams = Some(parse(&num("--max-streams"), "--max-streams"));
            }
            "--compact" => w.compact = Some(parse(&num("--compact"), "--compact")),
            other => die(&format!("unexpected argument '{other}'")),
        }
    }
    let points = w.points();
    let mut engine = MonitorEngine::new(w.config(shards));
    // Stream the trace through in batches, as a collector would.
    for chunk in points.chunks(1 << 16) {
        engine.offer_batch(chunk);
    }
    engine.maintain();
    let stats = engine.lifecycle_stats();
    if stats.evicted > 0 {
        eprintln!(
            "lifecycle: {} evicted, {} retired, {} live, ~{} KiB state",
            stats.evicted,
            stats.retired,
            engine.stream_count(),
            engine.estimated_state_bytes() >> 10
        );
    }
    let snap = engine.full_snapshot();
    report(&snap);
    if let Some(path) = snapshot_path {
        let bytes = encode_snapshot(&snap);
        std::fs::write(&path, &bytes).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}: {} bytes", bytes.len());
    }
}

fn serve(rest: Vec<String>) {
    let mut it = rest.into_iter();
    let socket = it
        .next()
        .unwrap_or_else(|| die("serve needs a socket path"));
    let mut collectors = 1usize;
    let mut out: Option<String> = None;
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--collectors" => collectors = parse(&num("--collectors"), "--collectors"),
            "--out" => out = Some(num("--out")),
            other => die(&format!("unexpected argument '{other}'")),
        }
    }
    let _ = std::fs::remove_file(&socket);
    let listener =
        UnixListener::bind(&socket).unwrap_or_else(|e| die(&format!("bind {socket}: {e}")));
    eprintln!("listening on {socket} for {collectors} collector(s)");
    let agg = Arc::new(Mutex::new(Aggregator::new()));
    std::thread::scope(|scope| {
        for conn in 0..collectors {
            let (stream, _) = listener
                .accept()
                .unwrap_or_else(|e| die(&format!("accept: {e}")));
            let agg = Arc::clone(&agg);
            // Legacy (Hello-less) sessions get ids past u32 so they
            // can't collide with forwarders' small collector ids.
            let fallback_id = (1u64 << 32) + conn as u64;
            scope.spawn(move || {
                if let Err(e) = pump_session(stream, &agg, fallback_id) {
                    die(&format!("session failed: {e}"));
                }
            });
        }
    });
    let _ = std::fs::remove_file(&socket);
    let agg = agg.lock().expect("aggregator");
    eprintln!(
        "assembled {} collector session(s), ~{} KiB aggregator state",
        agg.collector_count(),
        agg.estimated_state_bytes() >> 10
    );
    let snap = agg.snapshot();
    report(&snap);
    if let Some(path) = out {
        let bytes = encode_snapshot(&snap);
        std::fs::write(&path, &bytes).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}: {} bytes", bytes.len());
    }
}

/// Feeds one socket session into the shared aggregator, locking per
/// frame so concurrent sessions interleave freely. Mirrors
/// `Aggregator::ingest_stream` semantics (hand-rolled only because
/// that method would hold the lock for the whole session): the first
/// `Hello` names the session; a session that opens with data frames —
/// e.g. a legacy `.ssm` stream, whose implicit `FullSnapshot` only
/// decodes once EOF is signalled via `FrameDecoder::finish` — is
/// attributed to `fallback_id`.
fn pump_session(
    mut stream: UnixStream,
    agg: &Mutex<Aggregator>,
    fallback_id: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::Read;
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    let mut session: Option<u64> = None;
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            dec.finish();
        } else {
            dec.push(&buf[..n]);
        }
        while let Some(frame) = dec.next_frame()? {
            let id = match (&frame, session) {
                (Frame::Hello { collector_id, .. }, _) => {
                    session = Some(*collector_id);
                    *collector_id
                }
                (_, Some(id)) => id,
                (_, None) => {
                    session = Some(fallback_id);
                    fallback_id
                }
            };
            agg.lock().expect("aggregator").feed(id, frame)?;
        }
        if n == 0 {
            if dec.pending_bytes() != 0 {
                return Err("connection closed mid-frame".into());
            }
            return Ok(());
        }
    }
}

fn forward(rest: Vec<String>) {
    let mut it = rest.into_iter();
    let socket = it
        .next()
        .unwrap_or_else(|| die("forward needs a socket path"));
    let mut w = Workload {
        seed: 1,
        duration: 120.0,
        interval: 10,
        evict_idle: None,
        max_streams: None,
        compact: None,
    };
    let mut id: Option<u64> = None;
    let mut part = 0u64;
    let mut n_parts = 1u64;
    let mut flush_every = 1usize << 14;
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--seed" => w.seed = parse(&num("--seed"), "--seed"),
            "--duration" => w.duration = parse(&num("--duration"), "--duration"),
            "--interval" => w.interval = parse(&num("--interval"), "--interval"),
            "--id" => id = Some(parse(&num("--id"), "--id")),
            "--partition" => {
                let spec = num("--partition");
                let (i, n) = spec
                    .split_once('/')
                    .unwrap_or_else(|| die("--partition expects I/N"));
                part = parse(i, "--partition");
                n_parts = parse(n, "--partition");
                if n_parts == 0 || part >= n_parts {
                    die("--partition needs I < N, N >= 1");
                }
            }
            "--flush-every" => flush_every = parse(&num("--flush-every"), "--flush-every"),
            "--evict-idle" => w.evict_idle = Some(parse(&num("--evict-idle"), "--evict-idle")),
            "--compact" => w.compact = Some(parse(&num("--compact"), "--compact")),
            other => die(&format!("unexpected argument '{other}'")),
        }
    }
    let points: Vec<(u64, f64)> = w
        .points()
        .into_iter()
        .filter(|&(k, _)| k % n_parts == part)
        .collect();
    let mut sock =
        UnixStream::connect(&socket).unwrap_or_else(|e| die(&format!("connect {socket}: {e}")));
    let mut collector = Collector::new(id.unwrap_or(part), w.config(2));
    for chunk in points.chunks(flush_every.max(1)) {
        collector.offer_batch(chunk);
        collector
            .flush(&mut sock)
            .unwrap_or_else(|e| die(&format!("flush: {e}")));
    }
    collector
        .finish(&mut sock)
        .unwrap_or_else(|e| die(&format!("finish: {e}")));
    let stats = collector.engine().lifecycle_stats();
    eprintln!(
        "forwarded {} points as collector {} (partition {part}/{n_parts}, {} evicted)",
        points.len(),
        id.unwrap_or(part),
        stats.evicted
    );
}

fn report(snap: &EngineSnapshot) {
    let agg = snap.aggregate();
    let totals = snap.sampler_totals();
    println!("streams        : {}", snap.stream_count());
    println!(
        "offered/kept   : {} / {} (inspected {})",
        totals.offered, totals.kept, totals.inspected
    );
    println!(
        "kept mean/std  : {:.3} / {:.3}",
        agg.moments.mean(),
        agg.moments.stddev()
    );
    match agg.hurst_estimate() {
        Some(h) => println!("online Hurst   : {h:.3}"),
        None => println!("online Hurst   : (insufficient data)"),
    }
    let ladder: Vec<(f64, u64)> = agg.tail.ladder().collect();
    if !ladder.is_empty() {
        let cells: Vec<String> = ladder
            .iter()
            .map(|(t, c)| {
                format!(
                    "P(>{t:.0})={:.4}",
                    *c as f64 / agg.tail.total().max(1) as f64
                )
            })
            .collect();
        println!("tail           : {}", cells.join("  "));
    }
    println!("top streams by kept volume:");
    println!(
        "{:>18} {:>12} {:>14} {:>10}",
        "key", "kept", "volume", "mean"
    );
    for e in snap.top_streams(5) {
        println!(
            "{:>18x} {:>12} {:>14.0} {:>10.2}",
            e.key,
            e.sampler.kept,
            e.summary.kept_volume(),
            e.summary.moments.mean()
        );
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{what}: cannot parse '{s}'")))
}

fn load(path: &str) -> EngineSnapshot {
    let bytes = std::fs::read(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    decode_snapshot(&bytes).unwrap_or_else(|e| die(&format!("decode {path}: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
