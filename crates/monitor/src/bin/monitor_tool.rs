//! `monitor-tool` — drive the layered monitoring stack over synthetic
//! packet traces: run a standalone engine, inspect/merge snapshots, or
//! assemble a collector → aggregator topology over Unix sockets.
//!
//! ```text
//! monitor-tool run [--seed N] [--duration SECS] [--shards N]
//!                  [--interval C] [--snapshot OUT.ssm]
//!                  [--evict-idle TICKS] [--max-streams N] [--compact BYTES]
//!                  [--max-exact-keys N] [--sketch-bytes B]
//!     synthesize a Bell-Labs-like trace, ingest it as per-OD-pair
//!     streams (batched through the worker pool), print the link report,
//!     optionally write the snapshot. --max-exact-keys enables the
//!     two-tier store: at most N exact live streams, the long tail in
//!     a fixed-memory sketch of --sketch-bytes bytes (default 256 KiB)
//! monitor-tool info IN.ssm          # decode a snapshot, print the report
//! monitor-tool merge OUT.ssm IN.ssm [IN.ssm …]
//!     merge snapshots (disjoint or overlapping key sets) into one
//! monitor-tool serve SOCKET [--tcp HOST:PORT] --collectors N [--out OUT.ssm]
//!                  [--accept-timeout SECS] [--backend poll|epoll]
//!                  [--loops N] [--report-sessions] [--threaded]
//!                  [--max-exact-keys N] [--sketch-bytes B]
//!     accept collector sessions on a Unix socket (and, with --tcp, a
//!     TCP listener) until N sessions *delivered frames and closed
//!     cleanly*, assemble them, print the merged report. The default
//!     transport is the event loop on the platform-default readiness
//!     backend (epoll on Linux; --backend poll for the portable
//!     baseline); --loops N shards sessions across N event loops (one
//!     per core) behind an accept dispatcher, and --report-sessions
//!     prints per-session delivery counters so the loop balance is
//!     inspectable. --threaded keeps the historical
//!     one-blocking-thread-per-connection path (Unix socket only).
//!     Hostile sessions — garbage bytes, mid-frame disconnects,
//!     connect-and-close probes — are logged and isolated, never
//!     fatal, on every transport. --max-exact-keys caps each session's
//!     *retired* store server-side (overflow finals demote into a
//!     per-session sketch); --sketch-bytes compacts sketch images.
//! monitor-tool forward TARGET [--tcp] [--id K] [--partition I/N] [--seed N]
//!                  [--duration SECS] [--interval C] [--flush-every P]
//!                  [--evict-idle TICKS] [--compact BYTES]
//!                  [--max-exact-keys N] [--sketch-bytes B]
//!                  [--retry N] [--backoff-ms B]
//!     synthesize the shared trace, keep only keys hashing to partition
//!     I of N, and stream Hello/Delta/Evicted/Bye frames to TARGET —
//!     a Unix socket path, or host:port with --tcp. With --retry N the
//!     session is *sequenced* (wire v3): every frame carries a seq,
//!     acks trim an in-flight window, and up to N reconnects — connect
//!     *and* mid-stream failures alike — replay the unacked tail (or
//!     resync from a full snapshot after a serve restart) on a capped
//!     exponential backoff starting at B ms (default 50).
//! ```
//!
//! With the default (no-eviction) configuration, `serve` + N×`forward`
//! on the same seed reproduce, byte for byte, the snapshot `run`
//! computes single-process — the wire-boundary merge-equivalence
//! guarantee, demoable from the shell, on either transport. With
//! `--evict-idle` the clocks differ (each forwarder counts only its
//! partition's points, `run` counts all), so a key that reappears after
//! eviction restarts its sampler at different logical times: *totals*
//! stay exact, but kept sample sets — and hence the bytes — can diverge
//! from `run`'s.

use sst_monitor::retry::{Backoff, SequencedSender};
use sst_monitor::topology::{Aggregator, AggregatorSet};
use sst_monitor::transport::{
    pump_blocking, BackendKind, EventLoopServer, MultiLoopServer, ServeOptions, ServeReport,
    SessionStream, FALLBACK_ID_BASE,
};
use sst_monitor::Collector;
use sst_monitor::{
    decode_snapshot, encode_snapshot, EngineSnapshot, MonitorConfig, MonitorEngine, SamplerSpec,
};
use sst_nettrace::TraceSynthesizer;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("run") => run(it.collect()),
        Some("info") => {
            let path = it
                .next()
                .unwrap_or_else(|| die("info needs a snapshot path"));
            report(&load(&path));
        }
        Some("merge") => {
            let out = it
                .next()
                .unwrap_or_else(|| die("merge needs an output path"));
            let inputs: Vec<String> = it.collect();
            if inputs.is_empty() {
                die("merge needs at least one input snapshot");
            }
            let mut merged = EngineSnapshot::default();
            for p in &inputs {
                merged = merged.merge(load(p));
            }
            let bytes = encode_snapshot(&merged);
            std::fs::write(&out, &bytes).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
            eprintln!(
                "merged {} snapshots into {out}: {} streams, {} bytes",
                inputs.len(),
                merged.stream_count(),
                bytes.len()
            );
            report(&merged);
        }
        Some("serve") => serve(it.collect()),
        Some("forward") => forward(it.collect()),
        _ => die("usage: monitor-tool run|info|merge|serve|forward …  (see the module docs)"),
    }
}

/// Shared trace + engine shape so `run` and N×`forward` agree.
struct Workload {
    seed: u64,
    duration: f64,
    interval: usize,
    evict_idle: Option<u64>,
    max_streams: Option<usize>,
    compact: Option<usize>,
    max_exact_keys: Option<usize>,
    sketch_bytes: Option<usize>,
}

impl Workload {
    fn points(&self) -> Vec<(u64, f64)> {
        let trace = TraceSynthesizer::bell_labs_like()
            .duration(self.duration)
            .synthesize(self.seed);
        eprintln!(
            "trace: {} packets over {} OD pairs, {:.0}s",
            trace.len(),
            trace.od_pair_count(),
            trace.duration()
        );
        trace.od_keyed_points()
    }

    fn config(&self, shards: usize) -> MonitorConfig {
        let mut config = MonitorConfig::default()
            .sampler(if self.interval <= 1 {
                SamplerSpec::TakeAll
            } else {
                SamplerSpec::Bss {
                    interval: self.interval,
                    epsilon: 1.0,
                    n_pre: 16,
                    l: 4,
                }
            })
            .shards(shards)
            .seed(self.seed)
            // Packet sizes are 40..1500 bytes: a ladder on that scale.
            .tail_thresholds(vec![64.0, 256.0, 576.0, 1024.0, 1400.0]);
        if let Some(t) = self.evict_idle {
            config = config.evict_idle_after(t);
        }
        if let Some(n) = self.max_streams {
            config = config.max_streams(n);
        }
        if let Some(b) = self.compact {
            config = config.compact_budget(b);
        }
        if let Some(n) = self.max_exact_keys {
            config = config.max_exact_keys(n);
        }
        if let Some(b) = self.sketch_bytes {
            config = config.sketch_bytes(b);
        }
        config
    }
}

fn run(rest: Vec<String>) {
    let mut w = Workload {
        seed: 1,
        duration: 120.0,
        interval: 10,
        evict_idle: None,
        max_streams: None,
        compact: None,
        max_exact_keys: None,
        sketch_bytes: None,
    };
    let mut shards = 4usize;
    let mut snapshot_path: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--seed" => w.seed = parse(&num("--seed"), "--seed"),
            "--duration" => w.duration = parse(&num("--duration"), "--duration"),
            "--shards" => shards = parse(&num("--shards"), "--shards"),
            "--interval" => w.interval = parse(&num("--interval"), "--interval"),
            "--snapshot" => snapshot_path = Some(num("--snapshot")),
            "--evict-idle" => w.evict_idle = Some(parse(&num("--evict-idle"), "--evict-idle")),
            "--max-streams" => {
                w.max_streams = Some(parse(&num("--max-streams"), "--max-streams"));
            }
            "--compact" => w.compact = Some(parse(&num("--compact"), "--compact")),
            "--max-exact-keys" => {
                w.max_exact_keys = Some(parse(&num("--max-exact-keys"), "--max-exact-keys"));
            }
            "--sketch-bytes" => {
                w.sketch_bytes = Some(parse(&num("--sketch-bytes"), "--sketch-bytes"));
            }
            other => die(&format!("unexpected argument '{other}'")),
        }
    }
    let points = w.points();
    let mut engine = MonitorEngine::new(w.config(shards));
    // Stream the trace through in batches, as a collector would.
    for chunk in points.chunks(1 << 16) {
        engine.offer_batch(chunk);
    }
    engine.maintain();
    let stats = engine.lifecycle_stats();
    if stats.evicted > 0 {
        eprintln!(
            "lifecycle: {} evicted, {} retired, {} live, ~{} KiB state",
            stats.evicted,
            stats.retired,
            engine.stream_count(),
            engine.estimated_state_bytes() >> 10
        );
    }
    if let Some(t) = engine.tier_stats() {
        eprintln!(
            "tier: {} exact, ~{} sketched, {} promotions, {} demotions, ~{} KiB sketch",
            t.exact_keys,
            t.sketched_keys,
            t.promotions,
            t.demotions,
            t.sketch_state_bytes >> 10
        );
    }
    let snap = engine.full_snapshot();
    report(&snap);
    if let Some(path) = snapshot_path {
        let bytes = encode_snapshot(&snap);
        std::fs::write(&path, &bytes).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}: {} bytes", bytes.len());
    }
}

fn serve(rest: Vec<String>) {
    let mut it = rest.into_iter();
    let socket = it
        .next()
        .unwrap_or_else(|| die("serve needs a socket path"));
    let mut collectors = 1usize;
    let mut out: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut accept_timeout: Option<Duration> = None;
    let mut threaded = false;
    let mut backend: Option<BackendKind> = None;
    let mut loops = 1usize;
    let mut report_sessions = false;
    let mut max_exact_keys: Option<usize> = None;
    let mut sketch_bytes: Option<usize> = None;
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--collectors" => collectors = parse(&num("--collectors"), "--collectors"),
            "--out" => out = Some(num("--out")),
            "--tcp" => tcp = Some(num("--tcp")),
            "--accept-timeout" => {
                let secs: f64 = parse(&num("--accept-timeout"), "--accept-timeout");
                // try_from rejects NaN, infinity, and out-of-range;
                // the explicit check below rejects zero and negatives.
                match Duration::try_from_secs_f64(secs) {
                    Ok(d) if !d.is_zero() => accept_timeout = Some(d),
                    _ => die("--accept-timeout needs a positive (finite) number of seconds"),
                }
            }
            "--backend" => {
                backend = Some(num("--backend").parse().unwrap_or_else(|e: String| die(&e)));
            }
            "--loops" => {
                loops = parse(&num("--loops"), "--loops");
                if loops == 0 {
                    die("--loops needs at least 1");
                }
            }
            "--report-sessions" => report_sessions = true,
            "--max-exact-keys" => {
                max_exact_keys = Some(parse(&num("--max-exact-keys"), "--max-exact-keys"));
            }
            "--sketch-bytes" => {
                sketch_bytes = Some(parse(&num("--sketch-bytes"), "--sketch-bytes"));
            }
            "--threaded" => threaded = true,
            "--event-loop" => threaded = false, // The default; kept for explicitness.
            other => die(&format!("unexpected argument '{other}'")),
        }
    }
    if threaded && (backend.is_some() || loops > 1 || report_sessions) {
        die("--backend/--loops/--report-sessions need the event-loop transport (drop --threaded)");
    }
    let kind = backend.unwrap_or_default();
    let _ = std::fs::remove_file(&socket);
    let listener =
        UnixListener::bind(&socket).unwrap_or_else(|e| die(&format!("bind {socket}: {e}")));
    let mode = if threaded {
        "threaded".to_string()
    } else if loops > 1 {
        format!("{loops} event loops, {kind}")
    } else {
        format!("event loop, {kind}")
    };
    eprintln!("listening on {socket} for {collectors} collector(s) [{mode}]");
    // :0 resolves to an ephemeral port; print the real one so
    // forwarders (and tests) can find it.
    let tcp_listener = tcp.as_ref().map(|addr| {
        let l = TcpListener::bind(addr).unwrap_or_else(|e| die(&format!("bind {addr}: {e}")));
        match l.local_addr() {
            Ok(a) => eprintln!("listening on tcp {a}"),
            Err(_) => eprintln!("listening on tcp {addr}"),
        }
        l
    });
    let opts = ServeOptions {
        collectors,
        accept_timeout,
    };
    let make_agg = || {
        let mut a = Aggregator::new();
        if let Some(n) = max_exact_keys {
            a = a.max_exact_keys(n);
        }
        if let Some(b) = sketch_bytes {
            a = a.sketch_bytes(b);
        }
        a
    };
    let (aggs, rep) = if threaded {
        if tcp_listener.is_some() {
            die("--tcp needs the event-loop transport (drop --threaded)");
        }
        let (agg, rep) = serve_threaded(listener, make_agg(), collectors, accept_timeout);
        (AggregatorSet::new(vec![agg]), rep)
    } else if loops > 1 {
        let mut server =
            MultiLoopServer::new((0..loops).map(|_| make_agg()).collect(), opts).with_backend(kind);
        server
            .add_unix_listener(listener)
            .unwrap_or_else(|e| die(&format!("register unix listener: {e}")));
        if let Some(l) = tcp_listener {
            server
                .add_tcp_listener(l)
                .unwrap_or_else(|e| die(&format!("register tcp listener: {e}")));
        }
        server
            .run()
            .unwrap_or_else(|e| die(&format!("event loops: {e}")))
    } else {
        let mut server = EventLoopServer::new(make_agg(), opts).with_backend(kind);
        server
            .add_unix_listener(listener)
            .unwrap_or_else(|e| die(&format!("register unix listener: {e}")));
        if let Some(l) = tcp_listener {
            server
                .add_tcp_listener(l)
                .unwrap_or_else(|e| die(&format!("register tcp listener: {e}")));
        }
        let (agg, rep) = server
            .run()
            .unwrap_or_else(|e| die(&format!("event loop: {e}")));
        (AggregatorSet::new(vec![agg]), rep)
    };
    let _ = std::fs::remove_file(&socket);
    for f in &rep.failures {
        eprintln!(
            "session failed ({}, id {}): {} — isolated, kept serving",
            f.peer,
            f.session.map_or("unknown".into(), |s| s.to_string()),
            f.error
        );
    }
    if rep.probes > 0 {
        eprintln!("ignored {} connect-and-close probe(s)", rep.probes);
    }
    if report_sessions {
        for s in &rep.sessions {
            eprintln!(
                "session delivered: id={} peer={} loop={} frames={} bytes={} \
                 diff_bytes={} full_bytes={} resyncs={}",
                s.session.map_or("-".into(), |id| id.to_string()),
                s.peer,
                s.worker,
                s.frames,
                s.bytes,
                s.diff_bytes,
                s.full_bytes,
                s.resyncs
            );
        }
    }
    if rep.aborted > 0 {
        eprintln!(
            "dropped {} session(s) still mid-stream at shutdown",
            rep.aborted
        );
    }
    if rep.timed_out {
        eprintln!(
            "accept timeout: assembled {} of {collectors} expected collector(s)",
            rep.completed
        );
    }
    eprintln!(
        "assembled {} collector session(s), ~{} KiB aggregator state",
        aggs.collector_count(),
        aggs.estimated_state_bytes() >> 10
    );
    let snap = aggs.snapshot();
    report(&snap);
    if let Some(path) = out {
        let bytes = encode_snapshot(&snap);
        std::fs::write(&path, &bytes).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}: {} bytes", bytes.len());
    }
}

/// The historical transport: one blocking thread per accepted
/// connection, aggregator behind a mutex. Kept for comparison and as a
/// fallback; shares the library's [`pump_blocking`] /
/// [`sst_monitor::SessionDriver`] state machine with the event loop,
/// so failures are isolated the same way (a bad session is logged and
/// rolled back, never fatal) and the assembled bytes are identical.
///
/// Unlike the event loop it joins every accepted session before
/// returning, so with `--accept-timeout` each session socket also gets
/// that as its read timeout — a stalled (never-closing) client then
/// fails its own session instead of holding the shutdown hostage.
/// Without the flag, a stalled client blocks shutdown forever — one
/// more reason the event loop is the default. Collector-id admission
/// (spoof rejection) is event-loop-only; this path trusts its local
/// Unix-socket peers to use distinct ids.
fn serve_threaded(
    listener: UnixListener,
    agg: Aggregator,
    collectors: usize,
    accept_timeout: Option<Duration>,
) -> (Aggregator, ServeReport) {
    listener
        .set_nonblocking(true)
        .unwrap_or_else(|e| die(&format!("listener nonblocking: {e}")));
    let agg = Mutex::new(agg);
    let completed = AtomicUsize::new(0);
    let probes = AtomicUsize::new(0);
    let failures = Mutex::new(Vec::new());
    let last_activity = Mutex::new(Instant::now());
    let mut timed_out = false;
    std::thread::scope(|scope| {
        let mut conn = 0u64;
        loop {
            if completed.load(Ordering::SeqCst) >= collectors {
                break;
            }
            if let Some(t) = accept_timeout {
                let last = *last_activity.lock().unwrap_or_else(PoisonError::into_inner);
                if last.elapsed() >= t {
                    timed_out = true;
                    break;
                }
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    // A stalled client must not wedge the final scope
                    // join: bound each blocking read by the same idle
                    // budget (the read error then fails that session
                    // alone).
                    if let Some(t) = accept_timeout {
                        let _ = stream.set_read_timeout(Some(t));
                    }
                    // Accepting alone is not activity (a periodic
                    // prober must not defer the idle deadline) — the
                    // ActivityRead wrapper stamps delivered bytes.
                    // Legacy (Hello-less) sessions get ids past u32 so
                    // they can't collide with forwarders' small ids.
                    let fallback_id = FALLBACK_ID_BASE + conn;
                    conn += 1;
                    let (agg, completed, probes, failures, last_activity) =
                        (&agg, &completed, &probes, &failures, &last_activity);
                    scope.spawn(move || {
                        // Stamp the activity clock per read, not just
                        // at accept/exit, so a session actively
                        // streaming for longer than --accept-timeout
                        // doesn't trip the idle guard (matching the
                        // event loop's semantics).
                        let mut stream = ActivityRead {
                            inner: stream,
                            last_activity,
                        };
                        match pump_blocking(&mut stream, agg, fallback_id) {
                            Ok(0) => {
                                probes.fetch_add(1, Ordering::SeqCst);
                            }
                            Ok(_) => {
                                completed.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(e) => {
                                // One bad session must not kill the
                                // aggregator: record it, keep serving.
                                failures
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .push(sst_monitor::transport::SessionFailure {
                                        peer: "uds".into(),
                                        session: e.session,
                                        error: e.error.to_string(),
                                    });
                            }
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                // Peer resets and fd exhaustion are transient; dying
                // here would discard every completed session — the
                // total-loss failure this PR removes. Same
                // classification as the event loop's accept path.
                Err(e) if sst_monitor::transport::accept_error_is_transient(&e) => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => die(&format!("accept: {e}")),
            }
        }
    });
    let report = ServeReport {
        completed: completed.into_inner(),
        probes: probes.into_inner(),
        failures: failures
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
        aborted: 0,
        timed_out,
        sessions: Vec::new(),
    };
    // Even if a session thread panicked while holding the lock, the
    // completed sessions' state is intact (it is keyed per session):
    // recover it rather than discarding everything.
    let agg = agg.into_inner().unwrap_or_else(PoisonError::into_inner);
    (agg, report)
}

/// Read adapter for the threaded transport: stamps the shared
/// activity clock on every successful read so the accept-timeout means
/// "no session activity" there too.
struct ActivityRead<'a> {
    inner: UnixStream,
    last_activity: &'a Mutex<Instant>,
}

impl Read for ActivityRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n > 0 {
            *self
                .last_activity
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Instant::now();
        }
        Ok(n)
    }
}

fn forward(rest: Vec<String>) {
    let mut it = rest.into_iter();
    let socket = it
        .next()
        .unwrap_or_else(|| die("forward needs a socket path (or host:port with --tcp)"));
    let mut w = Workload {
        seed: 1,
        duration: 120.0,
        interval: 10,
        evict_idle: None,
        max_streams: None,
        compact: None,
        max_exact_keys: None,
        sketch_bytes: None,
    };
    let mut id: Option<u64> = None;
    let mut part = 0u64;
    let mut n_parts = 1u64;
    let mut flush_every = 1usize << 14;
    let mut tcp = false;
    let mut retry = 0u32;
    let mut backoff_ms = 50u64;
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--tcp" => tcp = true,
            "--seed" => w.seed = parse(&num("--seed"), "--seed"),
            "--duration" => w.duration = parse(&num("--duration"), "--duration"),
            "--interval" => w.interval = parse(&num("--interval"), "--interval"),
            "--id" => id = Some(parse(&num("--id"), "--id")),
            "--partition" => {
                let spec = num("--partition");
                let (i, n) = spec
                    .split_once('/')
                    .unwrap_or_else(|| die("--partition expects I/N"));
                part = parse(i, "--partition");
                n_parts = parse(n, "--partition");
                if n_parts == 0 || part >= n_parts {
                    die("--partition needs I < N, N >= 1");
                }
            }
            "--flush-every" => flush_every = parse(&num("--flush-every"), "--flush-every"),
            "--evict-idle" => w.evict_idle = Some(parse(&num("--evict-idle"), "--evict-idle")),
            "--compact" => w.compact = Some(parse(&num("--compact"), "--compact")),
            "--max-exact-keys" => {
                w.max_exact_keys = Some(parse(&num("--max-exact-keys"), "--max-exact-keys"));
            }
            "--sketch-bytes" => {
                w.sketch_bytes = Some(parse(&num("--sketch-bytes"), "--sketch-bytes"));
            }
            "--retry" => retry = parse(&num("--retry"), "--retry"),
            "--backoff-ms" => backoff_ms = parse(&num("--backoff-ms"), "--backoff-ms"),
            other => die(&format!("unexpected argument '{other}'")),
        }
    }
    let points: Vec<(u64, f64)> = w
        .points()
        .into_iter()
        .filter(|&(k, _)| k % n_parts == part)
        .collect();
    let collector_id = id.unwrap_or(part);
    if retry > 0 {
        // Sequenced (wire v3) path: seq/ack window, reconnect with
        // backoff, replay or full-snapshot resync.
        let target = socket.clone();
        let connect = move || -> std::io::Result<SessionStream> {
            if tcp {
                TcpStream::connect(target.as_str()).map(SessionStream::from)
            } else {
                UnixStream::connect(target.as_str()).map(SessionStream::from)
            }
        };
        let backoff = Backoff::new(
            backoff_ms,
            backoff_ms.saturating_mul(64),
            w.seed ^ collector_id,
        );
        let mut sender = SequencedSender::new(
            Collector::new_sequenced(collector_id, w.config(2)),
            connect,
            backoff,
            retry,
        );
        for chunk in points.chunks(flush_every.max(1)) {
            sender.collector_mut().offer_batch(chunk);
            sender
                .flush()
                .unwrap_or_else(|e| die(&format!("flush: {e}")));
        }
        let reconnects = sender.reconnects();
        let collector = sender
            .finish()
            .unwrap_or_else(|e| die(&format!("finish: {e}")));
        let stats = collector.engine().lifecycle_stats();
        eprintln!(
            "forwarded {} points as collector {collector_id} (partition {part}/{n_parts}, \
             {} evicted, sequenced, {} reconnects)",
            points.len(),
            stats.evicted,
            reconnects
        );
        return;
    }
    let mut sock: Box<dyn Write> = if tcp {
        Box::new(
            TcpStream::connect(&socket).unwrap_or_else(|e| die(&format!("connect {socket}: {e}"))),
        )
    } else {
        Box::new(
            UnixStream::connect(&socket).unwrap_or_else(|e| die(&format!("connect {socket}: {e}"))),
        )
    };
    let mut collector = Collector::new(collector_id, w.config(2));
    for chunk in points.chunks(flush_every.max(1)) {
        collector.offer_batch(chunk);
        collector
            .flush(&mut sock)
            .unwrap_or_else(|e| die(&format!("flush: {e}")));
    }
    collector
        .finish(&mut sock)
        .unwrap_or_else(|e| die(&format!("finish: {e}")));
    let stats = collector.engine().lifecycle_stats();
    eprintln!(
        "forwarded {} points as collector {collector_id} (partition {part}/{n_parts}, {} evicted)",
        points.len(),
        stats.evicted
    );
}

fn report(snap: &EngineSnapshot) {
    let agg = snap.aggregate();
    let totals = snap.sampler_totals();
    println!("streams        : {}", snap.stream_count());
    if let Some(sk) = snap.sketch() {
        let tail_h = sk
            .projected_hurst()
            .map_or("(insufficient data)".to_string(), |h| format!("{h:.3}"));
        println!(
            "tier           : {} exact, ~{} sketched, {} promotions, {} demotions, \
             ~{} KiB sketch, tail Hurst {}",
            snap.stream_count(),
            sk.distinct_keys(),
            sk.promotions,
            sk.demotions,
            sst_core::summary::Compactable::estimated_bytes(sk) >> 10,
            tail_h
        );
    }
    println!(
        "offered/kept   : {} / {} (inspected {})",
        totals.offered, totals.kept, totals.inspected
    );
    println!(
        "kept mean/std  : {:.3} / {:.3}",
        agg.moments.mean(),
        agg.moments.stddev()
    );
    match agg.hurst_estimate() {
        Some(h) => println!("online Hurst   : {h:.3}"),
        None => println!("online Hurst   : (insufficient data)"),
    }
    let ladder: Vec<(f64, u64)> = agg.tail.ladder().collect();
    if !ladder.is_empty() {
        let cells: Vec<String> = ladder
            .iter()
            .map(|(t, c)| {
                format!(
                    "P(>{t:.0})={:.4}",
                    *c as f64 / agg.tail.total().max(1) as f64
                )
            })
            .collect();
        println!("tail           : {}", cells.join("  "));
    }
    println!("top streams by kept volume:");
    println!(
        "{:>18} {:>12} {:>14} {:>10}",
        "key", "kept", "volume", "mean"
    );
    for e in snap.top_streams(5) {
        println!(
            "{:>18x} {:>12} {:>14.0} {:>10.2}",
            e.key,
            e.sampler.kept,
            e.summary.kept_volume(),
            e.summary.moments.mean()
        );
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{what}: cannot parse '{s}'")))
}

fn load(path: &str) -> EngineSnapshot {
    let bytes = std::fs::read(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    decode_snapshot(&bytes).unwrap_or_else(|e| die(&format!("decode {path}: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
