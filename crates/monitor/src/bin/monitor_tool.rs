//! `monitor-tool` — drive the sharded monitoring engine over synthetic
//! packet traces, and inspect/merge its snapshots.
//!
//! ```text
//! monitor-tool run [--seed N] [--duration SECS] [--shards N]
//!                  [--interval C] [--snapshot OUT.ssm]
//!     synthesize a Bell-Labs-like trace, ingest it as per-OD-pair
//!     streams (batched through the worker pool), print the link report,
//!     optionally write the snapshot
//! monitor-tool info IN.ssm          # decode a snapshot, print the report
//! monitor-tool merge OUT.ssm IN.ssm [IN.ssm …]
//!     merge snapshots (disjoint or overlapping key sets) into one
//! ```

use sst_monitor::{
    decode_snapshot, encode_snapshot, EngineSnapshot, MonitorConfig, MonitorEngine, SamplerSpec,
};
use sst_nettrace::TraceSynthesizer;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("run") => run(it.collect()),
        Some("info") => {
            let path = it
                .next()
                .unwrap_or_else(|| die("info needs a snapshot path"));
            report(&load(&path));
        }
        Some("merge") => {
            let out = it
                .next()
                .unwrap_or_else(|| die("merge needs an output path"));
            let inputs: Vec<String> = it.collect();
            if inputs.is_empty() {
                die("merge needs at least one input snapshot");
            }
            let mut merged = EngineSnapshot::default();
            for p in &inputs {
                merged = merged.merge(load(p));
            }
            let bytes = encode_snapshot(&merged);
            std::fs::write(&out, &bytes).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
            eprintln!(
                "merged {} snapshots into {out}: {} streams, {} bytes",
                inputs.len(),
                merged.stream_count(),
                bytes.len()
            );
            report(&merged);
        }
        _ => die("usage: monitor-tool run|info|merge …  (see the module docs)"),
    }
}

fn run(rest: Vec<String>) {
    let mut seed = 1u64;
    let mut duration = 120.0f64;
    let mut shards = 4usize;
    let mut interval = 10usize;
    let mut snapshot_path: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match a.as_str() {
            "--seed" => seed = parse(&num("--seed"), "--seed"),
            "--duration" => duration = parse(&num("--duration"), "--duration"),
            "--shards" => shards = parse(&num("--shards"), "--shards"),
            "--interval" => interval = parse(&num("--interval"), "--interval"),
            "--snapshot" => snapshot_path = Some(num("--snapshot")),
            other => die(&format!("unexpected argument '{other}'")),
        }
    }
    let trace = TraceSynthesizer::bell_labs_like()
        .duration(duration)
        .synthesize(seed);
    let points = trace.od_keyed_points();
    eprintln!(
        "trace: {} packets over {} OD pairs, {:.0}s",
        points.len(),
        trace.od_pair_count(),
        trace.duration()
    );
    let mut engine = MonitorEngine::new(
        MonitorConfig::default()
            .sampler(if interval <= 1 {
                SamplerSpec::TakeAll
            } else {
                SamplerSpec::Bss {
                    interval,
                    epsilon: 1.0,
                    n_pre: 16,
                    l: 4,
                }
            })
            .shards(shards)
            .seed(seed)
            // Packet sizes are 40..1500 bytes: a ladder on that scale.
            .tail_thresholds(vec![64.0, 256.0, 576.0, 1024.0, 1400.0]),
    );
    // Stream the trace through in batches, as a collector would.
    for chunk in points.chunks(1 << 16) {
        engine.offer_batch(chunk);
    }
    let snap = engine.snapshot();
    report(&snap);
    if let Some(path) = snapshot_path {
        let bytes = encode_snapshot(&snap);
        std::fs::write(&path, &bytes).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!("wrote {path}: {} bytes", bytes.len());
    }
}

fn report(snap: &EngineSnapshot) {
    let agg = snap.aggregate();
    let totals = snap.sampler_totals();
    println!("streams        : {}", snap.stream_count());
    println!(
        "offered/kept   : {} / {} (inspected {})",
        totals.offered, totals.kept, totals.inspected
    );
    println!(
        "kept mean/std  : {:.3} / {:.3}",
        agg.moments.mean(),
        agg.moments.stddev()
    );
    match agg.hurst_estimate() {
        Some(h) => println!("online Hurst   : {h:.3}"),
        None => println!("online Hurst   : (insufficient data)"),
    }
    let ladder: Vec<(f64, u64)> = agg.tail.ladder().collect();
    if !ladder.is_empty() {
        let cells: Vec<String> = ladder
            .iter()
            .map(|(t, c)| {
                format!(
                    "P(>{t:.0})={:.4}",
                    *c as f64 / agg.tail.total().max(1) as f64
                )
            })
            .collect();
        println!("tail           : {}", cells.join("  "));
    }
    println!("top streams by kept volume:");
    println!(
        "{:>18} {:>12} {:>14} {:>10}",
        "key", "kept", "volume", "mean"
    );
    for e in snap.top_streams(5) {
        println!(
            "{:>18x} {:>12} {:>14.0} {:>10.2}",
            e.key,
            e.sampler.kept,
            e.summary.kept_volume(),
            e.summary.moments.mean()
        );
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{what}: cannot parse '{s}'")))
}

fn load(path: &str) -> EngineSnapshot {
    let bytes = std::fs::read(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    decode_snapshot(&bytes).unwrap_or_else(|e| die(&format!("decode {path}: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
