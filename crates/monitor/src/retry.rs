//! Reconnect, backoff, and replay for sequenced collector sessions.
//!
//! The transport layer serves sessions; this module makes the *client*
//! side survive the transport failing. Two pieces:
//!
//! * [`Backoff`] — the shared retry schedule: capped exponential with
//!   deterministic seeded jitter, monotone non-decreasing. Every
//!   retrying component (connect and mid-stream alike) draws from the
//!   same schedule so operators reason about one curve, and tests can
//!   pin it exactly (same seed ⇒ same delays).
//! * [`SequencedSender`] — drives a sequenced [`Collector`] over a
//!   reconnecting [`SessionStream`]: seals frames into the in-flight
//!   window, writes them, consumes `Ack`s to trim the window, replays
//!   the unacked tail after a reconnect, and degrades to a
//!   full-snapshot re-baseline when the aggregator answers `Resync`
//!   (serve restart, replay gap). `monitor_tool forward --retry` is a
//!   thin shell around it.
//!
//! ## Ack-less peers
//!
//! The threaded transport ([`pump_blocking`]) reads to EOF and never
//! writes, so a sender talking to it would wait for acks forever.
//! [`SequencedSender::finish`] therefore treats *silence* — a read
//! timeout with the connection still open and no server frame ever
//! received — as optimistic success, while EOF or reset before the
//! final ack still triggers a retry. A server that has spoken (any
//! `Ack`/`Resync`) is held to the full acknowledged handshake.
//!
//! [`pump_blocking`]: crate::transport::pump_blocking

use crate::topology::Collector;
use crate::transport::SessionStream;
use crate::wire::{encode_frame, Frame, FrameDecoder, HelloResume};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Capped exponential backoff with deterministic seeded jitter.
///
/// The delay sequence is monotone non-decreasing (a running max — a
/// jitter draw can never *shorten* the wait below an earlier one),
/// capped at `cap_ms`, and fully determined by `(base_ms, cap_ms,
/// seed)` — two instances with the same parameters produce the same
/// schedule, which is what lets the fault-injection tests run the
/// same nominal timeline every time.
#[derive(Clone, Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    seed: u64,
    state: u64,
    attempt: u32,
    floor: u64,
}

impl Backoff {
    /// A schedule starting at `base_ms`, doubling per attempt, capped
    /// at `cap_ms`, with jitter drawn from `seed`. Zero parameters are
    /// clamped sane (`base ≥ 1`, `cap ≥ base`).
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        let base_ms = base_ms.max(1);
        Backoff {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            seed,
            state: (seed ^ 0x9E37_79B9_7F4A_7C15).max(1),
            attempt: 0,
            floor: 0,
        }
    }

    /// xorshift64* — tiny, seedable, and good enough for jitter.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next delay in the schedule, in milliseconds.
    pub fn next_delay_ms(&mut self) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << self.attempt.min(20))
            .min(self.cap_ms);
        // Half-jitter: uniform in [exp/2, exp], so consecutive
        // retries from many collectors de-synchronize without any
        // delay collapsing to zero.
        let half = exp / 2;
        let jittered = half + self.next_u64() % (exp - half + 1);
        self.attempt = self.attempt.saturating_add(1);
        self.floor = self.floor.max(jittered).min(self.cap_ms);
        self.floor
    }

    /// Rewinds to the start of the schedule (same seed ⇒ the same
    /// delays will replay).
    pub fn reset(&mut self) {
        *self = Backoff::new(self.base_ms, self.cap_ms, self.seed);
    }
}

/// How long [`SequencedSender::finish`] waits for an ack before
/// deciding the peer is silent (ack-less threaded transport) or stuck.
const ACK_WAIT: Duration = Duration::from_millis(500);

/// What one bounded read of the server's back-channel produced.
enum ReadEvent {
    /// Completed frames (possibly none yet — mid-frame).
    Frames(Vec<Frame>),
    /// The read timed out / would block; connection still open.
    Silence,
}

/// One live connection of a [`SequencedSender`].
struct Conn {
    stream: SessionStream,
    dec: FrameDecoder,
    /// The next window sequence number not yet written on *this*
    /// connection (replays restart it at the Hello's `first_seq`).
    sent: u64,
}

impl Conn {
    /// Reads whatever the server has sent, bounded by the stream's
    /// current blocking mode / read timeout.
    ///
    /// # Errors
    ///
    /// EOF (`UnexpectedEof`), read errors, and wire corruption
    /// (`InvalidData`) — all of which the sender treats as
    /// connection-fatal and feeds to the retry path.
    fn read_event(&mut self) -> io::Result<ReadEvent> {
        let mut buf = [0u8; 4096];
        match self.stream.read(&mut buf) {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "aggregator closed the connection",
            )),
            Ok(n) => {
                self.dec.push(&buf[..n]);
                let mut frames = Vec::new();
                loop {
                    match self.dec.next_frame() {
                        Ok(Some(f)) => frames.push(f),
                        Ok(None) => break,
                        Err(e) => {
                            return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                        }
                    }
                }
                Ok(ReadEvent::Frames(frames))
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(ReadEvent::Silence)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(ReadEvent::Frames(Vec::new())),
            Err(e) => Err(e),
        }
    }
}

/// Drives a sequenced [`Collector`] over a reconnecting transport —
/// the client half of the seq/ack protocol. See the module docs.
pub struct SequencedSender<F: FnMut() -> io::Result<SessionStream>> {
    collector: Collector,
    connect: F,
    backoff: Backoff,
    retries_left: u32,
    conn: Option<Conn>,
    /// `true` once any server frame arrived on any connection — the
    /// peer speaks the back-channel, so silence is never success.
    server_speaks: bool,
    /// Reconnects performed (observability; `forward` prints it).
    reconnects: u32,
}

impl<F: FnMut() -> io::Result<SessionStream>> SequencedSender<F> {
    /// Wraps a sequenced `collector` (see [`Collector::new_sequenced`])
    /// around a `connect` factory, allowing `retries` reconnect
    /// attempts drawn from `backoff`.
    ///
    /// # Panics
    ///
    /// If `collector` is not sequenced.
    pub fn new(collector: Collector, connect: F, backoff: Backoff, retries: u32) -> Self {
        assert!(
            collector.is_sequenced(),
            "SequencedSender needs a sequenced collector"
        );
        SequencedSender {
            collector,
            connect,
            backoff,
            retries_left: retries,
            conn: None,
            server_speaks: false,
            reconnects: 0,
        }
    }

    /// The wrapped collector (offer points through this).
    pub fn collector_mut(&mut self) -> &mut Collector {
        &mut self.collector
    }

    /// Reconnects performed so far.
    pub fn reconnects(&self) -> u32 {
        self.reconnects
    }

    /// `Resync` re-baselines served so far (each one re-sent the
    /// unacked evicted tail plus a full snapshot — and, past a couple,
    /// disabled differential frames for the session).
    pub fn resyncs(&self) -> u32 {
        self.collector.resyncs()
    }

    /// Records a connection failure: drops the connection, consumes a
    /// retry (or propagates `e` when the budget is spent), sleeps the
    /// backoff delay.
    fn note_failure(&mut self, e: io::Error) -> io::Result<()> {
        self.conn = None;
        if self.retries_left == 0 {
            return Err(e);
        }
        self.retries_left -= 1;
        self.reconnects += 1;
        std::thread::sleep(Duration::from_millis(self.backoff.next_delay_ms()));
        Ok(())
    }

    /// Ensures a live connection: connects, sends the resume `Hello`
    /// (`Fresh` first time, `Replay` from the oldest unacked frame
    /// after), retrying through the backoff schedule.
    fn ensure_connected(&mut self) -> io::Result<()> {
        while self.conn.is_none() {
            let attempt = (|| -> io::Result<Conn> {
                let mut stream = (self.connect)()?;
                let hello = self.collector.hello();
                let sent = match &hello {
                    Frame::Hello {
                        resume: Some(r), ..
                    } => r.first_seq(),
                    _ => 0,
                };
                stream.write_all(&encode_frame(&hello))?;
                Ok(Conn {
                    stream,
                    dec: FrameDecoder::new(),
                    sent,
                })
            })();
            match attempt {
                Ok(conn) => self.conn = Some(conn),
                Err(e) => self.note_failure(e)?,
            }
        }
        Ok(())
    }

    /// Writes every sealed window frame not yet sent on this
    /// connection (blocking writes; partial writes are `write_all`'s
    /// problem).
    fn push_window(&mut self) -> io::Result<()> {
        let conn = self.conn.as_mut().expect("connected");
        for (seq, bytes) in self.collector.unsent_window(conn.sent) {
            conn.stream.write_all(bytes)?;
            conn.sent = seq + 1;
        }
        conn.sent = conn.sent.max(self.collector.next_seq());
        Ok(())
    }

    /// Applies one server frame: `Ack` trims the window, `Resync`
    /// re-baselines (re-sends the missing evicted tail and a full
    /// snapshot under a `Resync`-mode `Hello`), `Shutdown` converts to
    /// a connection error so the retry path reconnects elsewhere.
    fn apply_server_frame(&mut self, frame: Frame) -> io::Result<()> {
        self.server_speaks = true;
        match frame {
            Frame::Ack { through_seq } => {
                self.collector.ack(through_seq);
                Ok(())
            }
            Frame::Resync { from_seq } => {
                let hello = self.collector.handle_resync(from_seq);
                let first = match &hello {
                    Frame::Hello {
                        resume: Some(HelloResume::Resync { first_seq }),
                        ..
                    } => *first_seq,
                    _ => 0,
                };
                let conn = self.conn.as_mut().expect("connected");
                conn.stream.write_all(&encode_frame(&hello))?;
                conn.sent = first;
                self.push_window()
            }
            Frame::Shutdown => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "aggregator is shutting down",
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected aggregator frame {other:?}"),
            )),
        }
    }

    /// Drains whatever the server has queued without blocking.
    fn poll_server(&mut self) -> io::Result<()> {
        loop {
            let conn = self.conn.as_mut().expect("connected");
            conn.stream.set_nonblocking(true)?;
            let ev = conn.read_event();
            conn.stream.set_nonblocking(false)?;
            match ev? {
                ReadEvent::Silence => return Ok(()),
                ReadEvent::Frames(frames) => {
                    if frames.is_empty() {
                        return Ok(());
                    }
                    for f in frames {
                        self.apply_server_frame(f)?;
                    }
                }
            }
        }
    }

    /// Seals everything pending and delivers it, reconnecting and
    /// replaying as needed. Returns as soon as the bytes are written
    /// — acks are consumed opportunistically, not awaited.
    ///
    /// # Errors
    ///
    /// The last connection error once the retry budget is spent.
    pub fn flush(&mut self) -> io::Result<()> {
        self.collector.seal_flush();
        self.deliver()
    }

    fn deliver(&mut self) -> io::Result<()> {
        loop {
            self.ensure_connected()?;
            let step = self.push_window().and_then(|()| self.poll_server());
            match step {
                Ok(()) => return Ok(()),
                Err(e) => self.note_failure(e)?,
            }
        }
    }

    /// Seals the `Bye` and runs the session to durable completion:
    /// everything written, and — against an acking server — every
    /// frame through the `Bye` acknowledged. Consumes the sender and
    /// returns the collector (tests inspect its engine).
    ///
    /// # Errors
    ///
    /// The last connection error once the retry budget is spent.
    pub fn finish(mut self) -> io::Result<Collector> {
        self.collector.seal_finish();
        loop {
            self.ensure_connected()?;
            match self.finish_round() {
                Ok(true) => return Ok(self.collector),
                Ok(false) => {}
                Err(e) => self.note_failure(e)?,
            }
        }
    }

    /// One connected attempt at completion: write the tail, then wait
    /// (bounded) for acks. `Ok(true)` = durably done; `Ok(false)` =
    /// keep waiting on this connection.
    fn finish_round(&mut self) -> io::Result<bool> {
        self.push_window()?;
        self.conn
            .as_mut()
            .expect("connected")
            .stream
            .set_read_timeout(Some(ACK_WAIT))?;
        loop {
            if self.collector.finish_acked() {
                return Ok(true);
            }
            match self.conn.as_mut().expect("connected").read_event()? {
                ReadEvent::Silence => {
                    if self.server_speaks {
                        // The server acks — silence means it is stuck
                        // (or we are mid-restart). Retry.
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no ack for the final frames",
                        ));
                    }
                    // Never heard a frame: an ack-less (threaded)
                    // transport. Everything is written; optimistic
                    // success is the best available contract.
                    return Ok(true);
                }
                ReadEvent::Frames(frames) => {
                    for f in frames {
                        self.apply_server_frame(f)?;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mut a = Backoff::new(10, 1000, 42);
        let mut b = Backoff::new(10, 1000, 42);
        let sa: Vec<u64> = (0..12).map(|_| a.next_delay_ms()).collect();
        let sb: Vec<u64> = (0..12).map(|_| b.next_delay_ms()).collect();
        assert_eq!(sa, sb);
        let mut c = Backoff::new(10, 1000, 43);
        let sc: Vec<u64> = (0..12).map(|_| c.next_delay_ms()).collect();
        assert_ne!(sa, sc, "different seeds should jitter differently");
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let mut b = Backoff::new(7, 350, 9);
        let mut prev = 0;
        for i in 0..40 {
            let d = b.next_delay_ms();
            assert!(d >= prev, "delay shrank at attempt {i}: {prev} -> {d}");
            assert!(d <= 350, "delay above cap at attempt {i}: {d}");
            prev = d;
        }
        assert_eq!(prev, 350, "schedule should saturate at the cap");
    }

    #[test]
    fn backoff_reset_replays_the_schedule() {
        let mut b = Backoff::new(5, 500, 77);
        let first: Vec<u64> = (0..8).map(|_| b.next_delay_ms()).collect();
        b.reset();
        let second: Vec<u64> = (0..8).map(|_| b.next_delay_ms()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn backoff_clamps_degenerate_parameters() {
        let mut b = Backoff::new(0, 0, 0);
        let d = b.next_delay_ms();
        assert!(d >= 1, "zero base must clamp to at least 1ms, got {d}");
        assert!(b.next_delay_ms() >= d);
    }
}
