//! Per-stream differential payloads — what a wire-v4 `DeltaDiff`
//! frame carries instead of cumulative entries.
//!
//! A sequenced collector keeps the last cumulative [`StreamEntry`] it
//! shipped per key (its *baseline*, mirrored by the aggregator's live
//! view under the seq watermark) and, per flush, ships only what moved:
//! sampler counter deltas, replaced Welford moments, inserted/replaced
//! reservoir slots, touched cascade levels, and tail-ladder count
//! increments. Reassembly is **bit-exact by construction** — changed
//! floats travel verbatim (bit-compared, never delta-encoded) and only
//! monotone integer counters travel as deltas — so the aggregator's
//! state after applying a diff is byte-for-byte what the cumulative
//! `Delta` path would have produced.
//!
//! Every diff names the baseline it applies to through a cheap integer
//! [`BaseFingerprint`]; a mismatch (the receiver compacted, lost, or
//! re-baselined its copy) fails [`apply_diff`] so the session degrades
//! to a `Resync{from_seq}` re-baseline rather than corrupt state.

use crate::engine::StreamEntry;
use crate::summary::SummaryPatch;

/// Integer fingerprint of the baseline entry a [`StreamDiff`] applies
/// to: the monotone counters plus the two compactable lengths. Any
/// divergence between sender baseline and receiver live state — a
/// missed frame, a server-side compaction, a restart — moves at least
/// one of these, because every kept point advances the counters and
/// compaction shrinks a length.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaseFingerprint {
    /// Baseline's kept-sample (Welford) count.
    pub moments_count: u64,
    /// Baseline's reservoir `seen` counter.
    pub reservoir_seen: u64,
    /// Baseline's retained reservoir sample length.
    pub reservoir_len: u64,
    /// Baseline's cascade value count.
    pub cascade_count: u64,
    /// Baseline's cascade level count.
    pub cascade_levels: u64,
    /// Baseline's tail-ladder total.
    pub tail_total: u64,
}

impl BaseFingerprint {
    /// The fingerprint of an entry.
    pub fn of(e: &StreamEntry) -> Self {
        BaseFingerprint {
            moments_count: e.summary.moments.count(),
            reservoir_seen: e.summary.reservoir.seen,
            reservoir_len: e.summary.reservoir.items.len() as u64,
            cascade_count: e.summary.hurst.count(),
            cascade_levels: e.summary.hurst.level_count() as u64,
            tail_total: e.summary.tail.total(),
        }
    }
}

/// One stream's differential payload inside a `DeltaDiff` frame.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamDiff {
    /// The stream key.
    pub key: u64,
    /// Sampler counter deltas `(offered, kept, inspected)`.
    pub sampler_delta: (u64, u64, u64),
    /// Fingerprint of the baseline this diff applies to.
    pub base: BaseFingerprint,
    /// The per-section summary patch.
    pub patch: SummaryPatch,
}

/// Computes the diff taking `base` to `new`, or `None` when the pair
/// is not diffable (different keys, counters moved backwards, reservoir
/// identity or tail ladder changed, cascade or sample shrank) — the
/// collector ships the full cumulative entry instead.
pub fn diff_entry(base: &StreamEntry, new: &StreamEntry) -> Option<StreamDiff> {
    if base.key != new.key {
        return None;
    }
    let sampler_delta = new.sampler.delta_from(&base.sampler)?;
    let patch = new.summary.diff_from(&base.summary)?;
    Some(StreamDiff {
        key: new.key,
        sampler_delta,
        base: BaseFingerprint::of(base),
        patch,
    })
}

/// Applies a diff to the receiver's live entry.
///
/// Validation is two-staged: the baseline fingerprint is checked before
/// anything mutates, then each section's patch validates its own
/// structural invariants as it applies. On `Err` the entry may be
/// partially updated and must be treated as lost — the caller answers
/// with `Resync{from_seq}` and the collector re-baselines it wholesale
/// with a `FullSnapshot`, so no wrong bytes ever reach an assembled
/// snapshot.
///
/// # Errors
///
/// A static description of the failed check (fingerprint mismatch or a
/// section patch rejected), for diagnostics; every failure maps to the
/// same recovery (resync).
pub fn apply_diff(entry: &mut StreamEntry, d: &StreamDiff) -> Result<(), &'static str> {
    if entry.key != d.key {
        return Err("diff key mismatch");
    }
    if BaseFingerprint::of(entry) != d.base {
        return Err("baseline fingerprint mismatch");
    }
    if !entry.sampler.apply_delta(d.sampler_delta) {
        return Err("sampler delta rejected");
    }
    if !entry.summary.apply_patch(&d.patch) {
        return Err("summary patch rejected");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MonitorConfig, MonitorEngine, SamplerSpec};

    fn entries_after(points: &[(u64, f64)]) -> Vec<StreamEntry> {
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::Systematic { interval: 2 })
                .seed(7),
        );
        for &(k, v) in points {
            engine.offer(k, v);
        }
        engine.snapshot().into_streams()
    }

    fn points(n: usize, n_keys: u64) -> Vec<(u64, f64)> {
        (0..n)
            .map(|i| {
                let key = (i as u64).wrapping_mul(0x9E37_79B9) % n_keys;
                (key, (i % 613) as f64 - 300.0)
            })
            .collect()
    }

    #[test]
    fn diff_then_apply_reassembles_bit_exact() {
        let pts = points(60_000, 16);
        let (warm, tail) = pts.split_at(50_000);
        let base = entries_after(warm);
        let new = entries_after(&pts);
        assert_eq!(base.len(), new.len());
        for (b, n) in base.iter().zip(&new) {
            let d = diff_entry(b, n).expect("grown entry diffs");
            let mut rebuilt = b.clone();
            apply_diff(&mut rebuilt, &d).expect("applies to its own baseline");
            assert_eq!(&rebuilt, n, "key {}", n.key);
        }
        // Sanity: the tail actually moved every stream.
        assert!(tail.iter().any(|&(k, _)| k < 16));
    }

    #[test]
    fn unchanged_entry_diffs_to_an_empty_patch() {
        let base = entries_after(&points(10_000, 4));
        for e in &base {
            let d = diff_entry(e, e).expect("identical entries diff");
            assert!(d.patch.is_empty());
            assert_eq!(d.sampler_delta, (0, 0, 0));
            let mut rebuilt = e.clone();
            apply_diff(&mut rebuilt, &d).unwrap();
            assert_eq!(&rebuilt, e);
        }
    }

    #[test]
    fn fingerprint_mismatch_is_rejected_not_applied() {
        let pts = points(40_000, 8);
        let base = entries_after(&pts[..30_000]);
        let new = entries_after(&pts);
        let d = diff_entry(&base[0], &new[0]).unwrap();
        // A receiver whose baseline diverged — here, stale by 10 000
        // points, so its counters lag the diff's fingerprint: apply
        // must refuse before mutating anything.
        let mut wrong = entries_after(&pts[..20_000])[0].clone();
        assert_eq!(wrong.key, base[0].key);
        let before = wrong.clone();
        assert!(apply_diff(&mut wrong, &d).is_err());
        assert_eq!(wrong, before, "fingerprint check precedes mutation");
    }

    #[test]
    fn compacted_baseline_refuses_to_diff() {
        use sst_core::summary::Compactable;
        let pts = points(40_000, 4);
        let mut base = entries_after(&pts[..30_000]);
        let new = entries_after(&pts);
        // Compaction shrinks the reservoir/cascade: not diffable.
        base[0].summary.compact(256);
        assert!(diff_entry(&base[0], &new[0]).is_none());
    }
}
