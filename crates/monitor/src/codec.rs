//! Compact binary codec for [`EngineSnapshot`]s — the **v1 payload
//! format** of the transport layer.
//!
//! Shard and link snapshots travel — to a collector, to disk, across a
//! network roll-up — so the format is a fixed-layout little-endian
//! encoding in the style of `sst-nettrace`'s trace codec. The decode
//! path validates every structural invariant (magic, lengths, sorted
//! keys, ladder monotonicity) and never panics on untrusted input;
//! round-trips are **bit-exact** (the summaries are serialized from
//! their raw Welford/cascade state, not from derived statistics).
//!
//! [`crate::wire`] generalizes this into the versioned frame protocol:
//! snapshot-bearing frames (`Delta`/`FullSnapshot`/`Evicted`) carry
//! exactly these bytes as payloads, and a bare buffer in this format
//! (the legacy `.ssm` file form) still decodes as one implicit
//! `FullSnapshot` frame.

use crate::engine::{EngineSnapshot, StreamEntry};
use crate::summary::{ReservoirSnapshot, SummarySnapshot, TailCounter};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sst_core::stream::SamplerSnapshot;
use sst_hurst::online::OnlineVarianceTime;
use sst_stats::RunningStats;
use std::fmt;

/// Magic bytes + version prefix of the format.
const MAGIC: &[u8; 6] = b"SSMON1";

/// Decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotCodecError {
    /// The buffer does not begin with the expected magic/version.
    BadMagic,
    /// The buffer ended before the declared contents.
    Truncated,
    /// A field held an invalid value.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotCodecError::BadMagic => f.write_str("not a monitor snapshot (bad magic)"),
            SnapshotCodecError::Truncated => f.write_str("snapshot buffer truncated"),
            SnapshotCodecError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapshotCodecError {}

fn put_running_stats(buf: &mut BytesMut, rs: &RunningStats) {
    let (n, mean, m2, min, max) = rs.raw_parts();
    buf.put_u64_le(n);
    buf.put_f64_le(mean);
    buf.put_f64_le(m2);
    buf.put_f64_le(min);
    buf.put_f64_le(max);
}

fn get_running_stats(buf: &mut &[u8]) -> Result<RunningStats, SnapshotCodecError> {
    if buf.remaining() < 40 {
        return Err(SnapshotCodecError::Truncated);
    }
    let n = buf.get_u64_le();
    let mean = buf.get_f64_le();
    let m2 = buf.get_f64_le();
    let min = buf.get_f64_le();
    let max = buf.get_f64_le();
    Ok(RunningStats::from_raw_parts(n, mean, m2, min, max))
}

/// Serializes a snapshot into a freshly allocated buffer.
pub fn encode_snapshot(snap: &EngineSnapshot) -> Bytes {
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 16 + 256 * snap.stream_count());
    buf.put_slice(MAGIC);
    buf.put_u64_le(snap.stream_count() as u64);
    for e in snap.streams() {
        buf.put_u64_le(e.key);
        buf.put_u64_le(e.sampler.offered as u64);
        buf.put_u64_le(e.sampler.kept as u64);
        buf.put_u64_le(e.sampler.inspected as u64);
        put_running_stats(&mut buf, &e.summary.moments);
        // Online Hurst cascade: count, then levels with a carry flag.
        let (count, levels, partial) = e.summary.hurst.raw_parts();
        buf.put_u64_le(count);
        buf.put_u64_le(levels.len() as u64);
        for (stats, carry) in levels.iter().zip(partial) {
            put_running_stats(&mut buf, stats);
            match carry {
                Some(sum) => {
                    buf.put_u8(1);
                    buf.put_f64_le(*sum);
                }
                None => buf.put_u8(0),
            }
        }
        // Reservoir.
        let r = &e.summary.reservoir;
        buf.put_u64_le(r.cap as u64);
        buf.put_u64_le(r.seed);
        buf.put_u64_le(r.seen);
        buf.put_u64_le(r.items.len() as u64);
        for &v in &r.items {
            buf.put_f64_le(v);
        }
        // Tail ladder.
        let (thresholds, counts, total) = e.summary.tail.raw_parts();
        buf.put_u64_le(thresholds.len() as u64);
        for &t in thresholds {
            buf.put_f64_le(t);
        }
        for &c in counts {
            buf.put_u64_le(c);
        }
        buf.put_u64_le(total);
    }
    buf.freeze()
}

fn get_len(buf: &mut &[u8], elem_bytes: usize) -> Result<usize, SnapshotCodecError> {
    if buf.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated);
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n.saturating_mul(elem_bytes) {
        return Err(SnapshotCodecError::Truncated);
    }
    Ok(n)
}

/// Deserializes a snapshot from a buffer produced by
/// [`encode_snapshot`].
///
/// # Errors
///
/// Any structural problem yields a [`SnapshotCodecError`]; the function
/// never panics on untrusted input.
pub fn decode_snapshot(mut buf: &[u8]) -> Result<EngineSnapshot, SnapshotCodecError> {
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(SnapshotCodecError::BadMagic);
    }
    buf.advance(MAGIC.len());
    let n_streams = get_len(&mut buf, 8)?;
    let mut streams = Vec::with_capacity(n_streams.min(1 << 20));
    let mut prev_key: Option<u64> = None;
    for _ in 0..n_streams {
        if buf.remaining() < 32 {
            return Err(SnapshotCodecError::Truncated);
        }
        let key = buf.get_u64_le();
        if let Some(p) = prev_key {
            if key <= p {
                return Err(SnapshotCodecError::Corrupt("stream keys not ascending"));
            }
        }
        prev_key = Some(key);
        let offered = buf.get_u64_le() as usize;
        let kept = buf.get_u64_le() as usize;
        let inspected = buf.get_u64_le() as usize;
        if kept > inspected || inspected > offered {
            return Err(SnapshotCodecError::Corrupt("sampler counters"));
        }
        let moments = get_running_stats(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(SnapshotCodecError::Truncated);
        }
        let hurst_count = buf.get_u64_le();
        let n_levels = get_len(&mut buf, 41)?;
        if n_levels > 64 {
            return Err(SnapshotCodecError::Corrupt("level count"));
        }
        let mut levels = Vec::with_capacity(n_levels);
        let mut partial = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            levels.push(get_running_stats(&mut buf)?);
            if buf.remaining() < 1 {
                return Err(SnapshotCodecError::Truncated);
            }
            match buf.get_u8() {
                0 => partial.push(None),
                1 => {
                    if buf.remaining() < 8 {
                        return Err(SnapshotCodecError::Truncated);
                    }
                    partial.push(Some(buf.get_f64_le()));
                }
                _ => return Err(SnapshotCodecError::Corrupt("carry flag")),
            }
        }
        let hurst = OnlineVarianceTime::from_raw_parts(hurst_count, levels, partial);
        if buf.remaining() < 24 {
            return Err(SnapshotCodecError::Truncated);
        }
        let cap = buf.get_u64_le() as usize;
        let seed = buf.get_u64_le();
        let seen = buf.get_u64_le();
        let n_items = get_len(&mut buf, 8)?;
        if n_items > cap || (n_items as u64) > seen {
            return Err(SnapshotCodecError::Corrupt("reservoir size"));
        }
        let mut items = Vec::with_capacity(n_items);
        for _ in 0..n_items {
            items.push(buf.get_f64_le());
        }
        let reservoir = ReservoirSnapshot {
            cap,
            seed,
            seen,
            items,
        };
        let n_thresholds = get_len(&mut buf, 16)?;
        let mut thresholds = Vec::with_capacity(n_thresholds);
        for _ in 0..n_thresholds {
            thresholds.push(buf.get_f64_le());
        }
        if !thresholds.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotCodecError::Corrupt("tail ladder order"));
        }
        let mut counts = Vec::with_capacity(n_thresholds);
        for _ in 0..n_thresholds {
            counts.push(buf.get_u64_le());
        }
        if buf.remaining() < 8 {
            return Err(SnapshotCodecError::Truncated);
        }
        let total = buf.get_u64_le();
        if counts.iter().any(|&c| c > total) {
            return Err(SnapshotCodecError::Corrupt("tail counts exceed total"));
        }
        let tail = TailCounter::from_raw_parts(thresholds, counts, total);
        streams.push(StreamEntry {
            key,
            sampler: SamplerSnapshot {
                offered,
                kept,
                inspected,
            },
            summary: SummarySnapshot {
                moments,
                hurst,
                reservoir,
                tail,
            },
        });
    }
    Ok(EngineSnapshot::from_streams(streams))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MonitorConfig, MonitorEngine, SamplerSpec};

    fn sample_snapshot() -> EngineSnapshot {
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::Bss {
                    interval: 10,
                    epsilon: 1.0,
                    n_pre: 8,
                    l: 4,
                })
                .shards(3)
                .seed(5),
        );
        for i in 0..30_000u64 {
            let key = i % 23;
            let v = if (i / 41) % 9 == 0 { 150.0 } else { 2.0 };
            engine.offer(key, v);
        }
        engine.snapshot()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let snap = sample_snapshot();
        let encoded = encode_snapshot(&snap);
        let back = decode_snapshot(&encoded).expect("decode");
        assert_eq!(snap, back);
        // Derived statistics survive too.
        assert_eq!(
            snap.aggregate().hurst_estimate(),
            back.aggregate().hurst_estimate()
        );
    }

    #[test]
    fn round_trip_empty_snapshot() {
        let snap = EngineSnapshot::default();
        assert_eq!(decode_snapshot(&encode_snapshot(&snap)).unwrap(), snap);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decode_snapshot(b"NOTASNAP"),
            Err(SnapshotCodecError::BadMagic)
        );
        assert_eq!(decode_snapshot(b""), Err(SnapshotCodecError::BadMagic));
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let encoded = encode_snapshot(&sample_snapshot());
        for cut in [
            MAGIC.len(),
            MAGIC.len() + 4,
            MAGIC.len() + 12,
            encoded.len() / 3,
            encoded.len() / 2,
            encoded.len() - 1,
        ] {
            assert!(
                decode_snapshot(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn unsorted_keys_rejected() {
        let snap = sample_snapshot();
        let mut raw = encode_snapshot(&snap).to_vec();
        // Stream records start after magic + count; overwrite the first
        // key with a large value so the second is out of order.
        let off = MAGIC.len() + 8;
        raw[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&raw),
            Err(SnapshotCodecError::Corrupt(_)) | Err(SnapshotCodecError::Truncated)
        ));
    }

    #[test]
    fn merged_snapshots_round_trip() {
        let a = sample_snapshot();
        let mut engine = MonitorEngine::new(MonitorConfig::default().seed(9));
        for i in 0..5000u64 {
            engine.offer(1000 + (i % 5), (i % 100) as f64);
        }
        let merged = a.merge(engine.snapshot());
        let back = decode_snapshot(&encode_snapshot(&merged)).expect("decode");
        assert_eq!(merged, back);
    }
}
