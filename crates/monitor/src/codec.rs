//! Compact binary codec for [`EngineSnapshot`]s — the **v1 payload
//! format** of the transport layer.
//!
//! Shard and link snapshots travel — to a collector, to disk, across a
//! network roll-up — so the format is a fixed-layout little-endian
//! encoding in the style of `sst-nettrace`'s trace codec. The decode
//! path validates every structural invariant (magic, lengths, sorted
//! keys, ladder monotonicity) and never panics on untrusted input;
//! round-trips are **bit-exact** (the summaries are serialized from
//! their raw Welford/cascade state, not from derived statistics).
//!
//! [`crate::wire`] generalizes this into the versioned frame protocol:
//! snapshot-bearing frames (`Delta`/`FullSnapshot`/`Evicted`) carry
//! exactly these bytes as payloads, and a bare buffer in this format
//! (the legacy `.ssm` file form) still decodes as one implicit
//! `FullSnapshot` frame.

use crate::diff::{BaseFingerprint, StreamDiff};
use crate::engine::{EngineSnapshot, StreamEntry};
use crate::sketch::SketchSnapshot;
use crate::summary::{
    ReservoirPatch, ReservoirSnapshot, SummaryPatch, SummarySnapshot, TailCounter,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sst_core::sketch::CountMinSketch;
use sst_core::stream::SamplerSnapshot;
use sst_hurst::online::{CascadePatch, OnlineVarianceTime};
use sst_hurst::ProjectionBank;
use sst_stats::RunningStats;
use std::fmt;

/// Magic bytes + version prefix of the format.
const MAGIC: &[u8; 6] = b"SSMON1";

/// Magic opening a wire-v4 `DeltaDiff` frame payload.
const DIFF_MAGIC: &[u8; 4] = b"SSDF";

/// Magic of the optional trailing sketch-tier section. A v1 snapshot
/// remains exactly the stream records when no sketch is present, so
/// untiered engines produce byte-identical output to every prior
/// release.
const SKETCH_MAGIC: &[u8; 4] = b"SKT1";

/// Decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotCodecError {
    /// The buffer does not begin with the expected magic/version.
    BadMagic,
    /// The buffer ended before the declared contents.
    Truncated,
    /// A field held an invalid value.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotCodecError::BadMagic => f.write_str("not a monitor snapshot (bad magic)"),
            SnapshotCodecError::Truncated => f.write_str("snapshot buffer truncated"),
            SnapshotCodecError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapshotCodecError {}

fn put_running_stats(buf: &mut BytesMut, rs: &RunningStats) {
    let (n, mean, m2, min, max) = rs.raw_parts();
    buf.put_u64_le(n);
    buf.put_f64_le(mean);
    buf.put_f64_le(m2);
    buf.put_f64_le(min);
    buf.put_f64_le(max);
}

fn get_running_stats(buf: &mut &[u8]) -> Result<RunningStats, SnapshotCodecError> {
    if buf.remaining() < 40 {
        return Err(SnapshotCodecError::Truncated);
    }
    let n = buf.get_u64_le();
    let mean = buf.get_f64_le();
    let m2 = buf.get_f64_le();
    let min = buf.get_f64_le();
    let max = buf.get_f64_le();
    Ok(RunningStats::from_raw_parts(n, mean, m2, min, max))
}

fn put_sampler(buf: &mut BytesMut, s: &SamplerSnapshot) {
    buf.put_u64_le(s.offered as u64);
    buf.put_u64_le(s.kept as u64);
    buf.put_u64_le(s.inspected as u64);
}

fn get_sampler(buf: &mut &[u8]) -> Result<SamplerSnapshot, SnapshotCodecError> {
    if buf.remaining() < 24 {
        return Err(SnapshotCodecError::Truncated);
    }
    let offered = usize_len(buf.get_u64_le(), "sampler offered")?;
    let kept = usize_len(buf.get_u64_le(), "sampler kept")?;
    let inspected = usize_len(buf.get_u64_le(), "sampler inspected")?;
    if kept > inspected || inspected > offered {
        return Err(SnapshotCodecError::Corrupt("sampler counters"));
    }
    Ok(SamplerSnapshot {
        offered,
        kept,
        inspected,
    })
}

fn put_cascade(buf: &mut BytesMut, cascade: &OnlineVarianceTime) {
    let (count, levels, partial) = cascade.raw_parts();
    buf.put_u64_le(count);
    buf.put_u64_le(levels.len() as u64);
    for (stats, carry) in levels.iter().zip(partial) {
        put_running_stats(buf, stats);
        match carry {
            Some(sum) => {
                buf.put_u8(1);
                buf.put_f64_le(*sum);
            }
            None => buf.put_u8(0),
        }
    }
}

fn get_cascade(buf: &mut &[u8]) -> Result<OnlineVarianceTime, SnapshotCodecError> {
    if buf.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated);
    }
    let count = buf.get_u64_le();
    let n_levels = get_len(buf, 41)?;
    if n_levels > 64 {
        return Err(SnapshotCodecError::Corrupt("level count"));
    }
    let mut levels = Vec::with_capacity(n_levels);
    let mut partial = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        levels.push(get_running_stats(buf)?);
        if buf.remaining() < 1 {
            return Err(SnapshotCodecError::Truncated);
        }
        match buf.get_u8() {
            0 => partial.push(None),
            1 => {
                if buf.remaining() < 8 {
                    return Err(SnapshotCodecError::Truncated);
                }
                partial.push(Some(buf.get_f64_le()));
            }
            _ => return Err(SnapshotCodecError::Corrupt("carry flag")),
        }
    }
    Ok(OnlineVarianceTime::from_raw_parts(count, levels, partial))
}

fn put_summary(buf: &mut BytesMut, s: &SummarySnapshot) {
    put_running_stats(buf, &s.moments);
    // Online Hurst cascade: count, then levels with a carry flag.
    put_cascade(buf, &s.hurst);
    // Reservoir.
    let r = &s.reservoir;
    buf.put_u64_le(r.cap as u64);
    buf.put_u64_le(r.seed);
    buf.put_u64_le(r.seen);
    buf.put_u64_le(r.items.len() as u64);
    for &v in &r.items {
        buf.put_f64_le(v);
    }
    // Tail ladder.
    let (thresholds, counts, total) = s.tail.raw_parts();
    buf.put_u64_le(thresholds.len() as u64);
    for &t in thresholds {
        buf.put_f64_le(t);
    }
    for &c in counts {
        buf.put_u64_le(c);
    }
    buf.put_u64_le(total);
}

fn get_summary(buf: &mut &[u8]) -> Result<SummarySnapshot, SnapshotCodecError> {
    let moments = get_running_stats(buf)?;
    let hurst = get_cascade(buf)?;
    if buf.remaining() < 24 {
        return Err(SnapshotCodecError::Truncated);
    }
    let cap = usize_len(buf.get_u64_le(), "reservoir cap")?;
    let seed = buf.get_u64_le();
    let seen = buf.get_u64_le();
    let n_items = get_len(buf, 8)?;
    if n_items > cap || (n_items as u64) > seen {
        return Err(SnapshotCodecError::Corrupt("reservoir size"));
    }
    let mut items = Vec::with_capacity(n_items);
    for _ in 0..n_items {
        items.push(buf.get_f64_le());
    }
    let reservoir = ReservoirSnapshot {
        cap,
        seed,
        seen,
        items,
    };
    let n_thresholds = get_len(buf, 16)?;
    let mut thresholds = Vec::with_capacity(n_thresholds);
    for _ in 0..n_thresholds {
        thresholds.push(buf.get_f64_le());
    }
    if !thresholds.windows(2).all(|w| matches!(w, [a, b] if a < b)) {
        return Err(SnapshotCodecError::Corrupt("tail ladder order"));
    }
    let mut counts = Vec::with_capacity(n_thresholds);
    for _ in 0..n_thresholds {
        counts.push(buf.get_u64_le());
    }
    if buf.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated);
    }
    let total = buf.get_u64_le();
    if counts.iter().any(|&c| c > total) {
        return Err(SnapshotCodecError::Corrupt("tail counts exceed total"));
    }
    let tail = TailCounter::from_raw_parts(thresholds, counts, total);
    Ok(SummarySnapshot {
        moments,
        hurst,
        reservoir,
        tail,
    })
}

fn put_sketch(buf: &mut BytesMut, sk: &SketchSnapshot) {
    buf.put_slice(SKETCH_MAGIC);
    put_sampler(buf, &sk.sampler);
    put_summary(buf, &sk.summary);
    // Count-min geometry + cells.
    buf.put_u64_le(sk.cm.depth() as u64);
    buf.put_u64_le(sk.cm.width() as u64);
    buf.put_u64_le(sk.cm.seed());
    buf.put_u64_le(sk.cm.total());
    for &c in sk.cm.cells() {
        buf.put_u64_le(c);
    }
    // SpaceSaving candidates.
    buf.put_u64_le(sk.heavy_capacity);
    buf.put_u64_le(sk.heavy.len() as u64);
    for &(k, c, e) in &sk.heavy {
        buf.put_u64_le(k);
        buf.put_u64_le(c);
        buf.put_u64_le(e);
    }
    // Sign-projection cascades.
    buf.put_u64_le(sk.projections.seed());
    buf.put_u64_le(sk.projections.len() as u64);
    for cascade in sk.projections.cascades() {
        put_cascade(buf, cascade);
    }
    buf.put_u64_le(sk.promotions);
    buf.put_u64_le(sk.demotions);
}

fn get_sketch(buf: &mut &[u8]) -> Result<SketchSnapshot, SnapshotCodecError> {
    if buf.remaining() < SKETCH_MAGIC.len() {
        return Err(SnapshotCodecError::Truncated);
    }
    if buf.get(..SKETCH_MAGIC.len()) != Some(SKETCH_MAGIC.as_slice()) {
        return Err(SnapshotCodecError::Corrupt("trailing bytes after streams"));
    }
    buf.advance(SKETCH_MAGIC.len());
    let sampler = get_sampler(buf)?;
    let summary = get_summary(buf)?;
    if buf.remaining() < 32 {
        return Err(SnapshotCodecError::Truncated);
    }
    let depth = usize_len(buf.get_u64_le(), "sketch depth")?;
    let width = usize_len(buf.get_u64_le(), "sketch width")?;
    let cm_seed = buf.get_u64_le();
    let cm_total = buf.get_u64_le();
    if depth == 0 || depth > 16 || !width.is_power_of_two() || width > (1 << 26) {
        return Err(SnapshotCodecError::Corrupt("count-min geometry"));
    }
    let n_cells = depth * width;
    if buf.remaining() < n_cells.saturating_mul(8) {
        return Err(SnapshotCodecError::Truncated);
    }
    let mut cells = Vec::with_capacity(n_cells);
    for _ in 0..n_cells {
        cells.push(buf.get_u64_le());
    }
    let cm = CountMinSketch::from_raw_parts(depth, width, cm_seed, cells, cm_total)
        .ok_or(SnapshotCodecError::Corrupt("count-min cells"))?;
    if buf.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated);
    }
    let heavy_capacity = buf.get_u64_le();
    if heavy_capacity > (1 << 22) {
        return Err(SnapshotCodecError::Corrupt("candidate capacity"));
    }
    let n_heavy = get_len(buf, 24)?;
    if (n_heavy as u64) > heavy_capacity {
        return Err(SnapshotCodecError::Corrupt("candidate count"));
    }
    let mut heavy = Vec::with_capacity(n_heavy);
    let mut prev: Option<u64> = None;
    for _ in 0..n_heavy {
        let k = buf.get_u64_le();
        let c = buf.get_u64_le();
        let e = buf.get_u64_le();
        if prev.is_some_and(|p| k <= p) {
            return Err(SnapshotCodecError::Corrupt("candidate keys not ascending"));
        }
        prev = Some(k);
        heavy.push((k, c, e));
    }
    if buf.remaining() < 16 {
        return Err(SnapshotCodecError::Truncated);
    }
    let proj_seed = buf.get_u64_le();
    let n_proj = usize_len(buf.get_u64_le(), "projection count")?;
    if n_proj == 0 || n_proj > 16 {
        return Err(SnapshotCodecError::Corrupt("projection count"));
    }
    let mut cascades = Vec::with_capacity(n_proj);
    for _ in 0..n_proj {
        cascades.push(get_cascade(buf)?);
    }
    let projections = ProjectionBank::from_raw_parts(proj_seed, cascades)
        .ok_or(SnapshotCodecError::Corrupt("projection bank"))?;
    if buf.remaining() < 16 {
        return Err(SnapshotCodecError::Truncated);
    }
    let promotions = buf.get_u64_le();
    let demotions = buf.get_u64_le();
    Ok(SketchSnapshot {
        sampler,
        summary,
        cm,
        heavy,
        heavy_capacity,
        projections,
        promotions,
        demotions,
    })
}

/// Serializes a snapshot into a freshly allocated buffer. A sketch
/// section, when present, follows the stream records as a `SKT1`
/// trailer; without one the bytes are exactly the pre-tier format.
pub fn encode_snapshot(snap: &EngineSnapshot) -> Bytes {
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 16 + 256 * snap.stream_count());
    buf.put_slice(MAGIC);
    buf.put_u64_le(snap.stream_count() as u64);
    for e in snap.streams() {
        buf.put_u64_le(e.key);
        put_sampler(&mut buf, &e.sampler);
        put_summary(&mut buf, &e.summary);
    }
    if let Some(sk) = snap.sketch() {
        put_sketch(&mut buf, sk);
    }
    buf.freeze()
}

/// Converts a decoded 64-bit count to an in-memory `usize` without a
/// silently-truncating `as` cast: a value that does not fit (a 32-bit
/// host fed a fabricated 64-bit length) is wire corruption, not a
/// length.
fn usize_len(v: u64, what: &'static str) -> Result<usize, SnapshotCodecError> {
    usize::try_from(v).map_err(|_| SnapshotCodecError::Corrupt(what))
}

fn get_len(buf: &mut &[u8], elem_bytes: usize) -> Result<usize, SnapshotCodecError> {
    if buf.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated);
    }
    let n = usize_len(buf.get_u64_le(), "length field")?;
    if buf.remaining() < n.saturating_mul(elem_bytes) {
        return Err(SnapshotCodecError::Truncated);
    }
    Ok(n)
}

/// Deserializes a snapshot from a buffer produced by
/// [`encode_snapshot`].
///
/// An incomplete `SKT1` trailer decodes as
/// [`SnapshotCodecError::Truncated`] (so incremental readers wait for
/// the rest), while non-sketch trailing bytes are
/// [`SnapshotCodecError::Corrupt`]. Note the v1 format is not
/// self-delimiting: an incremental legacy reader that stops exactly at
/// the last stream record would accept a sketchless prefix — in
/// practice only whole buffers (files, length-prefixed v2/v3 frame
/// payloads) carry sketch sections.
///
/// # Errors
///
/// Any structural problem yields a [`SnapshotCodecError`]; the function
/// never panics on untrusted input.
pub fn decode_snapshot(mut buf: &[u8]) -> Result<EngineSnapshot, SnapshotCodecError> {
    if buf.get(..MAGIC.len()) != Some(MAGIC.as_slice()) {
        return Err(SnapshotCodecError::BadMagic);
    }
    buf.advance(MAGIC.len());
    let n_streams = get_len(&mut buf, 8)?;
    let mut streams = Vec::with_capacity(n_streams.min(1 << 20));
    let mut prev_key: Option<u64> = None;
    for _ in 0..n_streams {
        if buf.remaining() < 32 {
            return Err(SnapshotCodecError::Truncated);
        }
        let key = buf.get_u64_le();
        if let Some(p) = prev_key {
            if key <= p {
                return Err(SnapshotCodecError::Corrupt("stream keys not ascending"));
            }
        }
        prev_key = Some(key);
        let sampler = get_sampler(&mut buf)?;
        let summary = get_summary(&mut buf)?;
        streams.push(StreamEntry {
            key,
            sampler,
            summary,
        });
    }
    let sketch = if buf.is_empty() {
        None
    } else {
        Some(get_sketch(&mut buf)?)
    };
    if !buf.is_empty() {
        return Err(SnapshotCodecError::Corrupt("trailing bytes after sketch"));
    }
    Ok(EngineSnapshot::from_streams(streams).with_sketch(sketch))
}

// ---- differential (wire v4 `DeltaDiff`) payloads ------------------
//
// Layout: `"SSDF"` magic, varint entry count, then per entry (keys
// strictly ascending):
//
// ```text
// key u64le
// sampler deltas        3 × varint (offered, kept, inspected)
// baseline fingerprint  6 × varint
// flags u8              bit0 moments, bit1 cascade, bit2 reservoir,
//                       bit3 tail
// [moments]             40 B RunningStats verbatim
// [cascade]             varint count_delta, varint new_levels (≤ 64),
//                       varint n_changed, then per changed level:
//                       varint index, 40 B stats, carry u8 (+ f64le)
// [reservoir]           varint seen_delta, varint new_len,
//                       varint n_slots, then per slot:
//                       varint index, f64le value
// [tail]                varint n_rungs, n_rungs × varint count delta,
//                       varint total_delta
// ```
//
// Monotone counters travel as unsigned LEB128 varints (a steady-state
// delta is small); floats travel verbatim — never delta-encoded — so
// reassembly is bit-exact. Decoding validates structure only (bounded
// allocations, ascending indices, known flags); whether a patch fits
// the receiver's baseline is the apply-time check that turns into a
// resync.

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, SnapshotCodecError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        if buf.remaining() < 1 {
            return Err(SnapshotCodecError::Truncated);
        }
        let byte = buf.get_u8();
        let bits = (byte & 0x7F) as u64;
        if shift == 63 && bits > 1 {
            return Err(SnapshotCodecError::Corrupt("varint overflow"));
        }
        v |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(SnapshotCodecError::Corrupt("varint too long"))
}

/// Encoded length of a varint, for exact size arithmetic.
fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7).max(1)
}

const FLAG_MOMENTS: u8 = 1;
const FLAG_CASCADE: u8 = 1 << 1;
const FLAG_RESERVOIR: u8 = 1 << 2;
const FLAG_TAIL: u8 = 1 << 3;

fn put_diff_entry(buf: &mut BytesMut, d: &StreamDiff) {
    buf.put_u64_le(d.key);
    let (off, kept, insp) = d.sampler_delta;
    put_varint(buf, off);
    put_varint(buf, kept);
    put_varint(buf, insp);
    let fp = &d.base;
    put_varint(buf, fp.moments_count);
    put_varint(buf, fp.reservoir_seen);
    put_varint(buf, fp.reservoir_len);
    put_varint(buf, fp.cascade_count);
    put_varint(buf, fp.cascade_levels);
    put_varint(buf, fp.tail_total);
    let p = &d.patch;
    let mut flags = 0u8;
    flags |= p.moments.map_or(0, |_| FLAG_MOMENTS);
    flags |= p.hurst.as_ref().map_or(0, |_| FLAG_CASCADE);
    flags |= p.reservoir.as_ref().map_or(0, |_| FLAG_RESERVOIR);
    flags |= p.tail.as_ref().map_or(0, |_| FLAG_TAIL);
    buf.put_u8(flags);
    if let Some(m) = &p.moments {
        put_running_stats(buf, m);
    }
    if let Some(c) = &p.hurst {
        put_varint(buf, c.count_delta);
        put_varint(buf, c.new_levels as u64);
        put_varint(buf, c.changed.len() as u64);
        for (idx, stats, carry) in &c.changed {
            put_varint(buf, *idx as u64);
            put_running_stats(buf, stats);
            match carry {
                Some(sum) => {
                    buf.put_u8(1);
                    buf.put_f64_le(*sum);
                }
                None => buf.put_u8(0),
            }
        }
    }
    if let Some(r) = &p.reservoir {
        put_varint(buf, r.seen_delta);
        put_varint(buf, r.new_len as u64);
        put_varint(buf, r.slots.len() as u64);
        for &(idx, v) in &r.slots {
            put_varint(buf, idx as u64);
            buf.put_f64_le(v);
        }
    }
    if let Some((deltas, total)) = &p.tail {
        put_varint(buf, deltas.len() as u64);
        for &c in deltas {
            put_varint(buf, c);
        }
        put_varint(buf, *total);
    }
}

fn get_diff_entry(buf: &mut &[u8]) -> Result<StreamDiff, SnapshotCodecError> {
    if buf.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated);
    }
    let key = buf.get_u64_le();
    let sampler_delta = (get_varint(buf)?, get_varint(buf)?, get_varint(buf)?);
    let base = BaseFingerprint {
        moments_count: get_varint(buf)?,
        reservoir_seen: get_varint(buf)?,
        reservoir_len: get_varint(buf)?,
        cascade_count: get_varint(buf)?,
        cascade_levels: get_varint(buf)?,
        tail_total: get_varint(buf)?,
    };
    if buf.remaining() < 1 {
        return Err(SnapshotCodecError::Truncated);
    }
    let flags = buf.get_u8();
    if flags & !(FLAG_MOMENTS | FLAG_CASCADE | FLAG_RESERVOIR | FLAG_TAIL) != 0 {
        return Err(SnapshotCodecError::Corrupt("diff flags"));
    }
    let moments = if flags & FLAG_MOMENTS != 0 {
        Some(get_running_stats(buf)?)
    } else {
        None
    };
    let hurst = if flags & FLAG_CASCADE != 0 {
        let count_delta = get_varint(buf)?;
        let new_levels = usize_len(get_varint(buf)?, "cascade levels")?;
        if new_levels > 64 {
            return Err(SnapshotCodecError::Corrupt("diff level count"));
        }
        let n_changed = usize_len(get_varint(buf)?, "changed levels")?;
        if n_changed > new_levels {
            return Err(SnapshotCodecError::Corrupt("diff changed levels"));
        }
        let mut changed = Vec::with_capacity(n_changed);
        let mut prev: Option<usize> = None;
        for _ in 0..n_changed {
            let idx = usize_len(get_varint(buf)?, "patch index")?;
            if idx >= new_levels || prev.is_some_and(|q| idx <= q) {
                return Err(SnapshotCodecError::Corrupt("diff level index"));
            }
            prev = Some(idx);
            let stats = get_running_stats(buf)?;
            if buf.remaining() < 1 {
                return Err(SnapshotCodecError::Truncated);
            }
            let carry = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 8 {
                        return Err(SnapshotCodecError::Truncated);
                    }
                    Some(buf.get_f64_le())
                }
                _ => return Err(SnapshotCodecError::Corrupt("diff carry flag")),
            };
            changed.push((idx, stats, carry));
        }
        Some(CascadePatch {
            count_delta,
            new_levels,
            changed,
        })
    } else {
        None
    };
    let reservoir = if flags & FLAG_RESERVOIR != 0 {
        let seen_delta = get_varint(buf)?;
        let new_len = usize_len(get_varint(buf)?, "reservoir len")?;
        let n_slots = usize_len(get_varint(buf)?, "patched slots")?;
        // Each slot is ≥ 9 encoded bytes: bounds the allocation by
        // what the buffer can actually hold.
        if n_slots > new_len || buf.remaining() < n_slots.saturating_mul(9) {
            return Err(if buf.remaining() < n_slots.saturating_mul(9) {
                SnapshotCodecError::Truncated
            } else {
                SnapshotCodecError::Corrupt("diff slot count")
            });
        }
        let mut slots = Vec::with_capacity(n_slots);
        let mut prev: Option<usize> = None;
        for _ in 0..n_slots {
            let idx = usize_len(get_varint(buf)?, "patch index")?;
            if idx >= new_len || prev.is_some_and(|q| idx <= q) {
                return Err(SnapshotCodecError::Corrupt("diff slot index"));
            }
            prev = Some(idx);
            if buf.remaining() < 8 {
                return Err(SnapshotCodecError::Truncated);
            }
            slots.push((idx, buf.get_f64_le()));
        }
        Some(ReservoirPatch {
            seen_delta,
            new_len,
            slots,
        })
    } else {
        None
    };
    let tail = if flags & FLAG_TAIL != 0 {
        let n_rungs = usize_len(get_varint(buf)?, "tail rungs")?;
        // Each delta is ≥ 1 encoded byte.
        if buf.remaining() < n_rungs {
            return Err(SnapshotCodecError::Truncated);
        }
        let mut deltas = Vec::with_capacity(n_rungs);
        for _ in 0..n_rungs {
            deltas.push(get_varint(buf)?);
        }
        Some((deltas, get_varint(buf)?))
    } else {
        None
    };
    Ok(StreamDiff {
        key,
        sampler_delta,
        base,
        patch: SummaryPatch {
            moments,
            hurst,
            reservoir,
            tail,
        },
    })
}

/// Serializes a `DeltaDiff` frame payload.
pub(crate) fn encode_diff_payload(diffs: &[StreamDiff]) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        DIFF_MAGIC.len() + 10 + diffs.iter().map(encoded_diff_len).sum::<usize>(),
    );
    buf.put_slice(DIFF_MAGIC);
    put_varint(&mut buf, diffs.len() as u64);
    for d in diffs {
        put_diff_entry(&mut buf, d);
    }
    buf.freeze()
}

/// Deserializes a `DeltaDiff` frame payload. Structural validation
/// only — never panics on untrusted input; baseline fit is checked at
/// apply time.
///
/// # Errors
///
/// Any structural problem yields a [`SnapshotCodecError`].
pub(crate) fn decode_diff_payload(mut buf: &[u8]) -> Result<Vec<StreamDiff>, SnapshotCodecError> {
    if buf.get(..DIFF_MAGIC.len()) != Some(DIFF_MAGIC.as_slice()) {
        return Err(SnapshotCodecError::BadMagic);
    }
    buf.advance(DIFF_MAGIC.len());
    let n = usize_len(get_varint(&mut buf)?, "diff entries")?;
    // Each entry is ≥ 18 encoded bytes (key + 10 varints + flags).
    if buf.remaining() < n.saturating_mul(18) {
        return Err(SnapshotCodecError::Truncated);
    }
    let mut diffs = Vec::with_capacity(n);
    let mut prev: Option<u64> = None;
    for _ in 0..n {
        let d = get_diff_entry(&mut buf)?;
        if prev.is_some_and(|p| d.key <= p) {
            return Err(SnapshotCodecError::Corrupt("diff keys not ascending"));
        }
        prev = Some(d.key);
        diffs.push(d);
    }
    if !buf.is_empty() {
        return Err(SnapshotCodecError::Corrupt("trailing bytes after diffs"));
    }
    Ok(diffs)
}

/// Exact encoded size of one diff entry — what the collector weighs
/// against [`encoded_entry_len`] when choosing diff-vs-full per key.
pub(crate) fn encoded_diff_len(d: &StreamDiff) -> usize {
    let (off, kept, insp) = d.sampler_delta;
    let fp = &d.base;
    let mut n = 8
        + varint_len(off)
        + varint_len(kept)
        + varint_len(insp)
        + varint_len(fp.moments_count)
        + varint_len(fp.reservoir_seen)
        + varint_len(fp.reservoir_len)
        + varint_len(fp.cascade_count)
        + varint_len(fp.cascade_levels)
        + varint_len(fp.tail_total)
        + 1;
    let p = &d.patch;
    if p.moments.is_some() {
        n += 40;
    }
    if let Some(c) = &p.hurst {
        n += varint_len(c.count_delta)
            + varint_len(c.new_levels as u64)
            + varint_len(c.changed.len() as u64);
        for (idx, _, carry) in &c.changed {
            n += varint_len(*idx as u64) + 40 + 1 + carry.map_or(0, |_| 8);
        }
    }
    if let Some(r) = &p.reservoir {
        n += varint_len(r.seen_delta)
            + varint_len(r.new_len as u64)
            + varint_len(r.slots.len() as u64);
        for &(idx, _) in &r.slots {
            n += varint_len(idx as u64) + 8;
        }
    }
    if let Some((deltas, total)) = &p.tail {
        n += varint_len(deltas.len() as u64) + varint_len(*total);
        for &c in deltas {
            n += varint_len(c);
        }
    }
    n
}

/// Exact encoded size of one cumulative stream entry inside a v1
/// snapshot payload (key + sampler + summary).
pub(crate) fn encoded_entry_len(e: &StreamEntry) -> usize {
    let s = &e.summary;
    let (_, _, partial) = s.hurst.raw_parts();
    let cascade = 16 + s.hurst.level_count() * 41 + partial.iter().flatten().count() * 8;
    let reservoir = 32 + 8 * s.reservoir.items.len();
    let (thresholds, _, _) = s.tail.raw_parts();
    let tail = 16 + 16 * thresholds.len();
    8 + 24 + 40 + cascade + reservoir + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MonitorConfig, MonitorEngine, SamplerSpec};

    fn sample_snapshot() -> EngineSnapshot {
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::Bss {
                    interval: 10,
                    epsilon: 1.0,
                    n_pre: 8,
                    l: 4,
                })
                .shards(3)
                .seed(5),
        );
        for i in 0..30_000u64 {
            let key = i % 23;
            let v = if (i / 41) % 9 == 0 { 150.0 } else { 2.0 };
            engine.offer(key, v);
        }
        engine.snapshot()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let snap = sample_snapshot();
        let encoded = encode_snapshot(&snap);
        let back = decode_snapshot(&encoded).expect("decode");
        assert_eq!(snap, back);
        // Derived statistics survive too.
        assert_eq!(
            snap.aggregate().hurst_estimate(),
            back.aggregate().hurst_estimate()
        );
    }

    #[test]
    fn round_trip_empty_snapshot() {
        let snap = EngineSnapshot::default();
        assert_eq!(decode_snapshot(&encode_snapshot(&snap)).unwrap(), snap);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decode_snapshot(b"NOTASNAP"),
            Err(SnapshotCodecError::BadMagic)
        );
        assert_eq!(decode_snapshot(b""), Err(SnapshotCodecError::BadMagic));
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let encoded = encode_snapshot(&sample_snapshot());
        for cut in [
            MAGIC.len(),
            MAGIC.len() + 4,
            MAGIC.len() + 12,
            encoded.len() / 3,
            encoded.len() / 2,
            encoded.len() - 1,
        ] {
            assert!(
                decode_snapshot(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn unsorted_keys_rejected() {
        let snap = sample_snapshot();
        let mut raw = encode_snapshot(&snap).to_vec();
        // Stream records start after magic + count; overwrite the first
        // key with a large value so the second is out of order.
        let off = MAGIC.len() + 8;
        raw[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&raw),
            Err(SnapshotCodecError::Corrupt(_)) | Err(SnapshotCodecError::Truncated)
        ));
    }

    fn tiered_snapshot() -> EngineSnapshot {
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::Systematic { interval: 3 })
                .shards(2)
                .seed(11)
                .max_exact_keys(8)
                .sketch_bytes(1 << 14)
                .promote_after(64),
        );
        for i in 0..60_000u64 {
            let key = i % 500; // far past the exact cap
            let v = if key < 4 { 400.0 } else { (i % 13) as f64 };
            engine.offer(key, v);
        }
        engine.full_snapshot()
    }

    #[test]
    fn sketch_section_round_trips_bit_exact() {
        let snap = tiered_snapshot();
        let sk = snap.sketch().expect("tiered engine carries a sketch");
        assert!(sk.sampler.offered > 0, "tail was actually sketched");
        let back = decode_snapshot(&encode_snapshot(&snap)).expect("decode");
        assert_eq!(snap, back);
        assert_eq!(
            snap.sketch().unwrap().cm.total(),
            back.sketch().unwrap().cm.total()
        );
    }

    #[test]
    fn sketch_truncation_yields_truncated() {
        let snap = tiered_snapshot();
        let sketchless = encode_snapshot(&snap.clone().with_sketch(None)).len();
        let encoded = encode_snapshot(&snap);
        assert!(encoded.len() > sketchless + 4);
        // Cut everywhere inside the SKT1 section (past its magic): an
        // incremental reader must see Truncated, never Corrupt, so the
        // legacy FrameDecoder keeps waiting for the rest.
        for cut in (sketchless + 1..encoded.len()).step_by(7) {
            assert_eq!(
                decode_snapshot(&encoded[..cut]),
                Err(SnapshotCodecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn garbage_after_streams_rejected() {
        let snap = sample_snapshot();
        let mut raw = encode_snapshot(&snap).to_vec();
        raw.extend_from_slice(b"JUNKJUNK");
        assert!(matches!(
            decode_snapshot(&raw),
            Err(SnapshotCodecError::Corrupt(_))
        ));
        // Garbage *after a valid sketch* is rejected too.
        let mut raw = encode_snapshot(&tiered_snapshot()).to_vec();
        raw.extend_from_slice(b"JUNKJUNK");
        assert!(decode_snapshot(&raw).is_err());
    }

    #[test]
    fn merged_snapshots_round_trip() {
        let a = sample_snapshot();
        let mut engine = MonitorEngine::new(MonitorConfig::default().seed(9));
        for i in 0..5000u64 {
            engine.offer(1000 + (i % 5), (i % 100) as f64);
        }
        let merged = a.merge(engine.snapshot());
        let back = decode_snapshot(&encode_snapshot(&merged)).expect("decode");
        assert_eq!(merged, back);
    }

    /// The diffs between two growth stages of `sample_snapshot`'s
    /// engine — one per stream, all sections exercised.
    fn sample_diffs() -> Vec<StreamDiff> {
        let mk = |n: u64| {
            let mut engine = MonitorEngine::new(
                MonitorConfig::default()
                    .sampler(SamplerSpec::Systematic { interval: 2 })
                    .seed(5),
            );
            for i in 0..n {
                let key = i % 23;
                let v = if (i / 41) % 9 == 0 { 150.0 } else { 2.0 };
                engine.offer(key, v);
            }
            engine.snapshot().into_streams()
        };
        let base = mk(25_000);
        let new = mk(30_000);
        base.iter()
            .zip(&new)
            .map(|(b, n)| crate::diff::diff_entry(b, n).expect("grown entries diff"))
            .collect()
    }

    #[test]
    fn diff_payload_round_trips_bit_exact() {
        let diffs = sample_diffs();
        assert!(!diffs.is_empty());
        let encoded = encode_diff_payload(&diffs);
        assert_eq!(decode_diff_payload(&encoded).expect("decode"), diffs);
        // The empty payload round-trips too.
        let empty = encode_diff_payload(&[]);
        assert_eq!(decode_diff_payload(&empty).unwrap(), Vec::new());
    }

    #[test]
    fn encoded_diff_len_is_exact() {
        let diffs = sample_diffs();
        let encoded = encode_diff_payload(&diffs);
        let predicted: usize = DIFF_MAGIC.len()
            + varint_len(diffs.len() as u64)
            + diffs.iter().map(encoded_diff_len).sum::<usize>();
        assert_eq!(encoded.len(), predicted);
    }

    #[test]
    fn diff_payload_truncation_rejected_at_every_cut() {
        let encoded = encode_diff_payload(&sample_diffs());
        for cut in 0..encoded.len() {
            assert!(
                decode_diff_payload(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn diff_payload_trailing_garbage_rejected() {
        let mut raw = encode_diff_payload(&sample_diffs()).to_vec();
        raw.push(0);
        assert!(decode_diff_payload(&raw).is_err());
    }

    #[test]
    fn diff_payload_keys_must_ascend() {
        let mut diffs = sample_diffs();
        diffs.swap(0, 1);
        let encoded = encode_diff_payload(&diffs);
        assert!(matches!(
            decode_diff_payload(&encoded),
            Err(SnapshotCodecError::Corrupt(_))
        ));
    }
}
