//! Compact binary codec for [`EngineSnapshot`]s — the **v1 payload
//! format** of the transport layer.
//!
//! Shard and link snapshots travel — to a collector, to disk, across a
//! network roll-up — so the format is a fixed-layout little-endian
//! encoding in the style of `sst-nettrace`'s trace codec. The decode
//! path validates every structural invariant (magic, lengths, sorted
//! keys, ladder monotonicity) and never panics on untrusted input;
//! round-trips are **bit-exact** (the summaries are serialized from
//! their raw Welford/cascade state, not from derived statistics).
//!
//! [`crate::wire`] generalizes this into the versioned frame protocol:
//! snapshot-bearing frames (`Delta`/`FullSnapshot`/`Evicted`) carry
//! exactly these bytes as payloads, and a bare buffer in this format
//! (the legacy `.ssm` file form) still decodes as one implicit
//! `FullSnapshot` frame.

use crate::engine::{EngineSnapshot, StreamEntry};
use crate::sketch::SketchSnapshot;
use crate::summary::{ReservoirSnapshot, SummarySnapshot, TailCounter};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sst_core::sketch::CountMinSketch;
use sst_core::stream::SamplerSnapshot;
use sst_hurst::online::OnlineVarianceTime;
use sst_hurst::ProjectionBank;
use sst_stats::RunningStats;
use std::fmt;

/// Magic bytes + version prefix of the format.
const MAGIC: &[u8; 6] = b"SSMON1";

/// Magic of the optional trailing sketch-tier section. A v1 snapshot
/// remains exactly the stream records when no sketch is present, so
/// untiered engines produce byte-identical output to every prior
/// release.
const SKETCH_MAGIC: &[u8; 4] = b"SKT1";

/// Decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotCodecError {
    /// The buffer does not begin with the expected magic/version.
    BadMagic,
    /// The buffer ended before the declared contents.
    Truncated,
    /// A field held an invalid value.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotCodecError::BadMagic => f.write_str("not a monitor snapshot (bad magic)"),
            SnapshotCodecError::Truncated => f.write_str("snapshot buffer truncated"),
            SnapshotCodecError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapshotCodecError {}

fn put_running_stats(buf: &mut BytesMut, rs: &RunningStats) {
    let (n, mean, m2, min, max) = rs.raw_parts();
    buf.put_u64_le(n);
    buf.put_f64_le(mean);
    buf.put_f64_le(m2);
    buf.put_f64_le(min);
    buf.put_f64_le(max);
}

fn get_running_stats(buf: &mut &[u8]) -> Result<RunningStats, SnapshotCodecError> {
    if buf.remaining() < 40 {
        return Err(SnapshotCodecError::Truncated);
    }
    let n = buf.get_u64_le();
    let mean = buf.get_f64_le();
    let m2 = buf.get_f64_le();
    let min = buf.get_f64_le();
    let max = buf.get_f64_le();
    Ok(RunningStats::from_raw_parts(n, mean, m2, min, max))
}

fn put_sampler(buf: &mut BytesMut, s: &SamplerSnapshot) {
    buf.put_u64_le(s.offered as u64);
    buf.put_u64_le(s.kept as u64);
    buf.put_u64_le(s.inspected as u64);
}

fn get_sampler(buf: &mut &[u8]) -> Result<SamplerSnapshot, SnapshotCodecError> {
    if buf.remaining() < 24 {
        return Err(SnapshotCodecError::Truncated);
    }
    let offered = buf.get_u64_le() as usize;
    let kept = buf.get_u64_le() as usize;
    let inspected = buf.get_u64_le() as usize;
    if kept > inspected || inspected > offered {
        return Err(SnapshotCodecError::Corrupt("sampler counters"));
    }
    Ok(SamplerSnapshot {
        offered,
        kept,
        inspected,
    })
}

fn put_cascade(buf: &mut BytesMut, cascade: &OnlineVarianceTime) {
    let (count, levels, partial) = cascade.raw_parts();
    buf.put_u64_le(count);
    buf.put_u64_le(levels.len() as u64);
    for (stats, carry) in levels.iter().zip(partial) {
        put_running_stats(buf, stats);
        match carry {
            Some(sum) => {
                buf.put_u8(1);
                buf.put_f64_le(*sum);
            }
            None => buf.put_u8(0),
        }
    }
}

fn get_cascade(buf: &mut &[u8]) -> Result<OnlineVarianceTime, SnapshotCodecError> {
    if buf.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated);
    }
    let count = buf.get_u64_le();
    let n_levels = get_len(buf, 41)?;
    if n_levels > 64 {
        return Err(SnapshotCodecError::Corrupt("level count"));
    }
    let mut levels = Vec::with_capacity(n_levels);
    let mut partial = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        levels.push(get_running_stats(buf)?);
        if buf.remaining() < 1 {
            return Err(SnapshotCodecError::Truncated);
        }
        match buf.get_u8() {
            0 => partial.push(None),
            1 => {
                if buf.remaining() < 8 {
                    return Err(SnapshotCodecError::Truncated);
                }
                partial.push(Some(buf.get_f64_le()));
            }
            _ => return Err(SnapshotCodecError::Corrupt("carry flag")),
        }
    }
    Ok(OnlineVarianceTime::from_raw_parts(count, levels, partial))
}

fn put_summary(buf: &mut BytesMut, s: &SummarySnapshot) {
    put_running_stats(buf, &s.moments);
    // Online Hurst cascade: count, then levels with a carry flag.
    put_cascade(buf, &s.hurst);
    // Reservoir.
    let r = &s.reservoir;
    buf.put_u64_le(r.cap as u64);
    buf.put_u64_le(r.seed);
    buf.put_u64_le(r.seen);
    buf.put_u64_le(r.items.len() as u64);
    for &v in &r.items {
        buf.put_f64_le(v);
    }
    // Tail ladder.
    let (thresholds, counts, total) = s.tail.raw_parts();
    buf.put_u64_le(thresholds.len() as u64);
    for &t in thresholds {
        buf.put_f64_le(t);
    }
    for &c in counts {
        buf.put_u64_le(c);
    }
    buf.put_u64_le(total);
}

fn get_summary(buf: &mut &[u8]) -> Result<SummarySnapshot, SnapshotCodecError> {
    let moments = get_running_stats(buf)?;
    let hurst = get_cascade(buf)?;
    if buf.remaining() < 24 {
        return Err(SnapshotCodecError::Truncated);
    }
    let cap = buf.get_u64_le() as usize;
    let seed = buf.get_u64_le();
    let seen = buf.get_u64_le();
    let n_items = get_len(buf, 8)?;
    if n_items > cap || (n_items as u64) > seen {
        return Err(SnapshotCodecError::Corrupt("reservoir size"));
    }
    let mut items = Vec::with_capacity(n_items);
    for _ in 0..n_items {
        items.push(buf.get_f64_le());
    }
    let reservoir = ReservoirSnapshot {
        cap,
        seed,
        seen,
        items,
    };
    let n_thresholds = get_len(buf, 16)?;
    let mut thresholds = Vec::with_capacity(n_thresholds);
    for _ in 0..n_thresholds {
        thresholds.push(buf.get_f64_le());
    }
    if !thresholds.windows(2).all(|w| w[0] < w[1]) {
        return Err(SnapshotCodecError::Corrupt("tail ladder order"));
    }
    let mut counts = Vec::with_capacity(n_thresholds);
    for _ in 0..n_thresholds {
        counts.push(buf.get_u64_le());
    }
    if buf.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated);
    }
    let total = buf.get_u64_le();
    if counts.iter().any(|&c| c > total) {
        return Err(SnapshotCodecError::Corrupt("tail counts exceed total"));
    }
    let tail = TailCounter::from_raw_parts(thresholds, counts, total);
    Ok(SummarySnapshot {
        moments,
        hurst,
        reservoir,
        tail,
    })
}

fn put_sketch(buf: &mut BytesMut, sk: &SketchSnapshot) {
    buf.put_slice(SKETCH_MAGIC);
    put_sampler(buf, &sk.sampler);
    put_summary(buf, &sk.summary);
    // Count-min geometry + cells.
    buf.put_u64_le(sk.cm.depth() as u64);
    buf.put_u64_le(sk.cm.width() as u64);
    buf.put_u64_le(sk.cm.seed());
    buf.put_u64_le(sk.cm.total());
    for &c in sk.cm.cells() {
        buf.put_u64_le(c);
    }
    // SpaceSaving candidates.
    buf.put_u64_le(sk.heavy_capacity);
    buf.put_u64_le(sk.heavy.len() as u64);
    for &(k, c, e) in &sk.heavy {
        buf.put_u64_le(k);
        buf.put_u64_le(c);
        buf.put_u64_le(e);
    }
    // Sign-projection cascades.
    buf.put_u64_le(sk.projections.seed());
    buf.put_u64_le(sk.projections.len() as u64);
    for cascade in sk.projections.cascades() {
        put_cascade(buf, cascade);
    }
    buf.put_u64_le(sk.promotions);
    buf.put_u64_le(sk.demotions);
}

fn get_sketch(buf: &mut &[u8]) -> Result<SketchSnapshot, SnapshotCodecError> {
    if buf.remaining() < SKETCH_MAGIC.len() {
        return Err(SnapshotCodecError::Truncated);
    }
    if &buf[..SKETCH_MAGIC.len()] != SKETCH_MAGIC {
        return Err(SnapshotCodecError::Corrupt("trailing bytes after streams"));
    }
    buf.advance(SKETCH_MAGIC.len());
    let sampler = get_sampler(buf)?;
    let summary = get_summary(buf)?;
    if buf.remaining() < 32 {
        return Err(SnapshotCodecError::Truncated);
    }
    let depth = buf.get_u64_le() as usize;
    let width = buf.get_u64_le() as usize;
    let cm_seed = buf.get_u64_le();
    let cm_total = buf.get_u64_le();
    if depth == 0 || depth > 16 || !width.is_power_of_two() || width > (1 << 26) {
        return Err(SnapshotCodecError::Corrupt("count-min geometry"));
    }
    let n_cells = depth * width;
    if buf.remaining() < n_cells.saturating_mul(8) {
        return Err(SnapshotCodecError::Truncated);
    }
    let mut cells = Vec::with_capacity(n_cells);
    for _ in 0..n_cells {
        cells.push(buf.get_u64_le());
    }
    let cm = CountMinSketch::from_raw_parts(depth, width, cm_seed, cells, cm_total)
        .ok_or(SnapshotCodecError::Corrupt("count-min cells"))?;
    if buf.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated);
    }
    let heavy_capacity = buf.get_u64_le();
    if heavy_capacity > (1 << 22) {
        return Err(SnapshotCodecError::Corrupt("candidate capacity"));
    }
    let n_heavy = get_len(buf, 24)?;
    if (n_heavy as u64) > heavy_capacity {
        return Err(SnapshotCodecError::Corrupt("candidate count"));
    }
    let mut heavy = Vec::with_capacity(n_heavy);
    let mut prev: Option<u64> = None;
    for _ in 0..n_heavy {
        let k = buf.get_u64_le();
        let c = buf.get_u64_le();
        let e = buf.get_u64_le();
        if prev.is_some_and(|p| k <= p) {
            return Err(SnapshotCodecError::Corrupt("candidate keys not ascending"));
        }
        prev = Some(k);
        heavy.push((k, c, e));
    }
    if buf.remaining() < 16 {
        return Err(SnapshotCodecError::Truncated);
    }
    let proj_seed = buf.get_u64_le();
    let n_proj = buf.get_u64_le() as usize;
    if n_proj == 0 || n_proj > 16 {
        return Err(SnapshotCodecError::Corrupt("projection count"));
    }
    let mut cascades = Vec::with_capacity(n_proj);
    for _ in 0..n_proj {
        cascades.push(get_cascade(buf)?);
    }
    let projections = ProjectionBank::from_raw_parts(proj_seed, cascades)
        .ok_or(SnapshotCodecError::Corrupt("projection bank"))?;
    if buf.remaining() < 16 {
        return Err(SnapshotCodecError::Truncated);
    }
    let promotions = buf.get_u64_le();
    let demotions = buf.get_u64_le();
    Ok(SketchSnapshot {
        sampler,
        summary,
        cm,
        heavy,
        heavy_capacity,
        projections,
        promotions,
        demotions,
    })
}

/// Serializes a snapshot into a freshly allocated buffer. A sketch
/// section, when present, follows the stream records as a `SKT1`
/// trailer; without one the bytes are exactly the pre-tier format.
pub fn encode_snapshot(snap: &EngineSnapshot) -> Bytes {
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 16 + 256 * snap.stream_count());
    buf.put_slice(MAGIC);
    buf.put_u64_le(snap.stream_count() as u64);
    for e in snap.streams() {
        buf.put_u64_le(e.key);
        put_sampler(&mut buf, &e.sampler);
        put_summary(&mut buf, &e.summary);
    }
    if let Some(sk) = snap.sketch() {
        put_sketch(&mut buf, sk);
    }
    buf.freeze()
}

fn get_len(buf: &mut &[u8], elem_bytes: usize) -> Result<usize, SnapshotCodecError> {
    if buf.remaining() < 8 {
        return Err(SnapshotCodecError::Truncated);
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n.saturating_mul(elem_bytes) {
        return Err(SnapshotCodecError::Truncated);
    }
    Ok(n)
}

/// Deserializes a snapshot from a buffer produced by
/// [`encode_snapshot`].
///
/// An incomplete `SKT1` trailer decodes as
/// [`SnapshotCodecError::Truncated`] (so incremental readers wait for
/// the rest), while non-sketch trailing bytes are
/// [`SnapshotCodecError::Corrupt`]. Note the v1 format is not
/// self-delimiting: an incremental legacy reader that stops exactly at
/// the last stream record would accept a sketchless prefix — in
/// practice only whole buffers (files, length-prefixed v2/v3 frame
/// payloads) carry sketch sections.
///
/// # Errors
///
/// Any structural problem yields a [`SnapshotCodecError`]; the function
/// never panics on untrusted input.
pub fn decode_snapshot(mut buf: &[u8]) -> Result<EngineSnapshot, SnapshotCodecError> {
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(SnapshotCodecError::BadMagic);
    }
    buf.advance(MAGIC.len());
    let n_streams = get_len(&mut buf, 8)?;
    let mut streams = Vec::with_capacity(n_streams.min(1 << 20));
    let mut prev_key: Option<u64> = None;
    for _ in 0..n_streams {
        if buf.remaining() < 32 {
            return Err(SnapshotCodecError::Truncated);
        }
        let key = buf.get_u64_le();
        if let Some(p) = prev_key {
            if key <= p {
                return Err(SnapshotCodecError::Corrupt("stream keys not ascending"));
            }
        }
        prev_key = Some(key);
        let sampler = get_sampler(&mut buf)?;
        let summary = get_summary(&mut buf)?;
        streams.push(StreamEntry {
            key,
            sampler,
            summary,
        });
    }
    let sketch = if buf.is_empty() {
        None
    } else {
        Some(get_sketch(&mut buf)?)
    };
    if !buf.is_empty() {
        return Err(SnapshotCodecError::Corrupt("trailing bytes after sketch"));
    }
    Ok(EngineSnapshot::from_streams(streams).with_sketch(sketch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MonitorConfig, MonitorEngine, SamplerSpec};

    fn sample_snapshot() -> EngineSnapshot {
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::Bss {
                    interval: 10,
                    epsilon: 1.0,
                    n_pre: 8,
                    l: 4,
                })
                .shards(3)
                .seed(5),
        );
        for i in 0..30_000u64 {
            let key = i % 23;
            let v = if (i / 41) % 9 == 0 { 150.0 } else { 2.0 };
            engine.offer(key, v);
        }
        engine.snapshot()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let snap = sample_snapshot();
        let encoded = encode_snapshot(&snap);
        let back = decode_snapshot(&encoded).expect("decode");
        assert_eq!(snap, back);
        // Derived statistics survive too.
        assert_eq!(
            snap.aggregate().hurst_estimate(),
            back.aggregate().hurst_estimate()
        );
    }

    #[test]
    fn round_trip_empty_snapshot() {
        let snap = EngineSnapshot::default();
        assert_eq!(decode_snapshot(&encode_snapshot(&snap)).unwrap(), snap);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decode_snapshot(b"NOTASNAP"),
            Err(SnapshotCodecError::BadMagic)
        );
        assert_eq!(decode_snapshot(b""), Err(SnapshotCodecError::BadMagic));
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let encoded = encode_snapshot(&sample_snapshot());
        for cut in [
            MAGIC.len(),
            MAGIC.len() + 4,
            MAGIC.len() + 12,
            encoded.len() / 3,
            encoded.len() / 2,
            encoded.len() - 1,
        ] {
            assert!(
                decode_snapshot(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn unsorted_keys_rejected() {
        let snap = sample_snapshot();
        let mut raw = encode_snapshot(&snap).to_vec();
        // Stream records start after magic + count; overwrite the first
        // key with a large value so the second is out of order.
        let off = MAGIC.len() + 8;
        raw[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&raw),
            Err(SnapshotCodecError::Corrupt(_)) | Err(SnapshotCodecError::Truncated)
        ));
    }

    fn tiered_snapshot() -> EngineSnapshot {
        let mut engine = MonitorEngine::new(
            MonitorConfig::default()
                .sampler(SamplerSpec::Systematic { interval: 3 })
                .shards(2)
                .seed(11)
                .max_exact_keys(8)
                .sketch_bytes(1 << 14)
                .promote_after(64),
        );
        for i in 0..60_000u64 {
            let key = i % 500; // far past the exact cap
            let v = if key < 4 { 400.0 } else { (i % 13) as f64 };
            engine.offer(key, v);
        }
        engine.full_snapshot()
    }

    #[test]
    fn sketch_section_round_trips_bit_exact() {
        let snap = tiered_snapshot();
        let sk = snap.sketch().expect("tiered engine carries a sketch");
        assert!(sk.sampler.offered > 0, "tail was actually sketched");
        let back = decode_snapshot(&encode_snapshot(&snap)).expect("decode");
        assert_eq!(snap, back);
        assert_eq!(
            snap.sketch().unwrap().cm.total(),
            back.sketch().unwrap().cm.total()
        );
    }

    #[test]
    fn sketch_truncation_yields_truncated() {
        let snap = tiered_snapshot();
        let sketchless = encode_snapshot(&snap.clone().with_sketch(None)).len();
        let encoded = encode_snapshot(&snap);
        assert!(encoded.len() > sketchless + 4);
        // Cut everywhere inside the SKT1 section (past its magic): an
        // incremental reader must see Truncated, never Corrupt, so the
        // legacy FrameDecoder keeps waiting for the rest.
        for cut in (sketchless + 1..encoded.len()).step_by(7) {
            assert_eq!(
                decode_snapshot(&encoded[..cut]),
                Err(SnapshotCodecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn garbage_after_streams_rejected() {
        let snap = sample_snapshot();
        let mut raw = encode_snapshot(&snap).to_vec();
        raw.extend_from_slice(b"JUNKJUNK");
        assert!(matches!(
            decode_snapshot(&raw),
            Err(SnapshotCodecError::Corrupt(_))
        ));
        // Garbage *after a valid sketch* is rejected too.
        let mut raw = encode_snapshot(&tiered_snapshot()).to_vec();
        raw.extend_from_slice(b"JUNKJUNK");
        assert!(decode_snapshot(&raw).is_err());
    }

    #[test]
    fn merged_snapshots_round_trip() {
        let a = sample_snapshot();
        let mut engine = MonitorEngine::new(MonitorConfig::default().seed(9));
        for i in 0..5000u64 {
            engine.offer(1000 + (i % 5), (i % 100) as f64);
        }
        let merged = a.merge(engine.snapshot());
        let back = decode_snapshot(&encode_snapshot(&merged)).expect("decode");
        assert_eq!(merged, back);
    }
}
