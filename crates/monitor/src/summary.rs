//! Per-stream mergeable summaries: Welford moments, a mergeable
//! reservoir of kept samples, online aggregated-variance Hurst state,
//! and tail-exceedance counters.
//!
//! Two forms exist per stream. The *live* [`StreamSummary`] is what a
//! shard updates point by point (it owns the reservoir's RNG). A
//! [`SummarySnapshot`] is its plain-data image: comparable, codable,
//! and — the property everything rests on — **mergeable**: snapshots of
//! disjoint streams combine through
//! [`sst_core::summary::MergeableSummary`] into link- and
//! network-level summaries. Every merge is a deterministic function of
//! its operands (the reservoir merge derives its RNG from the operand
//! state), so folding snapshots in a canonical order yields
//! bitwise-identical results no matter how the streams were sharded —
//! the engine's merge-equivalence tests pin exactly that.

use rand::Rng;
use sst_core::summary::{Compactable, MergeableSummary};
use sst_hurst::online::{CascadePatch, OnlineVarianceTime};
use sst_stats::rng::{derive_seed, rng_from_seed};
use sst_stats::RunningStats;

/// Domain-separation tag for reservoir-merge RNG derivation.
const MERGE_TAG: u64 = 0x4D45_5247;

/// Domain-separation tag for reservoir-compaction RNG derivation.
const COMPACT_TAG: u64 = 0x434F_4D50;

/// Shared configuration for the per-stream summaries.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryConfig {
    /// Kept samples retained per stream (reservoir capacity).
    pub reservoir_capacity: usize,
    /// Ascending exceedance thresholds for the tail counters.
    pub tail_thresholds: Vec<f64>,
}

impl Default for SummaryConfig {
    fn default() -> Self {
        SummaryConfig {
            reservoir_capacity: 64,
            tail_thresholds: vec![1.0, 10.0, 100.0, 1e3, 1e4, 1e5],
        }
    }
}

/// Bounded uniform sample of a stream (Vitter's algorithm R), with a
/// deterministic, state-derived merge.
#[derive(Clone, Debug)]
pub struct Reservoir {
    cap: usize,
    seed: u64,
    seen: u64,
    items: Vec<f64>,
    rng: rand::rngs::StdRng,
}

impl Reservoir {
    /// Creates an empty reservoir of the given capacity; `seed` drives
    /// the replacement draws (derive it from the stream key so
    /// identical streams reproduce identical reservoirs).
    pub fn new(cap: usize, seed: u64) -> Self {
        Reservoir {
            cap,
            seed,
            seen: 0,
            items: Vec::with_capacity(cap.min(64)),
            rng: rng_from_seed(derive_seed(seed, 0x5E5E)),
        }
    }

    /// Offers one value.
    pub fn push(&mut self, v: f64) {
        self.seen += 1;
        if self.items.len() < self.cap {
            self.items.push(v);
            return;
        }
        if self.cap == 0 {
            return;
        }
        // Replace slot j with probability cap/seen: j uniform over all
        // seen items, replacement iff it lands inside the reservoir.
        let j = self.rng.gen_range(0..self.seen as usize);
        if j < self.cap {
            self.items[j] = v;
        }
    }

    /// Plain-data image of the reservoir.
    pub fn snapshot(&self) -> ReservoirSnapshot {
        ReservoirSnapshot {
            cap: self.cap,
            seed: self.seed,
            seen: self.seen,
            items: self.items.clone(),
        }
    }

    /// Shrinks the reservoir to at most `max_items` retained samples
    /// (deterministic uniform subsample) and clamps the capacity so it
    /// stays there — the lifecycle layer's compaction primitive.
    /// `seen` is untouched; the retained set remains an approximately
    /// uniform sample of the stream (each survivor of a uniform sample
    /// of a uniform sample is itself uniform).
    pub fn compact(&mut self, max_items: usize) {
        compact_items(
            &mut self.items,
            &mut self.cap,
            self.seed,
            self.seen,
            max_items,
        );
    }

    /// Approximate in-memory footprint (inline state + ChaCha RNG +
    /// retained items).
    pub fn estimated_bytes(&self) -> usize {
        // cap/seed/seen + Vec header + 304 B StdRng + items.
        24 + 24 + 304 + 8 * self.items.capacity()
    }
}

/// The one compaction primitive behind both reservoir forms (live and
/// snapshot — they must stay in lockstep so a live stream and its
/// image compact identically): deterministic uniform subsample of
/// `items` down to `max_items` survivors in original relative order,
/// with `cap` clamped so the reservoir stays at that size. The draw
/// RNG derives from the reservoir's identity (`seed`, `seen`, length),
/// making compaction a pure function of state. `seen` is untouched;
/// the retained set remains an approximately uniform sample of the
/// stream (each survivor of a uniform sample of a uniform sample is
/// itself uniform).
fn compact_items(items: &mut Vec<f64>, cap: &mut usize, seed: u64, seen: u64, max_items: usize) {
    let max_items = max_items.max(1);
    if items.len() > max_items {
        let mut rng = rng_from_seed(derive_seed(
            derive_seed(COMPACT_TAG, seed),
            seen ^ (items.len() as u64).rotate_left(32),
        ));
        let mut keyed: Vec<(f64, usize)> =
            (0..items.len()).map(|i| (rng.gen::<f64>(), i)).collect();
        // Largest-key survivors; total_cmp keeps hostile NaN-free
        // totality, stable sort breaks (measure-zero) ties by index.
        keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
        keyed.truncate(max_items);
        let mut pick: Vec<usize> = keyed.into_iter().map(|(_, i)| i).collect();
        pick.sort_unstable();
        *items = pick.into_iter().map(|i| items[i]).collect();
        // collect() may have reused a larger source allocation
        // (in-place specialization); compaction is about memory.
        items.shrink_to_fit();
    }
    *cap = (*cap).min(max_items);
}

/// Plain-data image of a [`Reservoir`]: comparable, codable, mergeable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReservoirSnapshot {
    /// Capacity of the source reservoir.
    pub cap: usize,
    /// Seed of the source reservoir (merges fold it in).
    pub seed: u64,
    /// Stream values offered to the source reservoir.
    pub seen: u64,
    /// The retained sample.
    pub items: Vec<f64>,
}

impl ReservoirSnapshot {
    /// [`Reservoir::compact`] on the plain-data image: deterministic
    /// uniform subsample down to `max_items`, capacity clamped — the
    /// shared [`compact_items`] primitive, so live and snapshot forms
    /// of the same reservoir compact to identical items.
    pub fn compact(&mut self, max_items: usize) {
        compact_items(
            &mut self.items,
            &mut self.cap,
            self.seed,
            self.seen,
            max_items,
        );
    }

    /// Approximate in-memory footprint.
    pub fn estimated_bytes(&self) -> usize {
        24 + 24 + 8 * self.items.capacity()
    }

    /// The slot-level patch taking `base` to `self`, or `None` when
    /// the pair is not successive snapshots of one reservoir (identity
    /// — cap or seed — changed, or the sample shrank under
    /// compaction): ship the full reservoir instead. Slot values
    /// travel verbatim, compared at the bit level, so applying the
    /// patch to `base` reproduces `self` exactly. In steady state
    /// (reservoir full, few new points) at most one slot per
    /// replacement draw changes, so the patch is tiny next to `cap`
    /// retained items.
    pub fn diff_from(&self, base: &ReservoirSnapshot) -> Option<ReservoirPatch> {
        if self.cap != base.cap
            || self.seed != base.seed
            || self.seen < base.seen
            || self.items.len() < base.items.len()
        {
            return None;
        }
        let mut slots = Vec::new();
        for (i, v) in self.items.iter().enumerate() {
            let same = base
                .items
                .get(i)
                .is_some_and(|b| b.to_bits() == v.to_bits());
            if !same {
                slots.push((i, *v));
            }
        }
        Some(ReservoirPatch {
            seen_delta: self.seen - base.seen,
            new_len: self.items.len(),
            slots,
        })
    }

    /// Applies a [`ReservoirSnapshot::diff_from`] patch. Returns
    /// `false` — leaving the snapshot untouched — when the patch is
    /// inconsistent with this state (sample would shrink or exceed
    /// `cap`, appended slots not covered, indices unsorted, counter
    /// overflow, or `len > seen` afterwards); the receiver's baseline
    /// is then lost and it should resync.
    pub fn apply_patch(&mut self, p: &ReservoirPatch) -> bool {
        if p.new_len < self.items.len() || p.new_len > self.cap {
            return false;
        }
        let Some(seen) = self.seen.checked_add(p.seen_delta) else {
            return false;
        };
        if p.new_len as u64 > seen {
            return false;
        }
        let mut prev: Option<usize> = None;
        for &(i, _) in &p.slots {
            if i >= p.new_len || prev.is_some_and(|q| i <= q) {
                return false;
            }
            prev = Some(i);
        }
        // Every appended slot must carry a value — a gap would
        // fabricate filler the sender never had.
        for i in self.items.len()..p.new_len {
            if p.slots.binary_search_by_key(&i, |&(j, _)| j).is_err() {
                return false;
            }
        }
        self.items.resize(p.new_len, 0.0);
        for &(i, v) in &p.slots {
            self.items[i] = v;
        }
        self.seen = seen;
        true
    }

    /// Merges `other` (a reservoir over a disjoint stream) into `self`:
    /// a weighted sample of the union, each retained item standing for
    /// `seen/len` originals (Efraimidis-Spirakis keys, largest-key
    /// `cap` survive). The merge RNG derives from both operands' seeds
    /// and counts, so equal inputs always produce equal outputs.
    fn merge_from(&mut self, other: &ReservoirSnapshot) {
        if other.seen == 0 {
            return;
        }
        if self.seen == 0 {
            *self = other.clone();
            return;
        }
        let cap = self.cap.max(other.cap);
        let mut rng = rng_from_seed(derive_seed(
            derive_seed(MERGE_TAG, self.seed ^ other.seed.rotate_left(32)),
            self.seen.wrapping_add(other.seen.rotate_left(17)),
        ));
        let mut keyed: Vec<(f64, f64)> = Vec::with_capacity(self.items.len() + other.items.len());
        for part in [&*self, other] {
            if part.items.is_empty() {
                continue;
            }
            let w = part.seen as f64 / part.items.len() as f64;
            for &v in &part.items {
                let u: f64 = loop {
                    let u = rng.gen::<f64>();
                    if u > 0.0 {
                        break u;
                    }
                };
                keyed.push((u.powf(1.0 / w), v));
            }
        }
        // Descending by key (total_cmp: keys are finite by
        // construction, but decoded snapshots are untrusted); index
        // order breaks (measure-zero) ties deterministically because
        // the sort is stable.
        keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
        keyed.truncate(cap);
        self.items = keyed.into_iter().map(|(_, v)| v).collect();
        self.cap = cap;
        self.seed = derive_seed(self.seed, other.seed);
        self.seen += other.seen;
    }
}

/// A differential update taking an older [`ReservoirSnapshot`] to a
/// newer one: only the inserted/replaced slots since the baseline,
/// keyed by slot index, plus the monotone `seen` delta.
#[derive(Clone, Debug, PartialEq)]
pub struct ReservoirPatch {
    /// `new.seen − base.seen`.
    pub seen_delta: u64,
    /// Retained-sample length of the new state (never shrinks in a
    /// diffable pair).
    pub new_len: usize,
    /// Changed slots as `(index, value)`, strictly ascending by index;
    /// values verbatim.
    pub slots: Vec<(usize, f64)>,
}

/// Exceedance counters over a fixed ascending threshold ladder — the
/// mergeable form of the paper's tail interest (how often the rate
/// process exceeds a level; counts of disjoint streams add).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TailCounter {
    /// Ascending thresholds.
    thresholds: Vec<f64>,
    /// `counts[i]` = observations strictly above `thresholds[i]`.
    counts: Vec<u64>,
    /// Total observations.
    total: u64,
}

impl TailCounter {
    /// Creates counters over `thresholds` (must be ascending).
    ///
    /// # Panics
    ///
    /// Panics if the thresholds are not strictly ascending.
    pub fn new(thresholds: &[f64]) -> Self {
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must be strictly ascending"
        );
        TailCounter {
            thresholds: thresholds.to_vec(),
            counts: vec![0; thresholds.len()],
            total: 0,
        }
    }

    /// Counts one observation.
    pub fn push(&mut self, v: f64) {
        self.total += 1;
        for (t, c) in self.thresholds.iter().zip(self.counts.iter_mut()) {
            if v > *t {
                *c += 1;
            } else {
                break; // ascending: nothing larger is exceeded either
            }
        }
    }

    /// The `(threshold, exceedance count)` ladder.
    pub fn ladder(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.thresholds
            .iter()
            .copied()
            .zip(self.counts.iter().copied())
    }

    /// Total observations counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical exceedance probability `P(X > thresholds[i])`.
    pub fn exceedance(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Raw state for serialization: `(thresholds, counts, total)`.
    pub fn raw_parts(&self) -> (&[f64], &[u64], u64) {
        (&self.thresholds, &self.counts, self.total)
    }

    /// Approximate in-memory footprint. The ladder is fixed at
    /// configuration time, so this never shrinks under compaction —
    /// exceedance *totals* are sacred.
    pub fn estimated_bytes(&self) -> usize {
        48 + 8 + 16 * self.thresholds.len()
    }

    /// Rebuilds counters from [`TailCounter::raw_parts`] output.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or non-ascending thresholds.
    pub fn from_raw_parts(thresholds: Vec<f64>, counts: Vec<u64>, total: u64) -> Self {
        assert_eq!(thresholds.len(), counts.len(), "ladder length mismatch");
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must be strictly ascending"
        );
        TailCounter {
            thresholds,
            counts,
            total,
        }
    }

    /// The `(per-rung count deltas, total delta)` taking `base` to
    /// `self`, or `None` when the ladders differ (bit-compared — these
    /// are successive snapshots of one counter or nothing) or any
    /// counter moved backwards. Counters are monotone integers, so
    /// `base + delta` reproduces `self` exactly.
    pub fn diff_from(&self, base: &TailCounter) -> Option<(Vec<u64>, u64)> {
        if self.thresholds.len() != base.thresholds.len()
            || !self
                .thresholds
                .iter()
                .zip(&base.thresholds)
                .all(|(a, b)| a.to_bits() == b.to_bits())
        {
            return None;
        }
        let total = self.total.checked_sub(base.total)?;
        let mut deltas = Vec::with_capacity(self.counts.len());
        for (c, b) in self.counts.iter().zip(&base.counts) {
            deltas.push(c.checked_sub(*b)?);
        }
        Some((deltas, total))
    }

    /// Advances the counters by a [`TailCounter::diff_from`] delta.
    /// Returns `false` — leaving the counter untouched — on rung-count
    /// mismatch, overflow, or a rung count exceeding the new total.
    pub fn apply_deltas(&mut self, deltas: &[u64], total_delta: u64) -> bool {
        if deltas.len() != self.counts.len() {
            return false;
        }
        let Some(total) = self.total.checked_add(total_delta) else {
            return false;
        };
        let mut counts = Vec::with_capacity(self.counts.len());
        for (c, d) in self.counts.iter().zip(deltas) {
            match c.checked_add(*d) {
                Some(n) if n <= total => counts.push(n),
                _ => return false,
            }
        }
        self.counts = counts;
        self.total = total;
        true
    }

    fn merge_from(&mut self, other: &TailCounter) {
        // A counter that observed nothing carries no information — it
        // is the merge identity even if it was configured with a
        // (different) ladder, so it must never drag the other side's
        // counts into an intersection.
        if other.total == 0 {
            return;
        }
        if self.total == 0 {
            *self = other.clone();
            return;
        }
        if self.thresholds == other.thresholds {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
            self.total += other.total;
            return;
        }
        // Ladders differ (snapshots from engines configured with
        // different thresholds — `monitor_tool merge` accepts arbitrary
        // inputs, so this must not panic): degrade to the intersection.
        // Counts at shared rungs stay exact; rungs only one side
        // measured are dropped, because an exceedance count at a
        // threshold the other stream never tracked cannot be combined.
        let mut thresholds = Vec::new();
        let mut counts = Vec::new();
        for (i, t) in self.thresholds.iter().enumerate() {
            if let Some(j) = other.thresholds.iter().position(|o| o == t) {
                thresholds.push(*t);
                counts.push(self.counts[i] + other.counts[j]);
            }
        }
        self.thresholds = thresholds;
        self.counts = counts;
        self.total += other.total;
    }
}

/// Live per-stream summary: what a shard updates for every kept sample.
#[derive(Clone, Debug)]
pub struct StreamSummary {
    moments: RunningStats,
    hurst: OnlineVarianceTime,
    reservoir: Reservoir,
    tail: TailCounter,
}

impl StreamSummary {
    /// Creates an empty summary; `seed` drives the reservoir.
    pub fn new(config: &SummaryConfig, seed: u64) -> Self {
        StreamSummary {
            moments: RunningStats::new(),
            hurst: OnlineVarianceTime::new(),
            reservoir: Reservoir::new(config.reservoir_capacity, seed),
            tail: TailCounter::new(&config.tail_thresholds),
        }
    }

    /// Absorbs one kept sample.
    pub fn push(&mut self, v: f64) {
        self.moments.push(v);
        self.hurst.push(v);
        self.reservoir.push(v);
        self.tail.push(v);
    }

    /// Kept samples absorbed so far.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Plain-data image of the summary.
    pub fn snapshot(&self) -> SummarySnapshot {
        SummarySnapshot {
            moments: self.moments,
            hurst: self.hurst.clone(),
            reservoir: self.reservoir.snapshot(),
            tail: self.tail.clone(),
        }
    }

    /// Approximate in-memory footprint of the live summary.
    pub fn estimated_bytes(&self) -> usize {
        40 + self.hurst.estimated_bytes()
            + self.reservoir.estimated_bytes()
            + self.tail.estimated_bytes()
    }

    /// Prunes the live summary's auxiliary state (reservoir items,
    /// coarse Hurst levels) toward `budget_bytes` — the *same split*
    /// as the snapshot-side [`Compactable`] impl, so a live stream and
    /// its snapshot compacted at the same budget retain identical
    /// levels and items (the live side then sits one RNG — ~304 B —
    /// above the budget; the amortized bound is retired-dominated and
    /// absorbs that). Totals are untouched.
    pub fn compact(&mut self, budget_bytes: usize) {
        let fixed = 40 + 56 + 48 + self.tail.estimated_bytes();
        let (levels, items) = compaction_plan(budget_bytes, fixed);
        self.hurst.prune_levels(levels);
        self.reservoir.compact(items);
    }
}

/// Splits a summary byte budget between the two prunable parts: the
/// dyadic Hurst cascade gets up to 3/5 of the slack above the
/// fixed-size core (56 B per level), the reservoir the rest (8 B per
/// item). Floors of 4 levels (the fewest that keep
/// `OnlineVarianceTime::estimate` possible: `m ∈ {2, 4, 8}`) and
/// 4 items keep a tiny budget from destroying the summary outright, so
/// the result is best-effort when `budget` is below the core size.
fn compaction_plan(budget: usize, fixed: usize) -> (usize, usize) {
    let slack = budget.saturating_sub(fixed);
    let levels = ((slack * 3 / 5) / 56).clamp(4, 48);
    let items = (slack.saturating_sub(levels * 56) / 8).max(4);
    (levels, items)
}

/// Plain-data image of a [`StreamSummary`]: comparable, codable, and
/// mergeable via [`MergeableSummary`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SummarySnapshot {
    /// Welford moments of the kept samples.
    pub moments: RunningStats,
    /// Online aggregated-variance Hurst state (dyadic block stats).
    pub hurst: OnlineVarianceTime,
    /// Retained kept-sample reservoir.
    pub reservoir: ReservoirSnapshot,
    /// Tail-exceedance ladder.
    pub tail: TailCounter,
}

/// A differential update taking an older [`SummarySnapshot`] of a
/// stream to a newer one — the per-section payload of a wire-v4
/// `DeltaDiff` entry. Each section is `None` when unchanged; changed
/// floats ship verbatim (bit-compared, never delta-encoded), monotone
/// integer counters ship as deltas, so applying the patch to the
/// baseline reproduces the new snapshot **bit-for-bit**.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SummaryPatch {
    /// Replacement Welford moments, when they changed (40 B verbatim —
    /// a single kept point rewrites most of the raw parts anyway).
    pub moments: Option<RunningStats>,
    /// Cascade level increments.
    pub hurst: Option<CascadePatch>,
    /// Inserted/replaced reservoir slots.
    pub reservoir: Option<ReservoirPatch>,
    /// Tail-ladder `(per-rung count deltas, total delta)`.
    pub tail: Option<(Vec<u64>, u64)>,
}

impl SummaryPatch {
    /// `true` when every section is unchanged (the stream saw no kept
    /// points since the baseline — possible for a dirty key whose
    /// sampler skipped everything).
    pub fn is_empty(&self) -> bool {
        self.moments.is_none()
            && self.hurst.is_none()
            && self.reservoir.is_none()
            && self.tail.is_none()
    }
}

/// Bit-level image of Welford moments, for exact change detection.
fn moments_bits(rs: &RunningStats) -> (u64, u64, u64, u64, u64) {
    let (n, mean, m2, min, max) = rs.raw_parts();
    (
        n,
        mean.to_bits(),
        m2.to_bits(),
        min.to_bits(),
        max.to_bits(),
    )
}

impl SummarySnapshot {
    /// The online Hurst estimate from the (possibly merged) dyadic
    /// block statistics.
    pub fn hurst_estimate(&self) -> Option<f64> {
        self.hurst.estimate().ok().map(|e| e.hurst)
    }

    /// Sum of kept values (`count · mean`) — the heavy-hitter volume.
    pub fn kept_volume(&self) -> f64 {
        self.moments.count() as f64 * self.moments.mean()
    }

    /// The patch taking `base` to `self`, or `None` when any section
    /// is not diffable (reservoir identity changed, cascade or sample
    /// shrank, ladder changed — ship the full entry instead).
    pub fn diff_from(&self, base: &SummarySnapshot) -> Option<SummaryPatch> {
        let moments =
            (moments_bits(&self.moments) != moments_bits(&base.moments)).then_some(self.moments);
        let hurst = {
            let p = self.hurst.diff_from(&base.hurst)?;
            let unchanged = p.count_delta == 0
                && p.changed.is_empty()
                && p.new_levels == base.hurst.level_count();
            (!unchanged).then_some(p)
        };
        let reservoir = {
            let p = self.reservoir.diff_from(&base.reservoir)?;
            let unchanged =
                p.seen_delta == 0 && p.slots.is_empty() && p.new_len == base.reservoir.items.len();
            (!unchanged).then_some(p)
        };
        let tail = {
            let (deltas, total) = self.tail.diff_from(&base.tail)?;
            (total != 0 || deltas.iter().any(|&d| d != 0)).then_some((deltas, total))
        };
        Some(SummaryPatch {
            moments,
            hurst,
            reservoir,
            tail,
        })
    }

    /// Applies a [`SummarySnapshot::diff_from`] patch. Returns `false`
    /// when any section fails validation against this state — the
    /// snapshot may then be **partially updated** and must be treated
    /// as lost (the wire layer answers with a resync that re-baselines
    /// it wholesale).
    pub fn apply_patch(&mut self, p: &SummaryPatch) -> bool {
        if let Some(m) = p.moments {
            self.moments = m;
        }
        if let Some(h) = &p.hurst {
            if !self.hurst.apply_patch(h) {
                return false;
            }
        }
        if let Some(r) = &p.reservoir {
            if !self.reservoir.apply_patch(r) {
                return false;
            }
        }
        if let Some((deltas, total)) = &p.tail {
            if !self.tail.apply_deltas(deltas, *total) {
                return false;
            }
        }
        true
    }
}

impl MergeableSummary for SummarySnapshot {
    fn merge_from(&mut self, other: &Self) {
        self.moments.merge(&other.moments);
        self.hurst.merge_from(&other.hurst);
        self.reservoir.merge_from(&other.reservoir);
        self.tail.merge_from(&other.tail);
    }

    fn is_empty(&self) -> bool {
        self.moments.count() == 0 && self.tail.total() == 0
    }
}

impl Compactable for SummarySnapshot {
    fn estimated_bytes(&self) -> usize {
        40 + self.hurst.estimated_bytes()
            + self.reservoir.estimated_bytes()
            + self.tail.estimated_bytes()
    }

    /// Prunes reservoir items and coarse dyadic Hurst levels toward the
    /// budget. Counts, sums, and tail totals are untouched, so merging
    /// compacted snapshots still yields exact aggregate totals.
    fn compact(&mut self, budget_bytes: usize) {
        let fixed = 40 + 56 + 48 + self.tail.estimated_bytes();
        let (levels, items) = compaction_plan(budget_bytes, fixed);
        self.hurst.prune_levels(levels);
        self.reservoir.compact(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_core::summary::merge_all;

    fn summary_of(values: &[f64], seed: u64) -> SummarySnapshot {
        let mut s = StreamSummary::new(&SummaryConfig::default(), seed);
        for &v in values {
            s.push(v);
        }
        s.snapshot()
    }

    fn ramp(n: usize, scale: f64) -> Vec<f64> {
        (0..n).map(|i| (i % 977) as f64 * scale).collect()
    }

    #[test]
    fn reservoir_is_uniform_enough_and_deterministic() {
        let vals: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let mut r1 = Reservoir::new(100, 7);
        let mut r2 = Reservoir::new(100, 7);
        for &v in &vals {
            r1.push(v);
            r2.push(v);
        }
        assert_eq!(r1.snapshot(), r2.snapshot(), "same seed, same reservoir");
        let snap = r1.snapshot();
        assert_eq!(snap.items.len(), 100);
        assert_eq!(snap.seen, 10_000);
        // Uniformity: the retained sample's mean is near the stream's.
        let mean = snap.items.iter().sum::<f64>() / snap.items.len() as f64;
        assert!(
            (mean - 4999.5).abs() < 1200.0,
            "reservoir mean {mean} far from 4999.5"
        );
    }

    #[test]
    fn reservoir_merge_is_deterministic_and_weighted() {
        let a = {
            let mut r = Reservoir::new(50, 1);
            for v in ramp(5000, 1.0) {
                r.push(v);
            }
            r.snapshot()
        };
        let b = {
            let mut r = Reservoir::new(50, 2);
            for v in ramp(500, -1.0) {
                r.push(v);
            }
            r.snapshot()
        };
        let mut m1 = a.clone();
        m1.merge_from(&b);
        let mut m2 = a.clone();
        m2.merge_from(&b);
        assert_eq!(m1, m2, "merge must be a pure function of its inputs");
        assert_eq!(m1.seen, a.seen + b.seen);
        assert_eq!(m1.items.len(), 50);
        // ~10:1 weight ratio: most survivors come from `a` (positive).
        let from_a = m1.items.iter().filter(|&&v| v >= 0.0).count();
        assert!(from_a > 25, "only {from_a}/50 from the 10x-heavier side");
    }

    #[test]
    fn reservoir_merge_identity() {
        let a = summary_of(&ramp(300, 2.0), 3).reservoir;
        let mut left = ReservoirSnapshot::default();
        left.merge_from(&a);
        assert_eq!(left, a);
        let mut right = a.clone();
        right.merge_from(&ReservoirSnapshot::default());
        assert_eq!(right, a);
    }

    #[test]
    fn tail_counter_counts_exceedances() {
        let mut t = TailCounter::new(&[10.0, 100.0]);
        for v in [5.0, 11.0, 150.0, 100.0, 101.0] {
            t.push(v);
        }
        let ladder: Vec<(f64, u64)> = t.ladder().collect();
        assert_eq!(ladder, vec![(10.0, 4), (100.0, 2)]);
        assert_eq!(t.total(), 5);
        assert!((t.exceedance(0) - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn tail_counter_rejects_unsorted_ladder() {
        TailCounter::new(&[10.0, 5.0]);
    }

    #[test]
    fn tail_merge_with_empty_counter_is_identity_regardless_of_ladder() {
        // A stream whose sampler kept nothing has a configured ladder
        // but zero observations; merging it must not disturb the other
        // side's counts (the MergeableSummary identity law).
        let mut a = TailCounter::new(&[64.0, 576.0, 1400.0]);
        for v in [100.0, 700.0, 700.0] {
            a.push(v);
        }
        let before = a.clone();
        a.merge_from(&TailCounter::new(&[1.0, 10.0])); // different ladder, 0 obs
        assert_eq!(a, before);
        let mut empty = TailCounter::new(&[1.0, 10.0]);
        empty.merge_from(&before);
        assert_eq!(empty, before, "empty side adopts the informative side");
    }

    #[test]
    fn tail_merge_with_mismatched_ladders_intersects() {
        // `monitor_tool merge` accepts snapshots from differently
        // configured engines; shared rungs stay exact, others drop.
        let mut a = TailCounter::new(&[10.0, 100.0, 1000.0]);
        for v in [5.0, 50.0, 500.0, 5000.0] {
            a.push(v);
        }
        let mut b = TailCounter::new(&[100.0, 500.0]);
        for v in [200.0, 600.0] {
            b.push(v);
        }
        a.merge_from(&b);
        let ladder: Vec<(f64, u64)> = a.ladder().collect();
        // Only the shared 100.0 rung survives: a counted {500, 5000},
        // b counted {200, 600}.
        assert_eq!(ladder, vec![(100.0, 4)]);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn summary_merge_equals_pooled_moments() {
        let a = summary_of(&ramp(1000, 1.0), 1);
        let b = summary_of(&ramp(500, 3.0), 2);
        let mut merged = a.clone();
        merged.merge_from(&b);
        let mut direct = RunningStats::new();
        for v in ramp(1000, 1.0).into_iter().chain(ramp(500, 3.0)) {
            direct.push(v);
        }
        assert_eq!(merged.moments.count(), direct.count());
        assert!((merged.moments.mean() - direct.mean()).abs() < 1e-9);
        assert!((merged.moments.variance() - direct.variance()).abs() < 1e-6);
        assert_eq!(merged.tail.total(), 1500);
    }

    #[test]
    fn merge_all_is_order_stable() {
        let parts: Vec<SummarySnapshot> = (0..4)
            .map(|i| summary_of(&ramp(200 + 13 * i as usize, 1.0 + i as f64), i))
            .collect();
        let one: SummarySnapshot = merge_all(&parts);
        let two: SummarySnapshot = merge_all(&parts);
        assert_eq!(one, two, "same order, same inputs → identical bits");
    }
}
