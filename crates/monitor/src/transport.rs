//! Socket transport for the collector topology: a single-threaded
//! `poll(2)` event loop serving many collector sessions at once, plus
//! the blocking per-connection pump the threaded transport shares.
//!
//! ## Why an event loop
//!
//! The original `monitor_tool serve` burned one blocking OS thread per
//! collector connection. Sampled-NetFlow-style deployments put
//! *hundreds* of exporters behind one aggregation point; at that fan-in
//! the thread-per-connection model costs a stack and a scheduler slot
//! per mostly-idle socket, and a mutex around the aggregator besides.
//! The frame protocol is already incremental ([`FrameDecoder`] is
//! push-based) and the per-session logic is a pure state machine
//! ([`SessionDriver`]), so only the socket layer had to change:
//!
//! * every listener and connection is non-blocking,
//! * one `poll(2)` call multiplexes all of them (level-triggered — a
//!   partially-drained buffer simply reports readable again),
//! * readable bytes feed each session's [`SessionDriver`], which feeds
//!   the [`Aggregator`] **directly** — no mutex, no threads,
//! * both Unix-domain and TCP listeners can serve concurrently, and
//!   pre-accepted streams can be injected for tests and benches.
//!
//! Because the aggregator keys state per session and is
//! interleaving-independent, the event loop's snapshot is
//! **byte-identical** to the threaded transport's (and to a single
//! unsharded engine over the same points) — pinned by
//! `tests/transport_live.rs`.
//!
//! ## Failure isolation
//!
//! One bad session must never kill the aggregator. A session that sends
//! garbage, violates the protocol, or disconnects mid-frame is rolled
//! back ([`SessionDriver::abort`]) and recorded in the
//! [`ServeReport`]; everything already assembled keeps serving. A
//! connect-then-close probe (zero frames delivered) does not consume a
//! collector slot. The assembled snapshot is exactly the union of
//! *completed* sessions: ≥ 1 frame delivered, clean EOF.
//!
//! ## Shutdown
//!
//! [`EventLoopServer::run`] returns when `collectors` sessions have
//! completed, or — with [`ServeOptions::accept_timeout`] — when no
//! session delivered bytes for that long (so a serve waiting on clients
//! that never come, or that stall, terminates instead of blocking
//! forever). Sessions still in flight at shutdown are aborted and
//! counted in [`ServeReport::aborted`].
//!
//! `io_uring` (batched submission, zero-syscall steady state) is the
//! natural next step past `poll(2)` and is tracked in the ROADMAP.
//!
//! [`FrameDecoder`]: crate::wire::FrameDecoder

use crate::topology::{Aggregator, SessionDriver};
use std::collections::BTreeMap;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Minimal FFI binding for `poll(2)` — the one hole in the crate's
/// no-unsafe rule, confined to this module and wrapped by the safe
/// [`sys::poll_fds`]. (No `libc` dependency: the container's workspace
/// is offline, and two `#[repr(C)]` lines beat a vendored crate.)
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    /// `struct pollfd` from `<poll.h>` (identical layout on every
    /// Linux ABI this workspace targets).
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    /// There is input to read.
    pub const POLLIN: i16 = 0x001;
    /// Error condition (revents only).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (revents only).
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Blocks until an fd in `fds` is ready or `timeout_ms` elapses
    /// (`-1` = forever), retrying on `EINTR`. Returns the ready count
    /// (`0` on timeout); `revents` is filled in place.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid, exclusively-borrowed slice of
            // `#[repr(C)]` pollfd-layout structs; the kernel writes
            // only `revents` within it.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms as c_int) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// A connected collector stream over either supported transport.
pub enum SessionStream {
    /// A Unix-domain connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl SessionStream {
    fn set_nonblocking(&self, v: bool) -> io::Result<()> {
        match self {
            SessionStream::Unix(s) => s.set_nonblocking(v),
            SessionStream::Tcp(s) => s.set_nonblocking(v),
        }
    }

    fn peer_label(&self) -> String {
        match self {
            SessionStream::Unix(_) => "uds".to_string(),
            SessionStream::Tcp(s) => s
                .peer_addr()
                .map(|a| format!("tcp {a}"))
                .unwrap_or_else(|_| "tcp".to_string()),
        }
    }
}

impl AsRawFd for SessionStream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            SessionStream::Unix(s) => s.as_raw_fd(),
            SessionStream::Tcp(s) => s.as_raw_fd(),
        }
    }
}

impl Read for SessionStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SessionStream::Unix(s) => s.read(buf),
            SessionStream::Tcp(s) => s.read(buf),
        }
    }
}

impl From<UnixStream> for SessionStream {
    fn from(s: UnixStream) -> Self {
        SessionStream::Unix(s)
    }
}

impl From<TcpStream> for SessionStream {
    fn from(s: TcpStream) -> Self {
        SessionStream::Tcp(s)
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }

    /// Accepts one pending connection, `Ok(None)` when none is queued.
    fn accept(&self) -> io::Result<Option<SessionStream>> {
        let res = match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| SessionStream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| SessionStream::Tcp(s)),
        };
        match res {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            // Transient conditions (peer reset, fd exhaustion) must
            // not kill the loop: losing the whole assembled aggregator
            // over them would be the total-loss failure this transport
            // exists to prevent. Back off briefly — under EMFILE the
            // listener stays readable, so poll would otherwise spin
            // hot — and retry next round.
            Err(e) if accept_error_is_transient(&e) => {
                std::thread::sleep(std::time::Duration::from_millis(10));
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// `accept(2)` failures that indicate a transient per-connection or
/// resource condition rather than a broken listener: the peer reset
/// before we got to it (`ECONNABORTED`), or process/system fd
/// exhaustion (`EMFILE`/`ENFILE`). Callers should back off briefly and
/// keep serving — dying would discard every completed session. Shared
/// by the event loop and the threaded accept loop so the two
/// transports classify identically.
pub fn accept_error_is_transient(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::ConnectionAborted
        // EMFILE = 24, ENFILE = 23 on every Linux ABI this targets.
        || matches!(e.raw_os_error(), Some(23) | Some(24))
}

/// How [`EventLoopServer::run`] decides it is done.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Stop once this many sessions completed (≥ 1 frame delivered,
    /// clean EOF). Probes and failed sessions do not count.
    pub collectors: usize,
    /// Stop when no session delivered bytes for this long — the guard
    /// against clients that never connect (or stall forever). `None`
    /// waits indefinitely.
    pub accept_timeout: Option<Duration>,
}

/// One failed session, as recorded in the [`ServeReport`].
#[derive(Clone, Debug)]
pub struct SessionFailure {
    /// Transport-level peer label (`"uds"` / `"tcp <addr>"`).
    pub peer: String,
    /// The session id it had established, if any.
    pub session: Option<u64>,
    /// Human-readable failure cause.
    pub error: String,
}

/// What a serve run saw: the observability half of failure isolation.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Sessions that delivered ≥ 1 frame and closed cleanly — the ones
    /// whose state the assembled snapshot holds.
    pub completed: usize,
    /// Connect-then-close probes (clean EOF, zero frames): logged,
    /// never counted against `collectors`.
    pub probes: usize,
    /// Sessions that failed (garbage, protocol violation, mid-frame
    /// disconnect, read error); each was rolled back out of the
    /// aggregator.
    pub failures: Vec<SessionFailure>,
    /// Sessions still mid-stream at shutdown, rolled back likewise.
    pub aborted: usize,
    /// `true` when the run ended on `accept_timeout` instead of
    /// reaching the collector target.
    pub timed_out: bool,
}

struct Session {
    stream: SessionStream,
    driver: SessionDriver,
    peer: String,
    /// Unique per accepted connection — the ownership token in the
    /// collector-id registry (the fallback id doubles as it).
    token: u64,
}

/// Who holds a collector id in the event loop's admission registry.
enum IdOwner {
    /// An open session (by its token) is feeding under this id.
    Open(u64),
    /// A completed session delivered this id's state; nobody may
    /// claim it again within this serve run (a late "reconnect" after
    /// a clean `Bye` is indistinguishable from a spoof).
    Completed,
}

/// How one readable session left the poll round.
enum SessionEnd {
    /// Still open; its socket buffer is drained for now.
    Open,
    /// Clean EOF.
    Done,
    /// Dead: protocol or I/O failure.
    Failed(String),
}

/// The single-threaded `poll(2)` serve loop: non-blocking listeners,
/// per-connection [`SessionDriver`]s, one exclusively-owned
/// [`Aggregator`] — see the module docs for the design.
///
/// ```no_run
/// use sst_monitor::topology::Aggregator;
/// use sst_monitor::transport::{EventLoopServer, ServeOptions};
/// use std::os::unix::net::UnixListener;
///
/// let mut server = EventLoopServer::new(
///     Aggregator::new(),
///     ServeOptions { collectors: 64, accept_timeout: Some(std::time::Duration::from_secs(30)) },
/// );
/// server.add_unix_listener(UnixListener::bind("/tmp/agg.sock")?)?;
/// let (agg, report) = server.run()?;
/// assert_eq!(report.completed, 64);
/// let snapshot = agg.snapshot();
/// # std::io::Result::Ok(())
/// ```
pub struct EventLoopServer {
    listeners: Vec<Listener>,
    sessions: Vec<Session>,
    agg: Aggregator,
    opts: ServeOptions,
    accepted: u64,
    report: ServeReport,
    /// Collector-id admission registry: an id already owned by another
    /// open session, or delivered by a completed one, cannot be
    /// claimed again — a spoofed `Hello` is rejected *before* it can
    /// reset the real collector's live view (ids free up again when a
    /// session fails, so reconnect-after-failure still works).
    id_owners: BTreeMap<u64, IdOwner>,
}

/// Base of the fallback session-id range handed to legacy (Hello-less)
/// sessions — past `u32`, so it cannot collide with forwarders' small
/// collector ids.
pub const FALLBACK_ID_BASE: u64 = 1 << 32;

impl EventLoopServer {
    /// A serve loop that will assemble into `agg` (pre-configure its
    /// compaction budget there) under the given stop conditions.
    pub fn new(agg: Aggregator, opts: ServeOptions) -> Self {
        EventLoopServer {
            listeners: Vec::new(),
            sessions: Vec::new(),
            agg,
            opts,
            accepted: 0,
            report: ServeReport::default(),
            id_owners: BTreeMap::new(),
        }
    }

    /// Registers a Unix-domain listener (switched to non-blocking).
    ///
    /// # Errors
    ///
    /// The `set_nonblocking` I/O error.
    pub fn add_unix_listener(&mut self, l: UnixListener) -> io::Result<()> {
        l.set_nonblocking(true)?;
        self.listeners.push(Listener::Unix(l));
        Ok(())
    }

    /// Registers a TCP listener (switched to non-blocking).
    ///
    /// # Errors
    ///
    /// The `set_nonblocking` I/O error.
    pub fn add_tcp_listener(&mut self, l: TcpListener) -> io::Result<()> {
        l.set_nonblocking(true)?;
        self.listeners.push(Listener::Tcp(l));
        Ok(())
    }

    /// Registers an already-accepted connection (tests, benches, or a
    /// supervisor that does its own accepting).
    ///
    /// # Errors
    ///
    /// The `set_nonblocking` I/O error.
    pub fn add_session(&mut self, stream: impl Into<SessionStream>) -> io::Result<()> {
        let stream = stream.into();
        stream.set_nonblocking(true)?;
        self.accepted += 1;
        // Unique per connection, so it doubles as the ownership token
        // in the id registry.
        let token = FALLBACK_ID_BASE + self.accepted - 1;
        let driver = SessionDriver::new(token);
        let peer = stream.peer_label();
        self.sessions.push(Session {
            stream,
            driver,
            peer,
            token,
        });
        Ok(())
    }

    /// Runs the loop to completion and returns the assembled
    /// aggregator plus the session report.
    ///
    /// # Errors
    ///
    /// Only loop-fatal I/O errors: `poll(2)` itself or a listener
    /// accept failing. Per-session errors never surface here — they
    /// are isolated into [`ServeReport::failures`].
    pub fn run(mut self) -> io::Result<(Aggregator, ServeReport)> {
        let mut last_activity = Instant::now();
        while self.report.completed < self.opts.collectors {
            // Nothing connected and nothing to connect through: no
            // event can ever arrive, so waiting would hang forever.
            // (Not a timeout — `completed < collectors` in the report
            // already tells the caller the target was unreachable.)
            if self.listeners.is_empty() && self.sessions.is_empty() {
                break;
            }
            let timeout_ms = match self.opts.accept_timeout {
                Some(t) => {
                    let deadline = last_activity + t;
                    let now = Instant::now();
                    if now >= deadline {
                        self.report.timed_out = true;
                        break;
                    }
                    // +1 so a sub-millisecond remainder still sleeps
                    // instead of spinning; clamped below i32::MAX so
                    // a ~25-day timeout can't overflow into poll(2)'s
                    // negative-means-infinite encoding.
                    (deadline - now).as_millis().min(i32::MAX as u128 - 1) as i32 + 1
                }
                None => -1,
            };
            let mut fds: Vec<sys::PollFd> = self
                .listeners
                .iter()
                .map(Listener::as_raw_fd)
                .chain(self.sessions.iter().map(|s| s.stream.as_raw_fd()))
                .map(|fd| sys::PollFd {
                    fd,
                    events: sys::POLLIN,
                    revents: 0,
                })
                .collect();
            if sys::poll_fds(&mut fds, timeout_ms)? == 0 {
                continue; // Timeout tick; the deadline check above decides.
            }
            let n_listeners = self.listeners.len();
            // How many sessions the poll set covered — accepts below
            // grow `self.sessions` past it, and those have no revents
            // until the next round.
            let n_polled = fds.len() - n_listeners;
            // Accepting alone is *not* activity: a periodic prober
            // (health check, port scan) must not defer the idle
            // deadline forever — only delivered bytes do, below.
            for (i, pfd) in fds[..n_listeners].iter().enumerate() {
                if pfd.revents != 0 {
                    while let Some(stream) = self.listeners[i].accept()? {
                        self.add_session(stream)?;
                    }
                }
            }
            // Walk polled sessions back to front so closing one by
            // swap-remove cannot skip or re-map a pending readiness
            // bit (the swapped-in tail element is always one this
            // round already handled or never polled).
            for si in (0..n_polled).rev() {
                let revents = fds[n_listeners + si].revents;
                if revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) == 0 {
                    continue;
                }
                let session = &mut self.sessions[si];
                let (end, bytes_read) = Self::pump(session, &mut self.agg, &mut self.id_owners);
                if bytes_read > 0 {
                    last_activity = Instant::now();
                }
                match end {
                    SessionEnd::Open => {}
                    SessionEnd::Done => {
                        if session.driver.frames_delivered() > 0 {
                            self.report.completed += 1;
                            // Its ids are spoken for within this run:
                            // a later claimant would be a spoof.
                            for id in session.driver.fed_ids() {
                                self.id_owners.insert(id, IdOwner::Completed);
                            }
                        } else {
                            self.report.probes += 1;
                        }
                        self.sessions.swap_remove(si);
                    }
                    SessionEnd::Failed(error) => {
                        session.driver.abort(&mut self.agg);
                        // Free its ids so the collector can reconnect
                        // and resend cumulative state.
                        let token = session.token;
                        self.id_owners
                            .retain(|_, o| !matches!(o, IdOwner::Open(t) if *t == token));
                        self.report.failures.push(SessionFailure {
                            peer: session.peer.clone(),
                            session: session.driver.session_id(),
                            error,
                        });
                        self.sessions.swap_remove(si);
                    }
                }
            }
        }
        // Shutdown: roll back sessions still mid-stream so the snapshot
        // is exactly the completed sessions (probes have nothing fed).
        for session in self.sessions.drain(..) {
            if session.driver.frames_delivered() > 0 {
                session.driver.abort(&mut self.agg);
                self.report.aborted += 1;
            }
        }
        Ok((self.agg, self.report))
    }

    /// Per-session byte budget for one poll round. A firehose peer
    /// whose data arrives faster than we drain it would otherwise keep
    /// `read` returning data forever and monopolize the single thread;
    /// capping the round re-arms level-triggered poll (the fd stays
    /// readable) and lets every other session make progress in
    /// between.
    const MAX_ROUND_BYTES: usize = 4 << 20;

    /// Drains one readable session's socket buffer into its driver —
    /// up to [`Self::MAX_ROUND_BYTES`] per round — returning how it
    /// ended plus the bytes read (the caller's idle-deadline currency
    /// — EOF-only rounds deliver nothing). Frames pass the
    /// id-admission registry before they apply, so a session claiming
    /// an id another session owns fails *before* it can touch that
    /// collector's state.
    fn pump(
        session: &mut Session,
        agg: &mut Aggregator,
        owners: &mut BTreeMap<u64, IdOwner>,
    ) -> (SessionEnd, usize) {
        let token = session.token;
        let mut admit = |id: u64| match owners.get(&id) {
            None => {
                owners.insert(id, IdOwner::Open(token));
                true
            }
            Some(IdOwner::Open(t)) => *t == token,
            Some(IdOwner::Completed) => false,
        };
        let mut buf = [0u8; 64 * 1024];
        let mut total = 0usize;
        loop {
            match session.stream.read(&mut buf) {
                Ok(0) => {
                    let end = match session.driver.finish_admitted(agg, &mut admit) {
                        Ok(()) => SessionEnd::Done,
                        Err(e) => SessionEnd::Failed(e.to_string()),
                    };
                    return (end, total);
                }
                Ok(n) => {
                    total += n;
                    if let Err(e) = session.driver.push_admitted(&buf[..n], agg, &mut admit) {
                        return (SessionEnd::Failed(e.to_string()), total);
                    }
                    if total >= Self::MAX_ROUND_BYTES {
                        return (SessionEnd::Open, total);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return (SessionEnd::Open, total)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return (SessionEnd::Failed(format!("read: {e}")), total),
            }
        }
    }
}

/// The blocking per-connection pump the **threaded** transport uses:
/// reads `stream` to EOF, feeding each chunk to a [`SessionDriver`]
/// under a short-lived aggregator lock (held per chunk, so concurrent
/// sessions interleave freely).
///
/// A poisoned mutex — some *other* session thread panicked mid-feed —
/// is recovered via [`PoisonError::into_inner`]: the aggregator's
/// per-collector state is keyed by session, so the panicking session's
/// damage cannot extend past its own id, and losing every completed
/// session to a poison flag would be strictly worse.
///
/// A failed blocking pump: the I/O-level cause plus the collector id
/// the session had established before dying — the triage handle an
/// operator needs to tell *which* of N collectors is flapping (the
/// event loop reports the same through [`SessionFailure::session`]).
#[derive(Debug)]
pub struct PumpError {
    /// The session's established id, if it got that far.
    pub session: Option<u64>,
    /// What killed it ([`SessionError`] wrapped as `InvalidData`, or
    /// the stream's read error).
    pub error: io::Error,
}

impl std::fmt::Display for PumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.session {
            Some(id) => write!(f, "session {id}: {}", self.error),
            None => self.error.fmt(f),
        }
    }
}

impl std::error::Error for PumpError {}

/// Returns the number of frames delivered (`0` ⇒ the connection was a
/// probe and must not consume a collector slot).
///
/// # Errors
///
/// [`PumpError`] carrying the established session id (if any) and the
/// cause. On failure the session's partial contribution has already
/// been rolled back ([`SessionDriver::abort`]).
pub fn pump_blocking(
    stream: &mut impl Read,
    agg: &Mutex<Aggregator>,
    fallback_id: u64,
) -> Result<usize, PumpError> {
    fn lock(agg: &Mutex<Aggregator>) -> std::sync::MutexGuard<'_, Aggregator> {
        agg.lock().unwrap_or_else(PoisonError::into_inner)
    }
    let mut driver = SessionDriver::new(fallback_id);
    let mut buf = [0u8; 64 * 1024];
    let fail = |driver: &SessionDriver, error: io::Error| {
        driver.abort(&mut lock(agg));
        PumpError {
            session: driver.session_id(),
            error,
        }
    };
    loop {
        let n = match stream.read(&mut buf) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(fail(&driver, e)),
        };
        // Bind each step's result before inspecting it: the guard
        // temporary in `lock(agg)` lives to the end of its statement,
        // and `fail` needs the lock again.
        if n == 0 {
            let res = driver.finish(&mut lock(agg));
            res.map_err(|e| fail(&driver, io::Error::new(io::ErrorKind::InvalidData, e)))?;
            return Ok(driver.frames_delivered());
        }
        let res = driver.push(&buf[..n], &mut lock(agg));
        res.map_err(|e| fail(&driver, io::Error::new(io::ErrorKind::InvalidData, e)))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MonitorConfig, MonitorEngine, SamplerSpec};
    use crate::topology::Collector;

    fn config() -> MonitorConfig {
        MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 3 })
            .seed(9)
    }

    fn keyed_points(n: usize, n_keys: u64) -> Vec<(u64, f64)> {
        (0..n)
            .map(|i| {
                let key = (i as u64).wrapping_mul(0x9E37_79B9) % n_keys;
                (key, 1.0 + (i % 53) as f64)
            })
            .collect()
    }

    /// Encodes one collector session (Hello … Bye) as wire bytes.
    fn session_bytes(id: u64, points: &[(u64, f64)]) -> Vec<u8> {
        let mut c = Collector::new(id, config());
        let mut pipe = Vec::new();
        for chunk in points.chunks(1500) {
            c.offer_batch(chunk);
            c.flush(&mut pipe).unwrap();
        }
        c.finish(&mut pipe).unwrap();
        pipe
    }

    /// Writes `bytes` into a socketpair and hands the read end to the
    /// server (payloads stay far below the kernel buffer, so the
    /// blocking write cannot deadlock the single thread).
    fn inject(server: &mut EventLoopServer, bytes: &[u8]) {
        use std::io::Write;
        let (mut tx, rx) = UnixStream::pair().expect("socketpair");
        tx.write_all(bytes).expect("buffered write");
        drop(tx); // EOF for the server side.
        server.add_session(rx).expect("add_session");
    }

    #[test]
    fn event_loop_assembles_injected_sessions_to_the_reference_bits() {
        let points = keyed_points(12_000, 24);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: 3,
                accept_timeout: None,
            },
        );
        for part in 0..3u64 {
            let mine: Vec<_> = points
                .iter()
                .filter(|&&(k, _)| k % 3 == part)
                .copied()
                .collect();
            inject(&mut server, &session_bytes(part, &mine));
        }
        let (agg, report) = server.run().expect("serve");
        assert_eq!(report.completed, 3);
        assert!(report.failures.is_empty());
        assert_eq!(agg.snapshot(), reference.snapshot());
    }

    #[test]
    fn hostile_sessions_are_isolated_and_rolled_back() {
        let points = keyed_points(9000, 16);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: 2,
                accept_timeout: None,
            },
        );
        // Two healthy halves…
        for part in 0..2u64 {
            let mine: Vec<_> = points
                .iter()
                .filter(|&&(k, _)| k % 2 == part)
                .copied()
                .collect();
            inject(&mut server, &session_bytes(part, &mine));
        }
        // …plus a garbage client, a mid-frame disconnect (valid prefix,
        // torn tail), and two connect-and-close probes.
        inject(&mut server, b"SSWF this was never a frame");
        let torn = session_bytes(700, &keyed_points(4000, 7));
        inject(&mut server, &torn[..torn.len() - 5]);
        inject(&mut server, b"");
        inject(&mut server, b"");
        let (agg, report) = server.run().expect("serve survives hostility");
        assert_eq!(report.completed, 2);
        assert_eq!(report.probes, 2);
        assert_eq!(report.failures.len(), 2);
        assert_eq!(
            agg.snapshot(),
            reference.snapshot(),
            "hostile sessions must leave no trace in the snapshot"
        );
    }

    #[test]
    fn spoofed_collector_id_is_rejected_without_touching_state() {
        // A healthy session completes as id 4; a second session then
        // claiming id 4 with a valid Hello must be refused before its
        // Hello can reset (or its frames replace) the real state.
        // Sessions are swept newest-injected-first, so inject the
        // spoofer *first* to have it processed after the healthy one.
        let points = keyed_points(8000, 16);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: 1,
                accept_timeout: None,
            },
        );
        let healthy = session_bytes(4, &points);
        let mut spoof = Vec::new();
        let mut c = Collector::new(4, config());
        c.offer_batch(&keyed_points(2000, 4)); // Different data, same id.
        c.finish(&mut spoof).unwrap();
        inject(&mut server, &spoof);
        inject(&mut server, &healthy);
        let (agg, report) = server.run().expect("serve");
        assert_eq!(report.completed, 1);
        assert_eq!(report.failures.len(), 1);
        assert!(
            report.failures[0].error.contains("already owned"),
            "got: {}",
            report.failures[0].error
        );
        assert_eq!(
            agg.snapshot(),
            reference.snapshot(),
            "the spoofer must leave no trace"
        );
    }

    #[test]
    fn a_failed_session_frees_its_id_for_reconnect() {
        // A collector that dies mid-frame and reconnects under the
        // same id must be admitted again (its failed contribution was
        // rolled back, the resent cumulative state replaces nothing).
        let points = keyed_points(8000, 16);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        let full = session_bytes(3, &points);
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: 1,
                accept_timeout: None,
            },
        );
        // Reconnect injected first => processed second (after the torn
        // session failed and freed the id).
        inject(&mut server, &full);
        inject(&mut server, &full[..full.len() - 5]);
        let (agg, report) = server.run().expect("serve");
        assert_eq!(report.completed, 1);
        assert_eq!(report.failures.len(), 1, "the torn session failed");
        assert_eq!(agg.snapshot(), reference.snapshot());
    }

    #[test]
    fn accept_timeout_unblocks_a_short_handed_serve() {
        // A live listener nobody else connects to: without the idle
        // deadline the loop would wait forever for collectors 2–5.
        let dir = std::env::temp_dir().join(format!("sst_evl_timeout_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("socket dir");
        let path = dir.join("idle.sock");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).expect("bind");
        let points = keyed_points(5000, 8);
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: 5, // Only one will ever arrive.
                accept_timeout: Some(Duration::from_millis(50)),
            },
        );
        server.add_unix_listener(listener).expect("register");
        inject(&mut server, &session_bytes(0, &points));
        let start = Instant::now();
        let (agg, report) = server.run().expect("serve");
        let _ = std::fs::remove_file(&path);
        assert!(report.timed_out);
        assert_eq!(report.completed, 1);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "must not block forever"
        );
        assert_eq!(agg.collector_count(), 1, "the delivered session stays");
    }

    #[test]
    fn exhausted_sessions_without_listeners_end_without_a_timeout_flag() {
        // No listeners and no open sessions left: nothing can ever
        // arrive, so run() returns immediately — and that is a target
        // shortfall (completed < collectors), not a timeout.
        let points = keyed_points(5000, 8);
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: 5,
                accept_timeout: None,
            },
        );
        inject(&mut server, &session_bytes(0, &points));
        let (agg, report) = server.run().expect("serve");
        assert!(!report.timed_out, "no accept_timeout was configured");
        assert_eq!(report.completed, 1);
        assert_eq!(agg.collector_count(), 1);
    }

    #[test]
    fn pump_blocking_recovers_a_poisoned_aggregator() {
        let points = keyed_points(6000, 8);
        let agg = Mutex::new(Aggregator::new());
        // Poison the mutex the way a panicking session thread would.
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = agg.lock().unwrap();
                panic!("session thread dies while holding the lock");
            })
            .join()
        });
        assert!(agg.lock().is_err(), "mutex must actually be poisoned");
        let bytes = session_bytes(4, &points);
        let frames =
            pump_blocking(&mut bytes.as_slice(), &agg, FALLBACK_ID_BASE).expect("recovered");
        assert!(frames > 0);
        let guard = agg.lock().unwrap_or_else(PoisonError::into_inner);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        assert_eq!(guard.snapshot(), reference.snapshot());
    }

    #[test]
    fn pump_blocking_rolls_back_failed_sessions() {
        let agg = Mutex::new(Aggregator::new());
        let bytes = session_bytes(6, &keyed_points(4000, 8));
        let err = pump_blocking(&mut &bytes[..bytes.len() - 4], &agg, FALLBACK_ID_BASE)
            .expect_err("mid-frame EOF must fail");
        assert_eq!(err.error.kind(), io::ErrorKind::InvalidData);
        assert_eq!(err.session, Some(6), "failure names the collector");
        assert_eq!(agg.lock().unwrap().collector_count(), 0);
    }
}
