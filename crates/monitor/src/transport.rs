//! Socket transport for the collector topology: event-loop serving of
//! many collector sessions at once — over a pluggable readiness
//! [`Backend`] (`poll(2)` or `epoll(7)`), on one loop or one loop per
//! core — plus the blocking per-connection pump the threaded transport
//! shares.
//!
//! ## Why an event loop
//!
//! The original `monitor_tool serve` burned one blocking OS thread per
//! collector connection. Sampled-NetFlow-style deployments put
//! *hundreds* of exporters behind one aggregation point; at that fan-in
//! the thread-per-connection model costs a stack and a scheduler slot
//! per mostly-idle socket, and a mutex around the aggregator besides.
//! The frame protocol is already incremental ([`FrameDecoder`] is
//! push-based) and the per-session logic is a pure state machine
//! ([`SessionDriver`]), so only the socket layer had to change:
//!
//! * every listener and connection is non-blocking,
//! * one readiness call multiplexes all of them (level-triggered — a
//!   partially-drained buffer simply reports readable again),
//! * readable bytes feed each session's [`SessionDriver`], which feeds
//!   the [`Aggregator`] **directly** — no mutex, no threads,
//! * both Unix-domain and TCP listeners can serve concurrently, and
//!   pre-accepted streams can be injected for tests and benches.
//!
//! Because the aggregator keys state per session and is
//! interleaving-independent, the event loop's snapshot is
//! **byte-identical** to the threaded transport's (and to a single
//! unsharded engine over the same points) — pinned by
//! `tests/transport_live.rs`.
//!
//! ## Readiness backends
//!
//! The loop drives a [`Backend`] — register/deregister fds under a
//! token, wait for readiness. Two implementations ship:
//!
//! * [`BackendKind::Poll`] — `poll(2)` over one *persistent* pollfd
//!   set (re-marshalled only when the session set changes, not every
//!   wakeup). Portable, O(sessions) per wakeup in the kernel.
//! * [`BackendKind::Epoll`] — `epoll(7)`, the Linux default: the
//!   interest set lives in the kernel, so steady state is O(ready)
//!   per wakeup regardless of how many idle sessions are parked.
//!
//! Both are level-triggered, which the per-round read budget relies on
//! (a capped session's fd simply reports readable again next round).
//!
//! ## Multi-loop serving
//!
//! One event loop saturates one core. [`MultiLoopServer`] shards
//! sessions across `N` loops (one per core): a dispatcher thread owns
//! the listeners and hands accepted connections round-robin to `N`
//! worker loops over SPSC queues (an in-band wake pipe makes a blocked
//! worker notice the handoff). Each worker owns a **private**
//! [`Aggregator`] its sessions feed lock-free; the only cross-loop
//! state is the [`AdmissionRegistry`] — consulted once per session id,
//! not per frame — so a spoofed collector id is rejected no matter
//! which loop its victim landed on. Per-loop aggregators are merged at
//! snapshot time ([`AggregatorSet`]), and the canonical merge makes
//! the assembled snapshot independent of dispatcher placement.
//!
//! ## Failure isolation
//!
//! One bad session must never kill the aggregator. A session that sends
//! garbage, violates the protocol, or disconnects mid-frame is rolled
//! back ([`SessionDriver::abort`]) and recorded in the
//! [`ServeReport`]; everything already assembled keeps serving. A
//! connect-then-close probe (zero frames delivered) does not consume a
//! collector slot. The assembled snapshot is exactly the union of
//! *completed* sessions: ≥ 1 frame delivered, clean EOF.
//!
//! ## Shutdown
//!
//! [`EventLoopServer::run`] returns when `collectors` sessions have
//! completed, or — with [`ServeOptions::accept_timeout`] — when no
//! session delivered bytes for that long (so a serve waiting on clients
//! that never come, or that stall, terminates instead of blocking
//! forever). Under [`MultiLoopServer`] both conditions are global:
//! completions count across loops, and activity on any loop defers the
//! idle deadline for all. Sessions still in flight at shutdown are
//! aborted and counted in [`ServeReport::aborted`].
//!
//! `io_uring` (batched submission, zero-syscall steady state) is the
//! natural next step past `epoll(7)` and is tracked in the ROADMAP.
//!
//! [`FrameDecoder`]: crate::wire::FrameDecoder

use crate::topology::{AdmissionRegistry, Aggregator, AggregatorSet, Claim, SessionDriver};
use crate::wire::{encode_frame, Frame};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Minimal FFI bindings for `poll(2)` and `epoll(7)` — the one hole in
/// the crate's no-unsafe rule, confined to this module and wrapped by
/// the safe [`sys::poll_fds`] / [`sys::Epoll`]. (No `libc` dependency:
/// the container's workspace is offline, and a handful of `#[repr(C)]`
/// lines beat a vendored crate.)
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_ulong};

    /// `struct pollfd` from `<poll.h>` (identical layout on every
    /// Linux ABI this workspace targets).
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    /// There is input to read.
    pub const POLLIN: i16 = 0x001;
    /// Writing is possible without blocking.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (revents only).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (revents only).
    pub const POLLHUP: i16 = 0x010;

    /// `struct epoll_event` from `<sys/epoll.h>`. On x86-64 the kernel
    /// ABI packs it (no padding between the `u32` and the `u64`);
    /// elsewhere it is naturally aligned.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Ready-event bitmask (`EPOLLIN` | …).
        pub events: u32,
        /// The caller's token, returned verbatim with each event.
        pub data: u64,
    }

    /// There is input to read (interest and ready mask).
    pub const EPOLLIN: u32 = 0x001;
    /// Writing is possible without blocking (interest and ready mask).
    pub const EPOLLOUT: u32 = 0x004;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Blocks until an fd in `fds` is ready or `timeout_ms` elapses
    /// (`-1` = forever), retrying on `EINTR`. Returns the ready count
    /// (`0` on timeout); `revents` is filled in place.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid, exclusively-borrowed slice of
            // `#[repr(C)]` pollfd-layout structs; the kernel writes
            // only `revents` within it.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms as c_int) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// An owned epoll instance; the fd is closed on drop.
    pub struct Epoll {
        epfd: RawFd,
    }

    impl Epoll {
        /// `epoll_create1(EPOLL_CLOEXEC)`.
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: no pointers involved; a plain fd-returning call.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `ev` is a valid, live `#[repr(C)]` epoll_event;
            // the kernel only reads it (and ignores it for DEL).
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Adds `fd` to the interest set, level-triggered, tagged with
        /// `token`, watching for the given event mask.
        pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, events)
        }

        /// Re-tags and/or re-masks an fd already in the interest set.
        pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, events)
        }

        /// Removes `fd` from the interest set.
        pub fn del(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks until ≥ 1 event or `timeout_ms` (`-1` = forever),
        /// retrying on `EINTR`. Returns how many entries of `events`
        /// were filled (`0` on timeout).
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                // SAFETY: `events` is a valid, exclusively-borrowed
                // slice of `#[repr(C)]` epoll_event structs; the
                // kernel writes at most `events.len()` entries.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        events.as_mut_ptr(),
                        events.len() as c_int,
                        timeout_ms as c_int,
                    )
                };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `epfd` is an fd this struct exclusively owns.
            unsafe { close(self.epfd) };
        }
    }
}

/// A readiness multiplexer the serve loop drives: fds are watched for
/// readability under a caller-chosen `u64` token, and [`Backend::wait`]
/// reports the tokens of ready fds. Both implementations are
/// level-triggered — an fd with unread data keeps reporting ready —
/// which the per-round read budget relies on.
pub trait Backend: Send {
    /// Human-readable backend name (`"poll"` / `"epoll"`).
    fn name(&self) -> &'static str;

    /// Starts watching `fd` for readability, tagged `token`.
    ///
    /// # Errors
    ///
    /// The underlying registration syscall's error, if any.
    fn register(&mut self, fd: RawFd, token: u64) -> io::Result<()>;

    /// Re-tags an already-watched `fd` with a new `token`.
    ///
    /// # Errors
    ///
    /// The underlying syscall's error; `NotFound` when `fd` was never
    /// registered.
    fn modify(&mut self, fd: RawFd, token: u64) -> io::Result<()>;

    /// Adds or removes write interest on an already-watched `fd`
    /// (read interest stays armed either way). The serve loop arms
    /// this only while a session has undelivered outbound bytes —
    /// level-triggered write readiness on an idle healthy socket would
    /// otherwise busy-spin the loop.
    ///
    /// # Errors
    ///
    /// The underlying syscall's error; `NotFound` when `fd` was never
    /// registered.
    fn set_writable(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()>;

    /// Stops watching `fd`. Must be called *before* the fd is closed
    /// (the poll backend keeps a private fd table).
    ///
    /// # Errors
    ///
    /// The underlying syscall's error; `NotFound` when `fd` was never
    /// registered.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks until ≥ 1 watched fd is readable / hung up / errored, or
    /// `timeout_ms` elapses (`-1` = forever). Appends the tokens of
    /// ready fds to `ready` (which the caller clears) and returns the
    /// count — `0` means timeout.
    ///
    /// # Errors
    ///
    /// Only loop-fatal errors from the wait syscall itself.
    fn wait(&mut self, timeout_ms: i32, ready: &mut Vec<u64>) -> io::Result<usize>;
}

/// `poll(2)` over one **persistent** pollfd set.
///
/// The fd table and its parallel token list live across rounds and
/// mutate only on register/deregister — the old per-wakeup
/// rebuild-the-whole-`Vec` marshalling is gone. The kernel still scans
/// all entries per wakeup (inherent to `poll`), which is what
/// [`EpollBackend`] improves on.
struct PollBackend {
    fds: Vec<sys::PollFd>,
    tokens: Vec<u64>,
}

impl PollBackend {
    fn new() -> PollBackend {
        PollBackend {
            fds: Vec::new(),
            tokens: Vec::new(),
        }
    }

    fn position(&self, fd: RawFd) -> io::Result<usize> {
        self.fds
            .iter()
            .position(|p| p.fd == fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }
}

impl Backend for PollBackend {
    fn name(&self) -> &'static str {
        "poll"
    }

    fn register(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        self.fds.push(sys::PollFd {
            fd,
            events: sys::POLLIN,
            revents: 0,
        });
        self.tokens.push(token);
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        let i = self.position(fd)?;
        self.tokens[i] = token;
        Ok(())
    }

    fn set_writable(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        let i = self.position(fd)?;
        self.tokens[i] = token;
        self.fds[i].events = if writable {
            sys::POLLIN | sys::POLLOUT
        } else {
            sys::POLLIN
        };
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self.position(fd)?;
        self.fds.swap_remove(i);
        self.tokens.swap_remove(i);
        Ok(())
    }

    fn wait(&mut self, timeout_ms: i32, ready: &mut Vec<u64>) -> io::Result<usize> {
        let n = sys::poll_fds(&mut self.fds, timeout_ms)?;
        if n > 0 {
            for (pfd, &token) in self.fds.iter().zip(&self.tokens) {
                let mask = sys::POLLIN | sys::POLLOUT | sys::POLLERR | sys::POLLHUP;
                if pfd.revents & mask != 0 {
                    ready.push(token);
                }
            }
        }
        Ok(ready.len())
    }
}

/// `epoll(7)`: the interest set lives in the kernel, so a wakeup costs
/// O(ready), not O(watched) — the difference between draining 64 hot
/// sessions and re-scanning 10 000 idle ones to find them.
struct EpollBackend {
    ep: sys::Epoll,
    /// Reused event buffer; 256 ready fds per wakeup is far past the
    /// serve loop's per-round appetite.
    events: Vec<sys::EpollEvent>,
}

impl EpollBackend {
    fn new() -> io::Result<EpollBackend> {
        Ok(EpollBackend {
            ep: sys::Epoll::new()?,
            events: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
        })
    }
}

impl Backend for EpollBackend {
    fn name(&self) -> &'static str {
        "epoll"
    }

    fn register(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ep.add(fd, token, sys::EPOLLIN)
    }

    fn modify(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ep.modify(fd, token, sys::EPOLLIN)
    }

    fn set_writable(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        let events = if writable {
            sys::EPOLLIN | sys::EPOLLOUT
        } else {
            sys::EPOLLIN
        };
        self.ep.modify(fd, token, events)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.ep.del(fd)
    }

    fn wait(&mut self, timeout_ms: i32, ready: &mut Vec<u64>) -> io::Result<usize> {
        let n = self.ep.wait(&mut self.events, timeout_ms)?;
        for ev in &self.events[..n] {
            // Copy out first: the struct is packed on x86-64, so a
            // direct field borrow would be misaligned.
            let ev = *ev;
            ready.push(ev.data);
        }
        Ok(n)
    }
}

/// Which readiness backend a serve loop uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// `poll(2)` with a persistent pollfd set — portable baseline.
    Poll,
    /// `epoll(7)` — O(ready) wakeups; the Linux default.
    Epoll,
}

impl Default for BackendKind {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            BackendKind::Epoll
        } else {
            BackendKind::Poll
        }
    }
}

impl BackendKind {
    /// The name [`Backend::name`] will report.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Poll => "poll",
            BackendKind::Epoll => "epoll",
        }
    }

    /// Instantiates the backend.
    fn create(self) -> io::Result<Box<dyn Backend>> {
        match self {
            BackendKind::Poll => Ok(Box::new(PollBackend::new())),
            BackendKind::Epoll => Ok(Box::new(EpollBackend::new()?)),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poll" => Ok(BackendKind::Poll),
            "epoll" => Ok(BackendKind::Epoll),
            other => Err(format!("unknown backend '{other}' (poll|epoll)")),
        }
    }
}

/// A connected collector stream over either supported transport.
pub enum SessionStream {
    /// A Unix-domain connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl SessionStream {
    /// Switches the socket between blocking and non-blocking mode.
    ///
    /// # Errors
    ///
    /// The underlying `fcntl`'s error.
    pub fn set_nonblocking(&self, v: bool) -> io::Result<()> {
        match self {
            SessionStream::Unix(s) => s.set_nonblocking(v),
            SessionStream::Tcp(s) => s.set_nonblocking(v),
        }
    }

    /// Sets the blocking-read timeout (`None` blocks indefinitely) —
    /// how a retrying forwarder bounds its wait for acks.
    ///
    /// # Errors
    ///
    /// The underlying `setsockopt`'s error.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            SessionStream::Unix(s) => s.set_read_timeout(t),
            SessionStream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    /// Clones the underlying socket handle (shared fd, independent
    /// cursor) — how the fault proxy splits a connection into its two
    /// shuttle directions.
    ///
    /// # Errors
    ///
    /// The underlying `dup`'s error.
    pub fn try_clone(&self) -> io::Result<SessionStream> {
        Ok(match self {
            SessionStream::Unix(s) => SessionStream::Unix(s.try_clone()?),
            SessionStream::Tcp(s) => SessionStream::Tcp(s.try_clone()?),
        })
    }

    /// Shuts down one or both halves of the connection.
    ///
    /// # Errors
    ///
    /// The underlying `shutdown`'s error.
    pub fn shutdown(&self, how: std::net::Shutdown) -> io::Result<()> {
        match self {
            SessionStream::Unix(s) => s.shutdown(how),
            SessionStream::Tcp(s) => s.shutdown(how),
        }
    }

    fn peer_label(&self) -> String {
        match self {
            SessionStream::Unix(_) => "uds".to_string(),
            SessionStream::Tcp(s) => s
                .peer_addr()
                .map(|a| format!("tcp {a}"))
                .unwrap_or_else(|_| "tcp".to_string()),
        }
    }
}

impl AsRawFd for SessionStream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            SessionStream::Unix(s) => s.as_raw_fd(),
            SessionStream::Tcp(s) => s.as_raw_fd(),
        }
    }
}

impl Read for SessionStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SessionStream::Unix(s) => s.read(buf),
            SessionStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for SessionStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SessionStream::Unix(s) => s.write(buf),
            SessionStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            SessionStream::Unix(s) => s.flush(),
            SessionStream::Tcp(s) => s.flush(),
        }
    }
}

impl From<UnixStream> for SessionStream {
    fn from(s: UnixStream) -> Self {
        SessionStream::Unix(s)
    }
}

impl From<TcpStream> for SessionStream {
    fn from(s: TcpStream) -> Self {
        SessionStream::Tcp(s)
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }

    /// Accepts one pending connection, `Ok(None)` when none is queued.
    fn accept(&self) -> io::Result<Option<SessionStream>> {
        let res = match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| SessionStream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| SessionStream::Tcp(s)),
        };
        match res {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            // Transient conditions (peer reset, fd exhaustion) must
            // not kill the loop: losing the whole assembled aggregator
            // over them would be the total-loss failure this transport
            // exists to prevent. Back off briefly — under EMFILE the
            // listener stays readable, so poll would otherwise spin
            // hot — and retry next round.
            Err(e) if accept_error_is_transient(&e) => {
                std::thread::sleep(std::time::Duration::from_millis(10));
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// `accept(2)` failures that indicate a transient per-connection or
/// resource condition rather than a broken listener: the peer reset
/// before we got to it (`ECONNABORTED`), or process/system fd
/// exhaustion (`EMFILE`/`ENFILE`). Callers should back off briefly and
/// keep serving — dying would discard every completed session. Shared
/// by the event loop and the threaded accept loop so the two
/// transports classify identically.
pub fn accept_error_is_transient(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::ConnectionAborted
        // EMFILE = 24, ENFILE = 23 on every Linux ABI this targets.
        || matches!(e.raw_os_error(), Some(23) | Some(24))
}

/// How [`EventLoopServer::run`] decides it is done.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Stop once this many sessions completed (≥ 1 frame delivered,
    /// clean EOF). Probes and failed sessions do not count. Under
    /// [`MultiLoopServer`] the count is global across loops.
    pub collectors: usize,
    /// Stop when no session delivered bytes for this long — the guard
    /// against clients that never connect (or stall forever). `None`
    /// waits indefinitely. Under [`MultiLoopServer`] activity on any
    /// loop defers the deadline for all.
    pub accept_timeout: Option<Duration>,
}

/// One failed session, as recorded in the [`ServeReport`].
#[derive(Clone, Debug)]
pub struct SessionFailure {
    /// Transport-level peer label (`"uds"` / `"tcp <addr>"`).
    pub peer: String,
    /// The session id it had established, if any.
    pub session: Option<u64>,
    /// Human-readable failure cause.
    pub error: String,
}

/// Per-completed-session delivery counters — the observability that
/// makes multi-loop load balance inspectable (`serve
/// --report-sessions` prints one line per entry).
#[derive(Clone, Debug)]
pub struct SessionStats {
    /// Transport-level peer label (`"uds"` / `"tcp <addr>"`).
    pub peer: String,
    /// The collector id the session established, if any.
    pub session: Option<u64>,
    /// Wire bytes the session delivered.
    pub bytes: u64,
    /// Frames the session delivered.
    pub frames: usize,
    /// Wire bytes delivered in differential (`DeltaDiff`) frames.
    pub diff_bytes: u64,
    /// Wire bytes delivered in cumulative data frames (`Delta`,
    /// `FullSnapshot`, `Evicted`).
    pub full_bytes: u64,
    /// `Resync` requests the serve side issued to this session.
    pub resyncs: u64,
    /// Which serve loop pumped it (always `0` single-loop).
    pub worker: usize,
}

/// What a serve run saw: the observability half of failure isolation.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Sessions that delivered ≥ 1 frame and closed cleanly — the ones
    /// whose state the assembled snapshot holds.
    pub completed: usize,
    /// Connect-then-close probes (clean EOF, zero frames): logged,
    /// never counted against `collectors`.
    pub probes: usize,
    /// Sessions that failed (garbage, protocol violation, mid-frame
    /// disconnect, read error); each was rolled back out of the
    /// aggregator.
    pub failures: Vec<SessionFailure>,
    /// Sessions still mid-stream at shutdown, rolled back likewise.
    pub aborted: usize,
    /// `true` when the run ended on `accept_timeout` instead of
    /// reaching the collector target.
    pub timed_out: bool,
    /// Per-session delivery counters for every completed session
    /// (multi-loop: sorted by collector id, then worker).
    pub sessions: Vec<SessionStats>,
}

impl ServeReport {
    /// Folds another loop's report into this one (counters sum,
    /// failure and session lists concatenate).
    fn absorb(&mut self, other: ServeReport) {
        self.completed += other.completed;
        self.probes += other.probes;
        self.failures.extend(other.failures);
        self.aborted += other.aborted;
        self.timed_out |= other.timed_out;
        self.sessions.extend(other.sessions);
    }
}

struct Session {
    stream: SessionStream,
    driver: SessionDriver,
    peer: String,
    /// Unique per accepted connection — the ownership token in the
    /// collector-id registry (the fallback id doubles as it).
    token: u64,
    /// Wire bytes delivered so far (reported in [`SessionStats`]).
    bytes: u64,
    /// Outbound bytes (acks/resyncs to a sequenced collector) not yet
    /// accepted by the socket — the partial-write carry-over buffer.
    out: Vec<u8>,
    /// Whether write interest is currently armed with the backend.
    /// Tracked so the interest set is only touched on transitions.
    write_armed: bool,
}

impl Session {
    /// Pushes as much of `self.out` as the socket will take right now.
    /// `Ok(true)` when the buffer drained fully, `Ok(false)` when bytes
    /// remain (socket buffer full — write interest should be armed).
    fn flush_outbound(&mut self) -> io::Result<bool> {
        let mut written = 0usize;
        while written < self.out.len() {
            match self.stream.write(&self.out[written..]) {
                Ok(0) => {
                    self.out.drain(..written);
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer closed mid-ack",
                    ));
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.out.drain(..written);
                    return Err(e);
                }
            }
        }
        self.out.drain(..written);
        Ok(self.out.is_empty())
    }
}

/// How one readable session left the round.
enum SessionEnd {
    /// Still open; its socket buffer is drained for now.
    Open,
    /// Clean EOF.
    Done,
    /// Dead: protocol or I/O failure.
    Failed(String),
}

/// Cross-loop coordination for one multi-loop serve run: the global
/// completion count, the stop/timeout flags, the shared idle clock,
/// and one wake pipe per worker so a loop blocked in its backend can
/// be nudged (for a handed-off session or a stop).
struct ServeShared {
    start: Instant,
    completed: AtomicUsize,
    stop: AtomicBool,
    timed_out: AtomicBool,
    /// Milliseconds after `start` of the latest byte delivery, on any
    /// loop. (Accepting alone is *not* activity — see the dispatcher.)
    last_activity_ms: AtomicU64,
    /// Write ends of each worker's wake pipe, by worker index.
    wakers: Mutex<Vec<UnixStream>>,
    /// Workers whose `run()` returned (so the dispatcher does not wait
    /// for handoffs nobody will take).
    exited: AtomicUsize,
}

impl ServeShared {
    fn new() -> ServeShared {
        ServeShared {
            start: Instant::now(),
            completed: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            last_activity_ms: AtomicU64::new(0),
            wakers: Mutex::new(Vec::new()),
            exited: AtomicUsize::new(0),
        }
    }

    fn wakers(&self) -> std::sync::MutexGuard<'_, Vec<UnixStream>> {
        self.wakers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Nudges worker `i` out of its backend wait. A full pipe is fine
    /// — the worker is waking anyway.
    fn wake(&self, i: usize) {
        if let Some(w) = self.wakers().get_mut(i) {
            let _ = w.write(&[1]);
        }
    }

    fn wake_all(&self) {
        for w in self.wakers().iter_mut() {
            let _ = w.write(&[1]);
        }
    }

    /// Records one completed session; returns the new global count.
    fn record_completed(&self) -> usize {
        self.completed.fetch_add(1, Ordering::SeqCst) + 1
    }

    fn note_activity(&self) {
        self.last_activity_ms
            .store(self.start.elapsed().as_millis() as u64, Ordering::SeqCst);
    }

    /// How long since the last byte delivery on any loop.
    fn idle_for(&self) -> Duration {
        let last = Duration::from_millis(self.last_activity_ms.load(Ordering::SeqCst));
        self.start.elapsed().saturating_sub(last)
    }

    fn request_stop(&self, timed_out: bool) {
        if timed_out {
            self.timed_out.store(true, Ordering::SeqCst);
        }
        self.stop.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A worker loop's session intake: the dispatcher's SPSC handoff queue
/// plus the read end of the wake pipe that makes a blocked worker
/// notice a handoff (or a stop).
struct Intake {
    rx: mpsc::Receiver<SessionStream>,
    wake: UnixStream,
    /// `false` once the dispatcher dropped its sender — no further
    /// sessions can ever arrive. (The wake fd stays registered: stop
    /// broadcasts still travel through it.)
    open: bool,
}

/// Token space: listeners get `0..n` and sessions get unique ids from
/// [`FALLBACK_ID_BASE`] up, so one `u64` names either; the intake wake
/// pipe takes the top value.
const TOKEN_WAKE: u64 = u64::MAX;

/// Base of the fallback session-id range handed to legacy (Hello-less)
/// sessions — past `u32`, so it cannot collide with forwarders' small
/// collector ids.
pub const FALLBACK_ID_BASE: u64 = 1 << 32;

/// The single-threaded serve loop: non-blocking listeners,
/// per-connection [`SessionDriver`]s, one exclusively-owned
/// [`Aggregator`], a pluggable readiness [`Backend`] — see the module
/// docs for the design.
///
/// ```no_run
/// use sst_monitor::topology::Aggregator;
/// use sst_monitor::transport::{BackendKind, EventLoopServer, ServeOptions};
/// use std::os::unix::net::UnixListener;
///
/// let mut server = EventLoopServer::new(
///     Aggregator::new(),
///     ServeOptions { collectors: 64, accept_timeout: Some(std::time::Duration::from_secs(30)) },
/// )
/// .with_backend(BackendKind::Epoll);
/// server.add_unix_listener(UnixListener::bind("/tmp/agg.sock")?)?;
/// let (agg, report) = server.run()?;
/// assert_eq!(report.completed, 64);
/// let snapshot = agg.snapshot();
/// # std::io::Result::Ok(())
/// ```
pub struct EventLoopServer {
    listeners: Vec<Listener>,
    /// Keyed by session token — stable across removals, unlike the
    /// old `Vec` + swap-remove indexing.
    sessions: BTreeMap<u64, Session>,
    agg: Aggregator,
    opts: ServeOptions,
    report: ServeReport,
    backend_kind: BackendKind,
    /// Shared under [`MultiLoopServer`]; private otherwise. Either
    /// way, spoofed-id admission goes through it.
    admission: Arc<AdmissionRegistry>,
    /// Session-token allocator — shared across loops so tokens stay
    /// globally unique (they are the admission ownership handles).
    next_token: Arc<AtomicU64>,
    /// This loop's index, stamped into [`SessionStats::worker`].
    worker: usize,
    /// Multi-loop coordination; `None` when serving standalone.
    shared: Option<Arc<ServeShared>>,
    /// Dispatcher handoff queue; `None` when serving standalone.
    intake: Option<Intake>,
}

impl EventLoopServer {
    /// A standalone serve loop that will assemble into `agg`
    /// (pre-configure its compaction budget there) under the given
    /// stop conditions, on the platform-default backend.
    pub fn new(agg: Aggregator, opts: ServeOptions) -> Self {
        EventLoopServer {
            listeners: Vec::new(),
            sessions: BTreeMap::new(),
            agg,
            opts,
            report: ServeReport::default(),
            backend_kind: BackendKind::default(),
            admission: Arc::new(AdmissionRegistry::new()),
            next_token: Arc::new(AtomicU64::new(FALLBACK_ID_BASE)),
            worker: 0,
            shared: None,
            intake: None,
        }
    }

    /// Selects the readiness backend (default: epoll on Linux).
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend_kind = kind;
        self
    }

    /// A worker loop for [`MultiLoopServer`]: shared admission, shared
    /// token allocator, shared stop/idle state, dispatcher intake.
    #[allow(clippy::too_many_arguments)]
    fn for_worker(
        agg: Aggregator,
        opts: ServeOptions,
        backend_kind: BackendKind,
        admission: Arc<AdmissionRegistry>,
        next_token: Arc<AtomicU64>,
        worker: usize,
        shared: Arc<ServeShared>,
        intake: Intake,
    ) -> Self {
        EventLoopServer {
            listeners: Vec::new(),
            sessions: BTreeMap::new(),
            agg,
            opts,
            report: ServeReport::default(),
            backend_kind,
            admission,
            next_token,
            worker,
            shared: Some(shared),
            intake: Some(intake),
        }
    }

    /// Registers a Unix-domain listener (switched to non-blocking).
    ///
    /// # Errors
    ///
    /// The `set_nonblocking` I/O error.
    pub fn add_unix_listener(&mut self, l: UnixListener) -> io::Result<()> {
        l.set_nonblocking(true)?;
        self.listeners.push(Listener::Unix(l));
        Ok(())
    }

    /// Registers a TCP listener (switched to non-blocking).
    ///
    /// # Errors
    ///
    /// The `set_nonblocking` I/O error.
    pub fn add_tcp_listener(&mut self, l: TcpListener) -> io::Result<()> {
        l.set_nonblocking(true)?;
        self.listeners.push(Listener::Tcp(l));
        Ok(())
    }

    /// Registers an already-accepted connection (tests, benches, or a
    /// supervisor that does its own accepting).
    ///
    /// # Errors
    ///
    /// The `set_nonblocking` I/O error.
    pub fn add_session(&mut self, stream: impl Into<SessionStream>) -> io::Result<()> {
        self.install_session(stream.into())?;
        Ok(())
    }

    /// Makes `stream` a tracked session and returns its token (the
    /// caller registers the fd with the backend when one is live).
    fn install_session(&mut self, stream: SessionStream) -> io::Result<u64> {
        stream.set_nonblocking(true)?;
        // Globally unique even across loops, so it doubles as the
        // ownership token in the shared id registry.
        let token = self.next_token.fetch_add(1, Ordering::SeqCst);
        let driver = SessionDriver::new(token);
        let peer = stream.peer_label();
        self.sessions.insert(
            token,
            Session {
                stream,
                driver,
                peer,
                token,
                bytes: 0,
                out: Vec::new(),
                write_armed: false,
            },
        );
        Ok(token)
    }

    /// Whether any event can still arrive: a live listener, an open
    /// session, or a dispatcher that may still hand sessions over.
    fn can_make_progress(&self) -> bool {
        !self.listeners.is_empty()
            || !self.sessions.is_empty()
            || self.intake.as_ref().is_some_and(|i| i.open)
    }

    /// Runs the loop to completion and returns the assembled
    /// aggregator plus the session report.
    ///
    /// # Errors
    ///
    /// Only loop-fatal I/O errors: backend creation, the readiness
    /// syscall, or a listener accept failing. Per-session errors never
    /// surface here — they are isolated into [`ServeReport::failures`].
    pub fn run(mut self) -> io::Result<(Aggregator, ServeReport)> {
        let mut backend = self.backend_kind.create()?;
        for (i, l) in self.listeners.iter().enumerate() {
            backend.register(l.as_raw_fd(), i as u64)?;
        }
        for (&token, s) in &self.sessions {
            backend.register(s.stream.as_raw_fd(), token)?;
        }
        if let Some(intake) = &self.intake {
            backend.register(intake.wake.as_raw_fd(), TOKEN_WAKE)?;
        }
        let mut last_activity = Instant::now();
        let mut ready: Vec<u64> = Vec::new();
        loop {
            // Global stop (multi-loop): another loop reached the
            // target or the idle deadline.
            if self.shared.as_ref().is_some_and(|sh| sh.stopped()) {
                break;
            }
            let completed = match &self.shared {
                Some(sh) => sh.completed.load(Ordering::SeqCst),
                None => self.report.completed,
            };
            if completed >= self.opts.collectors {
                break;
            }
            // Nothing connected and nothing to connect through: no
            // event can ever arrive, so waiting would hang forever.
            // (Not a timeout — `completed < collectors` in the report
            // already tells the caller the target was unreachable.)
            if !self.can_make_progress() {
                break;
            }
            let timeout_ms = match self.opts.accept_timeout {
                Some(t) => {
                    let idle = match &self.shared {
                        Some(sh) => sh.idle_for(),
                        None => last_activity.elapsed(),
                    };
                    if idle >= t {
                        match &self.shared {
                            Some(sh) => sh.request_stop(true),
                            None => self.report.timed_out = true,
                        }
                        break;
                    }
                    // +1 so a sub-millisecond remainder still sleeps
                    // instead of spinning; clamped below i32::MAX so
                    // a ~25-day timeout can't overflow into the
                    // negative-means-infinite encoding.
                    (t - idle).as_millis().min(i32::MAX as u128 - 1) as i32 + 1
                }
                None => -1,
            };
            ready.clear();
            if backend.wait(timeout_ms, &mut ready)? == 0 {
                continue; // Timeout tick; the deadline check above decides.
            }
            // Ascending token order: listeners first, then sessions
            // oldest-accepted first, the wake pipe last — the same
            // deterministic sweep on both backends (epoll reports in
            // readiness order, which tests must not depend on).
            ready.sort_unstable();
            for &token in &ready {
                if token == TOKEN_WAKE {
                    self.drain_intake(backend.as_mut())?;
                } else if token < FALLBACK_ID_BASE {
                    // Accepting alone is *not* activity: a periodic
                    // prober (health check, port scan) must not defer
                    // the idle deadline forever — only delivered
                    // bytes do, below.
                    loop {
                        let accepted = self
                            .listeners
                            .get(token as usize)
                            .ok_or_else(|| io::Error::other("ready token out of listener range"))?
                            .accept()?;
                        let Some(stream) = accepted else {
                            break;
                        };
                        let fd = stream.as_raw_fd();
                        let t = self.install_session(stream)?;
                        backend.register(fd, t)?;
                    }
                } else {
                    self.pump_ready_session(token, backend.as_mut(), &mut last_activity)?;
                }
            }
        }
        // Shutdown: roll back sessions still mid-stream so the snapshot
        // is exactly the completed sessions (probes have nothing fed).
        // Sequenced peers get a best-effort Shutdown frame first — the
        // graceful-drain notice that tells a retrying forwarder to
        // reconnect (and resync) instead of waiting on acks that will
        // never come.
        for (_, mut session) in std::mem::take(&mut self.sessions) {
            if session.driver.is_sequenced() {
                let _ = session.stream.write(&encode_frame(&Frame::Shutdown));
            }
            if session.driver.frames_delivered() > 0 {
                session.driver.abort(&mut self.agg);
                self.report.aborted += 1;
            }
        }
        Ok((self.agg, self.report))
    }

    /// Handles a wake-pipe readiness: swallows the wake bytes and
    /// takes every handed-off session out of the intake queue.
    fn drain_intake(&mut self, backend: &mut dyn Backend) -> io::Result<()> {
        let Some(intake) = self.intake.as_mut() else {
            return Ok(());
        };
        let mut buf = [0u8; 64];
        loop {
            match intake.wake.read(&mut buf) {
                Ok(0) => {
                    // Every waker write end is gone (teardown): drop
                    // out of the interest set or a level-triggered
                    // backend would spin on the EOF.
                    backend.deregister(intake.wake.as_raw_fd())?;
                    intake.open = false;
                    break;
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        while let Some(intake) = self.intake.as_mut() {
            match intake.rx.try_recv() {
                Ok(stream) => {
                    let fd = stream.as_raw_fd();
                    let t = self.install_session(stream)?;
                    backend.register(fd, t)?;
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    // The dispatcher hung up: no more sessions, ever.
                    // The wake fd stays registered — stop broadcasts
                    // still arrive through it.
                    intake.open = false;
                    break;
                }
            }
        }
        Ok(())
    }

    /// Pumps one ready session and settles its fate: still open,
    /// completed (counted, its ids sealed), or failed (sequenced:
    /// parked for resumption; otherwise rolled back; either way its
    /// open ids are released and the failure recorded).
    fn pump_ready_session(
        &mut self,
        token: u64,
        backend: &mut dyn Backend,
        last_activity: &mut Instant,
    ) -> io::Result<()> {
        let Some(session) = self.sessions.get_mut(&token) else {
            return Ok(());
        };
        // Write half first: if this wakeup is a write-readiness for a
        // previously-full socket buffer, drain the carried-over acks
        // before reading more (the collector's in-flight window is
        // waiting on them).
        if !session.out.is_empty() {
            if let Err(e) = session.flush_outbound() {
                self.settle_failed(token, backend, format!("write: {e}"))?;
                return Ok(());
            }
        }
        let (end, bytes_read) = Self::pump(session, &mut self.agg, &self.admission);
        session.bytes += bytes_read as u64;
        if bytes_read > 0 {
            match &self.shared {
                Some(sh) => sh.note_activity(),
                None => *last_activity = Instant::now(),
            }
        }
        match end {
            SessionEnd::Open => {
                // Queue whatever the driver produced this round
                // (acks/resyncs), push what the socket will take now,
                // and arm/disarm write interest on transitions only.
                let fresh = session.driver.take_outbound();
                session.out.extend_from_slice(&fresh);
                if !session.out.is_empty() {
                    if let Err(e) = session.flush_outbound() {
                        self.settle_failed(token, backend, format!("write: {e}"))?;
                        return Ok(());
                    }
                }
                let want = !session.out.is_empty();
                if want != session.write_armed {
                    backend.set_writable(session.stream.as_raw_fd(), token, want)?;
                    session.write_armed = want;
                }
            }
            SessionEnd::Done => {
                let Some(session) = self.sessions.remove(&token) else {
                    // Already settled — a failure path raced this ready
                    // event; there is nothing left to tear down.
                    return Ok(());
                };
                backend.deregister(session.stream.as_raw_fd())?;
                if session.driver.frames_delivered() > 0 {
                    self.report.completed += 1;
                    // Its ids are spoken for within this run: a later
                    // claimant would be a spoof.
                    self.admission.complete(session.driver.fed_ids());
                    self.report.sessions.push(SessionStats {
                        peer: session.peer.clone(),
                        session: session.driver.session_id(),
                        bytes: session.bytes,
                        frames: session.driver.frames_delivered(),
                        diff_bytes: session.driver.diff_bytes(),
                        full_bytes: session.driver.full_bytes(),
                        resyncs: session.driver.resyncs(),
                        worker: self.worker,
                    });
                    if let Some(sh) = &self.shared {
                        if sh.record_completed() >= self.opts.collectors {
                            sh.request_stop(false);
                        }
                    }
                } else {
                    self.report.probes += 1;
                }
            }
            SessionEnd::Failed(error) => {
                self.settle_failed(token, backend, error)?;
            }
        }
        Ok(())
    }

    /// Settles a failed session. An unsequenced session is rolled back
    /// wholesale (the pre-seq/ack contract: its partial contribution
    /// must leave no trace). A sequenced session's per-collector state
    /// is instead *parked* in the shared admission registry — keyed by
    /// collector id, so the retrying forwarder can resume it from any
    /// loop — with its delivery watermark intact; replayed frames at
    /// or below the watermark will be skipped, which is what makes the
    /// retry idempotent rather than double-counted.
    fn settle_failed(
        &mut self,
        token: u64,
        backend: &mut dyn Backend,
        error: String,
    ) -> io::Result<()> {
        let Some(session) = self.sessions.remove(&token) else {
            // Already settled by an earlier error on the same tick.
            return Ok(());
        };
        backend.deregister(session.stream.as_raw_fd())?;
        if session.driver.is_sequenced() {
            for id in session.driver.fed_ids() {
                if let Some(parked) = self.agg.park_collector(id) {
                    self.admission.suspend(id, parked);
                }
            }
        } else {
            session.driver.abort(&mut self.agg);
        }
        // Free any ids still merely *open* under this session's token
        // (parked ids moved to Suspended above and are kept) so the
        // collector can reconnect and resend cumulative state.
        self.admission.release(session.token);
        self.report.failures.push(SessionFailure {
            peer: session.peer.clone(),
            session: session.driver.session_id(),
            error,
        });
        Ok(())
    }

    /// Per-session byte budget for one readiness round. A firehose
    /// peer whose data arrives faster than we drain it would otherwise
    /// keep `read` returning data forever and monopolize the loop;
    /// capping the round re-arms the level-triggered backend (the fd
    /// stays readable) and lets every other session make progress in
    /// between.
    const MAX_ROUND_BYTES: usize = 4 << 20;

    /// Drains one readable session's socket buffer into its driver —
    /// up to [`Self::MAX_ROUND_BYTES`] per round — returning how it
    /// ended plus the bytes read (the caller's idle-deadline currency
    /// — EOF-only rounds deliver nothing). Frames pass the
    /// id-admission registry before they apply, so a session claiming
    /// an id another session owns — even one on a different loop —
    /// fails *before* it can touch that collector's state.
    fn pump(
        session: &mut Session,
        agg: &mut Aggregator,
        admission: &AdmissionRegistry,
    ) -> (SessionEnd, usize) {
        let token = session.token;
        let mut admit = |id: u64, agg: &mut Aggregator| match admission.claim(id, token) {
            Claim::New => true,
            // A suspended collector parked by a failed sequenced
            // session (possibly on another loop): restore its state —
            // delivery watermark included — into *this* loop's
            // aggregator before the first frame applies.
            Claim::Resumed(parked) => {
                agg.restore_collector(id, *parked);
                true
            }
            Claim::Rejected => false,
        };
        let mut buf = [0u8; 64 * 1024];
        let mut total = 0usize;
        loop {
            match session.stream.read(&mut buf) {
                Ok(0) => {
                    let end = match session.driver.finish_admitted(agg, &mut admit) {
                        Ok(()) => SessionEnd::Done,
                        Err(e) => SessionEnd::Failed(e.to_string()),
                    };
                    return (end, total);
                }
                Ok(n) => {
                    total += n;
                    if let Err(e) = session.driver.push_admitted(&buf[..n], agg, &mut admit) {
                        return (SessionEnd::Failed(e.to_string()), total);
                    }
                    if total >= Self::MAX_ROUND_BYTES {
                        return (SessionEnd::Open, total);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return (SessionEnd::Open, total)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return (SessionEnd::Failed(format!("read: {e}")), total),
            }
        }
    }
}

/// One serve loop per core: a dispatcher thread accepts and hands
/// connections round-robin to `N` worker [`EventLoopServer`]s, each
/// owning a private [`Aggregator`]; the admission registry is the only
/// state shared while bytes flow, and the per-loop aggregators merge
/// at snapshot time ([`AggregatorSet`]) — see the module docs.
///
/// ```no_run
/// use sst_monitor::topology::Aggregator;
/// use sst_monitor::transport::{MultiLoopServer, ServeOptions};
/// use std::os::unix::net::UnixListener;
///
/// let mut server = MultiLoopServer::new(
///     (0..4).map(|_| Aggregator::new()).collect(),
///     ServeOptions { collectors: 64, accept_timeout: Some(std::time::Duration::from_secs(30)) },
/// );
/// server.add_unix_listener(UnixListener::bind("/tmp/agg.sock")?)?;
/// let (aggs, report) = server.run()?;
/// assert_eq!(report.completed, 64);
/// let snapshot = aggs.snapshot();
/// # std::io::Result::Ok(())
/// ```
pub struct MultiLoopServer {
    aggs: Vec<Aggregator>,
    opts: ServeOptions,
    backend_kind: BackendKind,
    listeners: Vec<Listener>,
    /// Pre-accepted sessions (tests, benches), dealt round-robin to
    /// the workers before the loops start.
    pre: Vec<SessionStream>,
}

impl MultiLoopServer {
    /// A multi-loop serve: one worker loop per aggregator in `aggs`
    /// (pre-configure compaction budgets there), platform-default
    /// backend.
    pub fn new(aggs: Vec<Aggregator>, opts: ServeOptions) -> Self {
        MultiLoopServer {
            aggs,
            opts,
            backend_kind: BackendKind::default(),
            listeners: Vec::new(),
            pre: Vec::new(),
        }
    }

    /// Selects the readiness backend for every loop (default: epoll
    /// on Linux).
    #[must_use]
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend_kind = kind;
        self
    }

    /// Registers a Unix-domain listener (switched to non-blocking);
    /// the dispatcher owns it.
    ///
    /// # Errors
    ///
    /// The `set_nonblocking` I/O error.
    pub fn add_unix_listener(&mut self, l: UnixListener) -> io::Result<()> {
        l.set_nonblocking(true)?;
        self.listeners.push(Listener::Unix(l));
        Ok(())
    }

    /// Registers a TCP listener (switched to non-blocking); the
    /// dispatcher owns it.
    ///
    /// # Errors
    ///
    /// The `set_nonblocking` I/O error.
    pub fn add_tcp_listener(&mut self, l: TcpListener) -> io::Result<()> {
        l.set_nonblocking(true)?;
        self.listeners.push(Listener::Tcp(l));
        Ok(())
    }

    /// Injects an already-accepted connection; it is assigned to a
    /// worker round-robin before the loops start.
    pub fn add_session(&mut self, stream: impl Into<SessionStream>) {
        self.pre.push(stream.into());
    }

    /// Runs dispatcher and workers to completion; returns the
    /// per-loop aggregators (merge with [`AggregatorSet::snapshot`])
    /// and the fused report.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when constructed with zero aggregators;
    /// otherwise only loop-fatal I/O errors (backend creation, the
    /// readiness syscall, listener accept), from whichever thread hit
    /// one first. Per-session errors are isolated into
    /// [`ServeReport::failures`].
    pub fn run(self) -> io::Result<(AggregatorSet, ServeReport)> {
        let MultiLoopServer {
            aggs,
            opts,
            backend_kind,
            listeners,
            pre,
        } = self;
        let n = aggs.len();
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "multi-loop serve needs at least one aggregator",
            ));
        }
        let shared = Arc::new(ServeShared::new());
        let admission = Arc::new(AdmissionRegistry::new());
        let next_token = Arc::new(AtomicU64::new(FALLBACK_ID_BASE));

        // The dispatcher's backend first, so a creation failure
        // surfaces before any thread spawns.
        let mut backend = backend_kind.create()?;
        for (i, l) in listeners.iter().enumerate() {
            backend.register(l.as_raw_fd(), i as u64)?;
        }

        let mut workers = Vec::with_capacity(n);
        let mut senders = Vec::with_capacity(n);
        for (i, agg) in aggs.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_tx.set_nonblocking(true)?;
            wake_rx.set_nonblocking(true)?;
            shared.wakers().push(wake_tx);
            workers.push(EventLoopServer::for_worker(
                agg,
                opts.clone(),
                backend_kind,
                admission.clone(),
                next_token.clone(),
                i,
                shared.clone(),
                Intake {
                    rx,
                    wake: wake_rx,
                    open: true,
                },
            ));
            senders.push(tx);
        }
        // Deterministic placement for injected sessions: worker i
        // gets pre[i], pre[i+n], …
        for (j, stream) in pre.into_iter().enumerate() {
            if let Some(w) = workers.get_mut(j % n) {
                w.add_session(stream)?;
            }
        }

        let (dispatch_res, joined) = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .map(|server| {
                    let sh = shared.clone();
                    scope.spawn(move || {
                        let res = server.run();
                        sh.exited.fetch_add(1, Ordering::SeqCst);
                        res
                    })
                })
                .collect();

            let dispatch_res = if listeners.is_empty() {
                // Injected-sessions-only run: nothing will ever be
                // accepted, so hang up the handoff queues *now* —
                // waiting for workers that are waiting for us would
                // deadlock. Workers self-enforce the idle deadline
                // through the shared clock.
                Ok(())
            } else {
                Self::dispatch(&listeners, backend.as_mut(), &senders, &shared, &opts, n)
            };
            // Hang up the handoff queues — workers drain what is
            // queued, then see `Disconnected` and finish — and nudge
            // any worker parked in its backend so it notices.
            drop(senders);
            shared.wake_all();
            if dispatch_res.is_err() {
                // A dispatcher-fatal error must not strand N running
                // loops.
                shared.request_stop(false);
            }
            let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            (dispatch_res, joined)
        });

        let mut report = ServeReport::default();
        let mut per_loop = Vec::with_capacity(n);
        let mut first_err = dispatch_res.err();
        for res in joined {
            match res {
                Ok(Ok((agg, r))) => {
                    per_loop.push(agg);
                    report.absorb(r);
                }
                Ok(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(io::Error::other("serve loop panicked"));
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        report.timed_out = shared.timed_out.load(Ordering::SeqCst);
        // Placement-independent presentation: by collector id, then
        // loop.
        report.sessions.sort_by_key(|s| (s.session, s.worker));
        Ok((AggregatorSet::new(per_loop), report))
    }

    /// The dispatcher loop: waits on the listeners, accepts, and deals
    /// connections round-robin to the workers. Also the idle-deadline
    /// authority of last resort — it re-checks the shared clock even
    /// when every worker is parked on an empty loop.
    fn dispatch(
        listeners: &[Listener],
        backend: &mut dyn Backend,
        senders: &[mpsc::Sender<SessionStream>],
        shared: &ServeShared,
        opts: &ServeOptions,
        n: usize,
    ) -> io::Result<()> {
        let mut rr = 0usize;
        let mut ready: Vec<u64> = Vec::new();
        loop {
            if shared.stopped() || shared.exited.load(Ordering::SeqCst) >= n {
                return Ok(());
            }
            // Cap the wait so stop/exited flags are noticed within a
            // tick even without a readiness event.
            let timeout_ms = match opts.accept_timeout {
                Some(t) => {
                    let idle = shared.idle_for();
                    if idle >= t {
                        shared.request_stop(true);
                        return Ok(());
                    }
                    (t - idle).as_millis().min(100) as i32 + 1
                }
                None => 100,
            };
            ready.clear();
            if backend.wait(timeout_ms, &mut ready)? == 0 {
                continue;
            }
            for &token in &ready {
                let Some(listener) = listeners.get(token as usize) else {
                    continue;
                };
                while let Some(stream) = listener.accept()? {
                    let mut stream = Some(stream);
                    // Round-robin, skipping workers that already
                    // exited (their receiver is gone).
                    for _ in 0..n {
                        let w = rr % n;
                        rr += 1;
                        let Some(s) = stream.take() else {
                            break; // placed on an earlier worker
                        };
                        let Some(sender) = senders.get(w) else {
                            break;
                        };
                        match sender.send(s) {
                            Ok(()) => {
                                shared.wake(w);
                                break;
                            }
                            Err(mpsc::SendError(s)) => stream = Some(s),
                        }
                    }
                    // Every worker gone: the connection drops; the
                    // `exited` check above ends the dispatcher.
                }
            }
        }
    }
}

/// The blocking per-connection pump the **threaded** transport uses:
/// reads `stream` to EOF, feeding each chunk to a [`SessionDriver`]
/// under a short-lived aggregator lock (held per chunk, so concurrent
/// sessions interleave freely).
///
/// A poisoned mutex — some *other* session thread panicked mid-feed —
/// is recovered via [`PoisonError::into_inner`]: the aggregator's
/// per-collector state is keyed by session, so the panicking session's
/// damage cannot extend past its own id, and losing every completed
/// session to a poison flag would be strictly worse.
///
/// A failed blocking pump: the I/O-level cause plus the collector id
/// the session had established before dying — the triage handle an
/// operator needs to tell *which* of N collectors is flapping (the
/// event loop reports the same through [`SessionFailure::session`]).
#[derive(Debug)]
pub struct PumpError {
    /// The session's established id, if it got that far.
    pub session: Option<u64>,
    /// What killed it ([`SessionError`] wrapped as `InvalidData`, or
    /// the stream's read error).
    ///
    /// [`SessionError`]: crate::topology::SessionError
    pub error: io::Error,
}

impl std::fmt::Display for PumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.session {
            Some(id) => write!(f, "session {id}: {}", self.error),
            None => self.error.fmt(f),
        }
    }
}

impl std::error::Error for PumpError {}

/// Returns the number of frames delivered (`0` ⇒ the connection was a
/// probe and must not consume a collector slot).
///
/// # Errors
///
/// [`PumpError`] carrying the established session id (if any) and the
/// cause. On failure the session's partial contribution has already
/// been rolled back ([`SessionDriver::abort`]).
pub fn pump_blocking(
    stream: &mut impl Read,
    agg: &Mutex<Aggregator>,
    fallback_id: u64,
) -> Result<usize, PumpError> {
    fn lock(agg: &Mutex<Aggregator>) -> std::sync::MutexGuard<'_, Aggregator> {
        agg.lock().unwrap_or_else(PoisonError::into_inner)
    }
    let mut driver = SessionDriver::new(fallback_id);
    let mut buf = [0u8; 64 * 1024];
    let fail = |driver: &SessionDriver, error: io::Error| {
        driver.abort(&mut lock(agg));
        PumpError {
            session: driver.session_id(),
            error,
        }
    };
    loop {
        let n = match stream.read(&mut buf) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(fail(&driver, e)),
        };
        // Bind each step's result before inspecting it: the guard
        // temporary in `lock(agg)` lives to the end of its statement,
        // and `fail` needs the lock again.
        if n == 0 {
            let res = driver.finish(&mut lock(agg));
            res.map_err(|e| fail(&driver, io::Error::new(io::ErrorKind::InvalidData, e)))?;
            return Ok(driver.frames_delivered());
        }
        let res = driver.push(&buf[..n], &mut lock(agg));
        res.map_err(|e| fail(&driver, io::Error::new(io::ErrorKind::InvalidData, e)))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MonitorConfig, MonitorEngine, SamplerSpec};
    use crate::topology::Collector;

    fn config() -> MonitorConfig {
        MonitorConfig::default()
            .sampler(SamplerSpec::Systematic { interval: 3 })
            .seed(9)
    }

    fn keyed_points(n: usize, n_keys: u64) -> Vec<(u64, f64)> {
        (0..n)
            .map(|i| {
                let key = (i as u64).wrapping_mul(0x9E37_79B9) % n_keys;
                (key, 1.0 + (i % 53) as f64)
            })
            .collect()
    }

    /// Encodes one collector session (Hello … Bye) as wire bytes.
    fn session_bytes(id: u64, points: &[(u64, f64)]) -> Vec<u8> {
        let mut c = Collector::new(id, config());
        let mut pipe = Vec::new();
        for chunk in points.chunks(1500) {
            c.offer_batch(chunk);
            c.flush(&mut pipe).unwrap();
        }
        c.finish(&mut pipe).unwrap();
        pipe
    }

    /// A loaded socketpair read end: `bytes` buffered, then EOF
    /// (payloads stay far below the kernel buffer, so the blocking
    /// write cannot deadlock the single thread).
    fn loaded_stream(bytes: &[u8]) -> UnixStream {
        let (mut tx, rx) = UnixStream::pair().expect("socketpair");
        tx.write_all(bytes).expect("buffered write");
        drop(tx); // EOF for the server side.
        rx
    }

    fn inject(server: &mut EventLoopServer, bytes: &[u8]) {
        server
            .add_session(loaded_stream(bytes))
            .expect("add_session");
    }

    fn both_backends() -> [BackendKind; 2] {
        [BackendKind::Poll, BackendKind::Epoll]
    }

    #[test]
    fn event_loop_assembles_injected_sessions_to_the_reference_bits() {
        let points = keyed_points(12_000, 24);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        for kind in both_backends() {
            let mut server = EventLoopServer::new(
                Aggregator::new(),
                ServeOptions {
                    collectors: 3,
                    accept_timeout: None,
                },
            )
            .with_backend(kind);
            for part in 0..3u64 {
                let mine: Vec<_> = points
                    .iter()
                    .filter(|&&(k, _)| k % 3 == part)
                    .copied()
                    .collect();
                inject(&mut server, &session_bytes(part, &mine));
            }
            let (agg, report) = server.run().expect("serve");
            assert_eq!(report.completed, 3, "backend {kind}");
            assert!(report.failures.is_empty(), "backend {kind}");
            assert_eq!(agg.snapshot(), reference.snapshot(), "backend {kind}");
        }
    }

    #[test]
    fn hostile_sessions_are_isolated_and_rolled_back() {
        let points = keyed_points(9000, 16);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        for kind in both_backends() {
            let mut server = EventLoopServer::new(
                Aggregator::new(),
                ServeOptions {
                    collectors: 2,
                    accept_timeout: None,
                },
            )
            .with_backend(kind);
            // Two healthy halves…
            for part in 0..2u64 {
                let mine: Vec<_> = points
                    .iter()
                    .filter(|&&(k, _)| k % 2 == part)
                    .copied()
                    .collect();
                inject(&mut server, &session_bytes(part, &mine));
            }
            // …plus a garbage client, a mid-frame disconnect (valid
            // prefix, torn tail), and two connect-and-close probes.
            inject(&mut server, b"SSWF this was never a frame");
            let torn = session_bytes(700, &keyed_points(4000, 7));
            inject(&mut server, &torn[..torn.len() - 5]);
            inject(&mut server, b"");
            inject(&mut server, b"");
            let (agg, report) = server.run().expect("serve survives hostility");
            assert_eq!(report.completed, 2, "backend {kind}");
            assert_eq!(report.probes, 2, "backend {kind}");
            assert_eq!(report.failures.len(), 2, "backend {kind}");
            assert_eq!(
                agg.snapshot(),
                reference.snapshot(),
                "hostile sessions must leave no trace in the snapshot ({kind})"
            );
        }
    }

    #[test]
    fn spoofed_collector_id_is_rejected_without_touching_state() {
        // A healthy session completes as id 4; a second session then
        // claiming id 4 with a valid Hello must be refused before its
        // Hello can reset (or its frames replace) the real state.
        // Sessions sweep in token (= injection) order, so the healthy
        // one goes first.
        let points = keyed_points(8000, 16);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        for kind in both_backends() {
            let mut server = EventLoopServer::new(
                Aggregator::new(),
                ServeOptions {
                    collectors: 2, // Unreachable: the run ends when nothing is left.
                    accept_timeout: None,
                },
            )
            .with_backend(kind);
            let mut spoof = Vec::new();
            let mut c = Collector::new(4, config());
            c.offer_batch(&keyed_points(2000, 4)); // Different data, same id.
            c.finish(&mut spoof).unwrap();
            inject(&mut server, &session_bytes(4, &points));
            inject(&mut server, &spoof);
            let (agg, report) = server.run().expect("serve");
            assert_eq!(report.completed, 1, "backend {kind}");
            assert_eq!(report.failures.len(), 1, "backend {kind}");
            assert!(
                report.failures[0].error.contains("already owned"),
                "got: {} ({kind})",
                report.failures[0].error
            );
            assert_eq!(
                agg.snapshot(),
                reference.snapshot(),
                "the spoofer must leave no trace ({kind})"
            );
        }
    }

    #[test]
    fn a_failed_session_frees_its_id_for_reconnect() {
        // A collector that dies mid-frame and reconnects under the
        // same id must be admitted again (its failed contribution was
        // rolled back, the resent cumulative state replaces nothing).
        let points = keyed_points(8000, 16);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        let full = session_bytes(3, &points);
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: 1,
                accept_timeout: None,
            },
        );
        // Torn session first in token order (fails and frees the id),
        // the reconnect second.
        inject(&mut server, &full[..full.len() - 5]);
        inject(&mut server, &full);
        let (agg, report) = server.run().expect("serve");
        assert_eq!(report.completed, 1);
        assert_eq!(report.failures.len(), 1, "the torn session failed");
        assert_eq!(agg.snapshot(), reference.snapshot());
    }

    #[test]
    fn accept_timeout_unblocks_a_short_handed_serve() {
        // A live listener nobody else connects to: without the idle
        // deadline the loop would wait forever for collectors 2–5.
        let dir = std::env::temp_dir().join(format!("sst_evl_timeout_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("socket dir");
        let path = dir.join("idle.sock");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).expect("bind");
        let points = keyed_points(5000, 8);
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: 5, // Only one will ever arrive.
                accept_timeout: Some(Duration::from_millis(50)),
            },
        );
        server.add_unix_listener(listener).expect("register");
        inject(&mut server, &session_bytes(0, &points));
        let start = Instant::now();
        let (agg, report) = server.run().expect("serve");
        let _ = std::fs::remove_file(&path);
        assert!(report.timed_out);
        assert_eq!(report.completed, 1);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "must not block forever"
        );
        assert_eq!(agg.collector_count(), 1, "the delivered session stays");
    }

    #[test]
    fn exhausted_sessions_without_listeners_end_without_a_timeout_flag() {
        // No listeners and no open sessions left: nothing can ever
        // arrive, so run() returns immediately — and that is a target
        // shortfall (completed < collectors), not a timeout.
        let points = keyed_points(5000, 8);
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: 5,
                accept_timeout: None,
            },
        );
        inject(&mut server, &session_bytes(0, &points));
        let (agg, report) = server.run().expect("serve");
        assert!(!report.timed_out, "no accept_timeout was configured");
        assert_eq!(report.completed, 1);
        assert_eq!(agg.collector_count(), 1);
    }

    #[test]
    fn completed_sessions_report_their_delivery_counters() {
        let points = keyed_points(10_000, 16);
        let mut server = EventLoopServer::new(
            Aggregator::new(),
            ServeOptions {
                collectors: 2,
                accept_timeout: None,
            },
        );
        let halves: Vec<Vec<u8>> = (0..2u64)
            .map(|part| {
                let mine: Vec<_> = points
                    .iter()
                    .filter(|&&(k, _)| k % 2 == part)
                    .copied()
                    .collect();
                session_bytes(part, &mine)
            })
            .collect();
        for bytes in &halves {
            inject(&mut server, bytes);
        }
        inject(&mut server, b""); // A probe: no stats entry.
        let (_, report) = server.run().expect("serve");
        assert_eq!(report.sessions.len(), 2, "one entry per completed session");
        for (stats, bytes) in report.sessions.iter().zip(&halves) {
            assert_eq!(stats.bytes, bytes.len() as u64, "every wire byte counted");
            assert!(stats.frames > 0);
            assert_eq!(stats.worker, 0, "single-loop serve is worker 0");
        }
        let ids: Vec<_> = report.sessions.iter().map(|s| s.session).collect();
        assert_eq!(ids, vec![Some(0), Some(1)]);
    }

    #[test]
    fn multi_loop_matches_the_reference_bits_with_hostiles() {
        let points = keyed_points(12_000, 24);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        for kind in both_backends() {
            for loops in [1usize, 2, 4] {
                let mut server = MultiLoopServer::new(
                    (0..loops).map(|_| Aggregator::new()).collect(),
                    ServeOptions {
                        collectors: 4,
                        accept_timeout: None,
                    },
                )
                .with_backend(kind);
                for part in 0..4u64 {
                    let mine: Vec<_> = points
                        .iter()
                        .filter(|&&(k, _)| k % 4 == part)
                        .copied()
                        .collect();
                    server.add_session(loaded_stream(&session_bytes(part, &mine)));
                }
                // Hostiles spread across loops: garbage, torn tail, a
                // probe.
                server.add_session(loaded_stream(b"SSWF this was never a frame"));
                let torn = session_bytes(900, &keyed_points(4000, 7));
                server.add_session(loaded_stream(&torn[..torn.len() - 5]));
                server.add_session(loaded_stream(b""));
                let (aggs, report) = server.run().expect("multi-loop serve");
                assert_eq!(aggs.loops(), loops);
                assert_eq!(report.completed, 4, "{kind} x{loops}");
                assert_eq!(report.probes, 1, "{kind} x{loops}");
                assert_eq!(report.failures.len(), 2, "{kind} x{loops}");
                assert_eq!(
                    aggs.snapshot(),
                    reference.snapshot(),
                    "assembled snapshot must not depend on backend ({kind}) or loop count ({loops})"
                );
                let by_worker: std::collections::BTreeSet<_> =
                    report.sessions.iter().map(|s| s.worker).collect();
                assert!(
                    by_worker.len() > 1 || loops == 1,
                    "round-robin must spread 4 sessions past one loop ({kind} x{loops})"
                );
            }
        }
    }

    #[test]
    fn cross_loop_spoof_is_rejected_by_the_shared_admission_table() {
        // Two sessions claim the same collector id from *different*
        // loops. Exactly one may win — whichever the race favors —
        // and both carry identical bytes, so the assembled snapshot
        // is the reference either way.
        let points = keyed_points(8000, 16);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        let bytes = session_bytes(4, &points);
        for kind in both_backends() {
            let mut server = MultiLoopServer::new(
                (0..2).map(|_| Aggregator::new()).collect(),
                ServeOptions {
                    collectors: 2, // Unreachable: one twin must lose.
                    accept_timeout: None,
                },
            )
            .with_backend(kind);
            server.add_session(loaded_stream(&bytes)); // → worker 0
            server.add_session(loaded_stream(&bytes)); // → worker 1
            let (aggs, report) = server.run().expect("serve");
            assert_eq!(report.completed, 1, "{kind}: exactly one twin may land");
            assert_eq!(report.failures.len(), 1, "{kind}");
            assert!(
                report.failures[0].error.contains("already owned"),
                "got: {} ({kind})",
                report.failures[0].error
            );
            assert_eq!(
                aggs.snapshot(),
                reference.snapshot(),
                "the losing twin must leave no trace ({kind})"
            );
        }
    }

    #[test]
    fn multi_loop_accept_timeout_stops_every_loop() {
        let dir = std::env::temp_dir().join(format!("sst_mls_timeout_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("socket dir");
        let path = dir.join("idle.sock");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).expect("bind");
        let points = keyed_points(5000, 8);
        let mut server = MultiLoopServer::new(
            (0..2).map(|_| Aggregator::new()).collect(),
            ServeOptions {
                collectors: 5, // Only one will ever arrive.
                accept_timeout: Some(Duration::from_millis(50)),
            },
        );
        server.add_unix_listener(listener).expect("register");
        server.add_session(loaded_stream(&session_bytes(0, &points)));
        let start = Instant::now();
        let (aggs, report) = server.run().expect("serve");
        let _ = std::fs::remove_file(&path);
        assert!(report.timed_out);
        assert_eq!(report.completed, 1);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "must not block forever"
        );
        assert_eq!(aggs.collector_count(), 1);
    }

    #[test]
    fn poll_backend_keeps_its_fd_table_across_deregisters() {
        // The persistent-pollfd contract: register/deregister mutate
        // the one table, and waits see exactly the surviving fds.
        let mut b = PollBackend::new();
        let (mut tx_a, rx_a) = UnixStream::pair().expect("pair");
        let (mut tx_b, rx_b) = UnixStream::pair().expect("pair");
        rx_a.set_nonblocking(true).expect("nonblocking");
        rx_b.set_nonblocking(true).expect("nonblocking");
        b.register(rx_a.as_raw_fd(), 10).expect("register a");
        b.register(rx_b.as_raw_fd(), 20).expect("register b");
        tx_a.write_all(b"x").expect("write a");
        tx_b.write_all(b"y").expect("write b");
        let mut ready = Vec::new();
        b.wait(1000, &mut ready).expect("wait");
        ready.sort_unstable();
        assert_eq!(ready, vec![10, 20]);
        b.deregister(rx_a.as_raw_fd()).expect("deregister a");
        ready.clear();
        b.wait(1000, &mut ready).expect("wait");
        assert_eq!(ready, vec![20], "a deregistered fd must vanish");
        assert!(
            b.deregister(rx_a.as_raw_fd()).is_err(),
            "double deregister is NotFound"
        );
    }

    #[test]
    fn epoll_backend_reports_ready_tokens() {
        let mut b = EpollBackend::new().expect("epoll_create1");
        let (mut tx_a, rx_a) = UnixStream::pair().expect("pair");
        let (_tx_b, rx_b) = UnixStream::pair().expect("pair");
        rx_a.set_nonblocking(true).expect("nonblocking");
        rx_b.set_nonblocking(true).expect("nonblocking");
        b.register(rx_a.as_raw_fd(), 7).expect("register a");
        b.register(rx_b.as_raw_fd(), 8).expect("register b");
        tx_a.write_all(b"x").expect("write a");
        let mut ready = Vec::new();
        b.wait(1000, &mut ready).expect("wait");
        assert_eq!(ready, vec![7], "only the written-to fd is ready");
        // Level-triggered: unread data keeps reporting.
        ready.clear();
        b.wait(1000, &mut ready).expect("wait");
        assert_eq!(ready, vec![7]);
        b.deregister(rx_a.as_raw_fd()).expect("deregister");
        ready.clear();
        assert_eq!(b.wait(0, &mut ready).expect("wait"), 0);
    }

    #[test]
    fn pump_blocking_recovers_a_poisoned_aggregator() {
        let points = keyed_points(6000, 8);
        let agg = Mutex::new(Aggregator::new());
        // Poison the mutex the way a panicking session thread would.
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = agg.lock().unwrap();
                panic!("session thread dies while holding the lock");
            })
            .join()
        });
        assert!(agg.lock().is_err(), "mutex must actually be poisoned");
        let bytes = session_bytes(4, &points);
        let frames =
            pump_blocking(&mut bytes.as_slice(), &agg, FALLBACK_ID_BASE).expect("recovered");
        assert!(frames > 0);
        let guard = agg.lock().unwrap_or_else(PoisonError::into_inner);
        let mut reference = MonitorEngine::new(config());
        for &(k, v) in &points {
            reference.offer(k, v);
        }
        assert_eq!(guard.snapshot(), reference.snapshot());
    }

    #[test]
    fn pump_blocking_rolls_back_failed_sessions() {
        let agg = Mutex::new(Aggregator::new());
        let bytes = session_bytes(6, &keyed_points(4000, 8));
        let err = pump_blocking(&mut &bytes[..bytes.len() - 4], &agg, FALLBACK_ID_BASE)
            .expect_err("mid-frame EOF must fail");
        assert_eq!(err.error.kind(), io::ErrorKind::InvalidData);
        assert_eq!(err.session, Some(6), "failure names the collector");
        assert_eq!(agg.lock().unwrap().collector_count(), 0);
    }
}
