//! Pins on the check-sync pass: the acceptance floor for exploration
//! breadth, and proof that the checker detects a deliberately broken
//! protocol (so a clean run means something).

use sst_analyze::check_sync::{explore, ExploreOpts};
use sst_analyze::models::{AdmissionModel, PoolModel};

#[test]
fn exploration_meets_the_ten_thousand_schedule_floor() {
    // Same configuration CI runs: the 2-worker/2-task pool alone must
    // clear the 10k-distinct-schedules acceptance floor, violation-free.
    let r = explore(&PoolModel::correct(2, 2), &ExploreOpts::default());
    assert!(r.clean(), "{:?}", r.violation);
    assert!(
        r.schedules >= 10_000,
        "only {} schedules explored",
        r.schedules
    );
}

#[test]
fn broken_count_then_push_ordering_is_detected() {
    // The model with the push-before-count bug (the exact ordering the
    // shipped pool's comment warns against) must be caught, and caught
    // as a pending-counter underflow.
    let r = explore(&PoolModel::broken(2, 2), &ExploreOpts::default());
    let (v, schedule) = r.violation.expect("the checker must find the bug");
    assert!(v.msg.contains("underflow"), "{}", v.msg);
    // The witness schedule is replayable: it must be non-trivial.
    assert!(schedule.len() >= 2, "{schedule:?}");
}

#[test]
fn broken_unlocked_admission_claim_is_detected() {
    let r = explore(&AdmissionModel::broken(3), &ExploreOpts::default());
    let (v, _) = r.violation.expect("the checker must find the race");
    assert!(
        v.msg.contains("exactly-one-claim") || v.msg.contains("granted a claim after"),
        "{}",
        v.msg
    );
}

#[test]
fn park_resume_handoff_is_single_grant() {
    // With a failing first session, the parked state must reach exactly
    // one resumer in every interleaving.
    let r = explore(&AdmissionModel::correct(3, true), &ExploreOpts::default());
    assert!(r.clean(), "{:?}", r.violation);
    assert!(r.schedules > 0);
}

#[test]
fn preemption_bound_trades_coverage_for_time() {
    let tight = explore(
        &PoolModel::correct(2, 2),
        &ExploreOpts {
            preemption_bound: 1,
            ..ExploreOpts::default()
        },
    );
    let wide = explore(&PoolModel::correct(2, 2), &ExploreOpts::default());
    assert!(tight.clean() && wide.clean());
    assert!(
        tight.schedules < wide.schedules,
        "bound 1: {}, bound 3: {}",
        tight.schedules,
        wide.schedules
    );
    assert!(tight.preemption_pruned > 0);
}
