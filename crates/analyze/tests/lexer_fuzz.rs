//! Property tests: the lexer and the full lint pipeline must be total
//! over arbitrary byte soup — never panic, never loop — because the
//! linter runs on whatever is in the tree, including half-saved files.

use proptest::prelude::*;
use sst_analyze::lexer::lex;
use sst_analyze::rules::{lint_source, RuleConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_the_lexer(
        bytes in proptest::collection::vec(0u8..=255u8, 0..2048),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let lexed = lex(&src, false);
        // Line numbers must stay within the text.
        let max_line = src.lines().count() as u32 + 1;
        prop_assert!(lexed.tokens.iter().all(|t| t.line <= max_line));
    }

    #[test]
    fn random_rust_ish_text_never_panics_the_pipeline(
        picks in proptest::collection::vec(0usize..24, 0..256),
    ) {
        // Tokens the rules react to, recombined at random: worst-case
        // input for the structural pass and the pragma parser.
        const WORDS: [&str; 24] = [
            "unsafe", "fn", "mod", "{", "}",
            "unwrap", "(", ")", ".", "as",
            "usize", "[", "]", "\"", "'",
            "r#\"", "//", "/*", "*/", "#",
            "sst-analyze:", "allow", "x", "\n",
        ];
        let src: String = picks
            .iter()
            .map(|&i| WORDS[i % WORDS.len()])
            .collect::<Vec<_>>()
            .join(" ");
        let cfg = RuleConfig::workspace();
        // Lint under a surface path so every rule runs.
        let _ = lint_source("crates/monitor/src/codec.rs", &src, &cfg);
    }

    #[test]
    fn truncation_never_panics_the_lexer(cut in 0usize..10_000) {
        // Truncating mid-literal / mid-comment must be survivable: the
        // lexer sees unterminated strings and comments at EOF.
        let src = r##"
mod sys { fn f() { /* SAFETY: x */ unsafe { g() } } }
fn decode(b: &[u8]) -> u8 { let s = "str \" esc"; let r = r#"raw"#; b[0] }
// sst-analyze: allow(unsafe-audit) reason="fuzz"
"##;
        let cut = cut % (src.len() + 1);
        if src.is_char_boundary(cut) {
            let _ = lex(&src[..cut], false);
        }
    }
}
