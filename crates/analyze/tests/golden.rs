//! Golden-findings test: the seeded-violation fixture must produce
//! exactly the expected finding set — every rule catches its seed, no
//! rule over-fires — when linted under a path where every rule applies.

use sst_analyze::rules::{lint_source, RuleConfig};

const FIXTURE: &str = include_str!("../fixtures/seeded.rs");

/// The path the fixture is linted *as*: whole-file untrusted surface,
/// wire length math, and monitor lock scope all apply there.
const AS_PATH: &str = "crates/monitor/src/codec.rs";

#[test]
fn every_rule_catches_its_seeded_violation() {
    let findings = lint_source(AS_PATH, FIXTURE, &RuleConfig::workspace());
    let got: Vec<(&str, &str)> = findings.iter().map(|f| (f.rule, f.what.as_str())).collect();
    let want: Vec<(&str, &str)> = vec![
        ("pragma-syntax", "malformed pragma (want `sst-analyze: allow(<rule>) reason=\"...\"`): allow(no-such-rule) reason=\"golden pragma-syntax seed\""),
        ("no-panic-on-untrusted-input", "unwrap"),
        ("no-panic-on-untrusted-input", "expect"),
        ("no-panic-on-untrusted-input", "panic!"),
        ("no-panic-on-untrusted-input", "slice-index"),
        ("no-lossy-casts-in-length-math", "as usize (from u64 wire integer)"),
        ("no-lossy-casts-in-length-math", "as u32"),
        ("lock-discipline", ".lock().unwrap() — recover poison via PoisonError::into_inner"),
        ("no-panic-on-untrusted-input", "unwrap"),
        ("lock-discipline", "Ordering::Relaxed outside the counter allowlist"),
        ("unsafe-audit", "unsafe block without a `// SAFETY:` comment"),
        ("unsafe-audit", "unsafe outside a `sys` module"),
    ];
    assert_eq!(got, want, "full findings: {findings:#?}");
}

#[test]
fn fixture_fingerprints_are_stable_and_line_free() {
    let cfg = RuleConfig::workspace();
    let original = lint_source(AS_PATH, FIXTURE, &cfg);
    // Prepend unrelated lines: every fingerprint must survive even
    // though every line number changed.
    let shifted_src = format!("// shift\n// the\n// lines\n{FIXTURE}");
    let shifted = lint_source(AS_PATH, &shifted_src, &cfg);
    let fp = |fs: &[sst_analyze::Finding]| -> Vec<String> {
        fs.iter().map(|f| f.fingerprint.clone()).collect()
    };
    assert_eq!(fp(&original), fp(&shifted));
    assert!(original
        .iter()
        .zip(&shifted)
        .all(|(a, b)| a.line + 3 == b.line));
}

#[test]
fn workspace_walk_skips_the_fixture() {
    // The repo root is two levels up from this crate.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let sources = sst_analyze::workspace::collect_sources(&root).expect("walk");
    assert!(
        sources.iter().all(|s| !s.rel_path.contains("fixtures/")),
        "fixtures must not reach the real lint run"
    );
    assert!(
        sources
            .iter()
            .any(|s| s.rel_path.ends_with("monitor/src/wire.rs")),
        "the walk must find the monitor sources"
    );
}

#[test]
fn workspace_lint_is_clean_against_the_committed_baseline() {
    // The same invariant CI enforces: no findings beyond the committed
    // baseline, and no stale baseline entries. Failing here means a
    // new violation slipped into the tree (fix it or justify it) or a
    // grandfathered one was fixed without pruning the baseline.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let cfg = RuleConfig::workspace();
    let sources = sst_analyze::workspace::collect_sources(&root).expect("walk");
    let mut findings = Vec::new();
    for f in &sources {
        findings.extend(lint_source(&f.rel_path, &f.source, &cfg));
    }
    let text = std::fs::read_to_string(root.join("analyze-baseline.txt")).expect("baseline");
    let diff = sst_analyze::Baseline::parse(&text).diff(&findings);
    assert!(
        diff.new.is_empty(),
        "new findings not in analyze-baseline.txt: {:#?}",
        diff.new
    );
    assert!(
        diff.stale.is_empty(),
        "stale baseline entries (prune them): {:?}",
        diff.stale
    );
}
