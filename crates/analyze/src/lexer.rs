//! A small, panic-free Rust lexer — just enough structure for the
//! lint rules.
//!
//! The lexer's one job is to separate **code tokens** from everything
//! that merely *looks* like code: string/char/byte literals (including
//! raw strings with arbitrary `#` fences), line comments, and (nested)
//! block comments. A `panic!` inside a doc comment or a `"unwrap()"`
//! inside a test-vector string must never reach the rule engine.
//!
//! On top of the flat token stream, [`lex`] runs a light structural
//! pass that annotates every token with its enclosing context:
//!
//! * the `mod` path (so `unsafe-audit` can allowlist `sys` modules),
//! * the named-`fn` stack (so surface rules can scope to decode fns),
//! * whether the token is **test code** — under a `#[cfg(test)]`
//!   attribute's item or inside a `mod tests { .. }` block,
//! * whether the token sits inside an attribute (`#[...]`), so the
//!   slice-index heuristic does not fire on `#[derive(..)]` brackets.
//!
//! The lexer is intentionally forgiving: malformed input (unterminated
//! literals, stray quotes, byte soup) lexes to *something* without
//! panicking — the proptest suite pins that property.

use std::rc::Rc;

/// What a code token is. Literal contents are deliberately dropped:
/// the rules only ever look at identifiers and punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `fn`, `unsafe`, …).
    Ident(String),
    /// One punctuation character (`.`, `[`, `!`, …).
    Punct(char),
    /// A lifetime (`'a`, `'static`); rules ignore these.
    Lifetime,
    /// A numeric literal (`42`, `0x10`, `1.0e-9`).
    Num,
    /// A string / raw string / byte-string literal.
    Str,
    /// A char or byte literal.
    Char,
}

/// Context shared by a run of tokens: the enclosing modules and named
/// functions, plus whether this is test code.
#[derive(Debug, Default)]
pub struct Ctx {
    /// Names of enclosing `mod` blocks, outermost first.
    pub mods: Vec<String>,
    /// Names of enclosing `fn` items, outermost first.
    pub fns: Vec<String>,
    /// Inside `#[cfg(test)]` items, `mod tests`, or an all-test file.
    pub test: bool,
}

impl Ctx {
    /// Whether any enclosing module has the given name.
    pub fn in_mod(&self, name: &str) -> bool {
        self.mods.iter().any(|m| m == name)
    }

    /// Innermost enclosing function name, if any.
    pub fn fn_name(&self) -> Option<&str> {
        self.fns.last().map(String::as_str)
    }
}

/// One code token with its line and structural context.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
    /// Enclosing mods/fns/test-ness (shared between adjacent tokens).
    pub ctx: Rc<Ctx>,
    /// Inside an outer attribute `#[...]` (or inner `#![...]`).
    pub attr: bool,
}

/// One comment (line or block), kept for `// SAFETY:` association and
/// `// sst-analyze: allow(...)` pragma parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: code tokens (with context) plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Flat scan: raw tokens + comments, no structure yet.
struct RawLexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    toks: Vec<(TokKind, u32)>,
    comments: Vec<Comment>,
}

impl RawLexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'r' if self.raw_string_ahead(1) => self.raw_string(1),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal();
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_or_lifetime();
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => self.raw_string(2),
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier `r#fn`: skip the fence, lex the ident.
                    self.bump();
                    self.bump();
                    self.ident();
                }
                '\'' => self.char_or_lifetime(),
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                c => {
                    let line = self.line;
                    self.bump();
                    self.toks.push((TokKind::Punct(c), line));
                }
            }
        }
    }

    /// Is `r`(+`#`*)`"` starting at offset `at` (relative to `self.i`)?
    fn raw_string_ahead(&self, at: usize) -> bool {
        let mut k = at;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.i;
        let mut depth = 1usize;
        let mut end = self.i;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                end = self.i;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        if depth != 0 {
            end = self.i; // unterminated: comment runs to EOF
        }
        let text: String = self.chars[start..end].iter().collect();
        self.comments.push(Comment { text, line });
    }

    /// A `"`-delimited (possibly byte-) string, with `\` escapes.
    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.toks.push((TokKind::Str, line));
    }

    /// `r"…"` / `r##"…"##` (and `br` variants): `fence_at` is the
    /// offset of the first `#`-or-quote after the prefix letters.
    fn raw_string(&mut self, fence_at: usize) {
        let line = self.line;
        for _ in 0..fence_at {
            self.bump(); // `r` or `br`
        }
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A quote closes only when followed by `fence` hashes.
                for k in 0..fence {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..fence {
                    self.bump();
                }
                break;
            }
        }
        self.toks.push((TokKind::Str, line));
    }

    /// `'x'` / `'\n'` char literal, or a lifetime `'a` (no closing
    /// quote). Distinguished by lookahead: an identifier char directly
    /// after the quote that is *not* itself followed by `'` is a
    /// lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let lifetime = match next {
            Some('\\') => false,
            Some(c) if is_ident_start(c) => self.peek(2) != Some('\''),
            _ => false,
        };
        self.bump(); // the quote
        if lifetime {
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            self.toks.push((TokKind::Lifetime, line));
            return;
        }
        // Char literal: consume up to the closing quote, honoring
        // escapes; bound the scan so broken input cannot run away.
        let mut consumed = 0;
        while let Some(c) = self.bump() {
            consumed += 1;
            match c {
                '\\' => {
                    self.bump();
                    consumed += 1;
                }
                '\'' => break,
                _ if consumed > 12 => break, // not a real char literal
                _ => {}
            }
        }
        self.toks.push((TokKind::Char, line));
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.toks.push((TokKind::Ident(text), line));
    }

    fn number(&mut self) {
        let line = self.line;
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` does not.
                self.bump();
            } else if (c == '+' || c == '-')
                && self
                    .chars
                    .get(self.i.wrapping_sub(1))
                    .is_some_and(|&p| p == 'e' || p == 'E')
            {
                // Exponent sign: `1e-9`.
                self.bump();
            } else {
                break;
            }
        }
        self.toks.push((TokKind::Num, line));
    }
}

/// One entry of the structural block stack.
enum Block {
    Mod,
    Fn,
    Other,
}

/// Lexes `src` and annotates tokens with structural context.
///
/// `all_test` marks every token as test code regardless of structure —
/// used for files under `tests/`, `benches/`, and `examples/`
/// directories, which are test code without any `#[cfg(test)]`.
pub fn lex(src: &str, all_test: bool) -> Lexed {
    let mut raw = RawLexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        toks: Vec::new(),
        comments: Vec::new(),
    };
    raw.run();
    let raw_toks = raw.toks;
    let comments = raw.comments;

    let mut tokens = Vec::with_capacity(raw_toks.len());
    let mut ctx = Rc::new(Ctx {
        mods: Vec::new(),
        fns: Vec::new(),
        test: all_test,
    });
    // Block stack mirroring `{` depth, remembering what each `{` opened.
    let mut blocks: Vec<Block> = Vec::new();
    // Depth (in `blocks`) below which everything is test code: the
    // shallowest open test block, if any.
    let mut test_depth: Option<usize> = None;
    // A `#[cfg(test)]` attribute was seen and its item has not started
    // its block yet (`None` = no pending marker).
    let mut pending_cfg_test = false;
    // Pending named item openers, waiting for their `{`.
    let mut pending_open: Option<(Block, Option<String>, bool)> = None;

    let mut i = 0usize;
    while i < raw_toks.len() {
        let (kind, line) = &raw_toks[i];

        // Attributes: `#[...]` and `#![...]` — emit their tokens marked
        // `attr`, note whether this is `cfg(test)`-ish.
        if matches!(kind, TokKind::Punct('#')) {
            let mut j = i + 1;
            if matches!(raw_toks.get(j).map(|t| &t.0), Some(TokKind::Punct('!'))) {
                j += 1;
            }
            if matches!(raw_toks.get(j).map(|t| &t.0), Some(TokKind::Punct('['))) {
                // Balanced attribute span.
                let mut depth = 0usize;
                let mut end = j;
                let mut saw_cfg = false;
                let mut saw_test = false;
                while end < raw_toks.len() {
                    match &raw_toks[end].0 {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokKind::Ident(s) if s == "cfg" => saw_cfg = true,
                        TokKind::Ident(s) if s == "test" => saw_test = true,
                        _ => {}
                    }
                    end += 1;
                }
                if saw_cfg && saw_test {
                    pending_cfg_test = true;
                }
                for t in &raw_toks[i..=end.min(raw_toks.len() - 1)] {
                    tokens.push(Token {
                        kind: t.0.clone(),
                        line: t.1,
                        ctx: Rc::clone(&ctx),
                        attr: true,
                    });
                }
                i = end + 1;
                continue;
            }
        }

        match kind {
            TokKind::Ident(s) if s == "mod" => {
                if let Some(TokKind::Ident(name)) = raw_toks.get(i + 1).map(|t| t.0.clone()) {
                    let test_mod = name == "tests" || pending_cfg_test;
                    pending_open = Some((Block::Mod, Some(name), test_mod));
                }
            }
            TokKind::Ident(s) if s == "fn" => {
                if let Some(TokKind::Ident(name)) = raw_toks.get(i + 1).map(|t| t.0.clone()) {
                    pending_open = Some((Block::Fn, Some(name), pending_cfg_test));
                }
            }
            TokKind::Punct('{') => {
                let (block, name, test_open) =
                    pending_open
                        .take()
                        .unwrap_or((Block::Other, None, pending_cfg_test));
                pending_cfg_test = false;
                let mut next = Ctx {
                    mods: ctx.mods.clone(),
                    fns: ctx.fns.clone(),
                    test: ctx.test,
                };
                match (&block, name) {
                    (Block::Mod, Some(n)) => next.mods.push(n),
                    (Block::Fn, Some(n)) => next.fns.push(n),
                    _ => {}
                }
                if test_open && test_depth.is_none() {
                    test_depth = Some(blocks.len());
                }
                next.test = all_test || test_depth.is_some();
                blocks.push(block);
                ctx = Rc::new(next);
                // The `{` itself belongs to the block it opens.
            }
            TokKind::Punct('}') => {
                if let Some(block) = blocks.pop() {
                    if test_depth == Some(blocks.len()) {
                        test_depth = None;
                    }
                    let mut next = Ctx {
                        mods: ctx.mods.clone(),
                        fns: ctx.fns.clone(),
                        test: all_test || test_depth.is_some(),
                    };
                    match block {
                        Block::Mod => {
                            next.mods.pop();
                        }
                        Block::Fn => {
                            next.fns.pop();
                        }
                        Block::Other => {}
                    }
                    // Emit the `}` still inside the closing block, then
                    // switch context.
                    tokens.push(Token {
                        kind: kind.clone(),
                        line: *line,
                        ctx: Rc::clone(&ctx),
                        attr: false,
                    });
                    ctx = Rc::new(next);
                    i += 1;
                    continue;
                }
            }
            TokKind::Punct(';') => {
                // `#[cfg(test)] use foo;` — a block-less test item ends
                // at its semicolon, as does a pending `mod foo;`.
                pending_cfg_test = false;
                pending_open = None;
            }
            _ => {}
        }

        // A pending `#[cfg(test)]` marks the tokens between the
        // attribute and the item's block (`fn name`, signature, …).
        let tok_test = ctx.test || pending_cfg_test;
        let tok_ctx = if tok_test && !ctx.test {
            Rc::new(Ctx {
                mods: ctx.mods.clone(),
                fns: ctx.fns.clone(),
                test: true,
            })
        } else {
            Rc::clone(&ctx)
        };
        tokens.push(Token {
            kind: kind.clone(),
            line: *line,
            ctx: tok_ctx,
            attr: false,
        });
        i += 1;
    }

    Lexed { tokens, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<String> {
        l.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
fn main() {
    let s = "unwrap() panic! inside a string";
    let r = r#"expect("x") in a raw string"#;
    // unwrap() in a line comment
    /* panic! in a /* nested */ block comment */
    let c = '\'';
    real_call();
}
"##;
        let l = lex(src, false);
        let ids = idents(&l);
        assert!(ids.contains(&"real_call".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let l = lex(src, false);
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn cfg_test_items_are_test_context() {
        let src = r#"
fn prod() { a.unwrap(); }
#[cfg(test)]
mod checks {
    fn t() { b.unwrap(); }
}
#[cfg(test)]
fn lone_test_fn() { c.unwrap(); }
fn prod2() { d.unwrap(); }
"#;
        let l = lex(src, false);
        let unwraps: Vec<bool> = l
            .tokens
            .iter()
            .filter(|t| matches!(&t.kind, TokKind::Ident(s) if s == "unwrap"))
            .map(|t| t.ctx.test)
            .collect();
        assert_eq!(unwraps, vec![false, true, true, false]);
    }

    #[test]
    fn mod_tests_is_test_context_even_without_cfg() {
        let src = "mod tests { fn t() { x.unwrap(); } } fn p() { y.unwrap(); }";
        let l = lex(src, false);
        let unwraps: Vec<bool> = l
            .tokens
            .iter()
            .filter(|t| matches!(&t.kind, TokKind::Ident(s) if s == "unwrap"))
            .map(|t| t.ctx.test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn fn_and_mod_context_tracks_nesting() {
        let src = "mod sys { fn poll_fds() { inner_marker; } } fn outside() { other_marker; }";
        let l = lex(src, false);
        let marker = l
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokKind::Ident(s) if s == "inner_marker"))
            .unwrap();
        assert!(marker.ctx.in_mod("sys"));
        assert_eq!(marker.ctx.fn_name(), Some("poll_fds"));
        let other = l
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokKind::Ident(s) if s == "other_marker"))
            .unwrap();
        assert!(!other.ctx.in_mod("sys"));
        assert_eq!(other.ctx.fn_name(), Some("outside"));
    }

    #[test]
    fn attributes_are_marked() {
        let src = "#[derive(Clone)] struct S { f: [u8; 4] }";
        let l = lex(src, false);
        let brackets: Vec<bool> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct('['))
            .map(|t| t.attr)
            .collect();
        assert_eq!(brackets, vec![true, false]);
    }

    #[test]
    fn byte_soup_is_survivable() {
        for src in [
            "\"unterminated",
            "r#\"unterminated raw",
            "'",
            "b'",
            "/* unterminated block",
            "}}}}{{{{",
            "''''''\"\"\"r####\"x",
            "1.0e- 'a' r#fn b\"\\\"",
        ] {
            let _ = lex(src, false);
        }
    }
}
