//! Instrumented models of the workspace's two hand-rolled
//! synchronization protocols, for [`crate::check_sync`].
//!
//! These are *models*, not the production code: each mirrors the
//! protocol's atomic actions step for step (the comments cite the real
//! source), collapses everything irrelevant to the invariant (task
//! payloads, deque topology, byte streams), and **omits the timeout
//! backstops** — the production pool re-checks every 50 ms, so a lost
//! wakeup there is a stall; here it is a hard deadlock the explorer
//! reports. A clean exhaustive run therefore proves the protocol never
//! *needs* its backstop within the explored bounds.
//!
//! Both models also ship a deliberately-broken variant (the historical
//! bug shape) so the test suite can prove the checker actually detects
//! what it claims to.

use crate::check_sync::{Model, Violation};

// ---------------------------------------------------------------------
// Model 1: the rayon-shim pool's count-then-push / sleep-notify
// protocol (crates/shims/rayon/src/lib.rs).
//
// Real protocol, per thread:
//
//   submitter (run_batch_with_inline):
//     pending.fetch_add(n)        // count FIRST
//     for each task: deque.push() // push SECOND
//     lock(sleep); notify_all(); unlock(sleep)
//
//   worker (worker_main / pop_local):
//     loop {
//       if deque.pop() succeeded { pending.fetch_sub(1); run task }
//       else { lock(sleep);
//              if pending == 0 { cond_wait(work, sleep) }  // atomic release+park
//              else unlock(sleep); }
//     }
//
// Invariants checked:
//   * `pending` never underflows (the count-then-push order is load-
//     bearing: a task must never be popped before it was counted);
//   * no lost wakeup: with tasks still queued or unexecuted, the
//     workers cannot all be parked with the submitter finished;
//   * every task executes exactly once.
// ---------------------------------------------------------------------

/// The pool protocol model. Thread ids `0..workers` are workers; the
/// last id is the submitter.
pub struct PoolModel {
    /// Worker thread count.
    pub workers: usize,
    /// Tasks in the submitted batch.
    pub tasks: u32,
    /// Reproduce the pre-PR4 bug: push tasks *before* counting them.
    pub push_before_count: bool,
}

impl PoolModel {
    /// The protocol as shipped.
    pub fn correct(workers: usize, tasks: u32) -> Self {
        PoolModel {
            workers,
            tasks,
            push_before_count: false,
        }
    }

    /// The broken ordering (push first, count second) the shipped
    /// comment warns about — the checker must flag it.
    pub fn broken(workers: usize, tasks: u32) -> Self {
        PoolModel {
            workers,
            tasks,
            push_before_count: true,
        }
    }
}

/// Worker program counters.
const W_POP: u8 = 0; // try to pop the queue
const W_DEC: u8 = 1; // holding a task: decrement `pending`, run it
const W_LOCK: u8 = 2; // acquire the sleep lock
const W_CHECK: u8 = 3; // under the lock: re-check `pending`
const W_WAIT: u8 = 4; // parked in the condvar
const W_WAKE: u8 = 5; // notified: re-acquire the lock, resume looping

/// Submitter program counters (meaning depends on ordering variant).
const S_FIRST: u8 = 0;

/// Shared + per-thread state of [`PoolModel`].
#[derive(Clone)]
pub struct PoolState {
    /// The `pending` atomic (i64 so the broken variant can underflow
    /// observably instead of wrapping).
    pending: i64,
    /// Queued tasks across all deques (stealing collapses to one queue
    /// — placement is irrelevant to the counter/wakeup protocol).
    queue: u32,
    /// Tasks executed so far.
    executed: u32,
    /// Who holds the sleep mutex.
    sleep_owner: Option<usize>,
    /// Workers parked in the condvar (not yet notified).
    parked: Vec<bool>,
    /// Per-worker program counters.
    wpc: Vec<u8>,
    /// Submitter program counter.
    spc: u8,
    /// Tasks the submitter has pushed so far.
    pushed: u32,
    /// Whether the submitter has counted the batch yet.
    counted: bool,
}

impl Model for PoolModel {
    type State = PoolState;

    fn name(&self) -> &'static str {
        if self.push_before_count {
            "pool-sleep-notify (broken push-before-count)"
        } else {
            "pool-sleep-notify"
        }
    }

    fn threads(&self) -> usize {
        self.workers + 1
    }

    fn initial(&self) -> PoolState {
        PoolState {
            pending: 0,
            queue: 0,
            executed: 0,
            sleep_owner: None,
            parked: vec![false; self.workers],
            wpc: vec![W_POP; self.workers],
            spc: S_FIRST,
            pushed: 0,
            counted: false,
        }
    }

    fn finished(&self, s: &PoolState, t: usize) -> bool {
        if t == self.workers {
            // Submitter: counted, pushed all, notified (spc 3 = done).
            return s.spc >= 3;
        }
        // Workers loop forever; they never finish, only park.
        false
    }

    fn enabled(&self, s: &PoolState, t: usize) -> bool {
        if t == self.workers {
            if s.spc >= 3 {
                return false;
            }
            // The notify step needs the sleep lock.
            if s.spc == 2 {
                return s.sleep_owner.is_none() || s.sleep_owner == Some(t);
            }
            return true;
        }
        match s.wpc[t] {
            W_LOCK | W_WAKE => s.sleep_owner.is_none(),
            W_WAIT => !s.parked[t], // enabled once notified
            _ => true,
        }
    }

    fn step(&self, s: &mut PoolState, t: usize) -> Result<(), Violation> {
        if t == self.workers {
            return self.submitter_step(s, t);
        }
        match s.wpc[t] {
            W_POP => {
                // pop_local/steal_any: deque lock held for the pop
                // itself — one atomic step.
                if s.queue > 0 {
                    s.queue -= 1;
                    s.wpc[t] = W_DEC;
                } else {
                    s.wpc[t] = W_LOCK;
                }
            }
            W_DEC => {
                // pending.fetch_sub(1) *after* a successful pop.
                s.pending -= 1;
                if s.pending < 0 {
                    return Err(Violation::new(format!(
                        "pending underflow: worker {t} decremented to {} — a task \
                         was popped before it was counted",
                        s.pending
                    )));
                }
                s.executed += 1;
                s.wpc[t] = W_POP;
            }
            W_LOCK => {
                // let guard = p.sleep.lock()
                debug_assert!(s.sleep_owner.is_none());
                s.sleep_owner = Some(t);
                s.wpc[t] = W_CHECK;
            }
            W_CHECK => {
                // if pending == 0 { wait } else { drop(guard); rescan }
                if s.pending == 0 {
                    // cond wait: atomically release the lock and park.
                    s.parked[t] = true;
                    s.sleep_owner = None;
                    s.wpc[t] = W_WAIT;
                } else {
                    s.sleep_owner = None;
                    s.wpc[t] = W_POP;
                }
            }
            W_WAIT => {
                // Notified (enabled() gates on !parked): wake needs the
                // lock back before the wait returns.
                s.wpc[t] = W_WAKE;
            }
            W_WAKE => {
                debug_assert!(s.sleep_owner.is_none());
                // Condvar re-acquires the mutex, the worker drops it
                // and rescans — collapsed to one step (nothing is
                // checked under the lock on this path).
                s.wpc[t] = W_POP;
            }
            _ => {}
        }
        Ok(())
    }

    fn at_end(&self, _: &PoolState) -> Result<(), Violation> {
        // Workers never finish, so terminal states don't occur; runs
        // end in the legal-park deadlock below.
        Ok(())
    }

    fn on_deadlock(&self, s: &PoolState) -> Result<(), Violation> {
        // Every worker parked, submitter done. Legal only when the
        // batch is fully drained — otherwise a wakeup was lost.
        if s.executed == self.tasks && s.queue == 0 {
            Ok(())
        } else {
            Err(Violation::new(format!(
                "lost wakeup: all workers parked with queue={} executed={}/{}",
                s.queue, s.executed, self.tasks
            )))
        }
    }
}

impl PoolModel {
    fn submitter_step(&self, s: &mut PoolState, t: usize) -> Result<(), Violation> {
        // Correct order: count (spc 0), push… (spc 1), lock+notify
        // (spc 2). Broken order: push… (spc 0 stays), count, notify.
        match s.spc {
            0 => {
                if self.push_before_count {
                    // BROKEN: push the whole batch before counting.
                    if s.pushed < self.tasks {
                        s.queue += 1;
                        s.pushed += 1;
                    } else {
                        s.pending += i64::from(self.tasks);
                        s.counted = true;
                        s.spc = 2;
                    }
                } else {
                    // p.pending.fetch_add(n_tasks) — count FIRST.
                    s.pending += i64::from(self.tasks);
                    s.counted = true;
                    s.spc = 1;
                }
            }
            1 => {
                // deques[target].push_back(task), one per step.
                s.queue += 1;
                s.pushed += 1;
                if s.pushed == self.tasks {
                    s.spc = 2;
                }
            }
            2 => {
                // let _guard = p.sleep.lock(); p.work.notify_all();
                debug_assert!(s.sleep_owner.is_none() || s.sleep_owner == Some(t));
                for p in &mut s.parked {
                    *p = false;
                }
                s.spc = 3;
            }
            _ => {}
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Model 2: the cross-loop AdmissionRegistry claim/park/resume protocol
// (crates/monitor/src/topology.rs).
//
// Real protocol: a shared Mutex<BTreeMap<id, IdOwner>> with
// IdOwner::{Open(token), Suspended(parked), Completed}. Sessions (on
// any loop) claim ids under the lock: free -> Open, Suspended ->
// Resumed (parked state handed over), Open(other)/Completed ->
// Rejected. A failed sequenced session parks its state back
// (suspend()); a completed session marks Completed.
//
// Invariants checked:
//   * exactly-one-claim: never two sessions holding the same id open;
//   * parked state is handed to exactly one resumer;
//   * nothing is granted after the id completed (spoof window);
//   * at most one session ever completes the id.
// ---------------------------------------------------------------------

/// Registry entry, mirroring `IdOwner`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Entry {
    Free,
    Open(usize),
    Suspended,
    Completed,
}

/// The admission protocol model: `sessions` session threads race to
/// claim one collector id. Session 0 (when `fail_first`) parks after
/// claiming — modelling a mid-stream failure — and the remaining
/// sessions race to resume.
pub struct AdmissionModel {
    /// Racing session threads.
    pub sessions: usize,
    /// Whether session 0 fails after claiming (parks its state).
    pub fail_first: bool,
    /// Reproduce a TOCTOU bug: claim with an unlocked read-then-insert
    /// instead of one locked step.
    pub unlocked_claim: bool,
}

impl AdmissionModel {
    /// The protocol as shipped.
    pub fn correct(sessions: usize, fail_first: bool) -> Self {
        AdmissionModel {
            sessions,
            fail_first,
            unlocked_claim: false,
        }
    }

    /// Claim outside the registry lock — the checker must catch the
    /// double grant.
    pub fn broken(sessions: usize) -> Self {
        AdmissionModel {
            sessions,
            fail_first: false,
            unlocked_claim: true,
        }
    }
}

/// Session program counters.
const A_LOCK: u8 = 0; // acquire the registry lock (or unlocked read)
const A_CLAIM: u8 = 1; // claim under the lock / unlocked insert
const A_DELIVER: u8 = 2; // deliver frames
const A_SETTLE: u8 = 3; // complete (or, for the failing session, park)
const A_DONE: u8 = 4;

/// Shared + per-thread state of [`AdmissionModel`].
#[derive(Clone)]
pub struct AdmissionState {
    lock_owner: Option<usize>,
    entry: Entry,
    /// Sessions currently holding the id open.
    live: Vec<bool>,
    /// How many sessions were handed the parked state.
    resumes_granted: u32,
    /// Whether the parked state currently exists to hand over.
    parked_state: bool,
    /// Sessions that completed delivery of the id.
    completions: u32,
    pc: Vec<u8>,
    /// The entry value an unlocked claimant read (broken variant).
    seen_free: Vec<bool>,
}

impl Model for AdmissionModel {
    type State = AdmissionState;

    fn name(&self) -> &'static str {
        if self.unlocked_claim {
            "admission-claim-park-resume (broken unlocked claim)"
        } else {
            "admission-claim-park-resume"
        }
    }

    fn threads(&self) -> usize {
        self.sessions
    }

    fn initial(&self) -> AdmissionState {
        AdmissionState {
            lock_owner: None,
            entry: Entry::Free,
            live: vec![false; self.sessions],
            resumes_granted: 0,
            parked_state: false,
            completions: 0,
            pc: vec![A_LOCK; self.sessions],
            seen_free: vec![false; self.sessions],
        }
    }

    fn finished(&self, s: &AdmissionState, t: usize) -> bool {
        s.pc[t] >= A_DONE
    }

    fn enabled(&self, s: &AdmissionState, t: usize) -> bool {
        match s.pc[t] {
            A_DONE => false,
            // Lock acquisition blocks while held (correct variant).
            // The broken variant's "lock" step is an unlocked read —
            // always enabled.
            A_LOCK => self.unlocked_claim || s.lock_owner.is_none(),
            // Settle re-takes the lock.
            A_SETTLE => s.lock_owner.is_none() || s.lock_owner == Some(t),
            _ => true,
        }
    }

    fn step(&self, s: &mut AdmissionState, t: usize) -> Result<(), Violation> {
        match s.pc[t] {
            A_LOCK => {
                if self.unlocked_claim {
                    // BROKEN: read the map without the lock.
                    s.seen_free[t] = s.entry == Entry::Free;
                } else {
                    debug_assert!(s.lock_owner.is_none());
                    s.lock_owner = Some(t);
                }
                s.pc[t] = A_CLAIM;
            }
            A_CLAIM => {
                let granted = if self.unlocked_claim {
                    // BROKEN: insert based on the stale read.
                    if s.seen_free[t] {
                        s.entry = Entry::Open(t);
                        true
                    } else {
                        false
                    }
                } else {
                    // AdmissionRegistry::claim, one step under the lock.
                    let g = match s.entry {
                        Entry::Free => {
                            s.entry = Entry::Open(t);
                            true
                        }
                        Entry::Open(owner) => owner == t,
                        Entry::Completed => false,
                        Entry::Suspended => {
                            s.entry = Entry::Open(t);
                            s.resumes_granted += 1;
                            if !s.parked_state {
                                return Err(Violation::new(format!(
                                    "session {t} resumed an id whose parked state \
                                     was already handed out"
                                )));
                            }
                            s.parked_state = false;
                            true
                        }
                    };
                    s.lock_owner = None;
                    g
                };
                if granted {
                    if s.completions > 0 {
                        return Err(Violation::new(format!(
                            "session {t} was granted a claim after the id completed \
                             — spoof window"
                        )));
                    }
                    s.live[t] = true;
                    if s.live.iter().filter(|&&l| l).count() > 1 {
                        return Err(Violation::new(format!(
                            "exactly-one-claim violated: sessions {:?} all hold the id",
                            s.live
                                .iter()
                                .enumerate()
                                .filter(|(_, &l)| l)
                                .map(|(i, _)| i)
                                .collect::<Vec<_>>()
                        )));
                    }
                    s.pc[t] = A_DELIVER;
                } else {
                    s.pc[t] = A_DONE;
                }
            }
            A_DELIVER => {
                // Frames flow (no shared mutation relevant here).
                s.pc[t] = A_SETTLE;
            }
            A_SETTLE => {
                // Under the lock: park (failing session) or complete.
                debug_assert!(s.lock_owner.is_none() || s.lock_owner == Some(t));
                if self.fail_first && t == 0 {
                    // Aggregator::park_collector + admission.suspend(id)
                    s.entry = Entry::Suspended;
                    s.parked_state = true;
                } else {
                    // admission.complete([id])
                    s.entry = Entry::Completed;
                    s.completions += 1;
                    if s.completions > 1 {
                        return Err(Violation::new(
                            "the id completed twice — two sessions delivered it",
                        ));
                    }
                }
                s.live[t] = false;
                s.pc[t] = A_DONE;
            }
            _ => {}
        }
        Ok(())
    }

    fn at_end(&self, s: &AdmissionState) -> Result<(), Violation> {
        if s.live.iter().any(|&l| l) {
            return Err(Violation::new("a finished session still holds the id"));
        }
        if s.resumes_granted > 1 {
            return Err(Violation::new(format!(
                "parked state handed out {} times",
                s.resumes_granted
            )));
        }
        // Every schedule must settle the id one way: completed, or
        // parked awaiting a resume that no session remains to perform.
        match s.entry {
            Entry::Completed | Entry::Suspended => Ok(()),
            Entry::Free => {
                if self.sessions == 0 {
                    Ok(())
                } else {
                    Err(Violation::new("no session ever claimed the free id"))
                }
            }
            Entry::Open(o) => Err(Violation::new(format!(
                "id left open by session {o} after it finished"
            ))),
        }
    }

    fn on_deadlock(&self, _: &AdmissionState) -> Result<(), Violation> {
        Err(Violation::new(
            "admission deadlock: a session is blocked forever on the registry lock",
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::check_sync::{explore, ExploreOpts};

    use super::*;

    #[test]
    fn correct_pool_protocol_is_clean() {
        let r = explore(&PoolModel::correct(2, 2), &ExploreOpts::default());
        assert!(r.clean(), "{:?}", r.violation);
        assert!(r.schedules > 100, "explored only {}", r.schedules);
    }

    #[test]
    fn push_before_count_underflows_pending() {
        let r = explore(&PoolModel::broken(2, 2), &ExploreOpts::default());
        let (v, sched) = r.violation.expect("underflow must be detected");
        assert!(v.msg.contains("underflow"), "{}", v.msg);
        assert!(!sched.is_empty());
    }

    #[test]
    fn correct_admission_protocol_is_clean() {
        for fail_first in [false, true] {
            let r = explore(
                &AdmissionModel::correct(3, fail_first),
                &ExploreOpts::default(),
            );
            assert!(r.clean(), "fail_first={fail_first}: {:?}", r.violation);
            assert!(r.schedules > 50, "explored only {}", r.schedules);
        }
    }

    #[test]
    fn unlocked_claim_is_caught() {
        // The TOCTOU claim breaks more than one invariant depending on
        // the interleaving; whichever the DFS reaches first, it must
        // be an illegitimate grant (double grant or grant-after-done).
        let r = explore(&AdmissionModel::broken(2), &ExploreOpts::default());
        let (v, _) = r.violation.expect("the race must be detected");
        assert!(
            v.msg.contains("exactly-one-claim") || v.msg.contains("granted a claim after"),
            "{}",
            v.msg
        );
    }
}
