//! `sst-analyze`: the workspace's own static analyzer and bounded
//! model checker, run in CI as a deny gate.
//!
//! Two passes:
//!
//! 1. **Lint** ([`rules`]): a hand-rolled Rust lexer ([`lexer`]) feeds
//!    four invariant rules over the untrusted-decode surface, unsafe
//!    hygiene, wire length math, and lock discipline. Findings are
//!    content-addressed and diffed against a committed, only-shrinking
//!    [`baseline`].
//! 2. **check-sync** ([`check_sync`]): a preemption-bounded exhaustive
//!    interleaving explorer run over instrumented [`models`] of the
//!    workspace's two hand-rolled synchronization protocols (the
//!    rayon-shim pool's count-then-push/sleep-notify and the
//!    cross-loop admission registry's claim/park/resume).
//!
//! The binary (`cargo run -p sst-analyze`) wires both passes to the
//! CLI used by `scripts/analyze.sh` and the CI `analyze` job.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod check_sync;
pub mod lexer;
pub mod models;
pub mod rules;
pub mod workspace;

pub use baseline::{Baseline, BaselineDiff};
pub use check_sync::{explore, ExploreOpts, ExploreReport, Model, Violation};
pub use rules::{lint_source, Finding, RuleConfig};
