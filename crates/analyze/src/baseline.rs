//! The committed findings baseline: grandfathered violations the
//! `--deny` gate tolerates, one fingerprint per line.
//!
//! Contract (enforced by `scripts/analyze.sh` in CI): the baseline
//! **only ever shrinks**. A finding not in the baseline is *new* and
//! fails `--deny`; a baseline line no longer matched by any finding is
//! *stale* and fails `--fail-stale` — fix-and-forget entries must be
//! pruned, so the file monotonically approaches empty.
//!
//! Format: `#`-comments and blank lines are ignored; every other line
//! is a verbatim finding fingerprint (`rule:path:what#occurrence`,
//! content-addressed — see `rules::number_fingerprints` — so entries
//! survive unrelated edits that shift line numbers).

use crate::rules::Finding;
use std::collections::BTreeSet;

/// A parsed baseline file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeSet<String>,
}

/// Result of diffing current findings against the baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff<'a> {
    /// Findings whose fingerprint the baseline does not carry.
    pub new: Vec<&'a Finding>,
    /// Findings grandfathered by the baseline.
    pub known: Vec<&'a Finding>,
    /// Baseline fingerprints no current finding matches.
    pub stale: Vec<String>,
}

impl Baseline {
    /// Parses baseline text (comments/blank lines skipped).
    pub fn parse(text: &str) -> Baseline {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Baseline { entries }
    }

    /// Number of grandfathered fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits `findings` into new/known and reports stale entries.
    pub fn diff<'a>(&self, findings: &'a [Finding]) -> BaselineDiff<'a> {
        let mut diff = BaselineDiff::default();
        let mut matched: BTreeSet<&str> = BTreeSet::new();
        for f in findings {
            if self.entries.contains(&f.fingerprint) {
                matched.insert(f.fingerprint.as_str());
                diff.known.push(f);
            } else {
                diff.new.push(f);
            }
        }
        diff.stale = self
            .entries
            .iter()
            .filter(|e| !matched.contains(e.as_str()))
            .cloned()
            .collect();
        diff
    }

    /// Renders the baseline a `--write-baseline` run would commit for
    /// `findings`: every current fingerprint, sorted, with a header.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# sst-analyze findings baseline — grandfathered violations.\n\
             # This file may only shrink: new findings must be fixed or\n\
             # pragma-allowed, and fixed entries must be pruned\n\
             # (enforced by scripts/analyze.sh --deny --fail-stale).\n",
        );
        let mut prints: Vec<&str> = findings.iter().map(|f| f.fingerprint.as_str()).collect();
        prints.sort_unstable();
        for p in prints {
            out.push_str(p);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(fp: &str) -> Finding {
        Finding {
            rule: "lock-discipline",
            path: "p.rs".into(),
            line: 1,
            what: "w".into(),
            fingerprint: fp.into(),
        }
    }

    #[test]
    fn diff_partitions_new_known_stale() {
        let b = Baseline::parse("# header\n\na:p.rs:w#0\na:p.rs:w#1\n");
        let findings = vec![finding("a:p.rs:w#0"), finding("b:p.rs:w#0")];
        let d = b.diff(&findings);
        assert_eq!(d.known.len(), 1);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].fingerprint, "b:p.rs:w#0");
        assert_eq!(d.stale, vec!["a:p.rs:w#1".to_string()]);
    }

    #[test]
    fn render_round_trips() {
        let findings = vec![finding("z:1"), finding("a:2")];
        let text = Baseline::render(&findings);
        let b = Baseline::parse(&text);
        assert_eq!(b.len(), 2);
        assert!(b.diff(&findings).new.is_empty());
        assert!(b.diff(&findings).stale.is_empty());
    }
}
