//! The `sst-analyze` CLI.
//!
//! ```text
//! sst-analyze lint [--root DIR] [--baseline FILE] [--deny]
//!                  [--fail-stale] [--write-baseline]
//! sst-analyze check-sync [--preemptions N] [--max-schedules N]
//!                        [--min-schedules N]
//! ```
//!
//! `lint` is the default subcommand, so the CI invocation is just
//! `cargo run -p sst-analyze -- --deny --fail-stale`.
//!
//! Exit codes: 0 clean, 1 findings/violations under the requested
//! gates, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use sst_analyze::baseline::Baseline;
use sst_analyze::check_sync::{explore, ExploreOpts, ExploreReport, Model};
use sst_analyze::models::{AdmissionModel, PoolModel};
use sst_analyze::rules::{lint_source, Finding, RuleConfig};
use sst_analyze::workspace::collect_sources;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.first().map(String::as_str) {
        Some("lint") => ("lint", &args[1..]),
        Some("check-sync") => ("check-sync", &args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        // Bare flags default to `lint`.
        _ => ("lint", &args[..]),
    };
    let result = match cmd {
        "lint" => run_lint(rest),
        _ => run_check_sync(rest),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sst-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
sst-analyze — workspace invariant linter + interleaving checker

USAGE:
  sst-analyze [lint] [--root DIR] [--baseline FILE] [--deny]
              [--fail-stale] [--write-baseline]
  sst-analyze check-sync [--preemptions N] [--max-schedules N]
              [--min-schedules N]

lint flags:
  --root DIR         workspace root to walk (default: auto-detected)
  --baseline FILE    findings baseline (default: ROOT/analyze-baseline.txt)
  --deny             exit 1 on findings not in the baseline
  --fail-stale       exit 1 on baseline entries with no matching finding
  --write-baseline   rewrite the baseline from current findings and exit

check-sync flags:
  --preemptions N    preemption bound per schedule (default 3)
  --max-schedules N  stop each model after N schedules (default 2000000)
  --min-schedules N  exit 1 unless total distinct schedules >= N
";

/// Finds the workspace root: the nearest ancestor of the current
/// directory holding a `Cargo.toml` with a `[workspace]` table.
fn detect_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".into());
        }
    }
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn run_lint(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = rest.to_vec();
    let root = match take_value(&mut args, "--root")? {
        Some(r) => PathBuf::from(r),
        None => detect_root()?,
    };
    let baseline_path = take_value(&mut args, "--baseline")?
        .map_or_else(|| root.join("analyze-baseline.txt"), PathBuf::from);
    let deny = take_flag(&mut args, "--deny");
    let fail_stale = take_flag(&mut args, "--fail-stale");
    let write = take_flag(&mut args, "--write-baseline");
    if let Some(unknown) = args.first() {
        return Err(format!("unknown lint argument `{unknown}`\n\n{USAGE}"));
    }

    let cfg = RuleConfig::workspace();
    let sources = collect_sources(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut findings: Vec<Finding> = Vec::new();
    for file in &sources {
        findings.extend(lint_source(&file.rel_path, &file.source, &cfg));
    }

    if write {
        let text = Baseline::render(&findings);
        std::fs::write(&baseline_path, text)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "lint: wrote {} baseline entr{} to {}",
            findings.len(),
            if findings.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };
    let diff = baseline.diff(&findings);

    for f in &diff.new {
        println!("NEW   {}:{} [{}] {}", f.path, f.line, f.rule, f.what);
        println!("      fingerprint: {}", f.fingerprint);
    }
    for f in &diff.known {
        println!("known {}:{} [{}] {}", f.path, f.line, f.rule, f.what);
    }
    for fp in &diff.stale {
        println!("STALE baseline entry with no finding: {fp}");
    }
    println!(
        "lint: {} file(s), {} finding(s) ({} new, {} grandfathered), {} stale baseline entr{}",
        sources.len(),
        findings.len(),
        diff.new.len(),
        diff.known.len(),
        diff.stale.len(),
        if diff.stale.len() == 1 { "y" } else { "ies" },
    );

    let deny_hit = deny && !diff.new.is_empty();
    let stale_hit = fail_stale && !diff.stale.is_empty();
    if deny_hit {
        println!("lint: FAIL — new findings (fix, pragma-allow with a reason, or discuss)");
    }
    if stale_hit {
        println!("lint: FAIL — stale baseline entries (prune them; the baseline only shrinks)");
    }
    Ok(if deny_hit || stale_hit {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn run_check_sync(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = rest.to_vec();
    let parse = |v: Option<String>, what: &str| -> Result<Option<u64>, String> {
        v.map(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("{what} wants a number, got `{s}`"))
        })
        .transpose()
    };
    let preemptions = parse(take_value(&mut args, "--preemptions")?, "--preemptions")?;
    let max_schedules = parse(take_value(&mut args, "--max-schedules")?, "--max-schedules")?;
    let min_schedules =
        parse(take_value(&mut args, "--min-schedules")?, "--min-schedules")?.unwrap_or(0);
    if let Some(unknown) = args.first() {
        return Err(format!(
            "unknown check-sync argument `{unknown}`\n\n{USAGE}"
        ));
    }

    let mut opts = ExploreOpts::default();
    if let Some(p) = preemptions {
        opts.preemption_bound = u32::try_from(p).map_err(|_| "--preemptions too large")?;
    }
    if let Some(m) = max_schedules {
        opts.max_schedules = m;
    }

    // The checked configurations: both protocols at sizes that keep
    // exhaustive exploration under a second while covering 2–3 racing
    // threads (where interleaving bugs live).
    let mut total: u64 = 0;
    let mut failed = false;
    let mut run = |name: String, report: ExploreReport| {
        total += report.schedules;
        match &report.violation {
            None => println!(
                "check-sync: {name}: OK — {} schedule(s), {} truncated, {} preemption-pruned",
                report.schedules, report.truncated, report.preemption_pruned
            ),
            Some((v, sched)) => {
                failed = true;
                println!("check-sync: {name}: VIOLATION — {}", v.msg);
                println!("check-sync:   schedule: {sched:?}");
            }
        }
    };

    let pool_configs = [(1usize, 1u32), (2, 2), (2, 3)];
    for (workers, tasks) in pool_configs {
        let m = PoolModel::correct(workers, tasks);
        run(
            format!("{} [{workers}w/{tasks}t]", m.name()),
            explore(&m, &opts),
        );
    }
    for (sessions, fail_first) in [(2usize, false), (3, false), (3, true)] {
        let m = AdmissionModel::correct(sessions, fail_first);
        run(
            format!("{} [{sessions}s fail_first={fail_first}]", m.name()),
            explore(&m, &opts),
        );
    }

    println!("check-sync: total {total} schedule(s) explored");
    if failed {
        println!("check-sync: FAIL — invariant violation");
        return Ok(ExitCode::FAILURE);
    }
    if total < min_schedules {
        println!("check-sync: FAIL — explored {total} < required {min_schedules} schedules");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
