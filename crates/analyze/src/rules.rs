//! The lint rule engine: four rules over the lexed token stream, with
//! file-scoped allowlist pragmas.
//!
//! | rule | what it forbids |
//! |---|---|
//! | `no-panic-on-untrusted-input` | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`/`assert!`-family calls and slice-index expressions inside the declared untrusted-decode surface |
//! | `unsafe-audit` | `unsafe` outside an allowlisted `sys` module, and any `unsafe` block not preceded by a `// SAFETY:` comment |
//! | `no-lossy-casts-in-length-math` | bare `as u32` (always) and `as usize` fed by 64-bit wire integers (`get_u64_le`/`get_varint`/`u64`) in wire/codec/diff length arithmetic |
//! | `lock-discipline` | `.lock().unwrap()` / `.lock().expect(..)` in non-test monitor code (the house rule is poison recovery via `PoisonError::into_inner`), plus `Ordering::Relaxed` outside the counter allowlist |
//!
//! A file can opt out of one rule with a **file-scoped pragma**:
//!
//! ```text
//! // sst-analyze: allow(<rule>) reason="why this file is exempt"
//! ```
//!
//! The reason is mandatory; a malformed pragma is itself a finding
//! (`pragma-syntax`). Pragmas are deliberately file-granular — for
//! single-line grandfathering use the committed baseline instead, so
//! the rule keeps firing on *new* code in the same file.

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};
use std::collections::BTreeSet;

/// Every rule the engine knows, in display order.
pub const RULES: &[&str] = &[
    "no-panic-on-untrusted-input",
    "unsafe-audit",
    "no-lossy-casts-in-length-math",
    "lock-discipline",
    "pragma-syntax",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Short token-level description (`expect`, `slice-index`, …).
    pub what: String,
    /// Stable content-addressed id: `rule:path:what#occurrence`.
    /// Line-free, so findings survive unrelated edits above them.
    pub fingerprint: String,
}

/// How much of a file belongs to a rule's surface.
#[derive(Debug, Clone)]
pub enum Scope {
    /// Every non-test token of the file.
    All,
    /// Only tokens inside named functions whose name contains one of
    /// these substrings (innermost or any enclosing named fn).
    Fns(Vec<&'static str>),
}

/// The declared untrusted-decode surface plus per-rule file scopes.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// (`path suffix`, scope) pairs for `no-panic-on-untrusted-input`.
    pub untrusted_surface: Vec<(&'static str, Scope)>,
    /// Path suffixes where the lossy-cast rule applies.
    pub length_math_files: Vec<&'static str>,
    /// Path prefixes where `lock-discipline` applies.
    pub lock_paths: Vec<&'static str>,
    /// Path suffixes whose `Ordering::Relaxed` uses are known counters.
    pub relaxed_counter_files: Vec<&'static str>,
    /// Module name whose contents may hold `unsafe` blocks.
    pub unsafe_module: &'static str,
}

impl RuleConfig {
    /// The workspace's declared surfaces (see ISSUE 10 / README).
    pub fn workspace() -> Self {
        RuleConfig {
            untrusted_surface: vec![
                // The snapshot codec decodes raw collector bytes end to
                // end: the whole file is surface.
                ("crates/monitor/src/codec.rs", Scope::All),
                // wire.rs: only the decode half — encode fns document
                // intentional caller-bug panics (oversize frames).
                (
                    "crates/monitor/src/wire.rs",
                    Scope::Fns(vec!["decode", "push_bytes", "finish"]),
                ),
                // diff.rs: the apply/patch half mutates state from
                // network bytes; the diff-building half reads only
                // trusted local state.
                (
                    "crates/monitor/src/diff.rs",
                    Scope::Fns(vec!["apply", "patch"]),
                ),
                // The fault-injection proxy forwards a hostile
                // back-channel verbatim: whole file.
                ("crates/monitor/src/fault.rs", Scope::All),
                // transport.rs: the session/dispatch paths that touch
                // frames from live sockets.
                (
                    "crates/monitor/src/transport.rs",
                    Scope::Fns(vec![
                        "handle_ready",
                        "settle_failed",
                        "pump",
                        "run",
                        "dispatch",
                        "accept",
                    ]),
                ),
            ],
            length_math_files: vec![
                "crates/monitor/src/wire.rs",
                "crates/monitor/src/codec.rs",
                "crates/monitor/src/diff.rs",
            ],
            lock_paths: vec!["crates/monitor/"],
            relaxed_counter_files: vec![
                // The rayon shim's `next` round-robin cursor and
                // `steals` observability counter: values are advisory,
                // never synchronizing.
                "crates/shims/rayon/src/lib.rs",
            ],
            unsafe_module: "sys",
        }
    }
}

/// File-scoped pragmas parsed out of comments, plus any syntax
/// findings they produced.
struct Pragmas {
    allowed: BTreeSet<String>,
    findings: Vec<(u32, String)>,
}

fn parse_pragmas(comments: &[Comment]) -> Pragmas {
    let mut allowed = BTreeSet::new();
    let mut findings = Vec::new();
    for c in comments {
        // Anchored at comment start, so prose *mentioning* the pragma
        // syntax (like this module's docs) is not itself a pragma.
        let Some(rest) = c.text.trim_start().strip_prefix("sst-analyze:") else {
            continue;
        };
        let rest = rest.trim();
        let ok = (|| {
            let rest = rest.strip_prefix("allow(")?;
            let close = rest.find(')')?;
            let rule = rest[..close].trim().to_string();
            if !RULES.contains(&rule.as_str()) {
                return None;
            }
            let tail = rest[close + 1..].trim();
            let reason = tail.strip_prefix("reason=\"")?;
            let end = reason.find('"')?;
            if reason[..end].trim().is_empty() {
                return None;
            }
            Some(rule)
        })();
        match ok {
            Some(rule) => {
                allowed.insert(rule);
            }
            None => findings.push((
                c.line,
                format!(
                    "malformed pragma (want `sst-analyze: allow(<rule>) reason=\"...\"`): {rest}"
                ),
            )),
        }
    }
    Pragmas { allowed, findings }
}

/// Keywords that can legitimately precede `[` without it being an
/// index expression (`&mut [0u8; 4]`, `return [a, b]`, …).
const NON_INDEX_IDENTS: &[&str] = &[
    "mut", "return", "break", "in", "match", "if", "else", "as", "dyn", "impl", "where", "move",
    "ref", "const", "static", "box", "yield",
];

struct FileLint<'a> {
    path: &'a str,
    cfg: &'a RuleConfig,
    lexed: &'a Lexed,
    allowed: &'a BTreeSet<String>,
    findings: Vec<Finding>,
}

impl FileLint<'_> {
    fn emit(&mut self, rule: &'static str, line: u32, what: impl Into<String>) {
        if self.allowed.contains(rule) {
            return;
        }
        self.findings.push(Finding {
            rule,
            path: self.path.to_string(),
            line,
            what: what.into(),
            fingerprint: String::new(), // filled by `number_fingerprints`
        });
    }

    fn surface_scope(&self) -> Option<&Scope> {
        self.cfg
            .untrusted_surface
            .iter()
            .find(|(suffix, _)| self.path.ends_with(suffix))
            .map(|(_, s)| s)
    }

    fn in_surface(&self, tok: &Token, scope: &Scope) -> bool {
        if tok.ctx.test {
            return false;
        }
        match scope {
            Scope::All => true,
            Scope::Fns(names) => tok
                .ctx
                .fns
                .iter()
                .any(|f| names.iter().any(|n| f.contains(n))),
        }
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.lexed.tokens.get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        matches!(self.lexed.tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
    }

    /// Rule (a): panic paths and slice indexing in the untrusted
    /// surface.
    fn no_panic_on_untrusted_input(&mut self) {
        const RULE: &str = "no-panic-on-untrusted-input";
        let Some(scope) = self.surface_scope().cloned() else {
            return;
        };
        let toks = &self.lexed.tokens;
        for i in 0..toks.len() {
            let tok = &toks[i];
            if tok.attr || !self.in_surface(tok, &scope) {
                continue;
            }
            match &tok.kind {
                // `.unwrap(` / `.expect(` — a method call, not a
                // fn named unwrap_or etc. (full-ident match).
                TokKind::Ident(s)
                    if (s == "unwrap" || s == "expect")
                        && i > 0
                        && self.punct_at(i - 1, '.')
                        && self.punct_at(i + 1, '(') =>
                {
                    self.emit(RULE, tok.line, s.clone());
                }
                TokKind::Ident(s)
                    if matches!(
                        s.as_str(),
                        "panic"
                            | "unreachable"
                            | "todo"
                            | "unimplemented"
                            | "assert"
                            | "assert_eq"
                            | "assert_ne"
                    ) && self.punct_at(i + 1, '!') =>
                {
                    self.emit(RULE, tok.line, format!("{s}!"));
                }
                TokKind::Punct('[') => {
                    // Index expression heuristic: `[` directly after an
                    // identifier, `)`, or `]` is indexing; after
                    // operators, `=`, `(`, `,`, `#`, keywords, … it is
                    // an array/slice literal or type.
                    let Some(prev) = (i > 0).then(|| &toks[i - 1]) else {
                        continue;
                    };
                    if prev.attr {
                        continue;
                    }
                    let indexing = match &prev.kind {
                        TokKind::Ident(s) => !NON_INDEX_IDENTS.contains(&s.as_str()),
                        TokKind::Punct(')') | TokKind::Punct(']') => true,
                        _ => false,
                    };
                    if indexing {
                        self.emit(RULE, tok.line, "slice-index");
                    }
                }
                _ => {}
            }
        }
    }

    /// Rule (b): `unsafe` location + `// SAFETY:` comments. Applies to
    /// every file in the workspace walk.
    fn unsafe_audit(&mut self) {
        const RULE: &str = "unsafe-audit";
        for tok in &self.lexed.tokens {
            if tok.attr || tok.ctx.test {
                continue;
            }
            let TokKind::Ident(s) = &tok.kind else {
                continue;
            };
            if s != "unsafe" {
                continue;
            }
            if !tok.ctx.in_mod(self.cfg.unsafe_module) {
                self.emit(
                    RULE,
                    tok.line,
                    format!("unsafe outside a `{}` module", self.cfg.unsafe_module),
                );
            }
            // Every unsafe block — allowlisted module or not — needs a
            // SAFETY comment in the dozen lines above it.
            let documented = self.lexed.comments.iter().any(|c| {
                c.line <= tok.line && tok.line - c.line <= 12 && c.text.contains("SAFETY")
            });
            if !documented {
                self.emit(
                    RULE,
                    tok.line,
                    "unsafe block without a `// SAFETY:` comment",
                );
            }
        }
    }

    /// Rule (c): lossy narrowing casts in wire/codec length math.
    fn no_lossy_casts_in_length_math(&mut self) {
        const RULE: &str = "no-lossy-casts-in-length-math";
        if !self
            .cfg
            .length_math_files
            .iter()
            .any(|suffix| self.path.ends_with(suffix))
        {
            return;
        }
        let toks = &self.lexed.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if tok.attr || tok.ctx.test {
                continue;
            }
            if !matches!(&tok.kind, TokKind::Ident(s) if s == "as") {
                continue;
            }
            let Some(target) = self.ident_at(i + 1) else {
                continue;
            };
            match target {
                // Narrowing to u32 in a wire file is length math by
                // definition (frame length fields are u32).
                "u32" | "u16" => {
                    self.emit(RULE, tok.line, format!("as {target}"));
                }
                // `as usize` is lossy only when fed a 64-bit wire
                // integer; detect the idioms that read one.
                "usize" => {
                    let from_u64 = (i.saturating_sub(8)..i).any(|j| {
                        matches!(
                            self.ident_at(j),
                            Some("u64") | Some("get_u64_le") | Some("get_varint")
                        )
                    });
                    if from_u64 {
                        self.emit(RULE, tok.line, "as usize (from u64 wire integer)");
                    }
                }
                _ => {}
            }
        }
    }

    /// Rule (d): `.lock().unwrap()` / `.lock().expect(` and
    /// `Ordering::Relaxed` outside the counter allowlist.
    fn lock_discipline(&mut self) {
        const RULE: &str = "lock-discipline";
        let in_lock_scope = self
            .cfg
            .lock_paths
            .iter()
            .any(|prefix| self.path.starts_with(prefix));
        let relaxed_allowed = self
            .cfg
            .relaxed_counter_files
            .iter()
            .any(|suffix| self.path.ends_with(suffix));
        let toks = &self.lexed.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if tok.attr || tok.ctx.test {
                continue;
            }
            match &tok.kind {
                // `.lock().unwrap()` / `.lock().expect(`
                TokKind::Ident(s)
                    if s == "lock"
                        && in_lock_scope
                        && i > 0
                        && self.punct_at(i - 1, '.')
                        && self.punct_at(i + 1, '(')
                        && self.punct_at(i + 2, ')')
                        && self.punct_at(i + 3, '.') =>
                {
                    if let Some(m) = self.ident_at(i + 4) {
                        if m == "unwrap" || m == "expect" {
                            self.emit(
                                RULE,
                                tok.line,
                                format!(
                                    ".lock().{m}() — recover poison via PoisonError::into_inner"
                                ),
                            );
                        }
                    }
                }
                TokKind::Ident(s)
                    if s == "Relaxed"
                        && (in_lock_scope || self.path.contains("shims/rayon"))
                        && !relaxed_allowed
                        && i >= 2
                        && self.punct_at(i - 1, ':')
                        && self.punct_at(i - 2, ':')
                        && self.ident_at(i.saturating_sub(3)) == Some("Ordering") =>
                {
                    self.emit(
                        RULE,
                        tok.line,
                        "Ordering::Relaxed outside the counter allowlist",
                    );
                }
                _ => {}
            }
        }
    }
}

/// Assigns content-addressed fingerprints: the `k`-th occurrence of
/// (rule, path, what) in file order gets `rule:path:what#k`. Stable
/// under edits elsewhere in the file, unlike line numbers.
fn number_fingerprints(findings: &mut [Finding]) {
    use std::collections::BTreeMap;
    let mut seen: BTreeMap<(String, String, String), u32> = BTreeMap::new();
    for f in findings {
        let key = (f.rule.to_string(), f.path.clone(), f.what.clone());
        let k = seen.entry(key).or_insert(0);
        f.fingerprint = format!("{}:{}:{}#{}", f.rule, f.path, f.what, k);
        *k += 1;
    }
}

/// Lints one file's source under `cfg`. `path` is workspace-relative
/// with forward slashes; files under `tests/`, `benches/`, `examples/`
/// are treated as all-test (integration tests never carry
/// `#[cfg(test)]`).
pub fn lint_source(path: &str, src: &str, cfg: &RuleConfig) -> Vec<Finding> {
    let all_test = path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures");
    let lexed = lex(src, all_test);
    let pragmas = parse_pragmas(&lexed.comments);
    let mut lint = FileLint {
        path,
        cfg,
        lexed: &lexed,
        allowed: &pragmas.allowed,
        findings: Vec::new(),
    };
    for (line, what) in &pragmas.findings {
        lint.findings.push(Finding {
            rule: "pragma-syntax",
            path: path.to_string(),
            line: *line,
            what: what.clone(),
            fingerprint: String::new(),
        });
    }
    if !all_test {
        lint.no_panic_on_untrusted_input();
        lint.unsafe_audit();
        lint.no_lossy_casts_in_length_math();
        lint.lock_discipline();
    }
    let mut findings = lint.findings;
    findings.sort_by(|a, b| (a.line, a.rule, &a.what).cmp(&(b.line, b.rule, &b.what)));
    number_fingerprints(&mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(path: &'static str) -> RuleConfig {
        let mut cfg = RuleConfig::workspace();
        cfg.untrusted_surface.push((path, Scope::All));
        cfg.length_math_files.push(path);
        cfg.lock_paths.push(path);
        cfg
    }

    #[test]
    fn panics_in_test_code_are_ignored() {
        let cfg = cfg_for("x.rs");
        let src = r#"
fn decode(b: &[u8]) -> u8 { b[0] }
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!("fine here"); }
}
"#;
        let f = lint_source("x.rs", src, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].what, "slice-index");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn pragma_silences_one_rule_only() {
        let cfg = cfg_for("x.rs");
        let src = r#"
// sst-analyze: allow(no-panic-on-untrusted-input) reason="exercise the pragma"
fn decode(b: &[u8]) -> u8 { let v = b.first().unwrap(); *v as u32 as u8 }
"#;
        let f = lint_source("x.rs", src, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-lossy-casts-in-length-math");
    }

    #[test]
    fn malformed_pragma_is_a_finding() {
        let cfg = cfg_for("x.rs");
        for bad in [
            "// sst-analyze: allow(no-such-rule) reason=\"x\"",
            "// sst-analyze: allow(unsafe-audit)",
            "// sst-analyze: allow(unsafe-audit) reason=\"\"",
        ] {
            let f = lint_source("x.rs", &format!("{bad}\nfn ok() {{}}\n"), &cfg);
            assert_eq!(f.len(), 1, "{bad}: {f:?}");
            assert_eq!(f[0].rule, "pragma-syntax");
        }
    }

    #[test]
    fn fingerprints_number_repeats() {
        let cfg = cfg_for("x.rs");
        let src = "fn decode(a: T, b: T) { a.unwrap(); b.unwrap(); }\n";
        let f = lint_source("x.rs", src, &cfg);
        assert_eq!(f.len(), 2);
        assert_eq!(
            f[0].fingerprint,
            "no-panic-on-untrusted-input:x.rs:unwrap#0"
        );
        assert_eq!(
            f[1].fingerprint,
            "no-panic-on-untrusted-input:x.rs:unwrap#1"
        );
    }

    #[test]
    fn fn_scoped_surface_only_hits_named_fns() {
        let mut cfg = RuleConfig::workspace();
        cfg.untrusted_surface
            .push(("y.rs", Scope::Fns(vec!["decode"])));
        let src = r#"
fn decode_frame(b: &[u8]) { b.get(0).unwrap(); }
fn encode_frame(b: &[u8]) { b.get(0).unwrap(); }
"#;
        let f = lint_source("y.rs", src, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn array_literals_and_attrs_are_not_indexing() {
        let cfg = cfg_for("x.rs");
        let src = r#"
#[derive(Clone)]
struct S { f: [u8; 4] }
fn mk() -> [u8; 2] { let x = [0u8, 1]; let y: Vec<[u8; 2]> = vec![]; x }
"#;
        let f = lint_source("x.rs", src, &cfg);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_needs_sys_module_and_safety_comment() {
        let cfg = RuleConfig::workspace();
        // In `sys` with SAFETY: clean.
        let good = "mod sys {\n fn f() {\n // SAFETY: fine\n unsafe { x() }\n }\n}\n";
        assert!(lint_source("a.rs", good, &cfg).is_empty());
        // In `sys` without SAFETY: one finding.
        let no_comment = "mod sys { fn f() { unsafe { x() } } }";
        let f = lint_source("a.rs", no_comment, &cfg);
        assert_eq!(f.len(), 1);
        assert!(f[0].what.contains("SAFETY"));
        // Outside `sys`, with SAFETY: still a location finding.
        let outside = "fn f() {\n // SAFETY: but wrong place\n unsafe { x() }\n}\n";
        let f = lint_source("a.rs", outside, &cfg);
        assert_eq!(f.len(), 1);
        assert!(f[0].what.contains("outside"));
    }

    #[test]
    fn lossy_casts_flag_u64_reads_not_u32_widening() {
        let cfg = cfg_for("x.rs");
        let src = r#"
fn decode(buf: &mut B) {
    let n = buf.get_u64_le() as usize;
    let w = u32::from_le_bytes(b) as usize;
    let z = v.leading_zeros() as usize;
    let l = payload.len() as u32;
}
"#;
        let f = lint_source("x.rs", src, &cfg);
        let whats: Vec<&str> = f.iter().map(|f| f.what.as_str()).collect();
        assert_eq!(
            whats,
            vec!["as usize (from u64 wire integer)", "as u32"],
            "{f:?}"
        );
    }

    #[test]
    fn lock_discipline_catches_unwrap_and_relaxed() {
        // Workspace config: `crates/monitor/` is lock-scoped but x.rs
        // is not untrusted surface, so rule (a) stays quiet here.
        let cfg = RuleConfig::workspace();
        let src = r#"
fn f(m: &Mutex<u32>) {
    let g = m.lock().unwrap();
    let h = m.lock().expect("poisoned");
    let ok = m.lock().unwrap_or_else(PoisonError::into_inner);
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
        let f = lint_source("crates/monitor/src/x.rs", src, &cfg);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f[0].what.contains("unwrap"));
        assert!(f[1].what.contains("expect"));
        assert!(f[2].what.contains("Relaxed"));
    }
}
